"""``python -m repro`` — experiment runner entry point."""

from repro.cli import main

if __name__ == "__main__":
    raise SystemExit(main())
