"""Integer identifier-circle arithmetic.

Identifiers live on the circle ``[0, 2**bits)``.  The paper (Section 2)
uses real identifiers in ``[0, 1)``; we use the standard Chord integer form.
All virtual-node positions ``u_i = u + 1/2**i (mod 1)`` map to
``(u + 2**(bits - i)) mod 2**bits`` which is *exact* in integer arithmetic —
using binary floats here would silently round for large ``i`` and break the
"unique closest node" requirements of the protocol.

Two order relations coexist (DESIGN.md Section 3.2):

* the **linear** order of plain integers — used by the self-stabilization
  rules 2-6 (linearization produces a sorted list; ring edges close the
  seam);
* the **ring** order (clockwise distances, wrap-around intervals) — used by
  the ``m`` computation, Chord finger targets and the DHT layer.

This module provides both.
"""

from __future__ import annotations

from dataclasses import dataclass

#: Default number of identifier bits.  64 bits makes random-id collisions
#: negligible (the paper assumes unique identifiers) while keeping ids
#: machine-word sized on CPython.
DEFAULT_BITS = 64


def ring_distance_cw(a: int, b: int, size: int) -> int:
    """Clockwise (increasing-id) distance from ``a`` to ``b`` on a ring.

    Returns a value in ``[0, size)``; ``0`` iff ``a == b``.
    """
    return (b - a) % size


def ring_between_open(a: int, x: int, b: int, size: int) -> bool:
    """Whether ``x`` lies in the *open* ring interval ``(a, b)``.

    This is the paper's ``[u, v]`` notation from Section 2.2 (their bracket
    notation is exclusive of the endpoints: ``0.2 not in [0.3, 0.8]`` but
    ``0, 0.2 in [0.8, 0.3]``).  When ``a == b`` the interval is the whole
    circle minus the point ``a``.
    """
    if a == b:
        return x != a
    da = ring_distance_cw(a, x, size)
    db = ring_distance_cw(a, b, size)
    return 0 < da < db


def ring_between_open_closed(a: int, x: int, b: int, size: int) -> bool:
    """Whether ``x`` lies in the half-open ring interval ``(a, b]``.

    Used for Chord key responsibility: the successor of ``k`` is the first
    node ``s`` with ``k`` in ``(predecessor(s), s]``.
    """
    if a == b:
        return True  # single-node ring owns everything
    da = ring_distance_cw(a, x, size)
    db = ring_distance_cw(a, b, size)
    return 0 < da <= db


@dataclass(frozen=True)
class IdSpace:
    """The identifier circle ``[0, 2**bits)`` and its derived geometry.

    Parameters
    ----------
    bits:
        Number of identifier bits ``B``.  Identifiers are integers in
        ``[0, 2**B)``.  Virtual level ``i`` of a peer with identifier ``u``
        sits at ``(u + 2**(B - i)) mod 2**B``; levels are capped at ``B``
        (deviation [D1] in DESIGN.md — beyond ``B`` the offset would be
        fractional).
    """

    bits: int = DEFAULT_BITS

    def __post_init__(self) -> None:
        if self.bits < 1:
            raise ValueError(f"IdSpace needs at least 1 bit, got {self.bits}")

    @property
    def size(self) -> int:
        """Number of points on the circle, ``2**bits``."""
        return 1 << self.bits

    # ------------------------------------------------------------------
    # validation
    # ------------------------------------------------------------------
    def check_id(self, ident: int) -> int:
        """Validate that ``ident`` is on the circle and return it."""
        if not isinstance(ident, int) or isinstance(ident, bool):
            raise TypeError(f"identifier must be an int, got {type(ident).__name__}")
        if not 0 <= ident < self.size:
            raise ValueError(f"identifier {ident} outside [0, 2**{self.bits})")
        return ident

    # ------------------------------------------------------------------
    # ring geometry
    # ------------------------------------------------------------------
    def distance_cw(self, a: int, b: int) -> int:
        """Clockwise distance from ``a`` to ``b``."""
        return ring_distance_cw(a, b, self.size)

    def distance_ccw(self, a: int, b: int) -> int:
        """Counter-clockwise distance from ``a`` to ``b``."""
        return ring_distance_cw(b, a, self.size)

    def between_open(self, a: int, x: int, b: int) -> bool:
        """``x`` in the open ring interval ``(a, b)``."""
        return ring_between_open(a, x, b, self.size)

    def between_open_closed(self, a: int, x: int, b: int) -> bool:
        """``x`` in the half-open ring interval ``(a, b]``."""
        return ring_between_open_closed(a, x, b, self.size)

    # ------------------------------------------------------------------
    # virtual nodes / fingers
    # ------------------------------------------------------------------
    def max_level(self) -> int:
        """The largest supported virtual level (= ``bits``)."""
        return self.bits

    def virtual_offset(self, level: int) -> int:
        """Clockwise offset of virtual level ``level``: ``2**(bits-level)``."""
        if not 1 <= level <= self.bits:
            raise ValueError(f"virtual level must be in [1, {self.bits}], got {level}")
        return 1 << (self.bits - level)

    def virtual_id(self, ident: int, level: int) -> int:
        """Identifier of virtual node ``u_level`` of a peer with id ``ident``.

        ``level == 0`` is the real node itself.
        """
        if level == 0:
            return ident
        return (ident + self.virtual_offset(level)) & (self.size - 1)

    def level_count(self, gap: int) -> int:
        """Number of virtual nodes ``m`` for a clockwise gap of ``gap``.

        ``gap`` is the clockwise distance from a peer to the nearest *known
        real* node (``2**bits`` when no other real node is known — a full
        loop back to itself).  ``m`` is the minimal ``i >= 1`` such that
        ``2**(bits - i) < gap``, i.e. the number of fingers Chord would
        materialize: ``u_m`` lies strictly between ``u`` and its real
        successor (DESIGN.md [D3]).  The result is clamped to
        ``[1, bits]``.
        """
        if gap <= 0:
            raise ValueError(f"gap must be positive, got {gap}")
        if gap > self.size:
            raise ValueError(f"gap {gap} exceeds ring size {self.size}")
        # minimal i with 2**(bits-i) < gap  <=>  2**(bits-i) <= gap-1
        #   <=>  bits - i <= floor(log2(gap-1))  <=>  i >= bits - bl(gap-1) + 1
        m = self.bits - (gap - 1).bit_length() + 1
        return max(1, min(self.bits, m))

    def finger_target(self, ident: int, level: int) -> int:
        """Chord finger target position: ``ident + 2**(bits-level)`` (mod).

        Identical to :meth:`virtual_id`; provided under the Chord name for
        the baseline implementation.
        """
        return self.virtual_id(ident, level)

    # ------------------------------------------------------------------
    # conversions
    # ------------------------------------------------------------------
    def to_unit(self, ident: int) -> float:
        """Map an identifier to the paper's ``[0, 1)`` picture (lossy)."""
        return ident / self.size

    def from_unit(self, x: float) -> int:
        """Map a ``[0, 1)`` real to the nearest identifier below it."""
        if not 0.0 <= x < 1.0:
            raise ValueError(f"unit position must be in [0, 1), got {x}")
        return min(self.size - 1, int(x * self.size))
