"""Identifier-space arithmetic for ring overlays.

The paper draws identifiers uniformly from ``[0, 1)``.  This package
implements the equivalent integer identifier circle ``[0, 2**bits)`` (exact
arithmetic, no float rounding) together with the interval algebra, distance
functions, virtual-node positions and Chord finger targets used throughout
the reproduction.
"""

from repro.idspace.ring import (
    DEFAULT_BITS,
    IdSpace,
    ring_between_open,
    ring_distance_cw,
)
from repro.idspace.keys import hash_to_id, key_id

__all__ = [
    "DEFAULT_BITS",
    "IdSpace",
    "ring_between_open",
    "ring_distance_cw",
    "hash_to_id",
    "key_id",
]
