"""Consistent hashing of peer addresses and data keys onto the id circle.

Chord hashes peer addresses and data keys with SHA-1 onto the identifier
circle (the paper's ``h : U -> [0, 1)``).  We reproduce that: names are
hashed with SHA-1 and the digest is truncated to the id-space width.  The
experiments instead draw ids uniformly at random, which is exactly the
distributional assumption the paper's analysis makes; both paths are
supported.
"""

from __future__ import annotations

import hashlib

from repro.idspace.ring import IdSpace


def hash_to_id(name: str | bytes, space: IdSpace) -> int:
    """Hash an arbitrary name uniformly onto ``[0, 2**bits)`` via SHA-1.

    The full 160-bit digest is reduced modulo the ring size, matching
    Chord's use of SHA-1 as the consistent-hashing function.
    """
    data = name.encode("utf-8") if isinstance(name, str) else bytes(name)
    digest = hashlib.sha1(data).digest()
    return int.from_bytes(digest, "big") % space.size


def key_id(key: str | bytes, space: IdSpace) -> int:
    """Identifier of a data key (alias of :func:`hash_to_id` for clarity)."""
    return hash_to_id(key, space)
