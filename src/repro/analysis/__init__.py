"""Analysis instrumentation: the proof's five phases, made measurable.

The correctness proof of Theorem 1.1 decomposes stabilization into five
phases (Section 3.1): connection, linearization, ring, closest-real, and
cleanup.  :mod:`repro.analysis.phases` turns each phase's postcondition
into an executable predicate and tracks when each is reached during a
run — reproducing the *structure* of the proof empirically, not just its
endpoint.  :mod:`repro.analysis.viz` renders overlay states for
debugging and documentation (ASCII ring, Graphviz DOT).
"""

from repro.analysis.phases import PhaseReport, PhaseTracker, phase_predicates
from repro.analysis.viz import ascii_ring, to_dot

__all__ = ["PhaseReport", "PhaseTracker", "phase_predicates", "ascii_ring", "to_dot"]
