"""Overlay visualization: ASCII ring summaries and Graphviz DOT export.

Debug/documentation helpers: ``ascii_ring`` prints every simulated node
in sorted order with its outgoing pointers (the form the linearization
proof reasons about); ``to_dot`` emits a DOT graph with one style per
edge kind for rendering with Graphviz.
"""

from __future__ import annotations

from typing import List

from repro.core.network import ReChordNetwork
from repro.graphs.digraph import EdgeKind

#: DOT styling per edge kind
_DOT_STYLE = {
    EdgeKind.UNMARKED: 'color="black"',
    EdgeKind.RING: 'color="red", style="bold"',
    EdgeKind.CONNECTION: 'color="blue", style="dashed"',
    EdgeKind.REAL_POINTER: 'color="green", style="dotted"',
}


def _short(ident: int, width: int = 6) -> str:
    text = f"{ident:x}"
    return text[:width] if len(text) > width else text


def ascii_ring(net: ReChordNetwork, max_nodes: int = 64) -> str:
    """One line per simulated node, sorted, with pointer summary."""
    rows: List[str] = []
    refs = []
    nodes = {}
    for pid in sorted(net.peers):
        for level in sorted(net.peers[pid].state.nodes):
            node = net.peers[pid].state.nodes[level]
            refs.append(node.ref)
            nodes[node.ref] = node
    refs.sort(key=lambda r: r.key)
    header = f"{len(net.peers)} peers, {len(refs)} nodes (sorted by id)"
    rows.append(header)
    rows.append("-" * len(header))
    shown = refs if len(refs) <= max_nodes else refs[: max_nodes // 2] + refs[-max_nodes // 2 :]
    skipped = len(refs) - len(shown)
    for i, ref in enumerate(shown):
        if skipped and i == max_nodes // 2:
            rows.append(f"... {skipped} nodes omitted ...")
        node = nodes[ref]
        kind = "●" if ref.is_real else "○"
        label = f"{kind} {_short(ref.id):>6} (peer {_short(ref.owner)}, L{ref.level})"
        out = []
        if node.nu:
            out.append("nu:" + ",".join(_short(t.id) for t in sorted(node.nu, key=lambda r: r.key)))
        if node.nr:
            out.append("nr:" + ",".join(_short(t.id) for t in sorted(node.nr, key=lambda r: r.key)))
        if node.nc:
            out.append("nc:" + ",".join(_short(t.id) for t in sorted(node.nc, key=lambda r: r.key)))
        wraps = node.wrap_refs()
        if wraps:
            out.append("wrap:" + ",".join(_short(t.id) for t in wraps))
        rows.append(f"{label:<34} {' '.join(out)}")
    return "\n".join(rows)


def to_dot(net: ReChordNetwork, include_connection: bool = True) -> str:
    """Graphviz DOT of the current overlay (one style per edge kind)."""
    lines = [
        "digraph rechord {",
        '  rankdir="LR";',
        '  node [shape=circle, fontsize=9];',
    ]
    graph = net.snapshot(include_pending=False)
    for ref in sorted(graph.nodes(), key=lambda r: r.key):
        shape = "doublecircle" if ref.is_real else "circle"
        lines.append(f'  "{ref.owner}_{ref.level}" [label="{_short(ref.id)}", shape={shape}];')
    for src, dst, kind in sorted(
        graph.edges(), key=lambda e: (e[0].key, e[1].key, e[2].value)
    ):
        if kind is EdgeKind.CONNECTION and not include_connection:
            continue
        style = _DOT_STYLE[kind]
        lines.append(f'  "{src.owner}_{src.level}" -> "{dst.owner}_{dst.level}" [{style}];')
    lines.append("}")
    return "\n".join(lines)
