"""Executable postconditions of the proof's five phases (Section 3.1).

============  ==========  ====================================================
phase         paper ref   postcondition implemented here
============  ==========  ====================================================
connection    Lemma 3.2   all simulated nodes weakly connected by unmarked
                          edges alone
linearize     Lemma 3.6   consecutive nodes (global sorted order) mutually
                          connected by unmarked edges
ring          Lemma 3.9   the global min/max nodes hold each other's ring
                          edges (the sorted list is closed into a ring)
closest_real  Lemma 3.10  every node's rl/rr (and wrap pointers) equal the
                          ideal values
cleanup       Lemma 3.11  no unnecessary edges: the state *is* the ideal
                          topology
============  ==========  ====================================================

A :class:`PhaseTracker` samples all predicates each round; the completion
round of a phase is the first round from which its predicate holds
forever (phases can transiently flicker while earlier phases still
churn, so post-hoc suffix evaluation is required — the proof itself
argues "the resulting properties hold forever *once established*").
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Tuple

from repro.core.ideal import IdealTopology, compute_ideal
from repro.core.network import ReChordNetwork
from repro.core.noderef import NodeRef
from repro.graphs.unionfind import UnionFind

#: phase names in proof order
PHASES: Tuple[str, ...] = ("connection", "linearize", "ring", "closest_real", "cleanup")


def _simulated_refs(net: ReChordNetwork) -> List[NodeRef]:
    refs: List[NodeRef] = []
    for pid in sorted(net.peers):
        for level in sorted(net.peers[pid].state.nodes):
            refs.append(net.peers[pid].state.nodes[level].ref)
    return sorted(refs, key=lambda r: r.key)


def phase1_connection(net: ReChordNetwork, ideal: IdealTopology) -> bool:
    """All simulated nodes in one component of the *unmarked* subgraph."""
    refs = _simulated_refs(net)
    if not refs:
        return True
    uf = UnionFind(refs)
    simulated = set(refs)
    for pid in net.peers:
        for node in net.peers[pid].state.nodes.values():
            for t in node.nu:
                if t in simulated:
                    uf.union(node.ref, t)
    return uf.component_count == 1


def phase2_linearize(net: ReChordNetwork, ideal: IdealTopology) -> bool:
    """Consecutive nodes mutually connected by unmarked edges.

    Evaluated over the *current* simulated nodes (sorted order), which
    coincide with the ideal refs only once rule 1 settled.
    """
    refs = _simulated_refs(net)
    nodes = {
        node.ref: node
        for pid in net.peers
        for node in net.peers[pid].state.nodes.values()
    }
    for a, b in zip(refs, refs[1:]):
        if b not in nodes[a].nu or a not in nodes[b].nu:
            return False
    return True


def phase3_ring(net: ReChordNetwork, ideal: IdealTopology) -> bool:
    """The extremes hold each other's ring edges (list closed to a ring)."""
    refs = _simulated_refs(net)
    if len(refs) < 2:
        return True
    nodes = {
        node.ref: node
        for pid in net.peers
        for node in net.peers[pid].state.nodes.values()
    }
    lo, hi = refs[0], refs[-1]
    return hi in nodes[lo].nr and lo in nodes[hi].nr


def phase4_closest_real(net: ReChordNetwork, ideal: IdealTopology) -> bool:
    """All real pointers (linear and wrap) equal the ideal values."""
    for pid in net.peers:
        state = net.peers[pid].state
        if set(state.nodes) != set(range(ideal.m_star.get(pid, 0) + 1)):
            return False
        for node in state.nodes.values():
            ref = node.ref
            if node.rl != ideal.rl.get(ref) or node.rr != ideal.rr.get(ref):
                return False
            if node.wrap_rl != ideal.wrap_rl.get(ref):
                return False
            if node.wrap_rr != ideal.wrap_rr.get(ref):
                return False
    return True


def phase5_cleanup(net: ReChordNetwork, ideal: IdealTopology) -> bool:
    """No unnecessary edges: the state equals the ideal topology."""
    return net.matches_ideal(ideal)


def phase_predicates() -> Dict[str, Callable[[ReChordNetwork, IdealTopology], bool]]:
    """Name -> predicate map, in proof order."""
    return {
        "connection": phase1_connection,
        "linearize": phase2_linearize,
        "ring": phase3_ring,
        "closest_real": phase4_closest_real,
        "cleanup": phase5_cleanup,
    }


@dataclass(frozen=True)
class PhaseReport:
    """Completion rounds per phase (None = never completed)."""

    completion: Dict[str, Optional[int]]
    rounds_executed: int

    def as_row(self) -> Dict[str, float]:
        """Flat metric row (missing phases reported as the run length)."""
        return {
            name: float(self.completion[name]) if self.completion[name] is not None else float(self.rounds_executed)
            for name in PHASES
        }


class PhaseTracker:
    """Samples all phase predicates at every round boundary."""

    def __init__(self, net: ReChordNetwork) -> None:
        self.net = net
        self.ideal = compute_ideal(net.space, net.peer_ids)
        self._series: Dict[str, List[bool]] = {name: [] for name in PHASES}
        self._predicates = phase_predicates()
        self.sample()  # round-0 state

    def sample(self) -> None:
        """Record each predicate for the current boundary."""
        for name, predicate in self._predicates.items():
            self._series[name].append(predicate(self.net, self.ideal))

    def run_until_stable(self, max_rounds: int = 10_000) -> PhaseReport:
        """Drive the network to stability, sampling every round."""
        prev = self.net.fingerprint()
        for _ in range(max_rounds):
            self.net.run_round()
            self.sample()
            cur = self.net.fingerprint()
            if cur == prev:
                return self.report()
            prev = cur
        raise RuntimeError(f"not stable within {max_rounds} rounds")

    def series(self, phase: str) -> List[bool]:
        """The sampled boolean series of one phase."""
        return list(self._series[phase])

    def report(self) -> PhaseReport:
        """Completion rounds: first index from which a phase holds on."""
        completion: Dict[str, Optional[int]] = {}
        for name in PHASES:
            series = self._series[name]
            done: Optional[int] = None
            for idx in range(len(series) - 1, -1, -1):
                if not series[idx]:
                    break
                done = idx
            completion[name] = done
        rounds = len(self._series[PHASES[0]]) - 1
        return PhaseReport(completion=completion, rounds_executed=rounds)
