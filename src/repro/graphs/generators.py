"""Initial-topology generators.

The paper's simulations (Section 5) start from "a random undirected weakly
connected graph" over the real nodes with random identifiers.  We reproduce
that generator (random spanning tree + extra G(n, p) edges, randomly
oriented) and add the degenerate/adversarial shapes used by the robustness
tests: lines, stars, bridged cliques, lollipops.

All generators operate on abstract node labels ``0..n-1``; the workload
layer (:mod:`repro.workloads.initial`) maps them onto peers with random
identifiers.
"""

from __future__ import annotations

import random
from typing import Hashable, List, Sequence, Tuple

from repro.graphs.digraph import EdgeKind, TypedDigraph

UndirectedEdge = Tuple[int, int]


def random_spanning_tree(n: int, rng: random.Random) -> List[UndirectedEdge]:
    """Uniform-ish random spanning tree via a random-permutation attachment.

    Each node (in shuffled order) attaches to a uniformly random earlier
    node, yielding a random recursive tree — connected by construction and
    cheap to sample.  (A uniform spanning tree via Wilson's algorithm is
    unnecessary here: the paper only requires "random weakly connected".)
    """
    if n < 1:
        raise ValueError("need at least one node")
    order = list(range(n))
    rng.shuffle(order)
    edges: List[UndirectedEdge] = []
    for idx in range(1, n):
        parent = order[rng.randrange(idx)]
        edges.append((parent, order[idx]))
    return edges


def gnp_connected_graph(
    n: int,
    extra_edge_prob: float,
    rng: random.Random,
) -> List[UndirectedEdge]:
    """Random connected undirected graph: spanning tree plus G(n, p) edges.

    ``extra_edge_prob`` is the independent inclusion probability of each
    non-tree pair.  The result has no duplicate edges or self-loops.
    """
    if not 0.0 <= extra_edge_prob <= 1.0:
        raise ValueError(f"probability must be in [0,1], got {extra_edge_prob}")
    tree = random_spanning_tree(n, rng)
    present = {frozenset(e) for e in tree}
    edges = list(tree)
    if extra_edge_prob > 0.0:
        for u in range(n):
            for v in range(u + 1, n):
                if frozenset((u, v)) in present:
                    continue
                if rng.random() < extra_edge_prob:
                    edges.append((u, v))
                    present.add(frozenset((u, v)))
    return edges


def line_graph(n: int) -> List[UndirectedEdge]:
    """Path 0-1-2-...-(n-1): the worst case for information spreading."""
    return [(i, i + 1) for i in range(n - 1)]


def star_graph(n: int) -> List[UndirectedEdge]:
    """Star with hub 0: maximal initial degree concentration."""
    return [(0, i) for i in range(1, n)]


def two_cliques_bridge(n: int) -> List[UndirectedEdge]:
    """Two cliques of ~n/2 nodes joined by a single bridge edge.

    Stress-tests stabilization across a sparse cut.
    """
    if n < 2:
        raise ValueError("need at least two nodes")
    half = n // 2
    edges: List[UndirectedEdge] = []
    for u in range(half):
        for v in range(u + 1, half):
            edges.append((u, v))
    for u in range(half, n):
        for v in range(u + 1, n):
            edges.append((u, v))
    edges.append((half - 1, half))
    return edges


def lollipop_graph(n: int) -> List[UndirectedEdge]:
    """Clique of ~n/2 nodes with a tail path: mixing-time stress shape."""
    if n < 2:
        raise ValueError("need at least two nodes")
    half = max(2, n // 2)
    edges: List[UndirectedEdge] = []
    for u in range(half):
        for v in range(u + 1, half):
            edges.append((u, v))
    for i in range(half - 1, n - 1):
        edges.append((i, i + 1))
    return edges


def random_orientation(
    edges: Sequence[UndirectedEdge],
    rng: random.Random,
) -> List[Tuple[int, int]]:
    """Orient each undirected edge in a uniformly random direction.

    Weak connectivity is preserved by definition (direction is ignored),
    which matches the paper's model: the initial digraph only needs to be
    *weakly* connected.
    """
    return [(u, v) if rng.random() < 0.5 else (v, u) for (u, v) in edges]


def build_typed_digraph(
    nodes: Sequence[Hashable],
    directed_edges: Sequence[Tuple[Hashable, Hashable]],
    kind: EdgeKind = EdgeKind.UNMARKED,
) -> TypedDigraph:
    """Assemble a :class:`TypedDigraph` from explicit nodes and edges."""
    g = TypedDigraph()
    for v in nodes:
        g.add_node(v)
    for u, v in directed_edges:
        g.add_edge(u, v, kind)
    return g
