"""Graph substrate: typed directed multigraphs, connectivity, generators.

The overlay is modeled as a directed graph whose edges carry a *kind*
(unmarked / ring / connection / real-pointer).  This package provides the
standalone graph machinery: a small typed digraph container, union-find,
weak-connectivity queries and the initial-topology generators used by the
paper's simulations (random weakly connected graphs) plus the adversarial
shapes used in our robustness tests.
"""

from repro.graphs.digraph import EdgeKind, TypedDigraph
from repro.graphs.unionfind import UnionFind
from repro.graphs.connectivity import (
    is_weakly_connected,
    weakly_connected_components,
)
from repro.graphs.generators import (
    gnp_connected_graph,
    line_graph,
    lollipop_graph,
    random_orientation,
    random_spanning_tree,
    star_graph,
    two_cliques_bridge,
)

__all__ = [
    "EdgeKind",
    "TypedDigraph",
    "UnionFind",
    "is_weakly_connected",
    "weakly_connected_components",
    "gnp_connected_graph",
    "line_graph",
    "lollipop_graph",
    "random_orientation",
    "random_spanning_tree",
    "star_graph",
    "two_cliques_bridge",
]
