"""A small directed multigraph with typed edges.

The Re-Chord overlay graph carries edges of several kinds (the paper's
``E_u``, ``E_r``, ``E_c`` plus this reproduction's real-pointer kind); the
same ordered pair may appear once per kind, making the graph a multigraph
exactly as Section 2.2 allows.  This container is used for topology
snapshots, metrics and the ideal-topology oracle; the live protocol keeps
its own per-peer adjacency for locality.
"""

from __future__ import annotations

import enum
from typing import Dict, Hashable, Iterable, Iterator, Set, Tuple


class EdgeKind(enum.Enum):
    """Edge markings of the Re-Chord overlay graph."""

    UNMARKED = "u"  #: the paper's E_u — linearization substrate
    RING = "r"      #: the paper's E_r — seam-closing ring edges
    CONNECTION = "c"  #: the paper's E_c — sibling-chain repair edges
    REAL_POINTER = "p"  #: rl/rr/wrap pointers (DESIGN.md [D4]/[D6])

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


Edge = Tuple[Hashable, Hashable, EdgeKind]


class TypedDigraph:
    """Directed multigraph where parallel edges differ by :class:`EdgeKind`."""

    def __init__(self) -> None:
        self._succ: Dict[Hashable, Dict[EdgeKind, Set[Hashable]]] = {}
        self._pred: Dict[Hashable, Dict[EdgeKind, Set[Hashable]]] = {}
        self._edge_count = 0

    # ------------------------------------------------------------------
    # nodes
    # ------------------------------------------------------------------
    def add_node(self, v: Hashable) -> None:
        """Add an isolated node (no-op if present)."""
        if v not in self._succ:
            self._succ[v] = {}
            self._pred[v] = {}

    def remove_node(self, v: Hashable) -> None:
        """Remove ``v`` and all incident edges."""
        if v not in self._succ:
            raise KeyError(v)
        for kind, targets in list(self._succ[v].items()):
            for w in list(targets):
                self.remove_edge(v, w, kind)
        for kind, sources in list(self._pred[v].items()):
            for w in list(sources):
                self.remove_edge(w, v, kind)
        del self._succ[v]
        del self._pred[v]

    def __contains__(self, v: Hashable) -> bool:
        return v in self._succ

    def __len__(self) -> int:
        return len(self._succ)

    def nodes(self) -> Iterator[Hashable]:
        """Iterate over nodes."""
        return iter(self._succ)

    # ------------------------------------------------------------------
    # edges
    # ------------------------------------------------------------------
    def add_edge(self, u: Hashable, v: Hashable, kind: EdgeKind = EdgeKind.UNMARKED) -> bool:
        """Add edge ``(u, v)`` of ``kind``; returns ``False`` if present."""
        self.add_node(u)
        self.add_node(v)
        bucket = self._succ[u].setdefault(kind, set())
        if v in bucket:
            return False
        bucket.add(v)
        self._pred[v].setdefault(kind, set()).add(u)
        self._edge_count += 1
        return True

    def remove_edge(self, u: Hashable, v: Hashable, kind: EdgeKind = EdgeKind.UNMARKED) -> None:
        """Remove edge ``(u, v)`` of ``kind``; raises ``KeyError`` if absent."""
        try:
            self._succ[u][kind].remove(v)
            self._pred[v][kind].remove(u)
        except KeyError as exc:
            raise KeyError((u, v, kind)) from exc
        self._edge_count -= 1

    def has_edge(self, u: Hashable, v: Hashable, kind: EdgeKind | None = None) -> bool:
        """Edge presence test; ``kind=None`` means "of any kind"."""
        buckets = self._succ.get(u)
        if buckets is None:
            return False
        if kind is not None:
            return v in buckets.get(kind, ())
        return any(v in targets for targets in buckets.values())

    def successors(self, v: Hashable, kind: EdgeKind | None = None) -> Set[Hashable]:
        """Out-neighbors of ``v`` (all kinds merged when ``kind=None``)."""
        buckets = self._succ.get(v)
        if buckets is None:
            raise KeyError(v)
        if kind is not None:
            return set(buckets.get(kind, ()))
        out: Set[Hashable] = set()
        for targets in buckets.values():
            out |= targets
        return out

    def predecessors(self, v: Hashable, kind: EdgeKind | None = None) -> Set[Hashable]:
        """In-neighbors of ``v`` (all kinds merged when ``kind=None``)."""
        buckets = self._pred.get(v)
        if buckets is None:
            raise KeyError(v)
        if kind is not None:
            return set(buckets.get(kind, ()))
        out: Set[Hashable] = set()
        for sources in buckets.values():
            out |= sources
        return out

    def edges(self, kind: EdgeKind | None = None) -> Iterator[Edge]:
        """Iterate ``(u, v, kind)`` triples, optionally filtered by kind."""
        for u, buckets in self._succ.items():
            for k, targets in buckets.items():
                if kind is not None and k is not kind:
                    continue
                for v in targets:
                    yield (u, v, k)

    def edge_count(self, kind: EdgeKind | None = None) -> int:
        """Number of edges, optionally of one kind."""
        if kind is None:
            return self._edge_count
        return sum(len(b.get(kind, ())) for b in self._succ.values())

    def out_degree(self, v: Hashable, kind: EdgeKind | None = None) -> int:
        """Out-degree of ``v`` (by kind or total)."""
        buckets = self._succ.get(v)
        if buckets is None:
            raise KeyError(v)
        if kind is not None:
            return len(buckets.get(kind, ()))
        return sum(len(t) for t in buckets.values())

    def in_degree(self, v: Hashable, kind: EdgeKind | None = None) -> int:
        """In-degree of ``v`` (by kind or total)."""
        buckets = self._pred.get(v)
        if buckets is None:
            raise KeyError(v)
        if kind is not None:
            return len(buckets.get(kind, ()))
        return sum(len(t) for t in buckets.values())

    # ------------------------------------------------------------------
    # views / conversions
    # ------------------------------------------------------------------
    def undirected_neighbors(self, v: Hashable) -> Set[Hashable]:
        """All nodes adjacent to ``v`` ignoring direction and kind."""
        return self.successors(v) | self.predecessors(v)

    def copy(self) -> "TypedDigraph":
        """Deep copy of the graph."""
        g = TypedDigraph()
        for v in self.nodes():
            g.add_node(v)
        for u, v, k in self.edges():
            g.add_edge(u, v, k)
        return g

    def subgraph_kinds(self, kinds: Iterable[EdgeKind]) -> "TypedDigraph":
        """Graph restricted to the given edge kinds (same node set)."""
        wanted = set(kinds)
        g = TypedDigraph()
        for v in self.nodes():
            g.add_node(v)
        for u, v, k in self.edges():
            if k in wanted:
                g.add_edge(u, v, k)
        return g

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, TypedDigraph):
            return NotImplemented
        return set(self.nodes()) == set(other.nodes()) and set(self.edges()) == set(other.edges())

    def __hash__(self) -> int:  # pragma: no cover - mutable container
        raise TypeError("TypedDigraph is unhashable")
