"""Weak-connectivity queries over typed digraphs.

Self-stabilization of Re-Chord is guaranteed from any *weakly connected*
initial state (Theorem 1.1): the directed overlay, viewed as an undirected
graph over all edge kinds, must have a single component.  These helpers
implement that predicate and the component decomposition used by the
experiments (e.g. to verify that crashes did not partition the overlay).
"""

from __future__ import annotations

from collections import deque
from typing import Hashable, List, Set

from repro.graphs.digraph import TypedDigraph


def weakly_connected_components(graph: TypedDigraph) -> List[Set[Hashable]]:
    """All weakly connected components (ignoring direction and kind).

    Returned in decreasing size order (ties broken arbitrarily but
    deterministically by discovery order).
    """
    seen: Set[Hashable] = set()
    components: List[Set[Hashable]] = []
    for start in graph.nodes():
        if start in seen:
            continue
        comp: Set[Hashable] = {start}
        queue = deque([start])
        seen.add(start)
        while queue:
            v = queue.popleft()
            for w in graph.undirected_neighbors(v):
                if w not in seen:
                    seen.add(w)
                    comp.add(w)
                    queue.append(w)
        components.append(comp)
    components.sort(key=len, reverse=True)
    return components


def is_weakly_connected(graph: TypedDigraph) -> bool:
    """Whether the graph forms a single weakly connected component.

    The empty graph is considered connected (vacuously), matching the
    convention that an empty overlay is a legal state.
    """
    if len(graph) == 0:
        return True
    return len(weakly_connected_components(graph)) == 1
