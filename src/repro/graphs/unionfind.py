"""Disjoint-set union (union-find) with path compression and union by size."""

from __future__ import annotations

from typing import Dict, Hashable, Iterable, Iterator


class UnionFind:
    """Classic union-find over arbitrary hashable elements.

    Elements are added lazily on first use.  ``find`` uses iterative path
    halving (no recursion limits); ``union`` uses union-by-size.  Amortized
    near-constant time per operation.
    """

    def __init__(self, elements: Iterable[Hashable] = ()) -> None:
        self._parent: Dict[Hashable, Hashable] = {}
        self._size: Dict[Hashable, int] = {}
        self._components = 0
        for e in elements:
            self.add(e)

    def add(self, x: Hashable) -> None:
        """Register ``x`` as a singleton component if unseen."""
        if x not in self._parent:
            self._parent[x] = x
            self._size[x] = 1
            self._components += 1

    def __contains__(self, x: Hashable) -> bool:
        return x in self._parent

    def __len__(self) -> int:
        return len(self._parent)

    def __iter__(self) -> Iterator[Hashable]:
        return iter(self._parent)

    @property
    def component_count(self) -> int:
        """Number of disjoint components among registered elements."""
        return self._components

    def find(self, x: Hashable) -> Hashable:
        """Representative of ``x``'s component (adds ``x`` if unseen)."""
        self.add(x)
        parent = self._parent
        root = x
        while parent[root] != root:
            parent[root] = parent[parent[root]]  # path halving
            root = parent[root]
        return root

    def union(self, a: Hashable, b: Hashable) -> bool:
        """Merge the components of ``a`` and ``b``.

        Returns ``True`` if a merge happened, ``False`` if they already
        shared a component.
        """
        ra, rb = self.find(a), self.find(b)
        if ra == rb:
            return False
        if self._size[ra] < self._size[rb]:
            ra, rb = rb, ra
        self._parent[rb] = ra
        self._size[ra] += self._size[rb]
        self._components -= 1
        return True

    def connected(self, a: Hashable, b: Hashable) -> bool:
        """Whether ``a`` and ``b`` share a component."""
        return self.find(a) == self.find(b)

    def component_sizes(self) -> Dict[Hashable, int]:
        """Map of component representative -> component size."""
        return {r: self._size[r] for r in self._parent if self.find(r) == r}
