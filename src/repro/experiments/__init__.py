"""Experiment harness: one module per paper figure / claim.

==============  ====================================================
module          reproduces
==============  ====================================================
``fig5``        Fig. 5 — edges and nodes vs. number of real nodes
``fig6``        Fig. 6 — rounds to stable / almost-stable state
``fig7``        Fig. 7 — total edges vs. total nodes (+ fit)
``scaling``     Theorem 1.1 — stabilization rounds growth
``join_leave``  Theorems 4.1/4.2 — join / leave / crash recovery
``lookup``      Fact 2.1 + Section 1.1 — Chord subgraph, hop counts
``baseline``    Section 1 — classic Chord is not self-stabilizing
``ablation``    rule ablations (ring / connection / overlap / wrap)
``messages``    message complexity per round (E12)
``traffic``     in-band lookup SLOs concurrent with churn
``scenarios``   the named adversity-campaign sweep (docs/SCENARIOS.md)
==============  ====================================================

Every module exposes ``run_*`` (pure, seeded, returns dataclasses) and
``format_*`` (ASCII rendering of the same rows the paper plots).  The CLI
(`python -m repro`) and the benchmark suite are thin wrappers over these.
"""

from repro.experiments.runner import PAPER_SIZES, mean_std, sweep_sizes

__all__ = ["PAPER_SIZES", "mean_std", "sweep_sizes"]
