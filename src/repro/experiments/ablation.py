"""Rule ablations (E10) — what each rule buys.

Each variant disables one rule and stabilizes random networks under a
round budget.  Reported per variant: whether a fixed point was reached,
whether it equals the ideal topology, the Chord-subgraph coverage of the
final state, and the rounds spent.  Expected qualitative outcomes:

* ``no_ring``       — converges to the sorted *list*: fixed point but no
  ring edges and no wrap pointers, so Chord coverage drops;
* ``no_wrap``       — the paper's literal rule set: stabilizes, but the
  wrapped fingers are missing (coverage < 1) — the motivation for [D6];
* ``no_overlap``    — still correct, possibly slower (rule 2 is a
  shortcut, not a correctness requirement on these workloads);
* ``no_connection`` — risks losing sibling connectivity from adversarial
  states; on random starts it typically still converges.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Sequence, Tuple

from repro.core.ideal import chord_edges
from repro.core.rules import RuleConfig
from repro.experiments.runner import DEFAULT_ROOT_SEED, MeanStd, mean_std
from repro.netsim.rng import SeedSequence
from repro.workloads.initial import build_random_network

#: variant name -> RuleConfig
VARIANTS: Dict[str, RuleConfig] = {
    "full": RuleConfig(),
    "no_ring": RuleConfig().ablated(ring=False),
    "no_wrap": RuleConfig().ablated(wrap_pointers=False),
    "no_overlap": RuleConfig().ablated(overlap=False),
    "no_connection": RuleConfig().ablated(connection=False),
}


@dataclass(frozen=True)
class AblationRow:
    """Aggregated outcome of one variant."""

    variant: str
    stabilized_fraction: float
    ideal_fraction: float
    chord_coverage: MeanStd
    rounds: MeanStd


def measure_variant(
    variant: str,
    config: RuleConfig,
    n: int,
    seeds: int,
    root_seed: int,
    budget_rounds: int,
) -> AblationRow:
    """Run one variant over ``seeds`` random networks of size ``n``."""
    root = SeedSequence(root_seed)
    stabilized = []
    ideal = []
    coverage = []
    rounds = []
    for rep in range(seeds):
        seed = root.child("ablation", variant, n=n, rep=rep).seed()
        net = build_random_network(n=n, seed=seed, config=config)
        try:
            report = net.run_until_stable(max_rounds=budget_rounds)
            stabilized.append(1.0)
            rounds.append(report.rounds_to_stable)
        except RuntimeError:
            stabilized.append(0.0)
            rounds.append(budget_rounds)
        ideal.append(1.0 if net.matches_ideal() else 0.0)
        want = chord_edges(net.space, net.peer_ids)
        have = net.rechord_projection()
        coverage.append(sum(1 for e in want if e in have) / len(want) if want else 1.0)
    return AblationRow(
        variant=variant,
        stabilized_fraction=sum(stabilized) / len(stabilized),
        ideal_fraction=sum(ideal) / len(ideal),
        chord_coverage=mean_std(coverage),
        rounds=mean_std(rounds),
    )


def run_ablation(
    n: int = 32,
    seeds: int = 5,
    root_seed: int = DEFAULT_ROOT_SEED,
    budget_rounds: int = 2000,
    variants: Sequence[str] = tuple(VARIANTS),
) -> Tuple[AblationRow, ...]:
    """All ablation variants at one size."""
    return tuple(
        measure_variant(v, VARIANTS[v], n, seeds, root_seed, budget_rounds)
        for v in variants
    )


def format_ablation(rows: Sequence[AblationRow]) -> str:
    """Ablation table."""
    lines = [
        "E10 — rule ablations",
        "====================",
        f"{'variant':<14} {'stabilized':>10} {'ideal':>6} {'chord-cov':>10} {'rounds':>12}",
        "-" * 56,
    ]
    for r in rows:
        rounds = f"{r.rounds.mean:.1f}±{r.rounds.std:.1f}"
        lines.append(
            f"{r.variant:<14} {r.stabilized_fraction:>10.2f} {r.ideal_fraction:>6.2f} "
            f"{r.chord_coverage.mean:>10.3f} {rounds:>12}"
        )
    return "\n".join(lines)
