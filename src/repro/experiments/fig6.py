"""Figure 6 — rounds to the stable and "almost stable" states.

The paper reports 10-25 rounds for up to ~30 nodes, growing sublinearly
(or at most linearly) up to 105 nodes — far below the O(n log n) upper
bound of Theorem 1.1 — with the almost-stable state (all desired edges
present, extras allowed) reached notably earlier.
"""

from __future__ import annotations

from typing import Dict, Sequence

from repro.experiments.runner import (
    DEFAULT_ROOT_SEED,
    MeanStd,
    PAPER_SIZES,
    format_sweep,
    sweep_sizes,
)
from repro.workloads.initial import build_random_network


def measure_one(n: int, seed: int, max_rounds: int = 5000) -> Dict[str, float]:
    """Stabilize one random network tracking both Fig. 6 metrics."""
    net = build_random_network(n=n, seed=seed)
    report = net.run_until_stable(max_rounds=max_rounds, track_almost=True)
    assert report.rounds_to_almost is not None
    return {
        "rounds_stable": report.rounds_to_stable,
        "rounds_almost": report.rounds_to_almost,
    }


def run_fig6(
    sizes: Sequence[int] = PAPER_SIZES,
    seeds: int = 10,
    root_seed: int = DEFAULT_ROOT_SEED,
) -> Dict[int, Dict[str, MeanStd]]:
    """The Fig. 6 sweep (means per size)."""
    return sweep_sizes(measure_one, sizes, seeds, root_seed, label="fig6")


def format_fig6(result: Dict[int, Dict[str, MeanStd]]) -> str:
    """Fig. 6 as an ASCII table."""
    return format_sweep(
        result,
        columns=("rounds_stable", "rounds_almost"),
        title='Fig. 6 — rounds to stable and "almost stable" state (means)',
    )
