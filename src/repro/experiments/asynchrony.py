"""Fair partial activation — robustness beyond the synchronous model.

The paper assumes fully synchronous rounds.  Practical systems are not
synchronous; the standard bridge is *fair scheduling*: in each round an
adversary picks which peers execute, subject to every peer being
activated infinitely often.  Self-stabilization should survive —
convergence just stretches by roughly ``1/p`` — because a sleeping
peer's state and inbox are simply frozen.

The activation adversary is a
:class:`repro.netsim.timemodel.SeededPartialActivation` daemon
installed on the network's time model: the scheduler consults it every
round, so the experiment contains no activation plumbing of its own
(and the same daemon drives both simulation kernels identically; the
``unfair`` and ``round_robin`` daemons are available for harsher or
perfectly fair adversaries).

Convergence is detected by reaching the ideal topology (the
configuration-fingerprint criterion does not apply: under random
activation the in-flight flows never repeat deterministically).
"""

from __future__ import annotations

from typing import Dict, Sequence

from repro.core.ideal import compute_ideal
from repro.experiments.runner import (
    DEFAULT_ROOT_SEED,
    MeanStd,
    format_sweep,
    sweep_sizes,
)
from repro.workloads.initial import build_random_network

#: activation probabilities exercised by the sweep
ACTIVATIONS = (1.0, 0.7, 0.4)

DEFAULT_SIZES = (8, 16, 32)


def rounds_to_ideal_under_activation(
    n: int,
    seed: int,
    activation: float,
    max_rounds: int = 50_000,
) -> int:
    """Rounds until the ideal topology is reached with activation ``p``.

    The daemon's coin flips are seeded, so every cell is reproducible.
    """
    if not 0.0 < activation <= 1.0:
        raise ValueError(f"activation must be in (0, 1], got {activation}")
    net = build_random_network(n=n, seed=seed)
    ideal = compute_ideal(net.space, net.peer_ids)
    if activation < 1.0:
        net.set_daemon(
            {"kind": "partial", "p": activation, "seed": (seed * 1_000_003) ^ 0xA5}
        )
    for executed in range(1, max_rounds + 1):
        net.run_round()
        if net.matches_ideal(ideal):
            return executed
    raise RuntimeError(f"ideal not reached within {max_rounds} rounds (p={activation})")


def measure_one(n: int, seed: int) -> Dict[str, float]:
    """All activation levels for one (size, seed) cell."""
    out: Dict[str, float] = {}
    for p in ACTIVATIONS:
        rounds = rounds_to_ideal_under_activation(n, seed, p)
        out[f"rounds_p{int(p * 100)}"] = rounds
    # stretch factor relative to the synchronous run
    base = out["rounds_p100"]
    for p in ACTIVATIONS:
        if p < 1.0:
            out[f"stretch_p{int(p * 100)}"] = out[f"rounds_p{int(p * 100)}"] / max(1.0, base)
    return out


def run_asynchrony(
    sizes: Sequence[int] = DEFAULT_SIZES,
    seeds: int = 3,
    root_seed: int = DEFAULT_ROOT_SEED,
) -> Dict[int, Dict[str, MeanStd]]:
    """The fair-activation sweep."""
    return sweep_sizes(measure_one, sizes, seeds, root_seed, label="asynchrony")


def format_asynchrony(result: Dict[int, Dict[str, MeanStd]]) -> str:
    """Activation-robustness table."""
    return format_sweep(
        result,
        columns=(
            "rounds_p100",
            "rounds_p70",
            "rounds_p40",
            "stretch_p70",
            "stretch_p40",
        ),
        title="Fair partial activation — rounds to the ideal topology",
    )
