"""Shared sweep/aggregation machinery for the experiments.

The paper runs every scenario on sizes ``{5, 15, 25, 35, 45, 65, 85,
105}`` with 30 random graphs per size and reports means.  ``sweep_sizes``
reproduces that pattern: a per-(size, seed) measurement function is
evaluated over the grid with independent derived seeds, and the rows are
aggregated per size.
"""

from __future__ import annotations

import statistics
from dataclasses import dataclass
from typing import Callable, Dict, List, Sequence, Tuple

from repro.netsim.rng import SeedSequence

#: the sizes simulated in the paper's Section 5
PAPER_SIZES: Tuple[int, ...] = (5, 15, 25, 35, 45, 65, 85, 105)

#: the paper's repetitions per size
PAPER_SEEDS = 30

#: root seed for all experiments (the venue year; any constant works)
DEFAULT_ROOT_SEED = 2011


@dataclass(frozen=True)
class MeanStd:
    """Mean and sample standard deviation of a metric."""

    mean: float
    std: float
    count: int

    def __format__(self, spec: str) -> str:
        spec = spec or ".1f"
        return f"{self.mean:{spec}}±{self.std:{spec}}"


def mean_std(values: Sequence[float]) -> MeanStd:
    """Aggregate a sample (std is 0 for singletons)."""
    vals = list(values)
    if not vals:
        raise ValueError("no values to aggregate")
    m = statistics.fmean(vals)
    s = statistics.stdev(vals) if len(vals) > 1 else 0.0
    return MeanStd(m, s, len(vals))


MeasureFn = Callable[[int, int], Dict[str, float]]


def sweep_sizes(
    measure: MeasureFn,
    sizes: Sequence[int],
    seeds: int,
    root_seed: int = DEFAULT_ROOT_SEED,
    label: str = "sweep",
) -> Dict[int, Dict[str, MeanStd]]:
    """Evaluate ``measure(n, seed)`` over the grid and aggregate per size.

    ``measure`` returns a flat dict of metric name -> value; the result
    maps ``n`` -> metric name -> :class:`MeanStd`.  Seeds are derived
    per (label, n, repetition) so any single cell can be reproduced in
    isolation.
    """
    if seeds < 1:
        raise ValueError("need at least one seed")
    root = SeedSequence(root_seed)
    out: Dict[int, Dict[str, MeanStd]] = {}
    for n in sizes:
        samples: Dict[str, List[float]] = {}
        for rep in range(seeds):
            seed = root.child(label, n=n, rep=rep).seed()
            row = measure(n, seed)
            for key, value in row.items():
                samples.setdefault(key, []).append(float(value))
        out[n] = {key: mean_std(vals) for key, vals in samples.items()}
    return out


def format_sweep(
    result: Dict[int, Dict[str, MeanStd]],
    columns: Sequence[str],
    title: str,
) -> str:
    """Render a sweep result as an ASCII table (one row per size)."""
    headers = ["n"] + list(columns)
    rows: List[List[str]] = []
    for n in sorted(result):
        row = [str(n)]
        for col in columns:
            cell = result[n].get(col)
            row.append("-" if cell is None else f"{cell:.1f}")
        rows.append(row)
    widths = [max(len(h), *(len(r[i]) for r in rows)) for i, h in enumerate(headers)]
    lines = [title, "=" * len(title)]
    lines.append("  ".join(h.rjust(w) for h, w in zip(headers, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in rows:
        lines.append("  ".join(c.rjust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)
