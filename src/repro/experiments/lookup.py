"""Fact 2.1 + Section 1.1 — Chord emulation on the stable overlay.

Two claims are verified per stabilized network:

* **Chord subgraph** (Fact 2.1): every classical Chord edge (successor +
  fingers with wrap-around) appears in the projected Re-Chord graph;
* **O(log n) routing**: greedy lookups over the projection take
  logarithmically many hops w.h.p. — reported as mean/max over random
  (start, key) samples, with a ``hops / log2 n`` column that must stay
  bounded.
"""

from __future__ import annotations

import math
import random
from typing import Dict, Sequence

from repro.core.ideal import chord_edges
from repro.dht.lookup import ReChordRouter
from repro.experiments.runner import (
    DEFAULT_ROOT_SEED,
    MeanStd,
    format_sweep,
    sweep_sizes,
)
from repro.workloads.initial import build_random_network

DEFAULT_SIZES = (8, 16, 32, 64, 128)


def measure_one(n: int, seed: int, samples: int = 50, max_rounds: int = 20_000) -> Dict[str, float]:
    """Stabilize, verify the Chord subgraph, sample greedy lookups."""
    rng = random.Random(seed)
    net = build_random_network(n=n, seed=seed)
    net.run_until_stable(max_rounds=max_rounds)

    want = chord_edges(net.space, net.peer_ids)
    have = net.rechord_projection()
    covered = sum(1 for e in want if e in have)
    coverage = covered / len(want) if want else 1.0

    router = ReChordRouter(net)
    ids = net.peer_ids
    hops = []
    for _ in range(samples):
        start = rng.choice(ids)
        key = rng.randrange(net.space.size)
        hops.append(router.route_id(start, key).hops)
    log2n = math.log2(max(2, n))
    return {
        "chord_coverage": coverage,
        "mean_hops": sum(hops) / len(hops),
        "max_hops": max(hops),
        "hops_over_log2": (sum(hops) / len(hops)) / log2n,
    }


def run_lookup(
    sizes: Sequence[int] = DEFAULT_SIZES,
    seeds: int = 5,
    root_seed: int = DEFAULT_ROOT_SEED,
) -> Dict[int, Dict[str, MeanStd]]:
    """The Fact 2.1 / lookup sweep."""
    return sweep_sizes(measure_one, sizes, seeds, root_seed, label="lookup")


def format_lookup(result: Dict[int, Dict[str, MeanStd]]) -> str:
    """Chord-emulation table."""
    return format_sweep(
        result,
        columns=("chord_coverage", "mean_hops", "max_hops", "hops_over_log2"),
        title="Fact 2.1 — Chord subgraph coverage and greedy lookup hops",
    )
