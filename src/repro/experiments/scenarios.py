"""The scenario sweep: every named adversity campaign, one table.

Re-Chord's headline claim — self-stabilization from arbitrary states,
*while being used* — is only as strong as the adversities thrown at it.
This experiment runs the whole named library
(:mod:`repro.scenarios.library`) at one size and reports, per campaign:
how much damage the adversity did (peak local-checker violations), how
long repair took after the window closed (recovery rounds), whether the
exact ideal topology returned, and what the traffic plane observed
while it happened (success rate, violation count, latency).

Run as a module to regenerate the checked-in results::

    PYTHONPATH=src python -m repro.experiments.scenarios \
        --n 32 --out benchmarks/results
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import List, Optional, Sequence

from repro.experiments.runner import DEFAULT_ROOT_SEED
from repro.netsim.rng import SeedSequence
from repro.scenarios import (
    ScenarioReport,
    make_scenario,
    run_scenario,
    scenario_description,
    scenario_names,
)

DEFAULT_N = 32


@dataclass(frozen=True)
class ScenarioRow:
    """One campaign's aggregated outcome."""

    name: str
    n: int
    peers_final: int
    events: int
    peak_violations: int
    recovery_rounds: int
    stable: bool
    ideal: bool
    ops: int
    success_rate: float
    slo_violations: int
    latency_p95: Optional[float]

    @staticmethod
    def from_report(report: ScenarioReport) -> "ScenarioRow":
        """Flatten a :class:`ScenarioReport` into a table row."""
        slo = report.slo or {}
        return ScenarioRow(
            name=report.name,
            n=report.peers_start,
            peers_final=report.peers_final,
            events=sum(report.event_census.values()),
            peak_violations=max(s.check_violations for s in report.samples),
            recovery_rounds=report.recovery_rounds,
            stable=report.stable,
            ideal=report.ideal,
            ops=slo.get("completed", 0),
            success_rate=slo.get("success_rate", 1.0),
            slo_violations=slo.get("violations", 0),
            latency_p95=slo.get("latency_p95"),
        )


def run_scenarios(
    names: Optional[Sequence[str]] = None,
    n: int = DEFAULT_N,
    root_seed: int = DEFAULT_ROOT_SEED,
    overrides: Optional[dict] = None,
) -> List[ScenarioReport]:
    """Execute the named campaigns (default: the whole library).

    ``overrides`` are extra :meth:`ScenarioSpec.with_overrides` fields
    applied to every campaign — the CLI uses this to run the whole
    sweep under a time model (``--all --latency-model ...``).
    """
    reports: List[ScenarioReport] = []
    for name in names if names is not None else scenario_names():
        seed = SeedSequence(root_seed).child("scenario-exp", name, n=n).seed()
        spec = make_scenario(name, n=n, seed=seed, **(overrides or {}))
        reports.append(run_scenario(spec))
    return reports


def format_scenarios(reports: Sequence[ScenarioReport]) -> str:
    """The sweep as an aligned ASCII table plus per-campaign notes."""
    rows = [ScenarioRow.from_report(report) for report in reports]
    lines: List[str] = [
        "Scenario campaigns — recovery and SLO under declared adversity",
        "=" * 78,
        f"{'scenario':<18} {'peers':>9} {'events':>6} {'peak':>5} "
        f"{'recovery':>8} {'ideal':>5} {'ops':>5} {'success':>8} {'viol':>4} {'p95':>5}",
    ]
    for row in rows:
        p95 = f"{row.latency_p95:.0f}" if row.latency_p95 is not None else "-"
        lines.append(
            f"{row.name:<18} {row.n:>4}->{row.peers_final:<4} {row.events:>6} "
            f"{row.peak_violations:>5} {row.recovery_rounds:>8} "
            f"{str(row.ideal):>5} {row.ops:>5} {row.success_rate:>7.1%} "
            f"{row.slo_violations:>4} {p95:>5}"
        )
    lines.append("")
    lines.append("peak = max local-checker violations observed during the campaign")
    lines.append("viol = monotonic-searchability violations (Scheideler et al.)")
    for row in rows:
        lines.append(f"  {row.name}: {scenario_description(row.name)}")
    return "\n".join(lines)


def reports_to_json(reports: Sequence[ScenarioReport]) -> dict:
    """JSON-serializable form of a sweep (checked-in results)."""
    return {
        "experiment": "scenarios",
        "runs": [report.to_dict() for report in reports],
    }


def main(argv: Optional[Sequence[str]] = None) -> int:
    """Regenerate the checked-in results under ``benchmarks/results``."""
    import argparse
    from pathlib import Path

    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--names", nargs="*", default=None)
    parser.add_argument("--n", type=int, default=DEFAULT_N)
    parser.add_argument("--root-seed", type=int, default=DEFAULT_ROOT_SEED)
    parser.add_argument("--out", type=Path, default=None, help="results directory")
    args = parser.parse_args(argv)
    reports = run_scenarios(args.names, n=args.n, root_seed=args.root_seed)
    text = format_scenarios(reports)
    print(text)
    if args.out is not None:
        args.out.mkdir(parents=True, exist_ok=True)
        (args.out / "scenarios.txt").write_text(text + "\n")
        (args.out / "scenarios.json").write_text(
            json.dumps(reports_to_json(reports), indent=2) + "\n"
        )
        print(f"\n[results written to {args.out}]")
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
