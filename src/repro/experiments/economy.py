"""Economical-broadcast extension (paper §6: "more efficient rules").

Compares the paper-faithful rule 3 (re-announce closest reals every
round) against the economical variant (announce only changes and new
neighbors) on three axes: convergence rounds, total messages to
stabilization, and steady-state messages per round.  Self-stabilization
is preserved (asserted per run); the savings come purely from removing
redundant announcements.
"""

from __future__ import annotations

from typing import Dict, Sequence

from repro.core.rules import RuleConfig
from repro.experiments.runner import (
    DEFAULT_ROOT_SEED,
    MeanStd,
    format_sweep,
    sweep_sizes,
)
from repro.workloads.initial import build_random_network

DEFAULT_SIZES = (8, 16, 32, 64)


def _run(config: RuleConfig, n: int, seed: int, max_rounds: int) -> Dict[str, float]:
    net = build_random_network(n=n, seed=seed, config=config, record_trace=True)
    report = net.run_until_stable(max_rounds=max_rounds)
    if not net.matches_ideal():
        raise AssertionError("variant failed to reach the ideal topology")
    assert net.trace is not None
    total = net.trace.total_messages()
    net.run(2)
    steady = net.trace.messages_series()[-1]
    return {
        "rounds": report.rounds_to_stable,
        "total_msgs": total,
        "steady_msgs": steady,
    }


def measure_one(n: int, seed: int, max_rounds: int = 20_000) -> Dict[str, float]:
    """Paired comparison for one (size, seed) cell."""
    faithful = _run(RuleConfig(), n, seed, max_rounds)
    eco = _run(RuleConfig(economical_broadcast=True), n, seed, max_rounds)
    return {
        "rounds_full": faithful["rounds"],
        "rounds_eco": eco["rounds"],
        "steady_full": faithful["steady_msgs"],
        "steady_eco": eco["steady_msgs"],
        "steady_saving": 1.0 - eco["steady_msgs"] / max(1.0, faithful["steady_msgs"]),
        "total_saving": 1.0 - eco["total_msgs"] / max(1.0, faithful["total_msgs"]),
    }


def run_economy(
    sizes: Sequence[int] = DEFAULT_SIZES,
    seeds: int = 5,
    root_seed: int = DEFAULT_ROOT_SEED,
) -> Dict[int, Dict[str, MeanStd]]:
    """The broadcast-economy sweep."""
    return sweep_sizes(measure_one, sizes, seeds, root_seed, label="economy")


def format_economy(result: Dict[int, Dict[str, MeanStd]]) -> str:
    """Economy table."""
    return format_sweep(
        result,
        columns=(
            "rounds_full",
            "rounds_eco",
            "steady_full",
            "steady_eco",
            "steady_saving",
        ),
        title="§6 extension — economical rule-3 broadcast vs the paper's rules",
    )
