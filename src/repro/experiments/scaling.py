"""Theorem 1.1 — stabilization-time scaling.

The theorem bounds self-stabilization by O(n log n) rounds w.h.p.; the
paper's simulations observe sublinear-to-linear growth and conclude the
bound is probably not tight.  This experiment measures rounds-to-stable
over a geometric size ladder and reports the growth against three
reference shapes (log n, n, n log n) so the conclusion can be checked at
a glance: the normalized ``rounds / n log n`` column must *decrease* if
the paper's observation holds.
"""

from __future__ import annotations

import math
from typing import Dict, Sequence

from repro.experiments.runner import (
    DEFAULT_ROOT_SEED,
    MeanStd,
    format_sweep,
    sweep_sizes,
)
from repro.workloads.initial import build_random_network

DEFAULT_SIZES = (8, 16, 32, 64, 128)


def measure_one(n: int, seed: int, max_rounds: int = 20_000) -> Dict[str, float]:
    """Rounds to stable for one random start, plus normalized forms."""
    net = build_random_network(n=n, seed=seed)
    report = net.run_until_stable(max_rounds=max_rounds)
    rounds = report.rounds_to_stable
    return {
        "rounds": rounds,
        "rounds_over_logn": rounds / math.log2(max(2, n)),
        "rounds_over_n": rounds / n,
        "rounds_over_nlogn": rounds / (n * math.log2(max(2, n))),
    }


def run_scaling(
    sizes: Sequence[int] = DEFAULT_SIZES,
    seeds: int = 5,
    root_seed: int = DEFAULT_ROOT_SEED,
) -> Dict[int, Dict[str, MeanStd]]:
    """The Theorem 1.1 scaling sweep."""
    return sweep_sizes(measure_one, sizes, seeds, root_seed, label="scaling")


def format_scaling(result: Dict[int, Dict[str, MeanStd]]) -> str:
    """Scaling table with normalized columns."""
    return format_sweep(
        result,
        columns=("rounds", "rounds_over_logn", "rounds_over_n", "rounds_over_nlogn"),
        title="Theorem 1.1 — stabilization rounds vs. n (O(n log n) bound)",
    )
