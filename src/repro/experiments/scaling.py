"""Theorem 1.1 — stabilization-time scaling, plus engine-scaling paths.

The theorem bounds self-stabilization by O(n log n) rounds w.h.p.; the
paper's simulations observe sublinear-to-linear growth and conclude the
bound is probably not tight.  ``run_scaling`` measures rounds-to-stable
over a geometric size ladder and reports the growth against three
reference shapes (log n, n, n log n) so the conclusion can be checked at
a glance: the normalized ``rounds / n log n`` column must *decrease* if
the paper's observation holds.

Large-N engine path
-------------------

Post-churn recovery is *local* (Theorems 4.1/4.2: a join touches a
O(log² n)-round neighborhood), which is exactly what the incremental
activity-tracked kernel exploits.  To measure that at sizes where
stabilizing from a random start would take hours, ``build_ideal_network``
constructs the unique stable topology directly from
:func:`repro.core.ideal.compute_ideal` and lets the constant message
flow settle in a handful of rounds.  ``run_engine_comparison`` then
drives the same single-join re-stabilization through all three kernels
(legacy full-scan vs. incremental vs. columnar) and reports rounds/sec
side by side —
the regression benchmark behind ``benchmarks/bench_engine_throughput.py``
and the CI smoke gate.
"""

from __future__ import annotations

import math
import random
import time
from dataclasses import dataclass
from typing import Dict, Optional, Sequence, Tuple

from repro.core.ideal import compute_ideal
from repro.core.network import ReChordNetwork, StabilizationReport
from repro.core.rules import RuleConfig
from repro.experiments.runner import (
    DEFAULT_ROOT_SEED,
    MeanStd,
    format_sweep,
    sweep_sizes,
)
from repro.idspace.ring import IdSpace
from repro.netsim.gcpause import gc_batched
from repro.netsim.rng import SeedSequence
from repro.workloads.initial import build_random_network, random_peer_ids

DEFAULT_SIZES = (8, 16, 32, 64, 128)

#: size ladder of the engine-throughput comparison (quick / full)
ENGINE_SIZES_QUICK = (64, 256)
ENGINE_SIZES_FULL = (64, 256, 1024, 4096)


def measure_one(n: int, seed: int, max_rounds: int = 20_000) -> Dict[str, float]:
    """Rounds to stable for one random start, plus normalized forms."""
    net = build_random_network(n=n, seed=seed)
    report = net.run_until_stable(max_rounds=max_rounds)
    rounds = report.rounds_to_stable
    return {
        "rounds": rounds,
        "rounds_over_logn": rounds / math.log2(max(2, n)),
        "rounds_over_n": rounds / n,
        "rounds_over_nlogn": rounds / (n * math.log2(max(2, n))),
    }


def run_scaling(
    sizes: Sequence[int] = DEFAULT_SIZES,
    seeds: int = 5,
    root_seed: int = DEFAULT_ROOT_SEED,
) -> Dict[int, Dict[str, MeanStd]]:
    """The Theorem 1.1 scaling sweep."""
    return sweep_sizes(measure_one, sizes, seeds, root_seed, label="scaling")


def format_scaling(result: Dict[int, Dict[str, MeanStd]]) -> str:
    """Scaling table with normalized columns."""
    return format_sweep(
        result,
        columns=("rounds", "rounds_over_logn", "rounds_over_n", "rounds_over_nlogn"),
        title="Theorem 1.1 — stabilization rounds vs. n (O(n log n) bound)",
    )


# ----------------------------------------------------------------------
# large-N stable-network construction
# ----------------------------------------------------------------------
def build_ideal_network(
    n: int,
    seed: int,
    space: Optional[IdSpace] = None,
    config: Optional[RuleConfig] = None,
    incremental: bool = True,
    settle_rounds: Optional[int] = None,
    engine: Optional[str] = None,
    rule_backend: str = "scalar",
) -> ReChordNetwork:
    """A network *constructed in* its unique stable topology.

    Peer states are written directly from :func:`compute_ideal` (same
    state the protocol would converge to); the stable configuration also
    contains a constant in-flight message flow, so a short
    ``run_until_stable`` lets that flow establish itself — a handful of
    rounds instead of a full O(n)-peer stabilization.  This is the only
    practical way to obtain stable networks at n ≥ 1024 for the
    post-churn engine benchmarks.

    ``settle_rounds`` defaults to ``max(64, 12·log2 n)``: the rule-3
    candidate waves started by the freshly written states take slightly
    longer to die out at larger n (measured: ~70 rounds at n=4096,
    seed-dependent), and an unused bound costs nothing.  The
    settle loop runs under :func:`gc_batched` — every peer executes
    every round until the flow settles, and the allocation storm would
    otherwise hand the collector about half the build wall-clock.
    """
    space = space if space is not None else IdSpace()
    if settle_rounds is None:
        settle_rounds = max(64, 12 * int(math.log2(max(2, n))))
    rng = random.Random(seed)
    ids = random_peer_ids(n, rng, space)
    net = ReChordNetwork(
        space, config, incremental=incremental, engine=engine, rule_backend=rule_backend
    )
    ideal = compute_ideal(space, ids)
    for pid in ids:
        peer = net.add_peer(pid)
        state = peer.state
        for level in range(0, ideal.m_star[pid] + 1):
            node = state.ensure_level(level)
            ref = node.ref
            node.nu = set(ideal.nu[ref])
            node.nr = set(ideal.nr[ref])
            node.rl = ideal.rl[ref]
            node.rr = ideal.rr[ref]
            node.wrap_rl = ideal.wrap_rl[ref]
            node.wrap_rr = ideal.wrap_rr[ref]
    # raises RuntimeError if the constructed state is not within a few
    # rounds of the true fixpoint (i.e. compute_ideal and the rules
    # disagree) — the loud failure mode we want here
    with gc_batched():
        net.run_until_stable(max_rounds=settle_rounds)
    return net


# ----------------------------------------------------------------------
# engine-throughput comparison (full-scan vs. incremental)
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class EngineRow:
    """One size of the engine comparison.

    ``full_rounds_per_sec`` is ``None`` above the ``full_limit`` cutoff
    of :func:`measure_engine_pair` — the legacy full-scan engine needs
    tens of minutes per re-stabilization at n ≥ 1024, so large sizes
    compare the incremental and columnar kernels only.
    """

    n: int
    rounds: int                 #: rounds the re-stabilization took
    full_rounds_per_sec: Optional[float]
    incr_rounds_per_sec: float
    executed_fraction: float    #: mean executed/peers per round (incremental)
    col_rounds_per_sec: float = 0.0

    @property
    def speedup(self) -> Optional[float]:
        """Incremental over full-scan throughput (None when full skipped)."""
        if self.full_rounds_per_sec is None:
            return None
        if self.full_rounds_per_sec <= 0:
            return float("inf")
        return self.incr_rounds_per_sec / self.full_rounds_per_sec

    @property
    def col_speedup(self) -> float:
        """Columnar over incremental throughput."""
        if self.incr_rounds_per_sec <= 0:
            return float("inf")
        return self.col_rounds_per_sec / self.incr_rounds_per_sec


def _post_churn_restabilize(
    net: ReChordNetwork, join_id: int, gateway: int, max_rounds: int
) -> Tuple[StabilizationReport, float, float]:
    """Join one peer into an incremental-engine network and time the
    re-stabilization.

    Returns ``(report, seconds, mean_executed_fraction)`` where the
    executed fraction is the share of peers that actually ran rules per
    round (the rest were replayed from the steady-emission cache).

    The timed loop runs under :func:`gc_batched` — collector pauses
    would otherwise dominate the measurement at n ≥ 1k (and land on
    whichever engine happens to cross an allocation threshold), so
    batching them makes the engine comparison honest.
    """
    net.join(join_id, gateway)
    executed_total = 0
    rounds = 0
    stable = False
    with gc_batched():
        t0 = time.perf_counter()
        # inline run_until_stable so the per-round executed split is sampled
        for _ in range(max_rounds):
            net.run_round()
            rounds += 1
            executed, _replayed = net.activity_stats()
            executed_total += executed
            if not net.scheduler.changed_last_round:
                stable = True
                break
        elapsed = time.perf_counter() - t0
    if not stable:
        # a silent non-converged "report" would poison every downstream
        # rounds/sec comparison; fail like run_until_stable does
        raise RuntimeError(f"network not stable within {max_rounds} rounds")
    report = StabilizationReport(rounds - 1, None, rounds)
    frac = executed_total / max(1, rounds * len(net.peers))
    return report, elapsed, frac


def measure_engine_pair(
    n: int, seed: int, max_rounds: int = 6_000, full_limit: int = 512
) -> EngineRow:
    """Single-join re-stabilization, timed through the three kernels.

    The incremental engine runs first and establishes the exact number
    of re-stabilization rounds from its change flag; the legacy engine
    then executes the *same* number of rounds on the same input, so both
    timings cover identical work (the legacy engine would need O(n)
    fingerprints on top to even detect stability — deliberately excluded
    to keep the comparison conservative).

    Above ``full_limit`` peers the legacy full-scan leg is skipped
    entirely (it needs tens of minutes per re-stabilization there) and
    the end-state equivalence check compares the incremental and
    columnar fingerprints directly.
    """
    seq = SeedSequence(seed).child("engine", n=n)
    build_seed = seq.child("build").seed()
    rng = seq.child("join").rng()

    incr = build_ideal_network(n, build_seed, incremental=True)
    space = incr.space
    join_id = random_peer_ids(1, rng, space)[0]
    while join_id in incr.peers:
        join_id = random_peer_ids(1, rng, space)[0]
    gateway = rng.choice(incr.peer_ids)

    report, incr_secs, frac = _post_churn_restabilize(incr, join_id, gateway, max_rounds)
    rounds = report.rounds_executed

    col = build_ideal_network(n, build_seed, engine="columnar")
    col_report, col_secs, _ = _post_churn_restabilize(col, join_id, gateway, max_rounds)
    if col_report.rounds_executed != rounds:  # pragma: no cover - guarded by tests
        raise AssertionError(
            f"columnar round-count divergence at n={n}: "
            f"{col_report.rounds_executed} != {rounds}"
        )

    if col.fingerprint() != incr.fingerprint():  # pragma: no cover - guarded by tests
        raise AssertionError(f"columnar divergence at n={n}, seed={seed}")

    full_rps: Optional[float] = None
    if n <= full_limit:
        full = build_ideal_network(n, build_seed, incremental=False)
        full.join(join_id, gateway)
        with gc_batched():
            t0 = time.perf_counter()
            full.run(rounds)
            full_secs = time.perf_counter() - t0
        if incr.fingerprint() != full.fingerprint():  # pragma: no cover - guarded by tests
            raise AssertionError(f"engine divergence at n={n}, seed={seed}")
        full_rps = rounds / full_secs if full_secs > 0 else float("inf")

    return EngineRow(
        n=n,
        rounds=rounds,
        full_rounds_per_sec=full_rps,
        incr_rounds_per_sec=rounds / incr_secs if incr_secs > 0 else float("inf"),
        executed_fraction=frac,
        col_rounds_per_sec=rounds / col_secs if col_secs > 0 else float("inf"),
    )


def run_engine_comparison(
    sizes: Sequence[int] = ENGINE_SIZES_QUICK,
    seed: int = DEFAULT_ROOT_SEED,
    max_rounds: int = 6_000,
    full_limit: int = 512,
) -> Dict[int, EngineRow]:
    """The old-vs-new kernel comparison over a size ladder."""
    return {n: measure_engine_pair(n, seed, max_rounds, full_limit) for n in sizes}


def format_engine_comparison(rows: Dict[int, EngineRow]) -> str:
    """Rounds/sec table: full-scan vs. incremental vs. columnar kernel."""
    lines = [
        "Engine throughput — post-churn re-stabilization (single join into a stable network)",
        f"{'n':>6} {'rounds':>7} {'full r/s':>10} {'incr r/s':>10} {'col r/s':>10} "
        f"{'speedup':>8} {'col x':>8} {'exec%':>6}",
    ]
    for n in sorted(rows):
        r = rows[n]
        full_rps = f"{r.full_rounds_per_sec:>10.2f}" if r.full_rounds_per_sec is not None else f"{'—':>10}"
        speedup = f"{r.speedup:>7.1f}x" if r.speedup is not None else f"{'—':>8}"
        lines.append(
            f"{r.n:>6} {r.rounds:>7} {full_rps} "
            f"{r.incr_rounds_per_sec:>10.2f} {r.col_rounds_per_sec:>10.2f} "
            f"{speedup} {r.col_speedup:>7.1f}x {100 * r.executed_fraction:>5.1f}%"
        )
    return "\n".join(lines)
