"""Figure 5 — edges and nodes at stabilization vs. number of real nodes.

The paper plots, for each network size, the mean number of *normal edges*
(all edges except connection edges), *connection edges* and *virtual
nodes* at the stabilization state over 30 random initial graphs.  The
expected shapes (Section 2.2): virtual nodes grow as Θ(n log n), normal
edges slightly super-linearly, and connection edges faster than normal
edges (expected O(n log² n)).
"""

from __future__ import annotations

from typing import Dict, Sequence

from repro.core import metrics as metrics_mod
from repro.experiments.runner import (
    DEFAULT_ROOT_SEED,
    MeanStd,
    PAPER_SIZES,
    format_sweep,
    sweep_sizes,
)
from repro.workloads.initial import build_random_network

COLUMNS = ("normal_edges", "connection_edges", "virtual_nodes", "rounds")


def measure_one(n: int, seed: int, max_rounds: int = 5000) -> Dict[str, float]:
    """Stabilize one random network and count its structure."""
    net = build_random_network(n=n, seed=seed)
    report = net.run_until_stable(max_rounds=max_rounds)
    m = metrics_mod.collect(net)
    return {
        "normal_edges": m.normal_edges,
        "connection_edges": m.connection_edges,
        "virtual_nodes": m.virtual_nodes,
        "total_edges": m.total_edges,
        "total_nodes": m.total_nodes,
        "rounds": report.rounds_to_stable,
    }


def run_fig5(
    sizes: Sequence[int] = PAPER_SIZES,
    seeds: int = 10,
    root_seed: int = DEFAULT_ROOT_SEED,
) -> Dict[int, Dict[str, MeanStd]]:
    """The Fig. 5 sweep (means per size)."""
    return sweep_sizes(measure_one, sizes, seeds, root_seed, label="fig5")


def format_fig5(result: Dict[int, Dict[str, MeanStd]]) -> str:
    """Fig. 5 as an ASCII table."""
    return format_sweep(
        result,
        columns=("normal_edges", "connection_edges", "virtual_nodes"),
        title="Fig. 5 — edges and nodes at stabilization (means)",
    )
