"""Figure 7 — total edges vs. total nodes in the final graph.

A scatter over all runs: the paper observes total edges growing at a rate
comparable to the total number of nodes (supporting the Section 2.2 edge
accounting).  We reproduce the scatter and report the least-squares slope
of edges against nodes.
"""

from __future__ import annotations

import statistics
from dataclasses import dataclass
from typing import List, Sequence, Tuple

from repro.experiments.fig5 import measure_one
from repro.experiments.runner import DEFAULT_ROOT_SEED, PAPER_SIZES
from repro.netsim.rng import SeedSequence


@dataclass(frozen=True)
class Fig7Result:
    """Scatter points and the fitted edges-per-node slope."""

    points: Tuple[Tuple[int, int], ...]  # (total_nodes, total_edges)
    slope: float
    intercept: float

    def edges_per_node(self) -> float:
        """Mean edges/node ratio over all points."""
        return statistics.fmean(e / n for n, e in self.points if n)


def run_fig7(
    sizes: Sequence[int] = PAPER_SIZES,
    seeds: int = 10,
    root_seed: int = DEFAULT_ROOT_SEED,
) -> Fig7Result:
    """The Fig. 7 scatter (one point per stabilized run)."""
    root = SeedSequence(root_seed)
    points: List[Tuple[int, int]] = []
    for n in sizes:
        for rep in range(seeds):
            seed = root.child("fig7", n=n, rep=rep).seed()
            row = measure_one(n, seed)
            points.append((int(row["total_nodes"]), int(row["total_edges"])))
    xs = [p[0] for p in points]
    ys = [p[1] for p in points]
    if len(set(xs)) > 1:
        slope, intercept = statistics.linear_regression(xs, ys)
    else:  # degenerate single-size sweep
        slope, intercept = (ys[0] / xs[0] if xs[0] else 0.0), 0.0
    return Fig7Result(tuple(points), slope, intercept)


def format_fig7(result: Fig7Result, bins: int = 8) -> str:
    """Fig. 7 as a binned ASCII series plus the fitted slope."""
    pts = sorted(result.points)
    lines = [
        "Fig. 7 — total edges vs. total nodes in the final graph",
        "=======================================================",
        f"least-squares: edges ≈ {result.slope:.2f} * nodes + {result.intercept:.1f}",
        f"mean edges/node ratio: {result.edges_per_node():.2f}",
        "",
        "   nodes     edges  (bin means)",
    ]
    if pts:
        per_bin = max(1, len(pts) // bins)
        for i in range(0, len(pts), per_bin):
            chunk = pts[i : i + per_bin]
            nodes = statistics.fmean(p[0] for p in chunk)
            edges = statistics.fmean(p[1] for p in chunk)
            lines.append(f"{nodes:8.0f}  {edges:8.0f}")
    return "\n".join(lines)
