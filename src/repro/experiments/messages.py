"""Message complexity over time (E12).

The synchronous model hides message costs from the round counts, so this
experiment surfaces them: per-round message counts during stabilization
and the steady-state rate once stable (the stable state is a constant
flow — connection-edge streams, candidate announcements, ring re-issues
— whose volume is part of the protocol's operating cost).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

from repro.experiments.runner import DEFAULT_ROOT_SEED
from repro.netsim.rng import SeedSequence
from repro.workloads.initial import build_random_network


@dataclass(frozen=True)
class MessageProfile:
    """Per-round message series for one stabilization run."""

    n: int
    series: Tuple[int, ...]
    rounds_to_stable: int

    @property
    def peak(self) -> int:
        """Largest per-round message count."""
        return max(self.series, default=0)

    @property
    def steady_rate(self) -> int:
        """Messages per round in the stable state (last recorded round)."""
        return self.series[-1] if self.series else 0

    @property
    def total(self) -> int:
        """Total messages until stabilization."""
        return sum(self.series)


def run_messages(n: int = 32, seed: int | None = None, root_seed: int = DEFAULT_ROOT_SEED) -> MessageProfile:
    """Trace one stabilization run's message counts."""
    if seed is None:
        seed = SeedSequence(root_seed).child("messages", n=n).seed()
    net = build_random_network(n=n, seed=seed, record_trace=True)
    report = net.run_until_stable(max_rounds=20_000)
    # two extra rounds past stability to sample the steady-state rate
    net.run(2)
    assert net.trace is not None
    return MessageProfile(
        n=n,
        series=tuple(net.trace.messages_series()),
        rounds_to_stable=report.rounds_to_stable,
    )


def format_messages(profile: MessageProfile) -> str:
    """Message-complexity report with a small ASCII sparkline."""
    peak = max(1, profile.peak)
    blocks = " ▁▂▃▄▅▆▇█"
    spark = "".join(blocks[min(8, (9 * v) // (peak + 1))] for v in profile.series)
    return "\n".join(
        [
            f"E12 — message complexity (n={profile.n})",
            "=" * 40,
            f"rounds to stable : {profile.rounds_to_stable}",
            f"peak msgs/round  : {profile.peak}",
            f"steady msgs/round: {profile.steady_rate}",
            f"total msgs       : {profile.total}",
            f"per-round series : {spark}",
        ]
    )
