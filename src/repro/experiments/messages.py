"""Message complexity over time (E12).

The synchronous model hides message costs from the round counts, so this
experiment surfaces them: per-round message counts during stabilization
and the steady-state rate once stable (the stable state is a constant
flow — connection-edge streams, candidate announcements, ring re-issues
— whose volume is part of the protocol's operating cost).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

from repro.experiments.runner import DEFAULT_ROOT_SEED
from repro.netsim.rng import SeedSequence
from repro.workloads.initial import build_random_network


@dataclass(frozen=True)
class MessageProfile:
    """Per-round message series for one stabilization run.

    ``executed`` is the per-round executed-actor series; entries are
    ``None`` for rounds where the kernel reported no execute/replay
    split (the legacy full-scan engine) — the ``-1`` sentinel the trace
    recorder stores internally never appears here and ``None`` entries
    are excluded from all series arithmetic.
    """

    n: int
    series: Tuple[int, ...]
    rounds_to_stable: int
    executed: Tuple[Optional[int], ...] = ()

    @property
    def peak(self) -> int:
        """Largest per-round message count."""
        return max(self.series, default=0)

    @property
    def steady_rate(self) -> int:
        """Messages per round in the stable state (last recorded round)."""
        return self.series[-1] if self.series else 0

    @property
    def total(self) -> int:
        """Total messages until stabilization."""
        return sum(self.series)

    @property
    def executed_mean(self) -> Optional[float]:
        """Mean executed actors per round over reporting rounds.

        ``None`` when no round reported a split (full-scan engine).
        """
        known = [e for e in self.executed if e is not None]
        if not known:
            return None
        return sum(known) / len(known)

    @property
    def executed_steady(self) -> Optional[int]:
        """Executed actors in the last recorded round (``None`` if n/a)."""
        return self.executed[-1] if self.executed else None


def run_messages(
    n: int = 32,
    seed: int | None = None,
    root_seed: int = DEFAULT_ROOT_SEED,
    engine: Optional[str] = None,
    rule_backend: str = "scalar",
) -> MessageProfile:
    """Trace one stabilization run's message counts.

    ``engine`` selects the simulation kernel (``full``, ``incremental``
    or ``columnar``; default incremental) — the message series is
    engine-invariant, the executed-actor series reports ``n/a`` under
    the full-scan kernel.  ``rule_backend`` selects the rule pipeline
    (``scalar`` / ``batched``); the series is backend-invariant too.
    """
    if seed is None:
        seed = SeedSequence(root_seed).child("messages", n=n).seed()
    net = build_random_network(
        n=n, seed=seed, record_trace=True, engine=engine, rule_backend=rule_backend
    )
    report = net.run_until_stable(max_rounds=20_000)
    # two extra rounds past stability to sample the steady-state rate
    net.run(2)
    assert net.trace is not None
    return MessageProfile(
        n=n,
        series=tuple(net.trace.messages_series()),
        rounds_to_stable=report.rounds_to_stable,
        executed=tuple(net.trace.executed_series()),
    )


def format_messages(profile: MessageProfile) -> str:
    """Message-complexity report with a small ASCII sparkline."""
    peak = max(1, profile.peak)
    blocks = " ▁▂▃▄▅▆▇█"
    spark = "".join(blocks[min(8, (9 * v) // (peak + 1))] for v in profile.series)
    mean = profile.executed_mean
    steady = profile.executed_steady
    executed = (
        "n/a (kernel reports no execute/replay split)"
        if mean is None
        else f"mean {mean:.1f}, steady {steady if steady is not None else 'n/a'}"
    )
    return "\n".join(
        [
            f"E12 — message complexity (n={profile.n})",
            "=" * 40,
            f"rounds to stable : {profile.rounds_to_stable}",
            f"peak msgs/round  : {profile.peak}",
            f"steady msgs/round: {profile.steady_rate}",
            f"total msgs       : {profile.total}",
            f"executed actors  : {executed}",
            f"per-round series : {spark}",
        ]
    )
