"""Mass-failure survival under the resilient request plane.

The question the recovery-profile experiment (:mod:`~repro.experiments.
traffic`) cannot answer: when *half* the network dies at once, what
fraction of the operations issued **during the outage** still complete
eventually — and how much of that survival is bought by the request
plane's retries rather than by the overlay's self-repair?

The experiment runs the ``mass-failure`` library scenario (a seeded 50%
crash wave mid-traffic, see :mod:`repro.scenarios.library`) at one size
and seed, in two variants sharing every draw that precedes the plane:

* **retries** — the scenario's own resilient workload: per-attempt
  deadline 12, ``max_attempts=4`` with seeded exponential backoff, and
  ``route_redundancy=2`` forwarding;
* **no-retry** — the identical campaign with the resilience knobs
  forced back to their off defaults (``max_attempts=1``,
  ``route_redundancy=1``): the plane every pre-resilience release ran.

The survival census (:attr:`ScenarioReport.survival_by_window`)
attributes every completion to the window its *issue* round fell in, so
the failure-window row isolates exactly the ops that raced the outage.
The retries variant is additionally executed **twice with the same
seed** and the two reports' configuration digests and survival tables
must agree — the end-to-end determinism check the resilience gate
(``benchmarks/smoke_resilience.py``) relies on.

Run as a module to regenerate the checked-in results::

    PYTHONPATH=src python -m repro.experiments.resilience \
        --n 1024 --out benchmarks/results
"""

from __future__ import annotations

import json
from dataclasses import dataclass, replace
from typing import List, Optional, Sequence, Tuple

from repro.experiments.runner import DEFAULT_ROOT_SEED
from repro.scenarios import make_scenario, run_scenario

DEFAULT_N = 1024

#: the survival floor the resilient variant is expected to clear in its
#: failure window (the gate enforces it; see ISSUE/ROADMAP)
SURVIVAL_FLOOR = 0.99


@dataclass(frozen=True)
class ResilienceVariant:
    """One campaign variant's survival profile."""

    label: str
    max_attempts: int
    route_redundancy: int
    rounds_total: int
    recovery_rounds: int
    config_digest: str
    survival_by_window: Tuple[Tuple[str, int, int], ...]
    failure_window: str
    failure_issued: int
    failure_routed: int
    failure_survival: float
    totals: dict


@dataclass(frozen=True)
class ResilienceRun:
    """The retries-on vs. retries-off comparison at one (n, seed)."""

    n: int
    seed: int
    variants: Tuple[ResilienceVariant, ...]
    #: same-seed rerun of the retries variant produced an identical
    #: configuration digest and survival table
    digest_deterministic: bool


def _failure_row(
    survival: Sequence[Tuple[str, int, int]]
) -> Tuple[str, int, int]:
    """The survival row of the crash window (label ``r<k>:crash_wave``)."""
    for label, issued, routed in survival:
        if "crash_wave" in label:
            return label, issued, routed
    raise ValueError(f"no crash window in survival table {survival!r}")


def _variant(label: str, spec, report) -> ResilienceVariant:
    window, issued, routed = _failure_row(report.survival_by_window)
    return ResilienceVariant(
        label=label,
        max_attempts=spec.traffic.max_attempts,
        route_redundancy=spec.traffic.route_redundancy,
        rounds_total=report.rounds_total,
        recovery_rounds=report.recovery_rounds,
        config_digest=report.config_digest,
        survival_by_window=tuple(report.survival_by_window),
        failure_window=window,
        failure_issued=issued,
        failure_routed=routed,
        failure_survival=round(routed / issued, 4) if issued else 0.0,
        totals=dict(report.slo or {}),
    )


def run_resilience(
    n: int = DEFAULT_N,
    seed: int = DEFAULT_ROOT_SEED,
) -> ResilienceRun:
    """The mass-failure survival comparison at one size and seed."""
    spec = make_scenario("mass-failure", n=n, seed=seed)
    off_spec = spec.with_overrides(
        traffic=replace(
            spec.traffic, max_attempts=1, route_redundancy=1, hedge_after=None
        )
    )
    on_report = run_scenario(spec)
    rerun_report = run_scenario(spec)
    off_report = run_scenario(off_spec)
    deterministic = (
        on_report.config_digest == rerun_report.config_digest
        and on_report.survival_by_window == rerun_report.survival_by_window
        and on_report.slo == rerun_report.slo
    )
    return ResilienceRun(
        n=n,
        seed=seed,
        variants=(
            _variant("retries", spec, on_report),
            _variant("no-retry", off_spec, off_report),
        ),
        digest_deterministic=deterministic,
    )


def format_resilience(run: ResilienceRun) -> str:
    """The survival comparison as a table."""
    lines: List[str] = [
        "Mass-failure survival: 50% crash wave mid-traffic, retries on vs. off",
        "=" * 78,
        f"n={run.n}  seed={run.seed}  "
        f"same-seed digest deterministic: {run.digest_deterministic}",
        "",
        f"{'variant':>10} {'attempts':>8} {'r':>3} {'window':>16} "
        f"{'issued':>7} {'routed':>7} {'survival':>9} {'retries':>8}",
    ]
    for v in run.variants:
        lines.append(
            f"{v.label:>10} {v.max_attempts:>8} {v.route_redundancy:>3} "
            f"{v.failure_window:>16} {v.failure_issued:>7} "
            f"{v.failure_routed:>7} {v.failure_survival:>8.2%} "
            f"{v.totals.get('retries', 0):>8}"
        )
    lines.append("")
    for v in run.variants:
        t = v.totals
        outcomes = "  ".join(f"{k}:{c}" for k, c in t.get("outcomes", {}).items())
        lines.append(
            f"{v.label:>10} totals: completed={t.get('completed', 0)}  "
            f"success={t.get('success_rate', 0.0):.2%}  {outcomes}"
        )
        if "attempts" in t:
            attempts = "  ".join(f"x{k}:{c}" for k, c in sorted(t["attempts"].items()))
            lines.append(
                f"{'':>10} attempts: {attempts}  "
                f"first-try ok:{t.get('first_attempt_success', 0)}  "
                f"eventual ok:{t.get('eventual_success', 0)}"
            )
    return "\n".join(lines)


def run_to_json(run: ResilienceRun) -> dict:
    """JSON-serializable form (checked-in results)."""
    return {
        "experiment": "resilience_mass_failure",
        "n": run.n,
        "seed": run.seed,
        "digest_deterministic": run.digest_deterministic,
        "survival_floor": SURVIVAL_FLOOR,
        "variants": [
            {
                "label": v.label,
                "max_attempts": v.max_attempts,
                "route_redundancy": v.route_redundancy,
                "rounds_total": v.rounds_total,
                "recovery_rounds": v.recovery_rounds,
                "config_digest": v.config_digest,
                "survival_by_window": [list(row) for row in v.survival_by_window],
                "failure_window": v.failure_window,
                "failure_issued": v.failure_issued,
                "failure_routed": v.failure_routed,
                "failure_survival": v.failure_survival,
                "totals": v.totals,
            }
            for v in run.variants
        ],
    }


def main(argv: Optional[Sequence[str]] = None) -> int:
    """Regenerate the checked-in results under ``benchmarks/results``."""
    import argparse
    from pathlib import Path

    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--n", type=int, default=DEFAULT_N)
    parser.add_argument("--seed", type=int, default=DEFAULT_ROOT_SEED)
    parser.add_argument("--out", type=Path, default=None, help="results directory")
    args = parser.parse_args(argv)
    run = run_resilience(n=args.n, seed=args.seed)
    text = format_resilience(run)
    print(text)
    if args.out is not None:
        args.out.mkdir(parents=True, exist_ok=True)
        (args.out / "resilience.txt").write_text(text + "\n")
        (args.out / "resilience.json").write_text(
            json.dumps(run_to_json(run), indent=2) + "\n"
        )
        print(f"\n[results written to {args.out}]")
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
