"""Theorems 4.1 / 4.2 — recovery after isolated joins and leaves.

A network is first stabilized, then a single membership event is applied
and the rounds until the configuration is stable *again* are measured.
Expected shapes: joins are polylogarithmic (O(log² n)), graceful leaves
and crashes logarithmic (O(log n)) — in particular both must grow far
slower than fresh stabilization from scratch.
"""

from __future__ import annotations

import math
import random
from typing import Dict, Sequence

from repro.experiments.runner import (
    DEFAULT_ROOT_SEED,
    MeanStd,
    format_sweep,
    sweep_sizes,
)
from repro.workloads.initial import build_random_network, random_peer_ids

DEFAULT_SIZES = (8, 16, 32, 64, 128)


def measure_one(n: int, seed: int, max_rounds: int = 20_000) -> Dict[str, float]:
    """Join, graceful-leave and crash recovery rounds at size ``n``.

    All three events are measured against independently stabilized
    networks built from the same seed, so the columns are comparable.
    """
    rng = random.Random(seed)

    # --- join -----------------------------------------------------------
    net = build_random_network(n=n, seed=seed)
    net.run_until_stable(max_rounds=max_rounds)
    new_id = random_peer_ids(1, rng, net.space)[0]
    while new_id in net.peers:
        new_id = random_peer_ids(1, rng, net.space)[0]
    gateway = rng.choice(net.peer_ids)
    net.join(new_id, gateway)
    join_rounds = net.run_until_stable(max_rounds=max_rounds).rounds_to_stable

    # --- graceful leave --------------------------------------------------
    net = build_random_network(n=n, seed=seed)
    net.run_until_stable(max_rounds=max_rounds)
    victim = rng.choice(net.peer_ids)
    net.leave(victim)
    leave_rounds = net.run_until_stable(max_rounds=max_rounds).rounds_to_stable

    # --- crash ------------------------------------------------------------
    net = build_random_network(n=n, seed=seed)
    net.run_until_stable(max_rounds=max_rounds)
    victim = rng.choice(net.peer_ids)
    net.crash(victim)
    crash_rounds = net.run_until_stable(max_rounds=max_rounds).rounds_to_stable

    log2n = math.log2(max(2, n))
    return {
        "join_rounds": join_rounds,
        "leave_rounds": leave_rounds,
        "crash_rounds": crash_rounds,
        "join_over_log2sq": join_rounds / (log2n * log2n),
        "leave_over_log2": leave_rounds / log2n,
    }


def run_join_leave(
    sizes: Sequence[int] = DEFAULT_SIZES,
    seeds: int = 5,
    root_seed: int = DEFAULT_ROOT_SEED,
) -> Dict[int, Dict[str, MeanStd]]:
    """The Theorem 4.1/4.2 sweep."""
    return sweep_sizes(measure_one, sizes, seeds, root_seed, label="joinleave")


def format_join_leave(result: Dict[int, Dict[str, MeanStd]]) -> str:
    """Join/leave recovery table."""
    return format_sweep(
        result,
        columns=(
            "join_rounds",
            "leave_rounds",
            "crash_rounds",
            "join_over_log2sq",
            "leave_over_log2",
        ),
        title="Theorems 4.1/4.2 — recovery rounds after isolated churn events",
    )
