"""Phase-completion experiment (the proof's structure, measured).

For each network size, stabilization runs are instrumented with the
five phase predicates of :mod:`repro.analysis.phases`.  The paper proves
the phases complete in order (each bounded by O(n log n) rounds, the
closest-real phase by O(log n)); the measured table shows the actual
completion rounds, which — like Fig. 6 — sit far below the bounds.
"""

from __future__ import annotations

from typing import Dict, Sequence

from repro.analysis.phases import PHASES, PhaseTracker
from repro.experiments.runner import (
    DEFAULT_ROOT_SEED,
    MeanStd,
    format_sweep,
    sweep_sizes,
)
from repro.workloads.initial import build_random_network

DEFAULT_SIZES = (8, 16, 32, 64)


def measure_one(n: int, seed: int, max_rounds: int = 20_000) -> Dict[str, float]:
    """Phase completion rounds for one random start."""
    net = build_random_network(n=n, seed=seed)
    tracker = PhaseTracker(net)
    report = tracker.run_until_stable(max_rounds=max_rounds)
    row = report.as_row()
    row["stable"] = report.rounds_executed
    return row


def run_phases(
    sizes: Sequence[int] = DEFAULT_SIZES,
    seeds: int = 5,
    root_seed: int = DEFAULT_ROOT_SEED,
) -> Dict[int, Dict[str, MeanStd]]:
    """The phase-completion sweep."""
    return sweep_sizes(measure_one, sizes, seeds, root_seed, label="phases")


def format_phases(result: Dict[int, Dict[str, MeanStd]]) -> str:
    """Phase-completion table in proof order."""
    return format_sweep(
        result,
        columns=tuple(PHASES),
        title="Proof phases (Lemmas 3.2/3.6/3.9/3.10/3.11) — completion rounds",
    )
