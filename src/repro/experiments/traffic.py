"""In-band lookups concurrent with churn — success and latency vs.
rounds-since-churn.

The question the snapshot experiments cannot ask: while the overlay is
*repairing itself* after membership changes, what happens to live
requests already in flight and to requests issued mid-recovery?  The
protocol here follows the evaluation regime of the monotonic-
searchability line of work (Scheideler/Setzer/Strothmann) and Berns'
scaffolding paper: application requests run concurrently with
stabilization, never against a frozen snapshot.

Per size ``n`` (paper-style: one stable network built directly in its
fixpoint via :func:`build_ideal_network`, the only practical route to
n ≥ 1024):

1. a **warm-up window** of traffic on the stable overlay establishes
   the pre-churn baseline (every op should succeed in O(log n) hops);
2. a **churn burst** — a scripted mix of joins, graceful leaves and
   crashes sized relative to ``n`` — hits the network at round ``C``;
3. traffic keeps flowing while the overlay re-stabilizes; each op is
   bucketed by *rounds since churn* at its issue round, giving the
   recovery profile: success rate and latency per bucket;
4. after the tail window, the run drains and reports totals, including
   monotonic-searchability violations (a search failing after the same
   ``(origin, key)`` search previously succeeded).

Run as a module to regenerate the checked-in results::

    PYTHONPATH=src python -m repro.experiments.traffic \
        --sizes 64 256 1024 --out benchmarks/results
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.experiments.runner import DEFAULT_ROOT_SEED
from repro.experiments.scaling import build_ideal_network
from repro.netsim.rng import SeedSequence
from repro.traffic.generator import WorkloadGenerator
from repro.traffic.plane import TrafficPlane
from repro.traffic.slo import latency_histogram
from repro.workloads.churn import ChurnSchedule, apply_event

DEFAULT_SIZES = (64, 256, 1024)

#: rounds-since-churn buckets (inclusive upper edges; -1 = pre-churn)
BUCKET_EDGES = (1, 3, 7, 15, 31)


@dataclass(frozen=True)
class BucketRow:
    """Aggregated outcomes of ops issued within one recovery window."""

    label: str
    issued: int
    ok: int
    failed: int
    success_rate: float
    mean_latency: Optional[float]
    max_latency: Optional[int]


@dataclass(frozen=True)
class TrafficChurnRun:
    """One size's recovery profile."""

    n: int
    seed: int
    churn_events: Dict[str, int]
    churn_round: int
    rounds_to_stable: int
    buckets: Tuple[BucketRow, ...]
    totals: dict
    latency_hist: Tuple[Tuple[str, int], ...]
    violations: int
    #: counter census + kernel stats when the run carried a telemetry
    #: recorder (None otherwise); excluded from the checked-in JSON
    telemetry: Optional[dict] = None


def _make_buckets() -> List[Tuple[str, Optional[int]]]:
    """``(label, inclusive upper edge)`` in report order; ``-1`` is the
    pre-churn bucket, ``None`` the overflow bucket.  Single source of
    truth for both bucketing and report ordering."""
    out: List[Tuple[str, Optional[int]]] = [("pre-churn", -1)]
    lo = 0
    for edge in BUCKET_EDGES:
        out.append((f"{lo}-{edge}", edge))
        lo = edge + 1
    out.append((f"{lo}+", None))
    return out


_BUCKETS = _make_buckets()


def _bucket_label(rounds_since: int) -> str:
    if rounds_since < 0:
        return _BUCKETS[0][0]
    for label, hi in _BUCKETS[1:]:
        if hi is None or rounds_since <= hi:
            return label
    raise AssertionError("unreachable: overflow bucket catches everything")


def _bucket_order() -> List[str]:
    return [label for label, _ in _BUCKETS]


def measure_one(
    n: int,
    seed: int,
    warmup_rounds: int = 8,
    traffic_rounds: int = 48,
    rate: Optional[float] = None,
    churn_events: Optional[int] = None,
    deadline: int = 48,
    telemetry: object = None,
    sketch_quantiles: Optional[Sequence[float]] = None,
    collector_mode: str = "list",
    max_attempts: int = 1,
    retry_backoff: int = 4,
    hedge_after: Optional[int] = None,
    route_redundancy: int = 1,
) -> TrafficChurnRun:
    """One full churn-recovery traffic run at size ``n``.

    ``telemetry`` opts the run into the observation plane (``True`` for
    a fresh recorder, or an existing one); purely observational — the
    recovery profile is identical with or without it.
    ``sketch_quantiles`` adds opt-in P² latency estimates to the totals
    (separate ``latency_p*_sketch`` keys).  ``collector_mode``
    ``"streaming"`` bounds collector memory for very large campaigns:
    counter totals stay exact, but the per-bucket recovery profile and
    the histogram are then computed over the reservoir *sample*.
    ``max_attempts``/``retry_backoff``/``hedge_after``/
    ``route_redundancy`` opt the run into the resilient request plane
    (see :class:`TrafficPlane`); the defaults keep the run bit-for-bit
    identical to the pre-resilience behavior.
    """
    seq = SeedSequence(seed).child("traffic", n=n)
    build_seed = seq.child("build").seed()
    net = build_ideal_network(n, build_seed, incremental=True)
    recorder = None
    if telemetry:
        recorder = net.enable_telemetry(None if telemetry is True else telemetry)
    # twin without traffic: the exact oracle for overlay recovery time
    # (traffic never mutates overlay state, so the repair trajectory of
    # the traffic-carrying network is identical)
    twin = build_ideal_network(n, build_seed, incremental=True)
    plane = TrafficPlane(
        net,
        default_deadline=deadline,
        sketch_quantiles=sketch_quantiles,
        collector_mode=collector_mode,
        max_attempts=max_attempts,
        retry_backoff=retry_backoff,
        hedge_after=hedge_after,
        route_redundancy=route_redundancy,
        retry_seed=seq.child("retry").seed(),
    )
    rate = rate if rate is not None else max(2.0, n / 64)
    WorkloadGenerator(
        plane,
        rate=rate,
        key_universe=max(64, n),
        popularity="zipf",
        zipf_s=1.1,
        deadline=deadline,
        seed=seq.child("workload").seed(),
    )
    # 1. warm-up on the stable overlay
    plane.run(warmup_rounds)
    # 2. churn burst: joins / leaves / crashes scaled with n
    events = churn_events if churn_events is not None else max(4, n // 64)
    schedule = ChurnSchedule.random(
        net, events=events, seed=seq.child("churn").seed(), join_prob=0.4, crash_prob=0.3
    )
    kinds: Dict[str, int] = {}
    for event in schedule:
        kinds[event.kind] = kinds.get(event.kind, 0) + 1
        apply_event(net, event)
        apply_event(twin, event)
    churn_round = net.round_no
    stable_after = twin.run_until_stable(max_rounds=20_000).rounds_to_stable
    # 3. traffic concurrent with re-stabilization
    for _ in range(traffic_rounds):
        plane.run_round()
    plane.generator.active = False
    plane.drain()
    # 4. bucket by rounds-since-churn at issue time
    acc: Dict[str, List] = {}
    for op in plane.collector.completed:
        label = _bucket_label(op.issue_round - churn_round)
        acc.setdefault(label, []).append(op)
    rows: List[BucketRow] = []
    for label in _bucket_order():
        ops = acc.get(label, [])
        if not ops:
            continue
        ok = [op for op in ops if op.routed]
        lats = [op.latency for op in ok]
        rows.append(
            BucketRow(
                label=label,
                issued=len(ops),
                ok=len(ok),
                failed=len(ops) - len(ok),
                success_rate=round(len(ok) / len(ops), 4),
                mean_latency=round(sum(lats) / len(lats), 2) if lats else None,
                max_latency=max(lats) if lats else None,
            )
        )
    tel = None
    if recorder is not None:
        recorder.rule_fires = dict(net.counters().fires)
        for comp in plane.collector.traced():
            recorder.add_trace(comp.op_id, comp.op, comp.outcome, comp.trace.hops)
        tel = {"census": recorder.census(), "kernel": recorder.kernel_stats()}
    return TrafficChurnRun(
        n=n,
        seed=seed,
        churn_events=dict(sorted(kinds.items())),
        churn_round=churn_round,
        rounds_to_stable=stable_after,
        buckets=tuple(rows),
        totals=plane.collector.summary(),
        latency_hist=tuple(latency_histogram(plane.collector.routed_latencies())),
        violations=plane.collector.violations_count,
        telemetry=tel,
    )


def run_traffic(
    sizes: Sequence[int] = DEFAULT_SIZES,
    seeds: int = 1,
    root_seed: int = DEFAULT_ROOT_SEED,
    telemetry: bool = False,
    sketch_quantiles: Optional[Sequence[float]] = None,
    collector_mode: str = "list",
    max_attempts: int = 1,
    retry_backoff: int = 4,
    hedge_after: Optional[int] = None,
    route_redundancy: int = 1,
) -> List[TrafficChurnRun]:
    """The churn-recovery traffic sweep (one run per size per seed).

    ``telemetry=True`` attaches a fresh recorder to every run and
    carries its census on the run record (observational only);
    ``sketch_quantiles``/``collector_mode`` and the resilience knobs
    (``max_attempts``/``retry_backoff``/``hedge_after``/
    ``route_redundancy``) pass through to :func:`measure_one`.
    """
    runs: List[TrafficChurnRun] = []
    for n in sizes:
        for rep in range(seeds):
            seed = SeedSequence(root_seed).child("traffic-exp", n=n, rep=rep).seed()
            runs.append(
                measure_one(
                    n,
                    seed,
                    telemetry=telemetry,
                    sketch_quantiles=sketch_quantiles,
                    collector_mode=collector_mode,
                    max_attempts=max_attempts,
                    retry_backoff=retry_backoff,
                    hedge_after=hedge_after,
                    route_redundancy=route_redundancy,
                )
            )
    return runs


def format_traffic(runs: Sequence[TrafficChurnRun]) -> str:
    """Recovery-profile tables, one block per run."""
    lines: List[str] = [
        "In-band lookups concurrent with churn — success/latency vs. rounds-since-churn",
        "=" * 78,
    ]
    for run in runs:
        t = run.totals
        lines.append("")
        lines.append(
            f"n={run.n}  churn={run.churn_events}  re-stabilized after "
            f"{run.rounds_to_stable} rounds  ops={t['completed']}  "
            f"success={t['success_rate']:.2%}  violations={run.violations}"
        )
        lines.append(f"{'issued (rounds since churn)':>28} {'ops':>5} {'ok':>5} "
                     f"{'success':>8} {'lat mean':>9} {'lat max':>8}")
        for row in run.buckets:
            mean = f"{row.mean_latency:.2f}" if row.mean_latency is not None else "-"
            mx = str(row.max_latency) if row.max_latency is not None else "-"
            lines.append(
                f"{row.label:>28} {row.issued:>5} {row.ok:>5} "
                f"{row.success_rate:>7.1%} {mean:>9} {mx:>8}"
            )
        hist = "  ".join(f"{label}:{count}" for label, count in run.latency_hist if count)
        lines.append(f"{'latency histogram (rounds)':>28} {hist}")
        outcomes = "  ".join(f"{k}:{v}" for k, v in t["outcomes"].items())
        lines.append(f"{'outcomes':>28} {outcomes}")
        if "retries" in t:
            lines.append(
                f"{'resilience':>28} retries:{t['retries']}  "
                f"hedges:{t['hedges_issued']} (wins:{t['hedge_wins']})  "
                f"first-try ok:{t['first_attempt_success']}  "
                f"eventual ok:{t['eventual_success']}  "
                f"stale:{t['stale_replies']}"
            )
        sketch = "  ".join(
            f"{k}:{v}" for k, v in sorted(t.items()) if k.endswith("_sketch")
        )
        if sketch:
            lines.append(f"{'sketch quantiles':>28} {sketch}")
        if run.telemetry is not None:
            census = run.telemetry["census"]
            msgs = "  ".join(
                f"{k}:{v}" for k, v in census["messages"].items()
            )
            lines.append(
                f"{'telemetry':>28} rounds:{census['rounds']}  "
                f"sent:{census['sent']}  dropped:{census['dropped']}"
            )
            lines.append(f"{'envelope census':>28} {msgs}")
    return "\n".join(lines)


def runs_to_json(runs: Sequence[TrafficChurnRun]) -> dict:
    """JSON-serializable form of a sweep (checked-in results)."""
    return {
        "experiment": "traffic_churn",
        "runs": [
            {
                "n": run.n,
                "seed": run.seed,
                "churn_events": run.churn_events,
                "churn_round": run.churn_round,
                "rounds_to_stable": run.rounds_to_stable,
                "buckets": [vars(row) for row in run.buckets],
                "totals": run.totals,
                "latency_hist": [list(pair) for pair in run.latency_hist],
                "violations": run.violations,
            }
            for run in runs
        ],
    }


def main(argv: Optional[Sequence[str]] = None) -> int:
    """Regenerate the checked-in results under ``benchmarks/results``."""
    import argparse
    from pathlib import Path

    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--sizes", type=int, nargs="*", default=list(DEFAULT_SIZES))
    parser.add_argument("--seeds", type=int, default=1)
    parser.add_argument("--root-seed", type=int, default=DEFAULT_ROOT_SEED)
    parser.add_argument("--out", type=Path, default=None, help="results directory")
    parser.add_argument(
        "--sketch-quantiles",
        type=float,
        nargs="*",
        default=None,
        help="opt-in P2 latency quantiles (e.g. 0.5 0.99)",
    )
    parser.add_argument(
        "--collector",
        choices=("list", "streaming"),
        default="list",
        help="completion retention mode (streaming bounds memory)",
    )
    parser.add_argument(
        "--max-attempts", type=int, default=1,
        help="attempt budget per op (1 = retries off, the default)",
    )
    parser.add_argument(
        "--retry-backoff", type=int, default=4,
        help="base backoff in rounds between attempts (seeded jitter)",
    )
    parser.add_argument(
        "--hedge-after", type=int, default=None,
        help="launch a duplicate probe after this many rounds (off by default)",
    )
    parser.add_argument(
        "--route-redundancy", type=int, default=1,
        help="candidate successors considered per forwarding hop",
    )
    args = parser.parse_args(argv)
    runs = run_traffic(
        tuple(args.sizes),
        args.seeds,
        args.root_seed,
        sketch_quantiles=args.sketch_quantiles,
        collector_mode=args.collector,
        max_attempts=args.max_attempts,
        retry_backoff=args.retry_backoff,
        hedge_after=args.hedge_after,
        route_redundancy=args.route_redundancy,
    )
    text = format_traffic(runs)
    print(text)
    if args.out is not None:
        args.out.mkdir(parents=True, exist_ok=True)
        (args.out / "traffic_churn.txt").write_text(text + "\n")
        (args.out / "traffic_churn.json").write_text(
            json.dumps(runs_to_json(runs), indent=2) + "\n"
        )
        print(f"\n[results written to {args.out}]")
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
