"""Routability during convergence — when does the overlay become usable?

Fig. 6 distinguishes the "almost stable" state from full stability; the
practical question behind it: how early can applications *route*?  Each
round during stabilization we attempt a fixed sample of greedy lookups
over the current projection and record the success fraction (a lookup
succeeds if it terminates at the peer responsible for the key).  The
expected shape: routability hits 1.0 around the almost-stable round,
well before the configuration fixpoint.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import List, Tuple

from repro.chord.routing import RoutingError, route_greedy
from repro.core.ideal import chord_successor
from repro.experiments.runner import DEFAULT_ROOT_SEED
from repro.netsim.rng import SeedSequence
from repro.workloads.initial import build_random_network


@dataclass(frozen=True)
class UsabilityProfile:
    """Per-round lookup success fractions for one stabilization run."""

    n: int
    series: Tuple[float, ...]
    rounds_to_stable: int
    rounds_to_almost: int

    def first_full_routability(self) -> int:
        """First round from which every sampled lookup succeeds."""
        last_bad = -1
        for idx, value in enumerate(self.series):
            if value < 1.0:
                last_bad = idx
        return last_bad + 1


def _success_fraction(net, samples: List[Tuple[int, int]]) -> float:
    views = {pid: set() for pid in net.peer_ids}
    for src, dst in net.rechord_projection():
        views[src].add(dst)
    good = 0
    for start, key in samples:
        if start not in views:
            continue
        want = chord_successor(net.space, net.peer_ids, key)
        try:
            res = route_greedy(net.space, net.peer_ids, lambda u: views[u], start, key, max_hops=128)
        except RoutingError:
            continue
        if res.owner == want:
            good += 1
    return good / len(samples)


def run_usability(
    n: int = 24,
    seed: int | None = None,
    samples: int = 30,
    root_seed: int = DEFAULT_ROOT_SEED,
    max_rounds: int = 20_000,
) -> UsabilityProfile:
    """Trace lookup success over one stabilization run."""
    if seed is None:
        seed = SeedSequence(root_seed).child("usability", n=n).seed()
    net = build_random_network(n=n, seed=seed)
    rng = random.Random(seed ^ 0x5A5A)
    sample_pairs = [
        (rng.choice(net.peer_ids), rng.randrange(net.space.size)) for _ in range(samples)
    ]
    from repro.core.ideal import compute_ideal

    ideal = compute_ideal(net.space, net.peer_ids)
    series: List[float] = [_success_fraction(net, sample_pairs)]
    almost: int | None = None
    prev = net.fingerprint()
    for executed in range(1, max_rounds + 1):
        net.run_round()
        series.append(_success_fraction(net, sample_pairs))
        if almost is None and net._almost_stable(ideal):
            almost = executed
        cur = net.fingerprint()
        if cur == prev:
            return UsabilityProfile(
                n=n,
                series=tuple(series),
                rounds_to_stable=executed - 1,
                rounds_to_almost=almost if almost is not None else executed - 1,
            )
        prev = cur
    raise RuntimeError(f"not stable within {max_rounds} rounds")


def format_usability(profile: UsabilityProfile) -> str:
    """Routability-over-time report with a sparkline."""
    blocks = " ▁▂▃▄▅▆▇█"
    spark = "".join(blocks[min(8, int(v * 8.999))] for v in profile.series)
    return "\n".join(
        [
            f"Routability during convergence (n={profile.n})",
            "=" * 44,
            f"first full routability : round {profile.first_full_routability()}",
            f"almost stable          : round {profile.rounds_to_almost}",
            f"stable                 : round {profile.rounds_to_stable}",
            f"success fraction/round : {spark}",
        ]
    )
