"""Experiment E8 — classic Chord is not self-stabilizing; Re-Chord is.

Three measurements per size:

* ``chord_tworing_recovered`` — fraction of runs in which classic
  Chord's maintenance repaired the two-ring state (provably 0: the state
  is a fixed point of stabilize/notify/fix_fingers);
* ``chord_random_recovered`` — fraction of runs recovering the correct
  ring from a random weakly connected successor map within the round
  budget;
* ``rechord_recovered`` — Re-Chord from the same adversarial situation
  (two interleaved rings / random graphs), which Theorem 1.1 says is
  always 1.0.
"""

from __future__ import annotations

import random
from typing import Dict, Sequence

from repro.chord.network import ChordNetwork
from repro.core.network import ReChordNetwork
from repro.experiments.runner import (
    DEFAULT_ROOT_SEED,
    MeanStd,
    format_sweep,
    sweep_sizes,
)
from repro.workloads.initial import (
    build_random_network,
    build_two_rings_network,
    random_peer_ids,
)

DEFAULT_SIZES = (8, 16, 32)


def measure_one(n: int, seed: int, budget_rounds: int = 400) -> Dict[str, float]:
    """Recovery comparison at size ``n`` (one seed)."""
    rng = random.Random(seed)
    from repro.idspace.ring import IdSpace

    space = IdSpace()
    ids = random_peer_ids(n, rng, space)

    # classic Chord, two-ring state: run generously, check ring
    chord = ChordNetwork.two_rings(ids, space, fingers_per_round=2)
    chord.run(budget_rounds)
    tworing_recovered = 1.0 if chord.ring_correct() else 0.0

    # classic Chord, random weakly connected successor map
    succ = {}
    order = list(ids)
    rng.shuffle(order)
    for i, u in enumerate(order):
        # successor = random earlier node (weakly connected by induction)
        succ[u] = order[rng.randrange(i)] if i else order[min(1, len(order) - 1)]
    chord2 = ChordNetwork.from_successor_map(succ, space, fingers_per_round=2)
    chord2.run(budget_rounds)
    random_recovered = 1.0 if chord2.ring_correct() else 0.0

    # Re-Chord from the two-ring-plus-bridge state
    rechord = build_two_rings_network(ids, space)
    try:
        rechord.run_until_stable(max_rounds=budget_rounds * 10)
        rechord_recovered = 1.0 if rechord.matches_ideal() else 0.0
    except RuntimeError:
        rechord_recovered = 0.0

    # Re-Chord from a plain random weakly connected graph (sanity)
    rnet = build_random_network(n=n, seed=seed, space=space)
    try:
        rnet.run_until_stable(max_rounds=budget_rounds * 10)
        rechord_random = 1.0 if rnet.matches_ideal() else 0.0
    except RuntimeError:
        rechord_random = 0.0

    return {
        "chord_tworing_recovered": tworing_recovered,
        "chord_random_recovered": random_recovered,
        "rechord_tworing_recovered": rechord_recovered,
        "rechord_random_recovered": rechord_random,
    }


def run_baseline(
    sizes: Sequence[int] = DEFAULT_SIZES,
    seeds: int = 5,
    root_seed: int = DEFAULT_ROOT_SEED,
) -> Dict[int, Dict[str, MeanStd]]:
    """The self-stabilization comparison sweep."""
    return sweep_sizes(measure_one, sizes, seeds, root_seed, label="baseline")


def format_baseline(result: Dict[int, Dict[str, MeanStd]]) -> str:
    """Recovery-rate table (fractions of runs)."""
    return format_sweep(
        result,
        columns=(
            "chord_tworing_recovered",
            "chord_random_recovered",
            "rechord_tworing_recovered",
            "rechord_random_recovered",
        ),
        title="E8 — recovery rate from adversarial states (classic Chord vs Re-Chord)",
    )
