"""A replicated key-value store over the Re-Chord overlay.

Keys are consistent-hashed onto the identifier circle; the peer whose
ring position succeeds the key id is responsible (Chord semantics), and
``replication - 1`` further ring successors hold replicas.  All accesses
route greedily through the overlay (hop counts are surfaced so
applications and experiments can observe the O(log n) behavior).

Churn protocol: after peers join/leave/crash and the overlay
re-stabilizes, call :meth:`KeyValueStore.rebalance` to move/refill data
according to the new responsibility map — the reproduction's equivalent
of Chord's key-migration step.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Set

from repro.core.ideal import chord_successor
from repro.dht.lookup import ReChordRouter
from repro.idspace.keys import key_id


class KeyNotFound(KeyError):
    """Raised when a key has no live replica."""


@dataclass
class StoreStats:
    """Cumulative access statistics (for the experiments)."""

    puts: int = 0
    gets: int = 0
    hops: int = 0
    hop_samples: List[int] = field(default_factory=list)

    def record(self, hops: int) -> None:
        """Record one routed access."""
        self.hops += hops
        self.hop_samples.append(hops)


class KeyValueStore:
    """Distributed dictionary with ring-successor replication."""

    def __init__(self, router: ReChordRouter, replication: int = 1) -> None:
        if replication < 1:
            raise ValueError("replication factor must be >= 1")
        self.router = router
        self.replication = replication
        self.space = router.space
        self._data: Dict[int, Dict[int, Any]] = {
            pid: {} for pid in router.network.peer_ids
        }
        self.stats = StoreStats()

    # ------------------------------------------------------------------
    # placement
    # ------------------------------------------------------------------
    def replica_peers(self, kid: int) -> List[int]:
        """The responsible peer and its ring successors (replica set)."""
        ids = sorted(self.router.network.peer_ids)
        if not ids:
            raise KeyNotFound("no live peers")
        owner = chord_successor(self.space, ids, kid)
        idx = ids.index(owner)
        count = min(self.replication, len(ids))
        return [ids[(idx + k) % len(ids)] for k in range(count)]

    # ------------------------------------------------------------------
    # operations
    # ------------------------------------------------------------------
    def put(self, key: str, value: Any, via: Optional[int] = None) -> int:
        """Store ``key`` (routing from ``via`` if given); returns hops."""
        kid = key_id(key, self.space)
        hops = self._route_hops(via, kid)
        for pid in self.replica_peers(kid):
            self._bucket(pid)[kid] = value
        self.stats.puts += 1
        self.stats.record(hops)
        return hops

    def get(self, key: str, via: Optional[int] = None) -> Any:
        """Fetch ``key``; raises :class:`KeyNotFound` if no replica has it."""
        kid = key_id(key, self.space)
        hops = self._route_hops(via, kid)
        self.stats.gets += 1
        self.stats.record(hops)
        for pid in self.replica_peers(kid):
            bucket = self._data.get(pid)
            if bucket is not None and kid in bucket:
                return bucket[kid]
        raise KeyNotFound(key)

    def delete(self, key: str, via: Optional[int] = None) -> bool:
        """Remove ``key`` from all replicas; returns whether it existed."""
        kid = key_id(key, self.space)
        self._route_hops(via, kid)
        existed = False
        for pid in self.replica_peers(kid):
            bucket = self._data.get(pid)
            if bucket is not None and bucket.pop(kid, None) is not None:
                existed = True
        return existed

    def _route_hops(self, via: Optional[int], kid: int) -> int:
        if via is None:
            return 0
        return self.router.route_id(via, kid).hops

    # ------------------------------------------------------------------
    # in-band access (the traffic plane's storage backend)
    # ------------------------------------------------------------------
    def local_put(self, pid: int, kid: int, value: Any) -> None:
        """Write ``kid`` into peer ``pid``'s local bucket.

        Used by the traffic plane when a routed put request terminates
        at ``pid``: the peer that *believes* it is
        responsible stores the value — replica fan-out and corrective
        moves happen out of band via :meth:`rebalance`, exactly like
        Chord's key-migration step.
        """
        self._bucket(pid)[kid] = value
        self.stats.puts += 1

    def local_get(self, pid: int, kid: int) -> tuple:
        """Read ``kid`` from peer ``pid``'s local bucket.

        Returns ``(found, value)`` — the traffic plane surfaces a miss
        as a ``notfound`` reply instead of an exception, because under
        churn a miss at the believed owner is an expected outcome, not
        an error.
        """
        self.stats.gets += 1
        bucket = self._data.get(pid)
        if bucket is not None and kid in bucket:
            return True, bucket[kid]
        return False, None

    def _bucket(self, pid: int) -> Dict[int, Any]:
        return self._data.setdefault(pid, {})

    # ------------------------------------------------------------------
    # churn handling
    # ------------------------------------------------------------------
    def drop_peer(self, pid: int) -> None:
        """Forget a crashed peer's bucket (its replicas keep the data)."""
        self._data.pop(pid, None)

    def rebalance(self) -> int:
        """Re-place every stored key for the current membership.

        Call after the overlay re-stabilized.  Returns the number of
        (key, peer) placements created or removed.
        """
        self.router.refresh()
        live: Set[int] = set(self.router.network.peer_ids)
        self._data = {pid: bucket for pid, bucket in self._data.items() if pid in live}
        for pid in live:
            self._data.setdefault(pid, {})
        # gather the surviving logical key set
        merged: Dict[int, Any] = {}
        for bucket in self._data.values():
            merged.update(bucket)
        moves = 0
        want: Dict[int, Dict[int, Any]] = {pid: {} for pid in live}
        for kid, value in merged.items():
            for pid in self.replica_peers(kid):
                want[pid][kid] = value
        for pid in live:
            before = self._data[pid]
            after = want[pid]
            moves += len(set(before) ^ set(after))
            self._data[pid] = after
        return moves

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------
    def keys_at(self, pid: int) -> Set[int]:
        """Key ids stored at one peer."""
        return set(self._data.get(pid, ()))

    def total_placements(self) -> int:
        """Number of (key, peer) placements across the network."""
        return sum(len(b) for b in self._data.values())

    def load_per_peer(self) -> Dict[int, int]:
        """Stored key count per peer (load-balance experiments)."""
        return {pid: len(bucket) for pid, bucket in self._data.items()}
