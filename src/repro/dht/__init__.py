"""DHT application layer over the stabilized Re-Chord overlay.

Fact 2.1 says the stable Re-Chord network contains Chord as a subgraph,
"so it can faithfully emulate any applications on top of Chord".  This
package is that application: consistent-hashing key placement, greedy
O(log n)-hop lookups routed over the Re-Chord projection, and a
replicated key-value store that survives churn (with re-stabilization in
between).
"""

from repro.dht.lookup import ReChordRouter
from repro.dht.storage import KeyValueStore

__all__ = ["ReChordRouter", "KeyValueStore"]
