"""Greedy lookups over the stabilized Re-Chord overlay.

The router materializes each peer's outgoing view of the Re-Chord
projection ``E_ReChord`` (real-peer endpoints of unmarked, ring and wrap
edges across all the peer's simulated nodes — these are exactly Chord's
successor, predecessor and finger links by Fact 2.1) and walks the
classic binary-search route.  Path lengths are O(log n) w.h.p. for random
ids, which experiment E7 measures.

Staleness: the materialized views are a snapshot, and silently routing a
snapshot over a network that has since churned was a long-standing
footgun (routes through dead peers, hop counts over vanished edges).
The router now keys its cache on :meth:`ReChordNetwork.view_version` —
a cheap token that moves on every membership event, every out-of-band
topology edit, and every executed round — and checks it before each
routed call:

* ``mode="auto"`` (default) — transparently rebuild the views when the
  network moved on;
* ``mode="strict"`` — raise :class:`StaleViewError` instead, for
  callers that want to control exactly which configuration they route
  on (the experiments that route the *same* snapshot repeatedly);
* ``mode="pin"`` — never rebuild, never raise: the explicit opt-in to
  the historical snapshot semantics (measuring a frozen topology).

For routing that participates in the simulation itself — requests
traveling through the scheduler on each peer's live, possibly degraded
view — use :mod:`repro.traffic` instead.
"""

from __future__ import annotations

from typing import Dict, Set

from repro.chord.routing import RouteResult, route_greedy
from repro.core.network import ReChordNetwork
from repro.idspace.keys import key_id

#: accepted staleness policies
ROUTER_MODES = ("auto", "strict", "pin")


class StaleViewError(RuntimeError):
    """A strict-mode router was asked to route on an outdated snapshot."""


class ReChordRouter:
    """Routing views over a Re-Chord network, cache-keyed on its version.

    The view is rebuilt (or rejected, per ``mode``) whenever the
    network's :meth:`~ReChordNetwork.view_version` no longer matches the
    one the views were built at; :meth:`refresh` remains available for
    explicit rebuilds.

    Auto mode (the default) transparently follows the live network:

    >>> from repro.dht.lookup import ReChordRouter
    >>> from repro.experiments.scaling import build_ideal_network
    >>> net = build_ideal_network(16, 1)
    >>> router = ReChordRouter(net)
    >>> owner = router.owner_of("alice")
    >>> net.crash(owner)                     # the snapshot is now stale
    >>> router.is_stale()
    True
    >>> router.owner_of("alice") != owner    # rebuilt before answering
    True

    Strict mode refuses instead — for callers that must control exactly
    which configuration they route on:

    >>> strict = ReChordRouter(net, mode="strict")
    >>> net.crash(net.peer_ids[0])
    >>> strict.owner_of("bob")  # doctest: +ELLIPSIS
    Traceback (most recent call last):
        ...
    repro.dht.lookup.StaleViewError: router views built at ...

    ``mode="pin"`` opts back into the historical frozen-snapshot
    semantics (never rebuild, never raise).
    """

    def __init__(self, network: ReChordNetwork, mode: str = "auto") -> None:
        if mode not in ROUTER_MODES:
            raise ValueError(f"unknown router mode {mode!r}; choose from {ROUTER_MODES}")
        self.network = network
        self.space = network.space
        self.mode = mode
        self._views: Dict[int, Set[int]] = {}
        self._built_at = None
        self.refresh()

    def refresh(self) -> None:
        """Rebuild per-peer neighbor views from the current state."""
        views: Dict[int, Set[int]] = {pid: set() for pid in self.network.peer_ids}
        for src, dst in self.network.rechord_projection():
            views[src].add(dst)
        self._views = views
        #: membership *of the snapshot* — routing must stay internally
        #: consistent (owner computed over the same peer set the views
        #: cover), which matters for pin mode where the live network may
        #: have moved on
        self._peer_ids = sorted(views)
        self._built_at = self.network.view_version()

    def is_stale(self) -> bool:
        """Whether the network moved on since the views were built."""
        return self.network.view_version() != self._built_at

    def _ensure_fresh(self) -> None:
        if not self.is_stale() or self.mode == "pin":
            return
        if self.mode == "strict":
            raise StaleViewError(
                f"router views built at {self._built_at} but the network is at "
                f"{self.network.view_version()}; call refresh() or use mode='auto'"
            )
        self.refresh()

    def neighbors(self, peer_id: int) -> Set[int]:
        """The peer's outgoing real-peer links (Chord view).

        The staleness policy runs first: auto mode may rebuild the
        views, strict mode may raise :class:`StaleViewError`.
        """
        self._ensure_fresh()
        return self._views[peer_id]

    def route_id(self, start: int, target_id: int, max_hops: int = 512) -> RouteResult:
        """Greedy-route an identifier from ``start``.

        The staleness policy (``auto``/``strict``/``pin``) is applied
        before the walk, so auto-mode routes always run on views
        matching the network's current :meth:`~ReChordNetwork.view_version`.
        Routing over a degraded snapshot can fail; see
        :func:`repro.chord.routing.route_greedy` for the failure kinds.
        """
        self._ensure_fresh()
        if start not in self._views:
            raise KeyError(f"peer {start} is not in the routing snapshot")
        return route_greedy(
            self.space,
            self._peer_ids,
            self._views.__getitem__,
            start,
            target_id,
            max_hops=max_hops,
        )

    def route_key(self, start: int, key: str, max_hops: int = 512) -> RouteResult:
        """Greedy-route a named key (consistent-hashed onto the circle,
        same staleness policy as :meth:`route_id`)."""
        return self.route_id(start, key_id(key, self.space), max_hops=max_hops)

    def owner_of(self, key: str) -> int:
        """The peer responsible for ``key`` under the snapshot's
        membership (no routing; the staleness policy still applies, so
        auto mode answers for the *current* membership)."""
        from repro.core.ideal import chord_successor

        self._ensure_fresh()
        return chord_successor(self.space, self._peer_ids, key_id(key, self.space))
