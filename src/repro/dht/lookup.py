"""Greedy lookups over the stabilized Re-Chord overlay.

The router materializes each peer's outgoing view of the Re-Chord
projection ``E_ReChord`` (real-peer endpoints of unmarked, ring and wrap
edges across all the peer's simulated nodes — these are exactly Chord's
successor, predecessor and finger links by Fact 2.1) and walks the
classic binary-search route.  Path lengths are O(log n) w.h.p. for random
ids, which experiment E7 measures.
"""

from __future__ import annotations

from typing import Dict, Set

from repro.chord.routing import RouteResult, route_greedy
from repro.core.network import ReChordNetwork
from repro.idspace.keys import key_id


class ReChordRouter:
    """Routing views over a (stable) Re-Chord network.

    The view is a snapshot: rebuild the router (or call
    :meth:`refresh`) after membership changes and re-stabilization.
    """

    def __init__(self, network: ReChordNetwork) -> None:
        self.network = network
        self.space = network.space
        self._views: Dict[int, Set[int]] = {}
        self.refresh()

    def refresh(self) -> None:
        """Rebuild per-peer neighbor views from the current state."""
        views: Dict[int, Set[int]] = {pid: set() for pid in self.network.peer_ids}
        for src, dst in self.network.rechord_projection():
            views[src].add(dst)
        self._views = views

    def neighbors(self, peer_id: int) -> Set[int]:
        """The peer's outgoing real-peer links (Chord view)."""
        return self._views[peer_id]

    def route_id(self, start: int, target_id: int, max_hops: int = 512) -> RouteResult:
        """Greedy-route an identifier from ``start``."""
        return route_greedy(
            self.space,
            self.network.peer_ids,
            self.neighbors,
            start,
            target_id,
            max_hops=max_hops,
        )

    def route_key(self, start: int, key: str, max_hops: int = 512) -> RouteResult:
        """Greedy-route a named key (SHA-1 consistent hashing)."""
        return self.route_id(start, key_id(key, self.space), max_hops=max_hops)

    def owner_of(self, key: str) -> int:
        """The peer responsible for ``key`` (no routing)."""
        from repro.core.ideal import chord_successor

        return chord_successor(self.space, self.network.peer_ids, key_id(key, self.space))
