"""Re-Chord: a self-stabilizing Chord overlay network (SPAA 2011).

Full reproduction of Kniesburges, Koutsopoulos & Scheideler's Re-Chord:
the self-stabilizing protocol itself (:mod:`repro.core`), the synchronous
message-passing substrate (:mod:`repro.netsim`), identifier-space
arithmetic (:mod:`repro.idspace`), classic Chord and linearization
baselines (:mod:`repro.chord`, :mod:`repro.linearize`), a DHT layer on
top of the stabilized overlay (:mod:`repro.dht`), an in-band traffic
plane routing live operations through the overlay *while* it stabilizes
(:mod:`repro.traffic`), a declarative adversity-scenario engine
(:mod:`repro.scenarios`), workload generators (:mod:`repro.workloads`)
and the experiment harness regenerating every figure of the paper
(:mod:`repro.experiments`).  ``docs/ARCHITECTURE.md`` is the map.

Quickstart::

    from repro import ReChordNetwork, build_random_network

    net = build_random_network(n=32, seed=1)
    report = net.run_until_stable(track_almost=True)
    assert net.matches_ideal()
"""

from repro.idspace import IdSpace
from repro.core import (
    NodeRef,
    ReChordNetwork,
    RuleConfig,
    compute_ideal,
)
from repro.workloads import build_random_network

__version__ = "1.0.0"

__all__ = [
    "IdSpace",
    "NodeRef",
    "ReChordNetwork",
    "RuleConfig",
    "compute_ideal",
    "build_random_network",
    "__version__",
]
