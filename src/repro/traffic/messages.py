"""In-band traffic messages: lookups and KV operations as first-class
payloads routed *through* the simulated overlay.

Unlike the snapshot router (:mod:`repro.dht.lookup`), these messages
travel the :mod:`repro.netsim` scheduler alongside stabilization
traffic: each peer forwards a request greedily using its **current**
(possibly degraded) Re-Chord view, one hop per synchronous round.  A
request is hop-stamped (``hops``) and carries the visited-peer ``path``
as an explicit seen-set, so routing loops over corrupt views are
detected in-band instead of burning the TTL.

Payloads subclass :class:`repro.netsim.messages.AppPayload` and provide
the same ``canonical()`` / ``refs()`` surface as the protocol events —
in-flight traffic is part of the global configuration fingerprint, and
the liveness-flip scans of the incremental engine enumerate every
pending payload's refs.  Traffic messages carry peer *addresses* (plain
ids), never :class:`NodeRef` s, and handlers never consult the liveness
oracle, so ``refs()`` is empty: a membership flip cannot change what a
receiver does with a traffic message, which keeps the dirty-set wake
rules exact without extra scans.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Any, Optional, Tuple

from repro.netsim.messages import AppPayload
from repro.telemetry.tracing import TraceContext

#: operation kinds carried by requests
OP_LOOKUP = "lookup"
OP_GET = "get"
OP_PUT = "put"

#: terminal statuses stamped on replies (in-band failures included)
ST_OK = "ok"
ST_NOTFOUND = "notfound"
ST_LOOP = "loop"
ST_TTL = "ttl"
ST_DEAD_END = "dead_end"

#: collector-side outcomes that never ride a reply message
OUT_TIMEOUT = "timeout"
OUT_MISROUTE = "misroute"
OUT_ORIGIN_DEAD = "origin_dead"


@dataclass(frozen=True)
class LookupRequest(AppPayload):
    """A routed operation in flight toward the peer responsible for
    ``kid``.

    ``op`` selects lookup/get/put semantics at the terminal peer;
    ``origin`` is the peer awaiting the reply; ``path`` lists every peer
    that has held the request (origin first) and doubles as the
    loop-detection seen-set; ``value`` is the payload of put requests.
    """

    op: str
    op_id: int
    origin: int
    kid: int
    ttl: int
    hops: int = 0
    path: Tuple[int, ...] = ()
    value: Any = None
    #: 1-based attempt number of the resilient request plane; retries
    #: relaunch the op with attempt 2, 3, ... so replies can be matched
    #: to the attempt that produced them (stale-failure suppression)
    attempt: int = 1
    #: True for the duplicate probe a hedged op launches after its
    #: hedge delay (first reply wins, the loser is suppressed)
    hedge: bool = False
    #: causal hop trace of a telemetry-sampled op.  ``compare=False``
    #: keeps it out of equality/hash AND it is excluded from
    #: ``canonical()``: a traced run is byte-identical to an untraced
    #: one (fingerprints, interning, pending multisets all unchanged)
    trace: Optional[TraceContext] = field(compare=False, default=None)

    def forwarded(self, next_hop: int) -> "LookupRequest":
        """The hop-stamped copy sent to ``next_hop``."""
        return replace(self, hops=self.hops + 1, path=self.path + (next_hop,))

    def canonical(self) -> tuple:
        """Sortable identity tuple for fingerprints.

        The resilience fields are appended only when non-default: a run
        with the resilience plane disabled produces byte-identical
        tuples — and therefore identical configuration fingerprints and
        baseline digests — to every run recorded before retries existed.
        """
        base = (
            "traffic-req",
            self.op,
            self.op_id,
            self.origin,
            self.kid,
            self.ttl,
            self.hops,
            self.path,
            repr(self.value),
        )
        if self.attempt != 1 or self.hedge:
            return base + (self.attempt, self.hedge)
        return base

    def refs(self) -> tuple:
        """Traffic carries peer addresses, not node refs (see module doc)."""
        return ()


@dataclass(frozen=True)
class LookupReply(AppPayload):
    """Terminal verdict of one request, sent straight back to the origin.

    ``owner`` is the peer that terminated the request (the self-believed
    responsible peer for ``ok``/``notfound``, the peer where forwarding
    failed otherwise); ``hops`` is the request's hop stamp at
    termination.  The reply uses the origin address carried by the
    request — the connection-layer direct response, one round — so
    latency measures the *forward* routing path.
    """

    op: str
    op_id: int
    origin: int
    kid: int
    status: str
    owner: int
    hops: int
    value: Any = None
    #: attempt number echoed from the request that produced this reply
    attempt: int = 1
    #: True when this reply answers a hedged duplicate probe
    hedge: bool = False
    #: completed hop trace of a sampled op (see LookupRequest.trace)
    trace: Optional[TraceContext] = field(compare=False, default=None)

    def canonical(self) -> tuple:
        """Sortable identity tuple for fingerprints.

        As on :meth:`LookupRequest.canonical`, the resilience fields are
        appended only when non-default so resilience-off runs keep their
        historical fingerprints bit-for-bit.
        """
        base = (
            "traffic-rep",
            self.op,
            self.op_id,
            self.origin,
            self.kid,
            self.status,
            self.owner,
            self.hops,
            repr(self.value),
        )
        if self.attempt != 1 or self.hedge:
            return base + (self.attempt, self.hedge)
        return base

    def refs(self) -> tuple:
        """Traffic carries peer addresses, not node refs (see module doc)."""
        return ()
