"""The traffic plane: live lookup/KV operations routed *through* the
simulated overlay, concurrent with self-stabilization.

The snapshot router (:mod:`repro.dht.lookup`) answers "could this
network route?" on a frozen view; this subsystem answers the question
the paper actually poses — the overlay self-stabilizes *while being
used*.  Operations are injected as :class:`LookupRequest` messages at
their origin peer, travel the :mod:`repro.netsim` scheduler alongside
stabilization traffic (one hop per synchronous round), and every peer
forwards them greedily using its **current** — possibly degraded —
Re-Chord view: the real-peer endpoints of its unmarked, ring and wrap
edges, exactly the per-peer slice of ``rechord_projection()``.

Kernel integration (the exactness contract the engine-equivalence suite
enforces):

* traffic payloads ride ordinary envelopes, so in-flight requests are
  part of the configuration fingerprint and of the scheduler's rolling
  pending-hash — no side channel;
* a peer holding an in-flight request is *active* by construction: the
  sender's emission diff (or the injection ``post()``) marks the
  receiver dirty, so a request is always consumed by an executed step,
  never swallowed by a replay inbox-clear;
* traffic is one-shot, not a steady flow, so the protocol layer forces
  every traffic-touched peer to execute once more the following round
  (:meth:`RoundContext.reexecute_next_round`): the steady-emission
  cache never contains a traffic message, and the resulting emission
  diff wakes the downstream receiver of the vanished flow;
* handlers read only ``(peer state, message, store)`` — never the
  liveness oracle — and never mutate overlay state, so no additional
  wake rules are needed and ``refs()`` of traffic payloads is empty.

Forwarding semantics (mirrors :func:`repro.chord.routing.route_greedy`,
but with purely local termination): a peer answers a request itself when
the key lies in ``(pred, self]`` for its *believed* predecessor (its
closest-real-left pointer, falling back to the wrap pointer at the ring
seam); otherwise it forwards to the known neighbor making the most
clockwise progress without overshooting, falling back to its closest
clockwise neighbor.  Degraded views can therefore misroute (answered by
a peer that is not the true successor), loop (caught by the request's
seen-set) or dead-end — all surfaced as distinct outcomes by the
:class:`repro.traffic.slo.SLOCollector`.
"""

from __future__ import annotations

import heapq
from bisect import bisect_left, bisect_right
from dataclasses import replace
from typing import TYPE_CHECKING, Any, Dict, List, Optional, Sequence, Set, Tuple

from repro.telemetry.tracing import TraceContext

from repro.idspace.keys import key_id
from repro.netsim.messages import Envelope
from repro.netsim.scheduler import RoundContext
from repro.netsim.timemodel import stable_u64
from repro.traffic.messages import (
    OP_GET,
    OP_LOOKUP,
    OP_PUT,
    ST_DEAD_END,
    ST_LOOP,
    ST_NOTFOUND,
    ST_OK,
    ST_TTL,
    LookupReply,
    LookupRequest,
)
from repro.traffic.slo import MODE_LIST, IssuedOp, SLOCollector

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (typing only)
    from repro.core.network import ReChordNetwork
    from repro.core.protocol import ReChordPeer
    from repro.dht.storage import KeyValueStore


class TrafficPlane:
    """Owns injection, per-peer forwarding, and completion accounting.

    Construction attaches the plane to the network (every current and
    future peer dispatches traffic payloads here).  ``store`` backs the
    in-band ``put``/``get`` operations with per-peer buckets
    (:meth:`KeyValueStore.local_put` / :meth:`~KeyValueStore.local_get`)
    and is required only when KV traffic is issued.

    One lookup routed hop-by-hop through a live overlay:

    >>> from repro.experiments.scaling import build_ideal_network
    >>> from repro.traffic.plane import TrafficPlane
    >>> net = build_ideal_network(16, 1)
    >>> plane = TrafficPlane(net)
    >>> op_id = plane.lookup("alice", origin=net.peer_ids[0])
    >>> rounds = plane.drain()          # run until the ledger is empty
    >>> done = plane.collector.completed[0]
    >>> done.op_id == op_id and done.outcome
    'ok'

    Attach a :class:`repro.traffic.generator.WorkloadGenerator` for a
    sustained arrival process instead of manual injection.
    """

    def __init__(
        self,
        net: "ReChordNetwork",
        store: Optional["KeyValueStore"] = None,
        default_ttl: Optional[int] = None,
        default_deadline: int = 48,
        collector_mode: str = MODE_LIST,
        sketch_quantiles: Optional[Sequence[float]] = None,
        reservoir_size: int = 1024,
        max_attempts: int = 1,
        retry_backoff: int = 4,
        hedge_after: Optional[int] = None,
        route_redundancy: int = 1,
        retry_seed: int = 0,
    ) -> None:
        if max_attempts < 1:
            raise ValueError("max_attempts must be >= 1")
        if retry_backoff < 1:
            raise ValueError("retry_backoff must be >= 1")
        if hedge_after is not None and hedge_after < 1:
            raise ValueError("hedge_after must be >= 1 (or None)")
        if route_redundancy < 1:
            raise ValueError("route_redundancy must be >= 1")
        self.net = net
        self.store = store
        self.collector = SLOCollector(
            self.true_owner,
            sketch_quantiles=sketch_quantiles,
            mode=collector_mode,
            reservoir_size=reservoir_size,
        )
        #: optional workload generator driven by run_round()
        self.generator = None
        self.default_deadline = default_deadline
        self._default_ttl = default_ttl
        self._next_op_id = 0
        # -- resilient request plane (see "Resilience" in ARCHITECTURE) --
        #: attempts budget per op (1 = retries off, today's behavior)
        self.max_attempts = max_attempts
        #: base backoff in rounds: attempt k relaunches after a delay in
        #: [base*2^(k-1), base*2^k) with seeded jitter (stable_u64)
        self.retry_backoff = retry_backoff
        #: rounds before a still-outstanding attempt launches a hedged
        #: duplicate probe (None = hedging off)
        self.hedge_after = hedge_after
        #: r best circular successors considered per forwarding decision
        #: (1 = today's single memoized-bisect choice, bit-for-bit)
        self.route_redundancy = route_redundancy
        #: seeds the per-(op, attempt) jitter stream
        self.retry_seed = retry_seed
        self.resilience_enabled = (
            max_attempts > 1 or hedge_after is not None or route_redundancy > 1
        )
        #: opt-in schedule log for tests: set to a list to record every
        #: ("retry"|"hedge", op_id, attempt, round) decision in order
        self.attempt_log: Optional[List[Tuple[str, int, int, int]]] = None
        self._track_requests = max_attempts > 1 or hedge_after is not None
        #: untraced request template per outstanding op (relaunch source)
        self._op_request: Dict[int, LookupRequest] = {}
        # launch wheels (mirror the collector's deadline wheel shape):
        # launch_round -> [(op_id, attempt)] plus a heap of rounds
        self._retry_wheel: Dict[int, List[Tuple[int, int]]] = {}
        self._retry_rounds: List[int] = []
        self._hedge_wheel: Dict[int, List[Tuple[int, int]]] = {}
        self._hedge_rounds: List[int] = []
        #: rounds a suspicion stays in force unless re-armed: long
        #: enough to demote a dead hop for a whole retry cycle, short
        #: enough that a stale suspicion of the *responsible* successor
        #: (acquired during an outage, never refuted because no traffic
        #: lands on a demoted peer) cannot divert lookups forever after
        #: the overlay heals
        self.suspect_lease = 2 * default_deadline
        #: suspicion ledger (route_redundancy > 1 only): peer id ->
        #: lease expiry round; armed on every deadline expiry through
        #: that first hop, refuted early by any delivery at the peer,
        #: lapsing on its own otherwise (suspicion is a lease, not a
        #: verdict)
        self._suspects: Dict[int, int] = {}
        #: op_id -> first forwarding hop taken at the origin (suspicion)
        self._first_hop: Dict[int, int] = {}
        if self.resilience_enabled:
            self.collector.resilience_enabled = True
            self.collector.completion_observer = self._on_complete
            if max_attempts > 1:
                self.collector.retry_handler = self._maybe_retry
            if route_redundancy > 1:
                self.collector.timeout_observer = self._on_expiry
        #: sorted live ids cached per membership version (one completion
        #: classification per op must not pay an O(n log n) sort)
        self._live_cache: tuple = (-1, [])
        #: per-peer sorted routing view memo, keyed on ``state.version``
        #: — every effective mutation bumps the version (the standing
        #: PeerState contract), so a hit is exactly the view the linear
        #: rebuild would have produced
        self._view_cache: Dict[int, Tuple[int, List[int]]] = {}
        net.attach_traffic(self)

    def detach(self) -> None:
        """Unhook from the network (outstanding ops will time out).

        An attached generator is paused too — injecting into a detached
        plane would only manufacture phantom timeouts.
        """
        if self.generator is not None:
            self.generator.active = False
        self.net.detach_traffic()

    # ------------------------------------------------------------------
    # oracle helpers (accounting only — never consulted by forwarding)
    # ------------------------------------------------------------------
    def live_ids(self) -> list:
        """Sorted live peer ids, cached per membership version.

        Shared by completion classification and the workload generator
        so quiescent traffic rounds never pay an O(n log n) re-sort.
        """
        version = self.net.membership_version
        if self._live_cache[0] != version:
            self._live_cache = (version, self.net.peer_ids)  # already sorted
        return self._live_cache[1]

    def true_owner(self, kid: int) -> Optional[int]:
        """The peer responsible for ``kid`` under current membership.

        Equivalent to :func:`chord_successor` (first peer at-or-after
        ``kid``, wrapping), but O(log n) per call: one bisect over the
        cached sorted id list — completions are classified once per op
        and must not pay a linear scan each.
        """
        ids = self.live_ids()
        if not ids:
            return None
        i = bisect_left(ids, kid)
        return ids[i] if i < len(ids) else ids[0]

    def ttl_for(self) -> int:
        """Default TTL: generous multiple of the O(log n) path bound.

        TTL counts *hops*, not rounds, so wire delay does not consume
        it — only the deadline (rounds) scales with the delivery model.
        """
        if self._default_ttl is not None:
            return self._default_ttl
        n = max(2, len(self.net.peers))
        return 4 * n.bit_length() + 16

    def deadline_for(self) -> int:
        """Default deadline in rounds, scaled by the wire-delay bound.

        Under unit delivery this is exactly ``default_deadline``; under
        a latency model every hop may cost up to ``delay_bound()``
        rounds on the wire, so the same hop budget needs proportionally
        more rounds before it counts as a timeout.
        """
        return self.default_deadline * max(1, self.net.scheduler.delay_bound())

    # ------------------------------------------------------------------
    # injection
    # ------------------------------------------------------------------
    def issue(
        self,
        op: str,
        key: "str | bytes | int",
        origin: int,
        value: Any = None,
        ttl: Optional[int] = None,
        deadline: Optional[int] = None,
    ) -> int:
        """Inject one operation at ``origin``; returns the op id.

        ``key`` is a name (consistent-hashed) or a raw position on the
        circle.  The request is posted into the origin's own inbox — the
        op "arrives" at the peer like any other message and is forwarded
        from there, so a dead origin fails the op immediately
        (``origin_dead``) and a crashed origin later strands the reply
        (``timeout``).
        """
        if op not in (OP_LOOKUP, OP_GET, OP_PUT):
            raise ValueError(f"unknown traffic op {op!r}")
        if op in (OP_GET, OP_PUT) and self.store is None:
            raise RuntimeError("KV traffic needs a store: TrafficPlane(net, store=...)")
        kid = key if isinstance(key, int) else key_id(key, self.net.space)
        self.net.space.check_id(kid)
        op_id = self._next_op_id
        self._next_op_id += 1
        issue_round = self.net.round_no
        span = deadline if deadline is not None else self.deadline_for()
        issued = IssuedOp(
            op_id=op_id,
            op=op,
            origin=origin,
            kid=kid,
            issue_round=issue_round,
            deadline=issue_round + span,
            deadline_span=span,
        )
        template = LookupRequest(
            op=op,
            op_id=op_id,
            origin=origin,
            kid=kid,
            ttl=ttl if ttl is not None else self.ttl_for(),
            hops=0,
            path=(origin,),
            value=value,
        )
        request = template
        # causal tracing: sampled ops carry a TraceContext on the request
        # (outside payload equality — see messages.LookupRequest.trace)
        tel = self.net.telemetry
        if tel is not None and tel.sampled(op_id):
            request = replace(
                request,
                trace=TraceContext(op_id=op_id, hops=((origin, issue_round, "issue"),)),
            )
        if self.net.scheduler.post(Envelope(origin, origin, request)):
            self.collector.register(issued)
            if self._track_requests:
                self._op_request[op_id] = template
                if self.hedge_after is not None:
                    self._push_launch(
                        self._hedge_wheel,
                        self._hedge_rounds,
                        issue_round + self.hedge_after,
                        op_id,
                        1,
                    )
        else:
            self.collector.fail_unissued(issued, issue_round)
        return op_id

    def issue_batch(
        self,
        ops: Sequence[Tuple[str, int, int, Any]],
        ttl: Optional[int] = None,
        deadline: Optional[int] = None,
    ) -> List[int]:
        """Bulk :meth:`issue`: one pass for a whole round of arrivals.

        ``ops`` is a sequence of ``(op, kid, origin, value)`` tuples with
        the key already resolved to a circle position (the workload
        generator pre-hashes its key universe once, so batch injection
        skips the per-op ``key_id`` digest entirely).  All ops in the
        batch share one ``ttl``/``deadline`` resolution and one
        registration/post sweep; per-op semantics — op-id assignment
        order, trace sampling, dead-origin failure — are identical to
        issuing them one by one.  Returns the op ids in batch order.
        """
        if not ops:
            return []
        bad = {op for op, _, _, _ in ops} - {OP_LOOKUP, OP_GET, OP_PUT}
        if bad:
            raise ValueError(f"unknown traffic op {sorted(bad)[0]!r}")
        if self.store is None and any(op != OP_LOOKUP for op, _, _, _ in ops):
            raise RuntimeError("KV traffic needs a store: TrafficPlane(net, store=...)")
        space = self.net.space
        issue_round = self.net.round_no
        span = deadline if deadline is not None else self.deadline_for()
        deadline_round = issue_round + span
        ttl_val = ttl if ttl is not None else self.ttl_for()
        tel = self.net.telemetry
        op_id = self._next_op_id
        issued_ops: List[IssuedOp] = []
        templates: List[LookupRequest] = []
        envelopes: List[Envelope] = []
        op_ids: List[int] = []
        for op, kid, origin, value in ops:
            space.check_id(kid)
            issued_ops.append(
                IssuedOp(
                    op_id=op_id,
                    op=op,
                    origin=origin,
                    kid=kid,
                    issue_round=issue_round,
                    deadline=deadline_round,
                    deadline_span=span,
                )
            )
            request = LookupRequest(
                op=op,
                op_id=op_id,
                origin=origin,
                kid=kid,
                ttl=ttl_val,
                hops=0,
                path=(origin,),
                value=value,
            )
            templates.append(request)
            if tel is not None and tel.sampled(op_id):
                request = replace(
                    request,
                    trace=TraceContext(
                        op_id=op_id, hops=((origin, issue_round, "issue"),)
                    ),
                )
            envelopes.append(Envelope(origin, origin, request))
            op_ids.append(op_id)
            op_id += 1
        self._next_op_id = op_id
        posted = self.net.scheduler.post_batch(envelopes)
        registered: List[IssuedOp] = []
        for issued, template, ok in zip(issued_ops, templates, posted):
            if ok:
                registered.append(issued)
                if self._track_requests:
                    self._op_request[issued.op_id] = template
                    if self.hedge_after is not None:
                        self._push_launch(
                            self._hedge_wheel,
                            self._hedge_rounds,
                            issue_round + self.hedge_after,
                            issued.op_id,
                            1,
                        )
            else:
                self.collector.fail_unissued(issued, issue_round)
        self.collector.register_batch(registered)
        if tel is not None:
            tel.counters["traffic.batch_calls"] += 1
            tel.counters["traffic.batch_ops"] += len(ops)
        return op_ids

    def lookup(self, key: "str | bytes | int", origin: int, **kw: Any) -> int:
        """Inject a lookup for ``key`` at ``origin``."""
        return self.issue(OP_LOOKUP, key, origin, **kw)

    def put(self, key: "str | bytes | int", value: Any, origin: int, **kw: Any) -> int:
        """Inject an in-band put at ``origin``."""
        return self.issue(OP_PUT, key, origin, value=value, **kw)

    def get(self, key: "str | bytes | int", origin: int, **kw: Any) -> int:
        """Inject an in-band get at ``origin``."""
        return self.issue(OP_GET, key, origin, **kw)

    # ------------------------------------------------------------------
    # resilient request plane: retries, hedges, suspicion
    # ------------------------------------------------------------------
    @staticmethod
    def _push_launch(
        wheel: Dict[int, List[Tuple[int, int]]],
        rounds: List[int],
        launch_round: int,
        op_id: int,
        attempt: int,
    ) -> None:
        bucket = wheel.get(launch_round)
        if bucket is None:
            wheel[launch_round] = [(op_id, attempt)]
            heapq.heappush(rounds, launch_round)
        else:
            bucket.append((op_id, attempt))

    def backoff_delay(self, op_id: int, attempt: int) -> int:
        """Rounds attempt ``attempt + 1`` waits after attempt ``attempt``
        failed: exponential base with seeded jitter.

        The delay lies in ``[base * 2^(attempt-1), base * 2^attempt)``;
        the jitter is drawn from the :func:`stable_u64` stream keyed on
        ``(retry_seed, op_id, attempt)``, so identical seeds reproduce
        identical schedules bit-for-bit on every platform, yet no two
        ops thunder in lockstep.
        """
        base = self.retry_backoff * (1 << (attempt - 1))
        return base + stable_u64("retry", self.retry_seed, op_id, attempt) % base

    def _maybe_retry(self, issued: IssuedOp, round_no: int) -> Optional[IssuedOp]:
        """Collector retry hook: re-register a failed op or decline.

        Called on deadline expiry and on current-attempt failure
        replies.  Returns the replacement :class:`IssuedOp` (fresh
        deadline measured from the relaunch round) or None when the
        attempts budget is spent.
        """
        if issued.attempt >= self.max_attempts:
            return None
        nxt = issued.attempt + 1
        launch = round_no + self.backoff_delay(issued.op_id, issued.attempt)
        span = issued.deadline_span if issued.deadline_span > 0 else self.deadline_for()
        self._push_launch(self._retry_wheel, self._retry_rounds, launch, issued.op_id, nxt)
        self.collector.retries += 1
        if self.attempt_log is not None:
            self.attempt_log.append(("retry", issued.op_id, nxt, launch))
        return replace(issued, attempt=nxt, deadline=launch + span)

    def _launch_due(self) -> None:
        """Post every retry/hedge probe whose launch round has arrived.

        Runs at the top of each traffic round, before generator
        injections (older ops relaunch ahead of new arrivals).  Stale
        launches — the op completed or was superseded during its backoff
        — are skipped by checking the ledger's current attempt.
        """
        round_no = self.net.round_no
        if self._suspects:
            # lapse suspicion leases that were never re-armed: only live
            # timeout evidence keeps a hop demoted
            for pid in [p for p, exp in self._suspects.items() if exp <= round_no]:
                del self._suspects[pid]
        outstanding = self.collector.outstanding
        rounds = self._retry_rounds
        while rounds and rounds[0] <= round_no:
            for op_id, attempt in self._retry_wheel.pop(heapq.heappop(rounds), ()):
                issued = outstanding.get(op_id)
                if issued is None or issued.attempt != attempt:
                    continue  # completed (or superseded) during backoff
                template = self._op_request.get(op_id)
                if template is None:  # pragma: no cover - ledger invariant
                    continue
                probe = replace(template, attempt=attempt)
                if self.net.scheduler.post(Envelope(probe.origin, probe.origin, probe)):
                    if self.hedge_after is not None:
                        self._push_launch(
                            self._hedge_wheel,
                            self._hedge_rounds,
                            round_no + self.hedge_after,
                            op_id,
                            attempt,
                        )
                else:
                    # the origin no longer exists: no probe can ever be
                    # answered (replies address the origin), so spending
                    # the remaining attempts would only defer the truth
                    self.collector.force_timeout(op_id, round_no)
        rounds = self._hedge_rounds
        while rounds and rounds[0] <= round_no:
            for op_id, attempt in self._hedge_wheel.pop(heapq.heappop(rounds), ()):
                issued = outstanding.get(op_id)
                if issued is None or issued.attempt != attempt:
                    continue  # answered or retried: the hedge is moot
                template = self._op_request.get(op_id)
                if template is None:  # pragma: no cover - ledger invariant
                    continue
                probe = replace(template, attempt=attempt, hedge=True)
                if self.net.scheduler.post(Envelope(probe.origin, probe.origin, probe)):
                    self.collector.hedges_issued += 1
                    if self.attempt_log is not None:
                        self.attempt_log.append(("hedge", op_id, attempt, round_no))

    def _on_expiry(self, issued: IssuedOp, round_no: int) -> None:
        """Timeout observer: suspect the first hop the op routed through
        (a lease, re-armed by every further expiry through the hop)."""
        hop = self._first_hop.get(issued.op_id)
        if hop is not None:
            self._suspects[hop] = round_no + self.suspect_lease

    def _on_complete(self, record) -> None:
        """Completion observer: release per-op state, refute suspicion."""
        self._op_request.pop(record.op_id, None)
        hop = self._first_hop.pop(record.op_id, None)
        if hop is not None and record.routed:
            # a delivered answer through this hop is positive evidence
            self._suspects.pop(hop, None)

    # ------------------------------------------------------------------
    # per-peer handler (called from ReChordPeer.step)
    # ------------------------------------------------------------------
    def handle(self, peer: "ReChordPeer", payloads: Sequence[Any], ctx: RoundContext) -> None:
        """Process the traffic payloads delivered to one peer this round."""
        if self._suspects:
            # any delivery the peer processes refutes its suspicion: a
            # black-holed peer never consumes traffic, a slow one does
            self._suspects.pop(peer.state.peer_id, None)
        view: Optional[Sequence[int]] = None
        for payload in payloads:
            if isinstance(payload, LookupRequest):
                if view is None:
                    # the overlay state cannot change mid-step after the
                    # rules ran: one sorted view serves every request
                    view = self._view_for(peer.state)
                self._handle_request(peer, payload, ctx, view)
            elif isinstance(payload, LookupReply):
                self._handle_reply(payload, ctx)
            else:  # pragma: no cover - protocol violation
                raise TypeError(f"unknown traffic payload {payload!r}")

    def _handle_reply(self, reply: LookupReply, ctx: RoundContext) -> None:
        if reply.origin != ctx.self_key:  # pragma: no cover - misrouted
            raise LookupError(f"reply for {reply.origin} delivered to {ctx.self_key}")
        self.collector.on_reply(reply, ctx.round_no)

    def _handle_request(
        self, peer: "ReChordPeer", req: LookupRequest, ctx: RoundContext, view: Sequence[int]
    ) -> None:
        state = peer.state
        me = state.peer_id
        space = state.space
        node0 = state.nodes[0]
        # believed predecessor: the closest real neighbor to the left,
        # falling back to the wrap pointer at the ring seam [D6]
        pred = node0.rl if node0.rl is not None else node0.wrap_rl
        if pred is None or pred.owner == me or space.between_open_closed(pred.owner, req.kid, me):
            self._terminal(me, req, ctx)
            return
        if not view:
            self._reply(req, ST_DEAD_END, me, ctx)
            return
        # the best-progress neighbor — argmin of distance_cw(cand, kid)
        # over candidates in the arc (me, kid] — is the *circular
        # predecessor* of kid in the sorted view, provided it lies in
        # the arc at all: walking counter-clockwise from kid, every id
        # encountered before leaving (me, kid] is inside it, so if the
        # nearest one is outside, the arc holds no candidate.  (Any
        # candidate in (me, kid] also trivially beats distance_cw(me,
        # kid), which the historical linear scan used as its initial
        # bound.)  One bisect replaces the O(v) scan, same decision.
        best = view[bisect_right(view, req.kid) - 1]  # view[-1] wraps
        rule = "greedy"
        if not space.between_open_closed(me, best, req.kid):
            # the key lies between us and every known neighbor: hand the
            # request to our closest clockwise neighbor (the believed
            # successor), who should find itself responsible — i.e. the
            # first view entry after me, wrapping (me is never in view,
            # and ids are distinct, so the argmin is unique)
            best = view[bisect_right(view, me) % len(view)]
            rule = "fallback"
        if self.route_redundancy > 1:
            best = self._redundant_choice(me, req, view, rule, space)
            if best is None:
                # every redundant candidate already held the request
                self._reply(req, ST_LOOP, me, ctx)
                return
        elif best in req.path:
            self._reply(req, ST_LOOP, me, ctx)
            return
        if req.hops + 1 > req.ttl:
            self._reply(req, ST_TTL, me, ctx)
            return
        fwd = req.forwarded(best)
        if req.trace is not None:
            # record the forwarding decision this hop took (the trace
            # rides outside payload equality: behavior is unchanged)
            fwd = replace(fwd, trace=req.trace.extended(me, ctx.round_no, rule))
        if self.route_redundancy > 1 and req.hops == 0 and me == req.origin:
            # remember the first hop each attempt routes through so a
            # later expiry can suspect it (and a delivery refute it)
            self._first_hop[req.op_id] = best
        ctx.send(best, fwd)

    def _redundant_choice(
        self, me: int, req: LookupRequest, view: Sequence[int], rule: str, space
    ) -> Optional[int]:
        """Pick among the r best candidates, demoting suspected hops.

        Candidate order is best-progress first: under the greedy rule
        the r circular predecessors of ``kid`` that still lie in the
        progress arc ``(me, kid]``; under the seam fallback the r
        closest clockwise neighbors (the believed successor chain).
        Candidates already on the request path are skipped (the same
        loop discipline as the r=1 plane), then the best *unsuspected*
        candidate wins; if every fresh candidate is suspected, the best
        one is used anyway — last resort beats black-holing.  With an
        empty suspicion ledger and a path-free primary candidate this
        returns exactly the r=1 decision.
        """
        n = len(view)
        cands: List[int] = []
        if rule == "greedy":
            i = bisect_right(view, req.kid) - 1
            for j in range(min(self.route_redundancy, n)):
                cand = view[(i - j) % n]
                if not space.between_open_closed(me, cand, req.kid):
                    break  # walking ccw from kid left the progress arc
                cands.append(cand)
        else:
            i = bisect_right(view, me)
            for j in range(min(self.route_redundancy, n)):
                cands.append(view[(i + j) % n])
        fresh = [c for c in cands if c not in req.path]
        if not fresh:
            return None
        for cand in fresh:
            if cand not in self._suspects:
                return cand
        return fresh[0]

    def _terminal(self, me: int, req: LookupRequest, ctx: RoundContext) -> None:
        """Execute the operation at the self-believed responsible peer."""
        # classification accounting (external to the simulation — not
        # part of the message, so handler emissions stay a pure function
        # of peer state + payload): sample who is really responsible NOW,
        # while the answer is produced; churn during the reply's transit
        # round must not reclassify a correct answer as a misroute
        self.collector.note_answer_truth(
            req.op_id, self.true_owner(req.kid), attempt=req.attempt, hedged=req.hedge
        )
        value = None
        if req.op == OP_PUT:
            if self.store is None:  # pragma: no cover - guarded at issue
                raise RuntimeError("put arrived with no store attached")
            self.store.local_put(me, req.kid, req.value)
            status = ST_OK
        elif req.op == OP_GET:
            if self.store is None:  # pragma: no cover - guarded at issue
                raise RuntimeError("get arrived with no store attached")
            found, value = self.store.local_get(me, req.kid)
            status = ST_OK if found else ST_NOTFOUND
        else:
            status = ST_OK
        self._reply(req, status, me, ctx, value)

    def _reply(
        self,
        req: LookupRequest,
        status: str,
        owner: int,
        ctx: RoundContext,
        value: Any = None,
    ) -> None:
        reply = LookupReply(
            op=req.op,
            op_id=req.op_id,
            origin=req.origin,
            kid=req.kid,
            status=status,
            owner=owner,
            hops=req.hops,
            value=value,
            attempt=req.attempt,
            hedge=req.hedge,
            # the terminal hop closes the causal trace with its status
            trace=(
                req.trace.extended(owner, ctx.round_no, status)
                if req.trace is not None else None
            ),
        )
        if req.origin == ctx.self_key:
            # terminated at the origin itself: complete without a message
            self.collector.on_reply(reply, ctx.round_no)
        else:
            ctx.send(req.origin, reply)

    def _view_for(self, state) -> List[int]:
        """The peer's sorted routing view, memoized on ``state.version``.

        ``PeerState.version`` bumps on every effective mutation (the
        standing contract the incremental kernel is built on), so a
        version hit returns exactly the view a fresh rebuild would
        produce; rules run before traffic inside a step, so the version
        observed here already reflects this round's repairs.  The cache
        is pruned of departed peers when it outgrows the live set, so a
        long churny campaign cannot accumulate unbounded entries.
        """
        me = state.peer_id
        cached = self._view_cache.get(me)
        if cached is not None and cached[0] == state.version:
            return cached[1]
        view = sorted(self._local_view(state))
        if len(self._view_cache) >= 2 * len(self.net.peers) + 64:
            live = self.net.peers
            for pid in [p for p in self._view_cache if p not in live]:
                del self._view_cache[pid]
        self._view_cache[me] = (state.version, view)
        return view

    @staticmethod
    def _local_view(state) -> Set[int]:
        """The peer's outgoing Re-Chord view: real-peer endpoints of its
        unmarked, ring and wrap edges across all simulated nodes (the
        per-peer slice of ``rechord_projection()``)."""
        me = state.peer_id
        view: Set[int] = set()
        for node in state.nodes.values():
            for ref in node.nu:
                if ref.is_real and ref.owner != me:
                    view.add(ref.owner)
            for ref in node.nr:
                if ref.is_real and ref.owner != me:
                    view.add(ref.owner)
            for ref in node.wrap_refs():
                if ref.is_real and ref.owner != me:
                    view.add(ref.owner)
        return view

    # ------------------------------------------------------------------
    # driving
    # ------------------------------------------------------------------
    def run_round(self) -> None:
        """One round of the traffic-carrying network.

        Launches due retry/hedge probes (resilient plane only), injects
        the generator's arrivals for this round (if a generator is
        attached), executes one synchronous round, then sweeps deadline
        expirations.
        """
        if self.resilience_enabled:
            self._launch_due()
        if self.generator is not None:
            self.generator.inject()
        self.net.run_round()
        self.collector.expire(self.net.round_no)

    def run(self, rounds: int) -> None:
        """Execute ``rounds`` traffic-carrying rounds."""
        for _ in range(rounds):
            self.run_round()

    def drain(self, max_rounds: int = 512) -> int:
        """Run without new injections until no op is outstanding.

        Pending retry/hedge relaunches still fire (an op in backoff is
        outstanding work, not a new injection).  Deadlines bound this
        loop; raises a diagnostic error listing the stuck ops if any are
        still outstanding after ``max_rounds`` (a stuck ledger is a bug,
        not a timeout).
        """
        executed = 0
        while self.collector.outstanding:
            if executed >= max_rounds:
                raise RuntimeError(self._drain_diagnostic(executed))
            if self.resilience_enabled:
                self._launch_due()
            self.net.run_round()
            self.collector.expire(self.net.round_no)
            executed += 1
        return executed

    def _drain_diagnostic(self, executed: int, limit: int = 16) -> str:
        """Describe the stuck ledger: op ids, statuses, deadlines.

        A drain that exhausts its round budget used to die with a bare
        count; debugging one meant re-running under a debugger.  The
        diagnostic lists each stuck op's identity, current attempt, and
        whether it is awaiting a reply (with its deadline round) or
        sitting in a retry backoff (with its relaunch round).
        """
        outstanding = self.collector.outstanding
        relaunch: Dict[int, int] = {}
        for wheel in (self._retry_wheel, self._hedge_wheel):
            for launch_round, entries in wheel.items():
                for op_id, _attempt in entries:
                    if op_id in outstanding:
                        prior = relaunch.get(op_id)
                        if prior is None or launch_round < prior:
                            relaunch[op_id] = launch_round
        lines = []
        for op_id in sorted(outstanding)[:limit]:
            issued = outstanding[op_id]
            if op_id in relaunch:
                status = (
                    f"in backoff, relaunch at r{relaunch[op_id]}, "
                    f"deadline r{issued.deadline}"
                )
            else:
                status = f"awaiting reply, deadline r{issued.deadline}"
            lines.append(
                f"op {op_id} ({issued.op} kid={issued.kid} origin={issued.origin} "
                f"attempt={issued.attempt}, issued r{issued.issue_round}): {status}"
            )
        extra = len(outstanding) - min(len(outstanding), limit)
        tail = f" (+{extra} more)" if extra else ""
        return (
            f"{len(outstanding)} ops still outstanding after {executed} rounds "
            f"(now r{self.net.round_no}):\n  " + "\n  ".join(lines) + tail
        )
