"""Closed-loop workload generation for the traffic plane.

Arrivals are generated per round from a fractional-rate accumulator
(rate 0.5 injects one op every other round; rate 8 injects eight per
round), optionally throttled to a maximum number of outstanding
operations — the closed loop: completions free slots, so the offered
load adapts to what the (possibly churning) overlay can absorb.  Key
popularity is uniform or Zipf over a fixed named-key universe, origins
are uniform over *live* peers, and every draw comes from one seeded
stream, so a schedule is exactly reproducible — the engine-equivalence
tests drive two kernels with twin generators and compare fingerprints.
"""

from __future__ import annotations

import random
from bisect import bisect_left
from typing import Any, List, Optional, Sequence, Tuple

from repro.idspace.keys import key_id
from repro.traffic.messages import OP_GET, OP_LOOKUP, OP_PUT
from repro.traffic.plane import TrafficPlane

try:  # vectorized draw mapping (the raw seeded stream is unchanged)
    import numpy as _np
except ImportError:  # pragma: no cover - numpy is in the base image
    _np = None

#: popularity shapes
POP_UNIFORM = "uniform"
POP_ZIPF = "zipf"

#: below this many arrivals per round the numpy round-trip costs more
#: than the pure-python bisect mapping it replaces
_VECTOR_MIN = 64


class WorkloadGenerator:
    """Seeded per-round arrival process bound to one plane.

    ``op_mix`` weights the operation kinds, e.g.
    ``((OP_LOOKUP, 0.6), (OP_GET, 0.2), (OP_PUT, 0.2))``; puts carry
    deterministic serial values so runs are comparable.  Construction
    registers the generator on the plane (``plane.run_round`` calls
    :meth:`inject` each round); set :attr:`active` to False to pause.

    Rate 2 injects two seeded arrivals per traffic-carrying round:

    >>> from repro.experiments.scaling import build_ideal_network
    >>> from repro.traffic.plane import TrafficPlane
    >>> from repro.traffic.generator import WorkloadGenerator
    >>> plane = TrafficPlane(build_ideal_network(16, 1))
    >>> gen = WorkloadGenerator(plane, rate=2.0, seed=7)
    >>> plane.run(4)
    >>> gen.issued
    8
    """

    def __init__(
        self,
        plane: TrafficPlane,
        rate: float = 2.0,
        op_mix: Sequence[Tuple[str, float]] = ((OP_LOOKUP, 1.0),),
        key_universe: int = 64,
        popularity: str = POP_UNIFORM,
        zipf_s: float = 1.1,
        deadline: Optional[int] = None,
        ttl: Optional[int] = None,
        max_outstanding: Optional[int] = None,
        seed: int = 0,
    ) -> None:
        if rate < 0:
            raise ValueError("rate must be non-negative")
        if key_universe < 1:
            raise ValueError("need at least one key")
        for op, weight in op_mix:
            if op not in (OP_LOOKUP, OP_GET, OP_PUT):
                raise ValueError(f"unknown op {op!r} in mix")
            if weight < 0:
                raise ValueError("op weights must be non-negative")
        if popularity not in (POP_UNIFORM, POP_ZIPF):
            raise ValueError(f"unknown popularity {popularity!r}")
        self.plane = plane
        plane.generator = self
        self.rate = float(rate)
        self.deadline = deadline
        self.ttl = ttl
        self.max_outstanding = max_outstanding
        self.rng = random.Random(seed)
        self.keys: Tuple[str, ...] = tuple(f"key-{i}" for i in range(key_universe))
        self.kids: Tuple[int, ...] = tuple(key_id(k, plane.net.space) for k in self.keys)
        # cumulative popularity weights; None means uniform
        self._cum: Optional[Tuple[float, ...]] = None
        if popularity == POP_ZIPF:
            acc, cum = 0.0, []
            for rank in range(1, key_universe + 1):
                acc += 1.0 / rank**zipf_s
                cum.append(acc)
            self._cum = tuple(cum)
        total = sum(w for _, w in op_mix)
        if total <= 0:
            raise ValueError("op mix weights sum to zero")
        acc, mix = 0.0, []
        for op, weight in op_mix:
            acc += weight / total
            mix.append((acc, op))
        self._mix: Tuple[Tuple[float, str], ...] = tuple(mix)
        # split columns of the mix for the vectorized batch mapping
        self._mix_edges: Tuple[float, ...] = tuple(edge for edge, _ in mix)
        self._mix_ops: Tuple[str, ...] = tuple(op for _, op in mix)
        self._mix_edges_np = _np.asarray(self._mix_edges) if _np is not None else None
        self._cum_np = (
            _np.asarray(self._cum) if _np is not None and self._cum is not None else None
        )
        self._credit = 0.0
        self._value_serial = 0
        #: total ops handed to the plane
        self.issued = 0
        #: pause switch (drain phases leave the generator attached)
        self.active = True

    # ------------------------------------------------------------------
    # draws
    # ------------------------------------------------------------------
    def draw_key(self) -> str:
        """One key name from the popularity distribution."""
        if self._cum is None:
            return self.keys[self.rng.randrange(len(self.keys))]
        x = self.rng.random() * self._cum[-1]
        return self.keys[min(bisect_left(self._cum, x), len(self.keys) - 1)]

    def draw_op(self) -> str:
        """One operation kind from the mix."""
        x = self.rng.random()
        for edge, op in self._mix:
            if x <= edge:
                return op
        return self._mix[-1][1]  # pragma: no cover - float edge

    # ------------------------------------------------------------------
    # the per-round arrival process
    # ------------------------------------------------------------------
    def inject(self) -> int:
        """Issue this round's arrivals; returns how many were injected.

        With ``max_outstanding`` set, arrivals beyond the free slots are
        *dropped*, not queued — the closed loop throttles offered load
        instead of building a retroactive burst.

        The round's arrivals are drawn as one batch and handed to
        :meth:`TrafficPlane.issue_batch` in a single registration/post
        sweep; the seeded draw stream (and with it every recorded
        schedule) is identical to the historical one-op-at-a-time loop
        — see :meth:`_draw_batch`.
        """
        if not self.active or self.rate == 0:
            return 0
        ids = self.plane.live_ids()
        if not ids:
            return 0
        self._credit += self.rate
        budget = int(self._credit)
        self._credit -= budget
        if self.max_outstanding is not None:
            budget = min(
                budget,
                max(0, self.max_outstanding - self.plane.collector.outstanding_count()),
            )
        if budget <= 0:
            return budget
        self.plane.issue_batch(
            self._draw_batch(budget, ids), ttl=self.ttl, deadline=self.deadline
        )
        self.issued += budget
        return budget

    def _draw_batch(
        self, budget: int, ids: Sequence[int]
    ) -> List[Tuple[str, int, int, Any]]:
        """Draw ``budget`` arrivals as ``(op, kid, origin, value)`` rows.

        Stream identity is the contract here: the raw draws replay the
        historical per-arrival order exactly — op uniform, key draw,
        origin index, one triple per arrival from the same seeded
        ``random.Random`` stream (``choice(ids)`` and
        ``randrange(len(ids))`` consume identical ``_randbelow`` calls)
        — so every seeded schedule, and every baseline recorded from
        one, is unchanged.  Only the *mapping* of raw uniforms onto the
        cumulative op-mix/Zipf edges is vectorized: one numpy
        ``searchsorted`` per column when available and worthwhile, a
        pure ``bisect_left`` sweep otherwise (both reproduce the
        first-edge->=x scan and the historical end clamps exactly).
        Keys come from the pre-hashed :attr:`kids` table, so batch
        injection never re-digests a key name.
        """
        rng = self.rng
        n_keys = len(self.keys)
        n_ids = len(ids)
        uniform = self._cum is None
        op_draws: List[float] = []
        key_draws: list = []
        origin_idx: List[int] = []
        if uniform:
            for _ in range(budget):
                op_draws.append(rng.random())
                key_draws.append(rng.randrange(n_keys))
                origin_idx.append(rng.randrange(n_ids))
        else:
            cum_total = self._cum[-1]
            for _ in range(budget):
                op_draws.append(rng.random())
                key_draws.append(rng.random() * cum_total)
                origin_idx.append(rng.randrange(n_ids))
        last_op = len(self._mix_ops) - 1
        if _np is not None and budget >= _VECTOR_MIN:
            op_idx = _np.minimum(
                _np.searchsorted(self._mix_edges_np, op_draws, side="left"), last_op
            ).tolist()
            key_idx = (
                key_draws
                if uniform
                else _np.minimum(
                    _np.searchsorted(self._cum_np, key_draws, side="left"), n_keys - 1
                ).tolist()
            )
        else:
            edges = self._mix_edges
            op_idx = [min(bisect_left(edges, x), last_op) for x in op_draws]
            key_idx = (
                key_draws
                if uniform
                else [min(bisect_left(self._cum, x), n_keys - 1) for x in key_draws]
            )
        mix_ops = self._mix_ops
        kids = self.kids
        rows: List[Tuple[str, int, int, Any]] = []
        for oi, ki, gi in zip(op_idx, key_idx, origin_idx):
            op = mix_ops[oi]
            value = None
            if op == OP_PUT:
                value = f"v{self._value_serial}"
                self._value_serial += 1
            rows.append((op, kids[ki], ids[gi], value))
        return rows
