"""SLO accounting for the in-band traffic plane.

The collector owns the ledger of issued operations: it matches replies
to registrations, classifies outcomes, sweeps deadline expirations, and
maintains the derived service-level metrics the experiments report —
latency-in-rounds histograms, success/timeout/misroute rates, and
**monotonic-searchability violations** (Scheideler/Setzer/Strothmann):
a request for ``(origin, kid)`` failing after an earlier identical
request succeeded.  Under churn a violation can be legitimate (the
responsible peer crashed); the counter measures how often the overlay
breaks the guarantee, which is exactly what the churn experiment plots.

Outcome taxonomy (one per completed op):

* ``ok`` / ``notfound`` — the request terminated at the peer that really
  is responsible for the key (``notfound``: a get whose key had no local
  value there);
* ``misroute`` — a peer *believed* it was responsible and answered, but
  the true successor (current membership) is someone else;
* ``loop`` / ``ttl`` / ``dead_end`` — in-band routing failures stamped
  by the forwarding peer;
* ``timeout`` — no reply before the op's deadline round (includes
  messages dropped at crashed peers);
* ``origin_dead`` — the op was issued at a peer that no longer exists.

Collector modes (million-op campaigns)
--------------------------------------

The collector runs in one of two modes:

* ``"list"`` (the default, and the spec): every :class:`CompletedOp` is
  retained in :attr:`SLOCollector.completed`, and latency percentiles
  are exact.  Memory is O(ops).
* ``"streaming"``: per-operation memory is O(1) — running counters and
  moments replace the full completion list, ``latency_p95`` comes from
  a P² sketch, and :attr:`SLOCollector.completed` holds a **seeded
  reservoir sample** (Vitter's algorithm R, bounded by
  ``reservoir_size``) instead of every record.  All *counter* keys of
  :meth:`SLOCollector.summary` (``issued`` / ``completed`` /
  ``outcomes`` / ``violations`` / ``success_rate`` / latency and hop
  means and maxima) are computed from exact running aggregates and are
  identical to list mode on the same campaign; only the percentile
  estimate is approximate.  The differential suite pins this.

Two ledger structures are bounded in **both** modes, with explicit
overflow policies (unbounded growth over a 10^6-op campaign would
defeat the streaming mode):

* the succeeded-once index behind the violation counter holds at most
  ``max_tracked_searches`` distinct ``(origin, kid)`` keys; on overflow
  *new* keys are no longer admitted (existing keys keep detecting
  violations exactly) and each dropped admission is counted in
  :attr:`SLOCollector.tracked_search_overflow` — the violation counter
  can then only undercount, never overcount;
* violation *records* kept for offline analysis are capped at
  ``max_violation_records`` in streaming mode (first-K retained);
  :attr:`SLOCollector.violations_count` stays exact in every mode.

Deadline wheel
--------------

Deadline expiry is O(due) per sweep, not O(outstanding): registrations
are bucketed by deadline round (``deadline_round -> [op_ids]`` plus a
heap of bucket rounds), :meth:`SLOCollector.expire` pops every due
bucket, and completions unlink lazily — a bucketed op that was already
answered is simply skipped when its bucket drains.  Buckets drain in
deadline order (ties in registration order), deterministically.
"""

from __future__ import annotations

import heapq
import math
import random
from bisect import bisect_left, bisect_right
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Set, Tuple

from repro.traffic.messages import (
    OUT_MISROUTE,
    OUT_ORIGIN_DEAD,
    OUT_TIMEOUT,
    ST_NOTFOUND,
    ST_OK,
    LookupReply,
)

#: outcomes that count as a successful search (reached the true owner)
ROUTED_OUTCOMES = (ST_OK, ST_NOTFOUND)

#: collector modes (see module docstring)
MODE_LIST = "list"
MODE_STREAMING = "streaming"


@dataclass(frozen=True)
class IssuedOp:
    """Registration of one in-flight operation.

    ``attempt`` is the 1-based attempt currently in flight (bumped by
    the resilient plane on every retry relaunch) and ``deadline_span``
    the per-attempt deadline budget in rounds, kept so a retry can
    re-register the op with a fresh deadline measured from its own
    launch round.  Both stay at their defaults when resilience is off.
    """

    op_id: int
    op: str
    origin: int
    kid: int
    issue_round: int
    deadline: int
    attempt: int = 1
    deadline_span: int = 0


@dataclass(frozen=True)
class CompletedOp:
    """Terminal record of one operation (kept for offline analysis)."""

    op_id: int
    op: str
    origin: int
    kid: int
    issue_round: int
    complete_round: int
    outcome: str
    hops: Optional[int]
    value: object = None
    #: which attempt produced the terminal verdict (1 without retries)
    attempt: int = 1
    #: True when the winning reply came from a hedged duplicate probe
    hedged: bool = False
    #: causal hop trace of a telemetry-sampled op (None otherwise);
    #: compare=False keeps record equality independent of tracing
    trace: object = field(compare=False, default=None)

    @property
    def latency(self) -> int:
        """Rounds from issue to completion (deadline span for timeouts)."""
        return self.complete_round - self.issue_round

    @property
    def routed(self) -> bool:
        """Whether the request reached the true responsible peer."""
        return self.outcome in ROUTED_OUTCOMES

    @property
    def wire_delay(self) -> int:
        """The wire-delay component of the latency, in rounds.

        Under unit delivery a forwarded request costs exactly one round
        per hop plus one for the reply transit (a self-answered op costs
        zero), so this is 0; under a latency model every extra round a
        slow link held the message accumulates here.
        """
        baseline = self.hops + 1 if self.hops else 0
        return max(0, self.latency - baseline)


def percentile(
    values: Sequence[float], q: float, default: Optional[float] = None
) -> float:
    """Nearest-rank percentile (``q`` in [0, 100]) of a sample.

    ``q = 0`` selects the minimum, ``q = 100`` the maximum, and a single
    sample is returned for every ``q``.  The rank is computed as
    ``ceil(q * n / 100)`` — multiplying *before* dividing keeps the
    product integer-exact for integer ``q``, where the historical
    ``q / 100 * n`` form accumulated float error (e.g. ``0.95 * 20 =
    19.000000000000004`` rounds the rank up and over-selects) — then
    clamped into ``[1, n]`` so the edges stay in range.

    An empty sample returns ``default`` when one is given and raises
    ``ValueError`` otherwise (so callers cannot silently average air).
    """
    if not 0 <= q <= 100:
        raise ValueError(f"percentile q must be in [0, 100], got {q}")
    if not values:
        if default is not None:
            return default
        raise ValueError("no values")
    ordered = sorted(values)
    n = len(ordered)
    rank = min(max(math.ceil(q * n / 100), 1), n)
    return float(ordered[rank - 1])


def latency_histogram(
    values: Sequence[int],
    bounds: Optional[Sequence[int]] = None,
) -> List[Tuple[str, int]]:
    """Bucketed latency counts, ``bounds`` are inclusive upper edges.

    Defaults to power-of-two edges up to 256 rounds plus an overflow
    bucket, the shape used by every traffic report in this repo.  Each
    value is placed with one ``bisect_left`` over the edges — O(log
    edges) instead of the historical linear scan — preserving the
    inclusive-upper-edge semantics: a value *equal* to an edge lands in
    that edge's bucket (``bisect_left`` returns the edge's own index
    for an exact hit, because the first edge >= v is the bucket for v).
    """
    if bounds is None:
        bounds = (1, 2, 4, 8, 16, 32, 64, 128, 256)
    if not bounds:
        # a defined value instead of the historical IndexError on the
        # overflow label: everything lands in one catch-all bucket
        return [("all", len(values))]
    buckets = [0] * (len(bounds) + 1)
    edges = list(bounds)
    for v in values:
        buckets[bisect_left(edges, v)] += 1
    labels = [f"<={edge}" for edge in bounds] + [f">{bounds[-1]}"]
    return list(zip(labels, buckets))


class SLOCollector:
    """Ledger + metrics for the traffic plane.

    ``true_owner`` maps a key id to the currently responsible peer (the
    plane supplies ``chord_successor`` over live membership); it is
    consulted once per completion, so classification always reflects the
    membership at completion time.

    ``mode`` selects the retention policy (see the module docstring):
    ``"list"`` (default, O(ops) memory, exact percentiles) or
    ``"streaming"`` (O(1) per op: running aggregates + P² sketch +
    seeded reservoir sample of size ``reservoir_size``).

    Standalone (no network), the ledger mechanics look like this:

    >>> from repro.traffic.slo import IssuedOp, SLOCollector
    >>> coll = SLOCollector(lambda kid: 42)
    >>> coll.register(IssuedOp(op_id=0, op="lookup", origin=7, kid=9,
    ...                        issue_round=0, deadline=8))
    >>> coll.expire(round_no=10)        # past the deadline: timed out
    1
    >>> coll.summary()["outcomes"]
    {'timeout': 1}
    """

    def __init__(
        self,
        true_owner: Callable[[int], Optional[int]],
        sketch_quantiles: Optional[Sequence[float]] = None,
        mode: str = MODE_LIST,
        reservoir_size: int = 1024,
        reservoir_seed: int = 2011,
        max_tracked_searches: int = 1 << 20,
        max_violation_records: int = 4096,
    ) -> None:
        if mode not in (MODE_LIST, MODE_STREAMING):
            raise ValueError(f"unknown collector mode {mode!r}")
        if reservoir_size < 1:
            raise ValueError("reservoir_size must be >= 1")
        self._true_owner = true_owner
        self.mode = mode
        #: opt-in streaming latency percentiles (P² sketches) for extra
        #: quantiles; ``summary()`` keys are unchanged by default — the
        #: estimates land under separate ``latency_p*_sketch`` keys
        self.sketches: Optional[Dict[float, object]] = None
        if sketch_quantiles:
            from repro.telemetry.sketch import P2Quantile

            self.sketches = {q: P2Quantile(q) for q in sketch_quantiles}
        #: streaming mode's own p95 sketch backing the ``latency_p95``
        #: summary key (list mode computes the exact nearest-rank value)
        self._p95 = None
        self._reservoir_rng: Optional[random.Random] = None
        self.reservoir_size = reservoir_size
        if mode == MODE_STREAMING:
            from repro.telemetry.sketch import P2Quantile

            self._p95 = P2Quantile(0.95)
            self._reservoir_rng = random.Random(reservoir_seed)
        self.outstanding: Dict[int, IssuedOp] = {}
        #: list mode: every completion, in completion order.  streaming
        #: mode: a seeded reservoir sample (NOT chronological) bounded by
        #: ``reservoir_size`` — counts must come from completed_count
        self.completed: List[CompletedOp] = []
        self.outcomes: Dict[str, int] = {}
        #: exact completion counters, maintained in both modes
        self.completed_count = 0
        self.routed_count = 0
        #: replies that arrived after their op already timed out
        self.late_replies = 0
        #: (origin, kid) pairs with at least one successful search,
        #: bounded by ``max_tracked_searches`` (overflow: new keys are
        #: dropped and counted — violations can then only undercount)
        self._succeeded_once: Set[tuple] = set()
        self.max_tracked_searches = max_tracked_searches
        #: successful searches whose key could not be admitted to the
        #: (full) succeeded-once index — the explicit overflow policy
        self.tracked_search_overflow = 0
        #: recorded monotonic-searchability violations; capped at
        #: ``max_violation_records`` in streaming mode (first-K kept)
        self.violations: List[CompletedOp] = []
        #: exact violation counter (== len(violations) in list mode)
        self.violations_count = 0
        self.max_violation_records = max_violation_records
        #: truth sampled when the terminal peer *answered* (the plane
        #: records it per op); replies transit for a round, and churn in
        #: that round must not turn a correct answer into a "misroute".
        #: With resilience enabled the values are small per-attempt maps
        #: ``{(attempt, hedged): truth}`` (several probes of one op can
        #: answer at different rounds with different truths); without it
        #: the historical flat ``op_id -> truth`` layout is kept so the
        #: default path allocates nothing extra
        self._answer_truth: Dict[int, object] = {}
        # -- resilient request plane (all inert until the plane opts in) --
        #: set by TrafficPlane when retries/hedges/redundant routing are
        #: configured; gates the extra summary keys and per-attempt state
        self.resilience_enabled = False
        #: plane-installed hook: ``(issued, round_no) -> IssuedOp | None``
        #: — return a re-registered replacement to retry instead of
        #: completing the op as a failure, or None to let it complete
        self.retry_handler: Optional[Callable[[IssuedOp, int], Optional[IssuedOp]]] = None
        #: plane-installed observer called on every deadline expiry
        #: (before any retry decision) — feeds the suspicion ledger
        self.timeout_observer: Optional[Callable[[IssuedOp, int], None]] = None
        #: plane-installed observer called once per terminal completion
        #: — releases per-op plane state (request templates, first hops)
        self.completion_observer: Optional[Callable[[CompletedOp], None]] = None
        #: retry relaunches scheduled (incremented by the plane)
        self.retries = 0
        #: duplicate hedge probes actually launched (plane-incremented)
        self.hedges_issued = 0
        #: routed completions whose winning reply came from a hedge probe
        self.hedge_wins = 0
        #: failure replies from a superseded attempt, suppressed instead
        #: of double-counting a retried op
        self.stale_replies = 0
        #: completion count per winning attempt number (both modes exact)
        self.attempts_histogram: Dict[int, int] = {}
        #: routed completions won by the first attempt vs. by a retry
        self.first_attempt_success = 0
        self.eventual_success = 0
        # -- deadline wheel: deadline_round -> [op_id] + heap of rounds --
        self._wheel: Dict[int, List[int]] = {}
        self._wheel_rounds: List[int] = []
        # -- running latency/hop aggregates (exact, both modes) ----------
        self._lat_sum = 0
        self._lat_max = 0
        self._wire_sum = 0
        self._wire_max = 0
        self._hops_sum = 0
        self._hops_count = 0
        self._hops_max = 0
        #: list-mode memo of the sorted routed-latency sample, rebuilt
        #: lazily and invalidated by _complete (repeated summary() calls
        #: must not re-sort the full completion list each time)
        self._sorted_lat_cache: Optional[List[int]] = None

    # ------------------------------------------------------------------
    # ledger
    # ------------------------------------------------------------------
    def register(self, issued: IssuedOp) -> None:
        """Track a newly injected operation (bucketed on the wheel)."""
        if issued.op_id in self.outstanding:
            raise ValueError(f"duplicate op id {issued.op_id}")
        self.outstanding[issued.op_id] = issued
        bucket = self._wheel.get(issued.deadline)
        if bucket is None:
            self._wheel[issued.deadline] = [issued.op_id]
            heapq.heappush(self._wheel_rounds, issued.deadline)
        else:
            bucket.append(issued.op_id)

    def register_batch(self, batch: Sequence[IssuedOp]) -> None:
        """Bulk :meth:`register`: one ledger/wheel pass for a whole
        round of arrivals (they typically share one deadline bucket)."""
        outstanding = self.outstanding
        wheel = self._wheel
        for issued in batch:
            if issued.op_id in outstanding:
                raise ValueError(f"duplicate op id {issued.op_id}")
            outstanding[issued.op_id] = issued
            bucket = wheel.get(issued.deadline)
            if bucket is None:
                wheel[issued.deadline] = [issued.op_id]
                heapq.heappush(self._wheel_rounds, issued.deadline)
            else:
                bucket.append(issued.op_id)

    def outstanding_count(self) -> int:
        """Operations in flight (closed-loop generators throttle on this)."""
        return len(self.outstanding)

    def note_answer_truth(
        self,
        op_id: int,
        truth: Optional[int],
        attempt: int = 1,
        hedged: bool = False,
    ) -> None:
        """Record who was *really* responsible when the op was answered.

        With resilience enabled the note is keyed per probe — several
        attempts of one op can terminate at different peers in different
        rounds, and each reply must be classified against the membership
        sampled when *its* answer was produced.
        """
        if self.resilience_enabled:
            slot = self._answer_truth.get(op_id)
            if slot is None:
                slot = self._answer_truth[op_id] = {}
            slot[(attempt, hedged)] = truth
        else:
            self._answer_truth[op_id] = truth

    def _truth_for(self, reply: LookupReply) -> Optional[int]:
        if self.resilience_enabled:
            slot = self._answer_truth.get(reply.op_id)
            if slot is not None:
                key = (reply.attempt, reply.hedge)
                if key in slot:
                    return slot[key]
            return self._true_owner(reply.kid)
        if reply.op_id in self._answer_truth:
            return self._answer_truth[reply.op_id]
        return self._true_owner(reply.kid)

    def on_reply(self, reply: LookupReply, round_no: int) -> None:
        """Record a reply consumed by its origin peer during ``round_no``.

        The wheel entry is *not* touched: the op unlinks lazily when its
        deadline bucket drains (the popped id is no longer outstanding).

        Resilient dedup rules (inert without a retry handler):

        * a **successful** reply always wins and completes the op, even
          when it belongs to a superseded attempt (the late original of
          a retried op, or the losing probe of a hedge race);
        * a **failure** reply from a superseded attempt is suppressed
          (``stale_replies``) — the newer attempt is still racing, and
          completing here would double-count the op;
        * a failure reply from the *current* attempt consults the
          plane's retry handler before completing, so in-band failures
          (loop/ttl/dead_end/misroute) are retried exactly like
          deadline expiries.
        """
        issued = self.outstanding.get(reply.op_id)
        if issued is None:
            self.late_replies += 1
            self._answer_truth.pop(reply.op_id, None)
            return
        if reply.status in ROUTED_OUTCOMES:
            truth = self._truth_for(reply)
            outcome = reply.status if reply.owner == truth else OUT_MISROUTE
        else:
            outcome = reply.status
        if outcome not in ROUTED_OUTCOMES:
            if self.resilience_enabled and reply.attempt < issued.attempt:
                self.stale_replies += 1
                return
            if self.retry_handler is not None:
                replacement = self.retry_handler(issued, round_no)
                if replacement is not None:
                    self.rebucket(replacement)
                    return
        del self.outstanding[reply.op_id]
        self._complete(
            issued,
            round_no,
            outcome,
            reply.hops,
            reply.value,
            trace=reply.trace,
            attempt=reply.attempt,
            hedged=reply.hedge,
        )

    def fail_unissued(self, issued: IssuedOp, round_no: int) -> None:
        """The op could not even be injected (origin not registered)."""
        self._complete(issued, round_no, OUT_ORIGIN_DEAD, None)

    def force_timeout(self, op_id: int, round_no: int) -> bool:
        """Complete an outstanding op as ``timeout`` immediately.

        Used by the resilient plane when a retry relaunch finds the
        origin gone: no probe can ever be answered (replies address the
        origin), so the op's verdict is already known.  Returns False if
        the op was not outstanding.
        """
        issued = self.outstanding.pop(op_id, None)
        if issued is None:
            return False
        self._complete(issued, round_no, OUT_TIMEOUT, None, attempt=issued.attempt)
        return True

    def rebucket(self, replacement: IssuedOp) -> None:
        """Replace an outstanding op's registration (retry relaunch).

        The superseded wheel entry is left in place: the expiry sweep
        skips any bucketed op whose *current* deadline lies in the
        future, exactly like a lazily-unlinked completion.
        """
        self.outstanding[replacement.op_id] = replacement
        bucket = self._wheel.get(replacement.deadline)
        if bucket is None:
            self._wheel[replacement.deadline] = [replacement.op_id]
            heapq.heappush(self._wheel_rounds, replacement.deadline)
        else:
            bucket.append(replacement.op_id)

    def expire(self, round_no: int) -> int:
        """Time out every outstanding op whose deadline has passed.

        Pops the due deadline buckets — O(due) per sweep, never a scan
        of all outstanding ops.  Ops already completed (reply consumed,
        possibly in this very round) were unlinked lazily and are
        skipped, as are ops a retry re-registered under a later deadline
        (their stale bucket entry outlived the re-registration); an
        empty or fully-unlinked bucket costs one pop.  Returns the
        number of ops that actually timed out (retried ops excluded).
        """
        expired = 0
        rounds = self._wheel_rounds
        while rounds and rounds[0] <= round_no:
            due_round = heapq.heappop(rounds)
            for op_id in self._wheel.pop(due_round, ()):
                issued = self.outstanding.get(op_id)
                if issued is None or issued.deadline > round_no:
                    continue  # answered, or re-registered by a retry
                if self.timeout_observer is not None:
                    self.timeout_observer(issued, round_no)
                if self.retry_handler is not None:
                    replacement = self.retry_handler(issued, round_no)
                    if replacement is not None:
                        self.rebucket(replacement)
                        continue
                del self.outstanding[op_id]
                self._complete(
                    issued, round_no, OUT_TIMEOUT, None, attempt=issued.attempt
                )
                expired += 1
        return expired

    def _complete(
        self,
        issued: IssuedOp,
        round_no: int,
        outcome: str,
        hops: Optional[int],
        value: object = None,
        trace: object = None,
        attempt: int = 1,
        hedged: bool = False,
    ) -> None:
        self._answer_truth.pop(issued.op_id, None)
        record = CompletedOp(
            op_id=issued.op_id,
            op=issued.op,
            origin=issued.origin,
            kid=issued.kid,
            issue_round=issued.issue_round,
            complete_round=round_no,
            outcome=outcome,
            hops=hops,
            value=value,
            attempt=attempt,
            hedged=hedged,
            trace=trace,
        )
        routed = record.outcome in ROUTED_OUTCOMES
        self.completed_count += 1
        self.outcomes[outcome] = self.outcomes.get(outcome, 0) + 1
        if self.resilience_enabled:
            self.attempts_histogram[attempt] = (
                self.attempts_histogram.get(attempt, 0) + 1
            )
            if routed:
                if hedged:
                    self.hedge_wins += 1
                if attempt == 1:
                    self.first_attempt_success += 1
                else:
                    self.eventual_success += 1
        if routed:
            latency = record.latency
            self.routed_count += 1
            self._lat_sum += latency
            if latency > self._lat_max:
                self._lat_max = latency
            wire = record.wire_delay
            self._wire_sum += wire
            if wire > self._wire_max:
                self._wire_max = wire
            if self._p95 is not None:
                self._p95.add(latency)
            if self.sketches is not None:
                for sketch in self.sketches.values():
                    sketch.add(latency)
        if hops is not None:
            self._hops_sum += hops
            self._hops_count += 1
            if hops > self._hops_max:
                self._hops_max = hops
        if self.mode == MODE_LIST:
            self.completed.append(record)
            self._sorted_lat_cache = None
        else:
            # seeded reservoir (algorithm R): every completion has a
            # k/count chance of being retained, independent of order
            k = self.reservoir_size
            if len(self.completed) < k:
                self.completed.append(record)
            else:
                j = self._reservoir_rng.randrange(self.completed_count)
                if j < k:
                    self.completed[j] = record
        key = (issued.origin, issued.kid)
        if routed:
            if key not in self._succeeded_once:
                if len(self._succeeded_once) < self.max_tracked_searches:
                    self._succeeded_once.add(key)
                else:
                    self.tracked_search_overflow += 1
        elif key in self._succeeded_once:
            self.violations_count += 1
            if (
                self.mode == MODE_LIST
                or len(self.violations) < self.max_violation_records
            ):
                self.violations.append(record)
        if self.completion_observer is not None:
            self.completion_observer(record)

    # ------------------------------------------------------------------
    # derived metrics
    # ------------------------------------------------------------------
    def routed_latencies(self) -> List[int]:
        """Latencies (rounds) of successfully routed operations.

        List mode: every routed completion.  Streaming mode: the routed
        slice of the reservoir *sample* (callers needing exact
        aggregates at scale should use :meth:`summary`).
        """
        return [c.latency for c in self.completed if c.routed]

    def _sorted_routed_latencies(self) -> List[int]:
        """List-mode memo of the sorted routed latencies (percentiles)."""
        cached = self._sorted_lat_cache
        if cached is None:
            cached = sorted(c.latency for c in self.completed if c.routed)
            self._sorted_lat_cache = cached
        return cached

    def traced(self) -> List[CompletedOp]:
        """Completions carrying a causal hop trace (sampled ops).

        Streaming mode surfaces only the traces still resident in the
        reservoir sample.
        """
        return [c for c in self.completed if c.trace is not None]

    def success_rate(self) -> float:
        """Fraction of completed ops that reached the true owner."""
        if not self.completed_count:
            return 1.0
        return self.routed_count / self.completed_count

    def summary(self) -> dict:
        """Flat metrics dict (stable keys, used by tests and benches).

        Every counter key (``issued`` / ``completed`` / ``outstanding``
        / ``success_rate`` / ``violations`` / ``late_replies`` /
        ``outcomes`` / means and maxima) is exact in both modes; in
        streaming mode ``latency_p95`` is the P² estimate (exact until
        five samples) instead of the nearest-rank percentile.
        """
        out = {
            "issued": self.completed_count + len(self.outstanding),
            "completed": self.completed_count,
            "outstanding": len(self.outstanding),
            "success_rate": round(self.success_rate(), 4),
            "violations": self.violations_count,
            "late_replies": self.late_replies,
            "outcomes": dict(sorted(self.outcomes.items())),
        }
        if self.routed_count:
            out["latency_mean"] = round(self._lat_sum / self.routed_count, 2)
            if self.mode == MODE_LIST:
                out["latency_p95"] = percentile(self._sorted_routed_latencies(), 95)
            else:
                out["latency_p95"] = round(self._p95.value(), 2)
            out["latency_max"] = self._lat_max
            # wire-delay component: rounds spent on slow links beyond
            # the one-round-per-hop baseline (0 under unit delivery)
            out["wire_delay_mean"] = round(self._wire_sum / self.routed_count, 2)
            out["wire_delay_max"] = self._wire_max
        if self._hops_count:
            out["hops_mean"] = round(self._hops_sum / self._hops_count, 2)
            out["hops_max"] = self._hops_max
        if self.sketches:
            # opt-in streaming estimates, keyed separately so default
            # summaries (and every baseline built on them) are unchanged
            for q, sketch in sorted(self.sketches.items()):
                if len(sketch):
                    out[f"latency_p{round(q * 100)}_sketch"] = round(
                        sketch.value(), 2
                    )
        if self.resilience_enabled:
            # resilient-plane census; gated so default summaries (and
            # every baseline built on them) keep their historical keys.
            # All of these are exact running counters in both modes.
            out["retries"] = self.retries
            out["stale_replies"] = self.stale_replies
            out["hedges_issued"] = self.hedges_issued
            out["hedge_wins"] = self.hedge_wins
            out["first_attempt_success"] = self.first_attempt_success
            out["eventual_success"] = self.eventual_success
            out["attempts"] = {
                str(k): v for k, v in sorted(self.attempts_histogram.items())
            }
        return out
