"""SLO accounting for the in-band traffic plane.

The collector owns the ledger of issued operations: it matches replies
to registrations, classifies outcomes, sweeps deadline expirations, and
maintains the derived service-level metrics the experiments report —
latency-in-rounds histograms, success/timeout/misroute rates, and
**monotonic-searchability violations** (Scheideler/Setzer/Strothmann):
a request for ``(origin, kid)`` failing after an earlier identical
request succeeded.  Under churn a violation can be legitimate (the
responsible peer crashed); the counter measures how often the overlay
breaks the guarantee, which is exactly what the churn experiment plots.

Outcome taxonomy (one per completed op):

* ``ok`` / ``notfound`` — the request terminated at the peer that really
  is responsible for the key (``notfound``: a get whose key had no local
  value there);
* ``misroute`` — a peer *believed* it was responsible and answered, but
  the true successor (current membership) is someone else;
* ``loop`` / ``ttl`` / ``dead_end`` — in-band routing failures stamped
  by the forwarding peer;
* ``timeout`` — no reply before the op's deadline round (includes
  messages dropped at crashed peers);
* ``origin_dead`` — the op was issued at a peer that no longer exists.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.traffic.messages import (
    OUT_MISROUTE,
    OUT_ORIGIN_DEAD,
    OUT_TIMEOUT,
    ST_NOTFOUND,
    ST_OK,
    LookupReply,
)

#: outcomes that count as a successful search (reached the true owner)
ROUTED_OUTCOMES = (ST_OK, ST_NOTFOUND)


@dataclass(frozen=True)
class IssuedOp:
    """Registration of one in-flight operation."""

    op_id: int
    op: str
    origin: int
    kid: int
    issue_round: int
    deadline: int


@dataclass(frozen=True)
class CompletedOp:
    """Terminal record of one operation (kept for offline analysis)."""

    op_id: int
    op: str
    origin: int
    kid: int
    issue_round: int
    complete_round: int
    outcome: str
    hops: Optional[int]
    value: object = None
    #: causal hop trace of a telemetry-sampled op (None otherwise);
    #: compare=False keeps record equality independent of tracing
    trace: object = field(compare=False, default=None)

    @property
    def latency(self) -> int:
        """Rounds from issue to completion (deadline span for timeouts)."""
        return self.complete_round - self.issue_round

    @property
    def routed(self) -> bool:
        """Whether the request reached the true responsible peer."""
        return self.outcome in ROUTED_OUTCOMES

    @property
    def wire_delay(self) -> int:
        """The wire-delay component of the latency, in rounds.

        Under unit delivery a forwarded request costs exactly one round
        per hop plus one for the reply transit (a self-answered op costs
        zero), so this is 0; under a latency model every extra round a
        slow link held the message accumulates here.
        """
        baseline = self.hops + 1 if self.hops else 0
        return max(0, self.latency - baseline)


def percentile(
    values: Sequence[float], q: float, default: Optional[float] = None
) -> float:
    """Nearest-rank percentile (``q`` in [0, 100]) of a sample.

    ``q = 0`` selects the minimum, ``q = 100`` the maximum, and a single
    sample is returned for every ``q``.  The rank is computed as
    ``ceil(q * n / 100)`` — multiplying *before* dividing keeps the
    product integer-exact for integer ``q``, where the historical
    ``q / 100 * n`` form accumulated float error (e.g. ``0.95 * 20 =
    19.000000000000004`` rounds the rank up and over-selects) — then
    clamped into ``[1, n]`` so the edges stay in range.

    An empty sample returns ``default`` when one is given and raises
    ``ValueError`` otherwise (so callers cannot silently average air).
    """
    if not 0 <= q <= 100:
        raise ValueError(f"percentile q must be in [0, 100], got {q}")
    if not values:
        if default is not None:
            return default
        raise ValueError("no values")
    ordered = sorted(values)
    n = len(ordered)
    rank = min(max(math.ceil(q * n / 100), 1), n)
    return float(ordered[rank - 1])


def latency_histogram(
    values: Sequence[int],
    bounds: Optional[Sequence[int]] = None,
) -> List[Tuple[str, int]]:
    """Bucketed latency counts, ``bounds`` are inclusive upper edges.

    Defaults to power-of-two edges up to 256 rounds plus an overflow
    bucket, the shape used by every traffic report in this repo.
    """
    if bounds is None:
        bounds = (1, 2, 4, 8, 16, 32, 64, 128, 256)
    if not bounds:
        # a defined value instead of the historical IndexError on the
        # overflow label: everything lands in one catch-all bucket
        return [("all", len(values))]
    buckets = [0] * (len(bounds) + 1)
    for v in values:
        for i, edge in enumerate(bounds):
            if v <= edge:
                buckets[i] += 1
                break
        else:
            buckets[-1] += 1
    labels = [f"<={edge}" for edge in bounds] + [f">{bounds[-1]}"]
    return list(zip(labels, buckets))


class SLOCollector:
    """Ledger + metrics for the traffic plane.

    ``true_owner`` maps a key id to the currently responsible peer (the
    plane supplies ``chord_successor`` over live membership); it is
    consulted once per completion, so classification always reflects the
    membership at completion time.

    Standalone (no network), the ledger mechanics look like this:

    >>> from repro.traffic.slo import IssuedOp, SLOCollector
    >>> coll = SLOCollector(lambda kid: 42)
    >>> coll.register(IssuedOp(op_id=0, op="lookup", origin=7, kid=9,
    ...                        issue_round=0, deadline=8))
    >>> coll.expire(round_no=10)        # past the deadline: timed out
    1
    >>> coll.summary()["outcomes"]
    {'timeout': 1}
    """

    def __init__(
        self,
        true_owner: Callable[[int], Optional[int]],
        sketch_quantiles: Optional[Sequence[float]] = None,
    ) -> None:
        self._true_owner = true_owner
        #: opt-in streaming latency percentiles (P² sketches) for
        #: campaigns too large for the full completion list to be the
        #: metrics source; ``summary()`` keys are unchanged by default
        self.sketches: Optional[Dict[float, object]] = None
        if sketch_quantiles:
            from repro.telemetry.sketch import P2Quantile

            self.sketches = {q: P2Quantile(q) for q in sketch_quantiles}
        self.outstanding: Dict[int, IssuedOp] = {}
        self.completed: List[CompletedOp] = []
        self.outcomes: Dict[str, int] = {}
        #: replies that arrived after their op already timed out
        self.late_replies = 0
        #: (origin, kid) pairs with at least one successful search
        self._succeeded_once: set = set()
        #: recorded monotonic-searchability violations
        self.violations: List[CompletedOp] = []
        #: truth sampled when the terminal peer *answered* (the plane
        #: records it per op); replies transit for a round, and churn in
        #: that round must not turn a correct answer into a "misroute"
        self._answer_truth: Dict[int, Optional[int]] = {}

    # ------------------------------------------------------------------
    # ledger
    # ------------------------------------------------------------------
    def register(self, issued: IssuedOp) -> None:
        """Track a newly injected operation."""
        if issued.op_id in self.outstanding:
            raise ValueError(f"duplicate op id {issued.op_id}")
        self.outstanding[issued.op_id] = issued

    def outstanding_count(self) -> int:
        """Operations in flight (closed-loop generators throttle on this)."""
        return len(self.outstanding)

    def note_answer_truth(self, op_id: int, truth: Optional[int]) -> None:
        """Record who was *really* responsible when the op was answered."""
        self._answer_truth[op_id] = truth

    def on_reply(self, reply: LookupReply, round_no: int) -> None:
        """Record a reply consumed by its origin peer during ``round_no``."""
        issued = self.outstanding.pop(reply.op_id, None)
        if issued is None:
            self.late_replies += 1
            self._answer_truth.pop(reply.op_id, None)
            return
        if reply.status in ROUTED_OUTCOMES:
            if reply.op_id in self._answer_truth:
                truth = self._answer_truth[reply.op_id]
            else:
                truth = self._true_owner(reply.kid)
            outcome = reply.status if reply.owner == truth else OUT_MISROUTE
        else:
            outcome = reply.status
        self._complete(
            issued, round_no, outcome, reply.hops, reply.value, trace=reply.trace
        )

    def fail_unissued(self, issued: IssuedOp, round_no: int) -> None:
        """The op could not even be injected (origin not registered)."""
        self._complete(issued, round_no, OUT_ORIGIN_DEAD, None)

    def expire(self, round_no: int) -> int:
        """Time out every outstanding op whose deadline has passed."""
        due = [op for op in self.outstanding.values() if op.deadline <= round_no]
        for issued in due:
            del self.outstanding[issued.op_id]
            self._complete(issued, round_no, OUT_TIMEOUT, None)
        return len(due)

    def _complete(
        self,
        issued: IssuedOp,
        round_no: int,
        outcome: str,
        hops: Optional[int],
        value: object = None,
        trace: object = None,
    ) -> None:
        self._answer_truth.pop(issued.op_id, None)
        record = CompletedOp(
            op_id=issued.op_id,
            op=issued.op,
            origin=issued.origin,
            kid=issued.kid,
            issue_round=issued.issue_round,
            complete_round=round_no,
            outcome=outcome,
            hops=hops,
            value=value,
            trace=trace,
        )
        if self.sketches is not None and record.routed:
            for sketch in self.sketches.values():
                sketch.add(record.latency)
        self.completed.append(record)
        self.outcomes[outcome] = self.outcomes.get(outcome, 0) + 1
        key = (issued.origin, issued.kid)
        if record.routed:
            self._succeeded_once.add(key)
        elif key in self._succeeded_once:
            self.violations.append(record)

    # ------------------------------------------------------------------
    # derived metrics
    # ------------------------------------------------------------------
    def routed_latencies(self) -> List[int]:
        """Latencies (rounds) of successfully routed operations."""
        return [c.latency for c in self.completed if c.routed]

    def traced(self) -> List[CompletedOp]:
        """Completions carrying a causal hop trace (sampled ops)."""
        return [c for c in self.completed if c.trace is not None]

    def success_rate(self) -> float:
        """Fraction of completed ops that reached the true owner."""
        if not self.completed:
            return 1.0
        return sum(1 for c in self.completed if c.routed) / len(self.completed)

    def summary(self) -> dict:
        """Flat metrics dict (stable keys, used by tests and benches)."""
        lats = self.routed_latencies()
        hops = [c.hops for c in self.completed if c.hops is not None]
        out = {
            "issued": len(self.completed) + len(self.outstanding),
            "completed": len(self.completed),
            "outstanding": len(self.outstanding),
            "success_rate": round(self.success_rate(), 4),
            "violations": len(self.violations),
            "late_replies": self.late_replies,
            "outcomes": dict(sorted(self.outcomes.items())),
        }
        if lats:
            out["latency_mean"] = round(sum(lats) / len(lats), 2)
            out["latency_p95"] = percentile(lats, 95)
            out["latency_max"] = max(lats)
            # wire-delay component: rounds spent on slow links beyond
            # the one-round-per-hop baseline (0 under unit delivery)
            wire = [c.wire_delay for c in self.completed if c.routed]
            out["wire_delay_mean"] = round(sum(wire) / len(wire), 2)
            out["wire_delay_max"] = max(wire)
        if hops:
            out["hops_mean"] = round(sum(hops) / len(hops), 2)
            out["hops_max"] = max(hops)
        if self.sketches:
            # opt-in streaming estimates, keyed separately so default
            # summaries (and every baseline built on them) are unchanged
            for q, sketch in sorted(self.sketches.items()):
                if len(sketch):
                    out[f"latency_p{round(q * 100)}_sketch"] = round(
                        sketch.value(), 2
                    )
        return out
