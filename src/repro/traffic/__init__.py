"""In-band traffic plane: live lookup/KV operations routed through the
simulated overlay, concurrent with self-stabilization and churn.

The subsystem has four parts:

* :mod:`repro.traffic.messages` — hop-stamped request/reply payloads
  that travel the synchronous scheduler alongside stabilization traffic;
* :mod:`repro.traffic.plane` — injection, per-peer greedy forwarding on
  each peer's *current* (possibly degraded) view, and completion;
* :mod:`repro.traffic.generator` — seeded closed-loop workloads
  (arrival rate, key popularity, op mix, deadlines);
* :mod:`repro.traffic.slo` — latency histograms, outcome rates, and
  monotonic-searchability violation counts.

See ROADMAP.md "Engine internals — Traffic plane" for the exactness
contract with the activity-tracked kernel.
"""

from repro.traffic.generator import WorkloadGenerator
from repro.traffic.messages import LookupReply, LookupRequest
from repro.traffic.plane import TrafficPlane
from repro.traffic.slo import SLOCollector

__all__ = [
    "LookupReply",
    "LookupRequest",
    "SLOCollector",
    "TrafficPlane",
    "WorkloadGenerator",
]
