"""Command-line entry point: regenerate any figure or experiment.

Examples::

    python -m repro fig6 --seeds 30          # the paper's full Fig. 6
    python -m repro fig5 --quick             # fast smoke version
    python -m repro all --seeds 5            # every experiment, light
    rechord lookup --sizes 16 64             # via the console script
    rechord scenario --list                  # the adversity library
    rechord scenario flash-crowd --n 64      # one seeded campaign

Every experiment is deterministic for a given ``--root-seed``.
"""

from __future__ import annotations

import argparse
import sys
import time
from typing import List, Optional, Sequence

from repro.experiments import PAPER_SIZES
from repro.experiments.ablation import format_ablation, run_ablation
from repro.experiments.baseline import format_baseline, run_baseline
from repro.experiments.baseline import DEFAULT_SIZES as BASELINE_SIZES
from repro.experiments.fig5 import format_fig5, run_fig5
from repro.experiments.fig6 import format_fig6, run_fig6
from repro.experiments.fig7 import format_fig7, run_fig7
from repro.experiments.join_leave import DEFAULT_SIZES as JL_SIZES
from repro.experiments.join_leave import format_join_leave, run_join_leave
from repro.experiments.lookup import DEFAULT_SIZES as LOOKUP_SIZES
from repro.experiments.lookup import format_lookup, run_lookup
from repro.experiments.messages import format_messages, run_messages
from repro.experiments.asynchrony import DEFAULT_SIZES as ASYNC_SIZES
from repro.experiments.asynchrony import format_asynchrony, run_asynchrony
from repro.experiments.economy import DEFAULT_SIZES as ECONOMY_SIZES
from repro.experiments.economy import format_economy, run_economy
from repro.experiments.usability import format_usability, run_usability
from repro.experiments.phases import DEFAULT_SIZES as PHASES_SIZES
from repro.experiments.phases import format_phases, run_phases
from repro.experiments.runner import DEFAULT_ROOT_SEED
from repro.experiments.scaling import DEFAULT_SIZES as SCALING_SIZES
from repro.experiments.scaling import format_scaling, run_scaling
from repro.experiments.traffic import DEFAULT_SIZES as TRAFFIC_SIZES
from repro.experiments.traffic import format_traffic, run_traffic

QUICK_SIZES = (5, 15, 25)


def _sizes(args: argparse.Namespace, default: Sequence[int]) -> Sequence[int]:
    if args.sizes:
        return tuple(args.sizes)
    if args.quick:
        return QUICK_SIZES
    return tuple(default)


def _seeds(args: argparse.Namespace, default: int) -> int:
    if args.seeds is not None:
        return args.seeds
    return 2 if args.quick else default


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="rechord",
        description="Re-Chord (SPAA 2011) reproduction — experiment runner",
    )
    parser.add_argument("--root-seed", type=int, default=DEFAULT_ROOT_SEED)
    sub = parser.add_subparsers(dest="command", required=True)
    for name, desc in [
        ("fig5", "edges and nodes at stabilization (paper Fig. 5)"),
        ("fig6", "rounds to stable/almost-stable (paper Fig. 6)"),
        ("fig7", "total edges vs total nodes (paper Fig. 7)"),
        ("scaling", "Theorem 1.1 stabilization scaling"),
        ("join-leave", "Theorems 4.1/4.2 churn recovery"),
        ("lookup", "Fact 2.1 + greedy lookup hops"),
        ("baseline", "classic Chord vs Re-Chord self-stabilization"),
        ("ablation", "rule ablations"),
        ("messages", "message complexity over time"),
        ("phases", "proof-phase completion rounds"),
        ("economy", "economical-broadcast extension comparison"),
        ("asynchrony", "fair partial activation robustness"),
        ("usability", "routability during convergence"),
        ("traffic", "in-band lookups concurrent with churn (traffic plane)"),
        ("all", "run every experiment"),
    ]:
        p = sub.add_parser(name, help=desc)
        p.add_argument("--sizes", type=int, nargs="*", default=None)
        p.add_argument("--seeds", type=int, default=None)
        p.add_argument("--quick", action="store_true", help="small sizes, 2 seeds")
        if name in ("ablation", "messages", "usability"):
            p.add_argument("--n", type=int, default=32 if name != "usability" else 24)
        if name == "messages":
            p.add_argument(
                "--engine", type=str, default=None,
                choices=("full", "incremental", "columnar"),
                help="simulation kernel (default: incremental)",
            )
            p.add_argument(
                "--rule-backend", type=str, default="scalar",
                choices=("scalar", "batched"),
                help="rule backend: per-peer scalar pipeline (the spec) "
                "or batched phase-major sweeps (observationally identical)",
            )
        if name == "traffic":
            p.add_argument(
                "--telemetry", action="store_true",
                help="attach a telemetry recorder per run and report its census",
            )
            p.add_argument(
                "--sketch-quantiles", type=float, nargs="*", default=None,
                metavar="Q",
                help="opt-in P2 streaming latency quantiles (e.g. 0.5 0.99), "
                "reported as latency_p*_sketch alongside the exact stats",
            )
            p.add_argument(
                "--collector", type=str, default="list",
                choices=("list", "streaming"),
                help="completion retention: full list (the spec) or a "
                "bounded streaming collector (exact counters, P2 p95, "
                "reservoir sample) for very large campaigns",
            )
            p.add_argument(
                "--max-attempts", type=int, default=1, metavar="K",
                help="resilient request plane: attempt budget per op "
                "(1 = retries off; retries use seeded exponential "
                "backoff with jitter)",
            )
            p.add_argument(
                "--retry-backoff", type=int, default=4, metavar="B",
                help="base backoff in rounds between attempts (default 4)",
            )
            p.add_argument(
                "--hedge-after", type=int, default=None, metavar="H",
                help="launch a duplicate probe for an unanswered op "
                "after H rounds; first reply wins (off by default)",
            )
            p.add_argument(
                "--route-redundancy", type=int, default=1, metavar="R",
                help="candidate successors considered per forwarding "
                "hop; suspected-dead hops are demoted (default 1)",
            )
    scen = sub.add_parser(
        "scenario",
        help="declarative fault/churn campaigns (see docs/SCENARIOS.md)",
    )
    scen.add_argument("name", nargs="?", default=None, help="named scenario (omit with --list)")
    scen.add_argument("--list", action="store_true", help="list the scenario library")
    scen.add_argument("--n", type=int, default=None, help="network size override")
    scen.add_argument("--seed", type=int, default=None, help="campaign seed override")
    scen.add_argument("--all", action="store_true", help="run the whole library (sweep table)")
    scen.add_argument("--json", action="store_true", help="emit the full ScenarioReport as JSON")
    scen.add_argument(
        "--spec", type=str, default=None, metavar="FILE",
        help="run a ScenarioSpec loaded from a JSON file instead of a named one",
    )
    scen.add_argument(
        "--latency-model", type=str, default=None, metavar="MODEL",
        help="delivery model for the whole campaign: a kind "
        "(unit, constant, slow_links, lognormal, regions, reorder), "
        "kind:key=value,... (e.g. constant:delay=3), or a JSON spec dict",
    )
    scen.add_argument(
        "--daemon", type=str, default=None, metavar="DAEMON",
        help="activation daemon for the whole campaign: a kind "
        "(full, partial, round_robin, unfair), kind:key=value,... "
        "(e.g. partial:p=0.5), or a JSON spec dict",
    )
    scen.add_argument(
        "--rule-backend", type=str, default="scalar",
        choices=("scalar", "batched"),
        help="rule backend for the whole campaign (default: scalar); "
        "batched runs the phase-major kernels, observationally identical",
    )
    scen.add_argument(
        "--telemetry", action="store_true",
        help="run the campaign with a telemetry recorder attached and "
        "append the counter census / phase-timer report",
    )
    scen.add_argument(
        "--sketch-quantiles", type=float, nargs="*", default=None,
        metavar="Q",
        help="opt-in P2 streaming latency quantiles for the campaign's "
        "traffic (e.g. 0.5 0.99); reported as latency_p*_sketch in the "
        "summary and JSON (needs a scenario with traffic attached)",
    )
    obs = sub.add_parser(
        "observe",
        help="telemetry deep-dive on one campaign: counter census, "
        "kernel phase timers, sampled op traces",
    )
    obs.add_argument(
        "--scenario", type=str, default="flash-crowd",
        help="named scenario to observe (default: flash-crowd)",
    )
    obs.add_argument("--n", type=int, default=None, help="network size override")
    obs.add_argument("--seed", type=int, default=None, help="campaign seed override")
    obs.add_argument(
        "--engine", type=str, default="columnar",
        choices=("full", "incremental", "columnar"),
        help="simulation kernel to instrument (default: columnar)",
    )
    obs.add_argument(
        "--rule-backend", type=str, default="scalar",
        choices=("scalar", "batched"),
        help="rule backend to instrument (default: scalar)",
    )
    obs.add_argument(
        "--trace-sample", type=int, default=1, metavar="K",
        help="trace every K-th op id (default: 1 = every op)",
    )
    obs.add_argument(
        "--traces", type=int, default=3,
        help="sampled op traces to print (default: 3)",
    )
    obs.add_argument(
        "--dump", type=str, default=None, metavar="FILE",
        help="also write every telemetry record to FILE as JSONL",
    )
    return parser


def _parse_model_arg(text: str) -> dict:
    """Parse a ``--latency-model`` / ``--daemon`` value.

    Accepts a bare kind (``reorder``), ``kind:key=value,key=value``
    (``constant:delay=3``), or a JSON object
    (``'{"kind": "reorder", "bound": 4}'``).
    """
    import json as _json

    text = text.strip()
    if text.startswith("{"):
        return dict(_json.loads(text))
    kind, _, rest = text.partition(":")
    spec: dict = {"kind": kind}
    if rest:
        for item in rest.split(","):
            key, sep, value = item.partition("=")
            if not sep:
                raise SystemExit(
                    f"bad model parameter {item!r} (expected key=value) in {text!r}"
                )
            try:
                parsed: object = int(value)
            except ValueError:
                try:
                    parsed = float(value)
                except ValueError:
                    parsed = value
            spec[key.strip()] = parsed
    return spec


def _run_scenario_command(args: argparse.Namespace) -> List[str]:
    """Dispatch ``rechord scenario`` (list / one campaign / sweep)."""
    import json as _json

    from repro.experiments.scenarios import DEFAULT_N, format_scenarios, run_scenarios
    from repro.netsim.rng import SeedSequence
    from repro.scenarios import (
        ScenarioSpec,
        make_scenario,
        run_scenario,
        scenario_description,
        scenario_names,
    )

    if args.list:
        from repro.netsim.timemodel import DAEMON_KINDS, DELIVERY_KINDS

        lines = ["Named scenarios (rechord scenario <name>):", ""]
        for name in scenario_names():
            lines.append(f"  {name:<18} {scenario_description(name)}")
        lines.append("")
        lines.append(
            "Time-model overrides (any scenario): "
            "--latency-model KIND[:k=v,...] --daemon KIND[:k=v,...]"
        )
        lines.append(f"  latency models: {', '.join(sorted(DELIVERY_KINDS))}")
        lines.append(f"  daemons:        {', '.join(sorted(DAEMON_KINDS))}")
        lines.append("")
        lines.append("Details, adversary models and expected recovery: docs/SCENARIOS.md")
        return ["\n".join(lines)]
    if args.all:
        n = args.n if args.n is not None else DEFAULT_N
        overrides = {}
        if args.latency_model is not None:
            overrides["latency"] = _parse_model_arg(args.latency_model)
        if args.daemon is not None:
            overrides["daemon"] = _parse_model_arg(args.daemon)
        return [
            format_scenarios(
                run_scenarios(n=n, root_seed=args.root_seed, overrides=overrides)
            )
        ]
    if args.spec is not None:
        from pathlib import Path

        spec = ScenarioSpec.from_json(Path(args.spec).read_text())
        if args.n is not None:
            spec = spec.with_overrides(n=args.n)
        if args.seed is not None:
            spec = spec.with_overrides(seed=args.seed)
    elif args.name is not None:
        n = args.n if args.n is not None else DEFAULT_N
        seed = (
            args.seed
            if args.seed is not None
            else SeedSequence(args.root_seed).child("scenario-exp", args.name, n=n).seed()
        )
        spec = make_scenario(args.name, n=n, seed=seed)
    else:
        raise SystemExit("scenario: give a name, --spec FILE, --all, or --list")
    if args.latency_model is not None:
        spec = spec.with_overrides(latency=_parse_model_arg(args.latency_model))
    if args.daemon is not None:
        spec = spec.with_overrides(daemon=_parse_model_arg(args.daemon))
    if getattr(args, "sketch_quantiles", None):
        if spec.traffic is None:
            raise SystemExit(
                "scenario: --sketch-quantiles needs a scenario with traffic"
            )
        from dataclasses import replace as _dc_replace

        spec = spec.with_overrides(
            traffic=_dc_replace(
                spec.traffic, sketch_quantiles=tuple(args.sketch_quantiles)
            )
        )
    recorder = None
    if args.telemetry:
        from repro.telemetry import TelemetryRecorder

        recorder = TelemetryRecorder()
    report = run_scenario(
        spec, telemetry=recorder, rule_backend=getattr(args, "rule_backend", "scalar")
    )
    if args.json:
        return [_json.dumps(report.to_dict(), indent=2, sort_keys=True)]
    blocks = [_format_scenario_report(spec, report)]
    if recorder is not None:
        from repro.telemetry import render_telemetry

        blocks.append(render_telemetry(recorder))
    return ["\n\n".join(blocks)]


def _format_scenario_report(spec, report) -> str:
    """Human-readable single-campaign summary."""
    lines = [
        f"Scenario: {report.name}  (n={report.n}, seed={report.seed})",
        "=" * 78,
    ]
    if spec.description:
        lines.append(spec.description)
        lines.append("")
    lines.append(
        f"peers {report.peers_start} -> {report.peers_final}   "
        f"events {dict(report.event_census)}"
    )
    lines.append(
        f"adversity window of {spec.rounds} rounds ended at round "
        f"{report.rounds_adversity}; recovery in {report.recovery_rounds} "
        f"rounds (stable={report.stable}, ideal={report.ideal}); "
        f"{report.rule_fires} rule firings total"
    )
    if any(d for _, d in report.dropped_by_window):
        lines.append(
            "drops by window: "
            + "  ".join(f"{w}:{d}" for w, d in report.dropped_by_window)
        )
    lines.append("")
    lines.append(f"{'round':>6} {'peers':>5} {'failing':>7} {'violations':>10} "
                 f"{'pending':>7} {'in-flight':>9} {'done':>6}")
    for s in report.samples:
        lines.append(
            f"{s.round:>6} {s.peers:>5} {s.failing_peers:>7} {s.check_violations:>10} "
            f"{s.pending_messages:>7} {s.outstanding_ops:>9} {s.completed_ops:>6}"
        )
    if report.slo:
        lines.append("")
        slo = dict(report.slo)
        outcomes = "  ".join(f"{k}:{v}" for k, v in slo.pop("outcomes", {}).items())
        stats = "  ".join(f"{k}={v}" for k, v in slo.items())
        lines.append(f"traffic: {stats}")
        lines.append(f"outcomes: {outcomes}")
    return "\n".join(lines)


def _run_observe_command(args: argparse.Namespace) -> List[str]:
    """Dispatch ``rechord observe`` — one instrumented campaign."""
    from repro.experiments.scenarios import DEFAULT_N
    from repro.netsim.rng import SeedSequence
    from repro.scenarios import make_scenario, run_scenario
    from repro.telemetry import TelemetryRecorder, render_telemetry

    n = args.n if args.n is not None else DEFAULT_N
    seed = (
        args.seed
        if args.seed is not None
        else SeedSequence(args.root_seed)
        .child("scenario-exp", args.scenario, n=n)
        .seed()
    )
    spec = make_scenario(args.scenario, n=n, seed=seed)
    recorder = TelemetryRecorder(trace_sample_interval=args.trace_sample)
    run_scenario(
        spec, engine=args.engine, telemetry=recorder,
        rule_backend=getattr(args, "rule_backend", "scalar"),
    )
    lines = [
        f"Observe: {spec.name}  (n={n}, seed={seed}, engine={args.engine}, "
        f"rules={getattr(args, 'rule_backend', 'scalar')})",
        "=" * 78,
        "",
        render_telemetry(recorder, traces=args.traces),
    ]
    if args.dump:
        recorder.dump(args.dump)
        lines.append("")
        lines.append(f"[telemetry records written to {args.dump}]")
    return ["\n".join(lines)]


def _dispatch(args: argparse.Namespace) -> List[str]:
    rs = args.root_seed
    out: List[str] = []
    cmd = args.command
    if cmd == "scenario":
        return _run_scenario_command(args)
    if cmd == "observe":
        return _run_observe_command(args)
    if cmd in ("fig5", "all"):
        out.append(format_fig5(run_fig5(_sizes(args, PAPER_SIZES), _seeds(args, 10), rs)))
    if cmd in ("fig6", "all"):
        out.append(format_fig6(run_fig6(_sizes(args, PAPER_SIZES), _seeds(args, 10), rs)))
    if cmd in ("fig7", "all"):
        out.append(format_fig7(run_fig7(_sizes(args, PAPER_SIZES), _seeds(args, 10), rs)))
    if cmd in ("scaling", "all"):
        out.append(format_scaling(run_scaling(_sizes(args, SCALING_SIZES), _seeds(args, 5), rs)))
    if cmd in ("join-leave", "all"):
        out.append(format_join_leave(run_join_leave(_sizes(args, JL_SIZES), _seeds(args, 5), rs)))
    if cmd in ("lookup", "all"):
        out.append(format_lookup(run_lookup(_sizes(args, LOOKUP_SIZES), _seeds(args, 5), rs)))
    if cmd in ("baseline", "all"):
        out.append(format_baseline(run_baseline(_sizes(args, BASELINE_SIZES), _seeds(args, 5), rs)))
    if cmd in ("ablation", "all"):
        n = getattr(args, "n", 32)
        out.append(format_ablation(run_ablation(n=n, seeds=_seeds(args, 5), root_seed=rs)))
    if cmd in ("messages", "all"):
        n = getattr(args, "n", 32)
        engine = getattr(args, "engine", None)
        backend = getattr(args, "rule_backend", "scalar")
        out.append(
            format_messages(
                run_messages(n=n, root_seed=rs, engine=engine, rule_backend=backend)
            )
        )
    if cmd in ("phases", "all"):
        out.append(format_phases(run_phases(_sizes(args, PHASES_SIZES), _seeds(args, 5), rs)))
    if cmd in ("economy", "all"):
        out.append(format_economy(run_economy(_sizes(args, ECONOMY_SIZES), _seeds(args, 3), rs)))
    if cmd in ("asynchrony", "all"):
        out.append(format_asynchrony(run_asynchrony(_sizes(args, ASYNC_SIZES), _seeds(args, 3), rs)))
    if cmd in ("usability", "all"):
        n = getattr(args, "n", 24)
        out.append(format_usability(run_usability(n=n, root_seed=rs)))
    if cmd in ("traffic", "all"):
        out.append(format_traffic(run_traffic(
            _sizes(args, TRAFFIC_SIZES), _seeds(args, 1), rs,
            telemetry=getattr(args, "telemetry", False),
            sketch_quantiles=getattr(args, "sketch_quantiles", None),
            collector_mode=getattr(args, "collector", "list"),
            max_attempts=getattr(args, "max_attempts", 1),
            retry_backoff=getattr(args, "retry_backoff", 4),
            hedge_after=getattr(args, "hedge_after", None),
            route_redundancy=getattr(args, "route_redundancy", 1),
        )))
    return out


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI entry point; returns a process exit code."""
    args = _build_parser().parse_args(argv)
    started = time.time()
    for block in _dispatch(args):
        print(block)
        print()
    print(f"[done in {time.time() - started:.1f}s]", file=sys.stderr)
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
