"""Initial network states.

``build_random_network`` reproduces the paper's Section 5 setup exactly:
``n`` real nodes with uniformly random identifiers, connected as a random
weakly connected graph (random spanning tree + optional extra edges,
random edge orientation), no virtual nodes at time 0.

``build_shaped_network`` starts from degenerate undirected shapes (line,
star, bridged cliques, lollipop) and ``corrupt_network`` injects arbitrary
garbage (pre-existing virtual nodes, wrong ring/connection edges) to
exercise the "any weakly connected initial state" claim of Theorem 1.1.
"""

from __future__ import annotations

import random
from typing import Callable, Dict, List, Optional, Sequence

from repro.core.network import ReChordNetwork
from repro.core.rules import RuleConfig
from repro.graphs.digraph import EdgeKind
from repro.graphs.generators import (
    gnp_connected_graph,
    line_graph,
    lollipop_graph,
    random_orientation,
    star_graph,
    two_cliques_bridge,
)
from repro.idspace.ring import IdSpace

#: named degenerate shapes accepted by build_shaped_network
SHAPES: Dict[str, Callable[[int], list]] = {
    "line": line_graph,
    "star": star_graph,
    "two_cliques": two_cliques_bridge,
    "lollipop": lollipop_graph,
}


def random_peer_ids(n: int, rng: random.Random, space: IdSpace) -> List[int]:
    """``n`` distinct identifiers drawn uniformly from the id space."""
    if n > space.size:
        raise ValueError(f"cannot draw {n} distinct ids from a space of {space.size}")
    ids: set[int] = set()
    while len(ids) < n:
        ids.add(rng.randrange(space.size))
    return sorted(ids)


def _wire(
    net: ReChordNetwork,
    ids: Sequence[int],
    undirected_edges: Sequence[tuple],
    rng: random.Random,
) -> ReChordNetwork:
    for u in ids:
        net.add_peer(u)
    directed = random_orientation(undirected_edges, rng)
    for a, b in directed:
        net.add_initial_edge(net.ref(ids[a]), net.ref(ids[b]), EdgeKind.UNMARKED)
    return net


def build_random_network(
    n: int,
    seed: int,
    space: Optional[IdSpace] = None,
    config: Optional[RuleConfig] = None,
    extra_edge_prob: float = 0.05,
    record_trace: bool = False,
    incremental: bool = True,
    engine: Optional[str] = None,
    rule_backend: str = "scalar",
) -> ReChordNetwork:
    """The paper's Section 5 workload: a random weakly connected start.

    ``incremental`` selects the simulation kernel (see
    :class:`repro.core.network.ReChordNetwork`); ``engine`` names one
    explicitly ("full" / "incremental" / "columnar") and wins over the
    boolean.  The differential tests build the same seed with every
    kernel and compare round-for-round.
    """
    if n < 1:
        raise ValueError("need at least one peer")
    space = space if space is not None else IdSpace()
    rng = random.Random(seed)
    ids = random_peer_ids(n, rng, space)
    net = ReChordNetwork(
        space, config, record_trace=record_trace, incremental=incremental,
        engine=engine, rule_backend=rule_backend,
    )
    edges = gnp_connected_graph(n, extra_edge_prob, rng) if n > 1 else []
    return _wire(net, ids, edges, rng)


def build_shaped_network(
    shape: str,
    n: int,
    seed: int,
    space: Optional[IdSpace] = None,
    config: Optional[RuleConfig] = None,
    incremental: bool = True,
    engine: Optional[str] = None,
    rule_backend: str = "scalar",
) -> ReChordNetwork:
    """A degenerate initial shape (see :data:`SHAPES`)."""
    try:
        maker = SHAPES[shape]
    except KeyError:
        raise ValueError(f"unknown shape {shape!r}; choose from {sorted(SHAPES)}") from None
    space = space if space is not None else IdSpace()
    rng = random.Random(seed)
    ids = random_peer_ids(n, rng, space)
    net = ReChordNetwork(
        space, config, incremental=incremental, engine=engine, rule_backend=rule_backend
    )
    return _wire(net, ids, maker(n) if n > 1 else [], rng)


def build_two_rings_network(
    ids: Sequence[int],
    space: Optional[IdSpace] = None,
    config: Optional[RuleConfig] = None,
    incremental: bool = True,
    engine: Optional[str] = None,
    rule_backend: str = "scalar",
) -> ReChordNetwork:
    """The interleaved two-ring split that permanently breaks classic Chord.

    Peers are sorted by identifier and split by parity into two groups;
    each group forms a directed cycle of unmarked edges.  The cycles
    interleave on the identifier circle but share no edge, so classic
    Chord's stabilization can never merge them (Section 1 of the paper).
    Re-Chord only needs the *union* to be weakly connected, which two
    disjoint cycles are not — a single bridge edge is added, the minimum
    adversarial concession the model requires.
    """
    space = space if space is not None else IdSpace()
    net = ReChordNetwork(
        space, config, incremental=incremental, engine=engine, rule_backend=rule_backend
    )
    ordered = sorted(ids)
    for u in ordered:
        net.add_peer(u)
    if len(ordered) < 2:
        return net
    for group in (ordered[0::2], ordered[1::2]):
        for i, u in enumerate(group):
            net.add_initial_edge(
                net.ref(u), net.ref(group[(i + 1) % len(group)]), EdgeKind.UNMARKED
            )
    net.add_initial_edge(net.ref(ordered[0]), net.ref(ordered[1]), EdgeKind.UNMARKED)
    return net


def corrupt_network(
    net: ReChordNetwork,
    seed: int,
    virtual_fraction: float = 0.5,
    garbage_edges: int = 3,
) -> ReChordNetwork:
    """Inject arbitrary corruption into an initial state.

    * pre-creates random virtual levels on a fraction of peers (possibly
      more than the stable ``m*`` — rule 1 must delete the excess and
      re-home their neighborhoods);
    * adds random ring and connection edges between arbitrary nodes
      (the forwarding rules must drain or convert them);
    * adds unmarked edges to *phantom* virtual refs (levels nobody
      simulates — the purge step must re-point them [D11]).

    Corruption never removes edges, so weak connectivity is preserved.
    """
    rng = random.Random(seed)
    ids = net.peer_ids
    if not ids:
        return net
    max_level = net.space.max_level()
    for pid in ids:
        if rng.random() < virtual_fraction:
            for _ in range(rng.randint(1, 3)):
                net.ensure_virtual(pid, rng.randint(1, min(8, max_level)))
    all_refs = [
        node.ref
        for pid in ids
        for node in net.peers[pid].state.nodes.values()
    ]
    for _ in range(garbage_edges * len(ids)):
        src = rng.choice(all_refs)
        kind = rng.choice([EdgeKind.UNMARKED, EdgeKind.RING, EdgeKind.CONNECTION])
        if rng.random() < 0.2:
            # phantom target: a virtual level its owner may not simulate
            owner = rng.choice(ids)
            dst = net.ref(owner, rng.randint(1, min(10, max_level)))
        else:
            dst = rng.choice(all_refs)
        if dst != src:
            net.add_initial_edge(src, dst, kind)
    return net
