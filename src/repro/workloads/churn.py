"""Churn schedules: sequences of join / leave / crash events.

Section 4 of the paper analyzes isolated joins (Theorem 4.1, O(log² n)
rounds) and leaves/failures (Theorem 4.2, O(log n) rounds).  A
:class:`ChurnSchedule` scripts such events — possibly in bursts — against
a live network; the experiments replay schedules and measure the rounds
back to stability after each event.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Iterator, List, Literal, Optional, Sequence

from repro.core.network import ReChordNetwork
from repro.workloads.initial import random_peer_ids

EventKind = Literal["join", "leave", "crash"]


@dataclass(frozen=True)
class ChurnEvent:
    """A single membership event.

    ``peer_id`` is the joining/leaving peer; ``gateway_id`` is only used
    by joins (the one existing peer the newcomer knows).
    """

    kind: EventKind
    peer_id: int
    gateway_id: Optional[int] = None


def apply_event(net: ReChordNetwork, event: ChurnEvent) -> None:
    """Apply one event to a live network."""
    if event.kind == "join":
        if event.gateway_id is None:
            raise ValueError("join events need a gateway")
        net.join(event.peer_id, event.gateway_id)
    elif event.kind == "leave":
        net.leave(event.peer_id)
    elif event.kind == "crash":
        net.crash(event.peer_id)
    else:  # pragma: no cover - Literal guards this
        raise ValueError(f"unknown event kind {event.kind!r}")


class ChurnSchedule:
    """A reproducible random sequence of churn events."""

    def __init__(self, events: Sequence[ChurnEvent]) -> None:
        self.events: List[ChurnEvent] = list(events)

    def __iter__(self) -> Iterator[ChurnEvent]:
        return iter(self.events)

    def __len__(self) -> int:
        return len(self.events)

    @staticmethod
    def random(
        net: ReChordNetwork,
        events: int,
        seed: int,
        join_prob: float = 0.4,
        crash_prob: float = 0.3,
    ) -> "ChurnSchedule":
        """Script ``events`` random events against the current peer set.

        Joins draw fresh random ids; leaves/crashes pick uniformly among
        peers that will still be alive at that point.  The schedule never
        empties the network.
        """
        rng = random.Random(seed)
        alive = set(net.peer_ids)
        out: List[ChurnEvent] = []
        for _ in range(events):
            roll = rng.random()
            if roll < join_prob or len(alive) <= 2:
                new_id = random_peer_ids(1, rng, net.space)[0]
                while new_id in alive:
                    new_id = random_peer_ids(1, rng, net.space)[0]
                gateway = rng.choice(sorted(alive))
                out.append(ChurnEvent("join", new_id, gateway))
                alive.add(new_id)
            else:
                victim = rng.choice(sorted(alive))
                kind: EventKind = "crash" if roll < join_prob + crash_prob else "leave"
                out.append(ChurnEvent(kind, victim))
                alive.discard(victim)
        return ChurnSchedule(out)
