"""Workloads: initial states and churn schedules.

The paper's Section 5 workload — random weakly connected graphs over real
nodes with uniformly random identifiers — plus the adversarial initial
shapes and churn schedules used by the robustness experiments.
"""

from repro.workloads.initial import (
    build_random_network,
    build_shaped_network,
    corrupt_network,
    random_peer_ids,
)
from repro.workloads.churn import ChurnEvent, ChurnSchedule, apply_event

__all__ = [
    "build_random_network",
    "build_shaped_network",
    "corrupt_network",
    "random_peer_ids",
    "ChurnEvent",
    "ChurnSchedule",
    "apply_event",
]
