"""Graph linearization baseline (Onus, Richa, Scheideler — ALENEX 2007).

The local-control technique Re-Chord builds on: every node repeatedly
keeps only its closest left/right neighbors and delegates the rest, which
converts any weakly connected graph into the sorted doubly linked list.
Re-Chord is "linearization + virtual nodes + ring/connection/real-pointer
rules"; this standalone baseline lets the experiments separate the cost
of sorting from the cost of the Chord structure.
"""

from repro.linearize.protocol import LinearizeNetwork, LinearizePeer

__all__ = ["LinearizeNetwork", "LinearizePeer"]
