"""Self-stabilizing list linearization.

Each node ``u`` keeps a set of known neighbors.  Every round:

* sort the left neighbors descending and the right neighbors ascending;
* keep only the closest on each side;
* *forward* every consecutive pair ``(a, b)`` — tell ``a`` about ``b``
  (the edge's start moves closer to its end);
* *mirror* — tell the two kept neighbors about ``u``.

From any weakly connected initial graph this converges to the sorted
doubly linked list (the paper's phase-2 argument is exactly the analysis
of this process).  Stability here is quiescent-ish: the mirror messages
keep flowing but the configuration is constant, detected by the same
fingerprint technique as Re-Chord.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.idspace.ring import IdSpace
from repro.netsim.messages import Envelope
from repro.netsim.scheduler import RoundContext, SynchronousScheduler
from repro.netsim.trace import TraceRecorder


@dataclass(frozen=True)
class Meet:
    """'target should know about endpoint' — the only message kind."""

    target: int
    endpoint: int

    def canonical(self) -> tuple:
        """Sortable identity for fingerprints."""
        return (self.target, self.endpoint)


class LinearizePeer:
    """One node of the linearization protocol."""

    __slots__ = ("id", "neighbors")

    def __init__(self, peer_id: int) -> None:
        self.id = peer_id
        self.neighbors: Set[int] = set()

    def step(self, inbox: Sequence[Envelope], ctx: RoundContext) -> None:
        """One round: absorb introductions, linearize, mirror."""
        for env in inbox:
            msg = env.payload
            if msg.endpoint != self.id:
                self.neighbors.add(msg.endpoint)
        self.neighbors = {v for v in self.neighbors if ctx.actor_exists(v)}
        lefts = sorted((v for v in self.neighbors if v < self.id), reverse=True)
        for a, b in zip(lefts, lefts[1:]):
            ctx.send(a, Meet(a, b))
            self.neighbors.discard(b)
        rights = sorted(v for v in self.neighbors if v > self.id)
        for a, b in zip(rights, rights[1:]):
            ctx.send(a, Meet(a, b))
            self.neighbors.discard(b)
        for v in sorted(self.neighbors):
            ctx.send(v, Meet(v, self.id))


class LinearizeNetwork:
    """Facade mirroring :class:`repro.core.network.ReChordNetwork`."""

    def __init__(self, space: Optional[IdSpace] = None, record_trace: bool = False) -> None:
        self.space = space if space is not None else IdSpace()
        self.trace: Optional[TraceRecorder] = TraceRecorder() if record_trace else None
        self.scheduler = SynchronousScheduler(self.trace)
        self.peers: Dict[int, LinearizePeer] = {}

    def add_peer(self, peer_id: int) -> LinearizePeer:
        """Register a node."""
        self.space.check_id(peer_id)
        if peer_id in self.peers:
            raise ValueError(f"duplicate peer id {peer_id}")
        peer = LinearizePeer(peer_id)
        self.peers[peer_id] = peer
        self.scheduler.add_actor(peer_id, peer)
        return peer

    def add_initial_edge(self, src: int, dst: int) -> None:
        """Seed a directed knowledge edge."""
        if src != dst:
            self.peers[src].neighbors.add(dst)

    @property
    def peer_ids(self) -> List[int]:
        """Sorted node ids."""
        return sorted(self.peers)

    def run_round(self) -> None:
        """One synchronous round."""
        self.scheduler.run_round()

    def fingerprint(self) -> tuple:
        """Canonical configuration (states + in-flight messages)."""
        states = tuple(
            (pid, tuple(sorted(self.peers[pid].neighbors))) for pid in sorted(self.peers)
        )
        pending = tuple(
            sorted((env.target, env.payload.canonical()) for env in self.scheduler.all_pending())
        )
        return (states, pending)

    def run_until_stable(self, max_rounds: int = 10_000) -> int:
        """Rounds until the configuration repeats (see Re-Chord facade)."""
        prev = self.fingerprint()
        for executed in range(1, max_rounds + 1):
            self.run_round()
            cur = self.fingerprint()
            if cur == prev:
                return executed - 1
            prev = cur
        raise RuntimeError(f"not stable within {max_rounds} rounds")

    def is_sorted_list(self) -> bool:
        """Whether the topology is exactly the sorted doubly linked list."""
        ids = self.peer_ids
        for i, u in enumerate(ids):
            want: Set[int] = set()
            if i > 0:
                want.add(ids[i - 1])
            if i + 1 < len(ids):
                want.add(ids[i + 1])
            if self.peers[u].neighbors != want:
                return False
        return True

    def sorted_list_errors(self) -> List[Tuple[int, Set[int], Set[int]]]:
        """Nodes whose neighbor sets differ from the sorted list."""
        ids = self.peer_ids
        out = []
        for i, u in enumerate(ids):
            want: Set[int] = set()
            if i > 0:
                want.add(ids[i - 1])
            if i + 1 < len(ids):
                want.add(ids[i + 1])
            if self.peers[u].neighbors != want:
                out.append((u, set(self.peers[u].neighbors), want))
        return out
