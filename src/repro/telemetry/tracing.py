"""Causal op tracing: the hop path of a sampled lookup.

A :class:`TraceContext` rides on ``LookupRequest``/``LookupReply``
payloads of sampled operations and accumulates one ``(peer, round,
rule)`` record per forwarding decision.  The trace field is excluded
from payload equality, hashing and ``canonical()`` so that tracing a
run changes **nothing** observable: envelope interning, outbox diffs,
pending multisets and fingerprints are identical with tracing on or
off.

The ``rule`` label names the forwarding decision the traffic plane
took at that hop:

* ``issue`` — the operation entered the network at its origin;
* ``greedy`` — forwarded to the closest predecessor of the key in the
  peer's live view (the paper's greedy routing step);
* ``fallback`` — no view member preceded the key; forwarded to the
  clockwise-closest view member instead;
* a terminal status (``ok``/``notfound``/``dead_end``/``loop``/
  ``ttl``) — the hop where the operation completed, as classified by
  the traffic plane.

>>> t = TraceContext(op_id=4)
>>> t = t.extended(peer=10, round_no=3, rule="issue")
>>> t = t.extended(peer=22, round_no=4, rule="greedy")
>>> t.hops
((10, 3, 'issue'), (22, 4, 'greedy'))
>>> len(t)
2
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Tuple


@dataclass(frozen=True)
class TraceContext:
    """The accumulated (peer, round, rule) path of one sampled op."""

    op_id: int
    hops: Tuple[Tuple[int, int, str], ...] = ()

    def extended(self, peer: int, round_no: int, rule: str) -> "TraceContext":
        """A new context with one more hop record appended."""
        return replace(self, hops=self.hops + ((peer, round_no, rule),))

    def __len__(self) -> int:
        return len(self.hops)

    def describe(self) -> str:
        """One line per hop, for the CLI renderer."""
        lines = []
        for peer, round_no, rule in self.hops:
            lines.append(f"round {round_no:>4}  peer {peer:>8}  {rule}")
        return "\n".join(lines)
