"""Streaming percentile sketch: the P² algorithm.

Jain & Chlamtac's P² ("P-squared") algorithm maintains a running
quantile estimate in O(1) memory — five markers whose heights are
nudged toward their ideal positions with a piecewise-parabolic
interpolation — without storing the observations.  This is the
building block for million-op traffic campaigns where the SLO
collector cannot afford a full latency histogram.

Until five observations have arrived the sketch answers with the exact
nearest-rank percentile of what it has seen, so small runs lose
nothing.

>>> sk = P2Quantile(0.5)
>>> for x in [1, 2, 3, 4, 5]:
...     sk.add(x)
>>> sk.value()
3.0
>>> len(sk)
5
"""

from __future__ import annotations

import math
from typing import List, Optional


class P2Quantile:
    """A single streaming quantile estimate (0 < q < 1)."""

    __slots__ = ("q", "_count", "_heights", "_pos", "_want", "_dwant")

    def __init__(self, q: float) -> None:
        if not 0.0 < q < 1.0:
            raise ValueError(f"quantile must be in (0, 1), got {q}")
        self.q = q
        self._count = 0
        self._heights: List[float] = []  # marker heights (first 5: raw samples)
        self._pos: List[float] = []      # actual marker positions (1-based)
        self._want: List[float] = []     # desired marker positions
        self._dwant = [0.0, q / 2.0, q, (1.0 + q) / 2.0, 1.0]

    def __len__(self) -> int:
        return self._count

    def add(self, x: float) -> None:
        x = float(x)
        self._count += 1
        h = self._heights
        if self._count <= 5:
            h.append(x)
            if self._count == 5:
                h.sort()
                self._pos = [1.0, 2.0, 3.0, 4.0, 5.0]
                q = self.q
                self._want = [1.0, 1.0 + 2.0 * q, 1.0 + 4.0 * q,
                              3.0 + 2.0 * q, 5.0]
            return

    # -- steady state: five markers ------------------------------------
        pos = self._pos
        if x < h[0]:
            h[0] = x
            k = 0
        elif x >= h[4]:
            h[4] = x
            k = 3
        else:
            k = 3
            for i in range(1, 4):
                if x < h[i]:
                    k = i - 1
                    break
        for i in range(k + 1, 5):
            pos[i] += 1.0
        want = self._want
        for i in range(5):
            want[i] += self._dwant[i]
        # adjust the three interior markers toward their ideal positions
        for i in range(1, 4):
            d = want[i] - pos[i]
            if (d >= 1.0 and pos[i + 1] - pos[i] > 1.0) or (
                d <= -1.0 and pos[i - 1] - pos[i] < -1.0
            ):
                step = 1.0 if d >= 1.0 else -1.0
                candidate = self._parabolic(i, step)
                if h[i - 1] < candidate < h[i + 1]:
                    h[i] = candidate
                else:
                    h[i] = self._linear(i, step)
                pos[i] += step

    def _parabolic(self, i: int, d: float) -> float:
        h, n = self._heights, self._pos
        return h[i] + d / (n[i + 1] - n[i - 1]) * (
            (n[i] - n[i - 1] + d) * (h[i + 1] - h[i]) / (n[i + 1] - n[i])
            + (n[i + 1] - n[i] - d) * (h[i] - h[i - 1]) / (n[i] - n[i - 1])
        )

    def _linear(self, i: int, d: float) -> float:
        h, n = self._heights, self._pos
        j = i + int(d)
        return h[i] + d * (h[j] - h[i]) / (n[j] - n[i])

    def value(self) -> Optional[float]:
        """The current estimate (exact below five samples; None if empty)."""
        if self._count == 0:
            return None
        if self._count <= 5:
            ordered = sorted(self._heights)
            # nearest-rank, mirroring traffic.slo.percentile semantics
            n = len(ordered)
            rank = min(max(math.ceil(self.q * 100 * n / 100.0), 1), n)
            return float(ordered[rank - 1])
        return self._heights[2]
