"""The telemetry recorder: one sink for counters, timers and traces.

The recorder separates what is comparable from what is not:

* :attr:`counters` and :attr:`messages` are **engine-invariant** —
  identical across the full/incremental/columnar kernels for the same
  seeded run (the differential suites assert this);
* :attr:`kernel` holds the execute/replay split and dirty-set peaks —
  deterministic, but invariant only between the two dirty-set kernels
  (the full-scan reference executes everybody by design);
* :attr:`timers` holds wall-clock phase spans — nondeterministic,
  reported but never compared;
* :attr:`rule_fires` is filled in from the network's
  :class:`~repro.core.rules.RuleCounters` merge when a census is taken
  (rule firings are counted by the protocol layer whether or not
  telemetry is enabled — the recorder only snapshots them).

>>> rec = TelemetryRecorder(trace_sample_interval=4)
>>> [op for op in range(9) if rec.sampled(op)]
[0, 4, 8]
>>> rec.messages["Introduce"] += 3
>>> rec.on_round(sent=3, dropped=0, executed=2, replayed=5)
>>> rec.census()["messages"]
{'Introduce': 3}
>>> rec.kernel_stats() == {"executed": 2, "replayed": 5, "dirty_peak": 2}
True
"""

from __future__ import annotations

import json
from collections import Counter
from typing import Dict, List, Optional, Tuple


class TelemetryRecorder:
    """Accumulates counters, phase timers and sampled op traces."""

    def __init__(
        self,
        trace_sample_interval: int = 1,
        max_traces: int = 256,
    ) -> None:
        if trace_sample_interval < 1:
            raise ValueError("trace_sample_interval must be >= 1")
        self.trace_sample_interval = trace_sample_interval
        self.max_traces = max_traces
        #: engine-invariant deterministic counters (rounds/sent/dropped)
        self.counters: Counter = Counter()
        #: engine-invariant envelope census by payload type name
        self.messages: Counter = Counter()
        #: kernel-plane deterministic counters (execute/replay split)
        self.kernel: Counter = Counter()
        #: wall-clock phase accounting: phase -> [seconds, calls]
        self.timers: Dict[str, List[float]] = {}
        #: per-rule firing snapshot (set by the owning network at census)
        self.rule_fires: Dict[str, int] = {}
        #: completed sampled ops: (op_id, op, outcome, hops tuple)
        self.traces: List[Tuple[int, str, str, tuple]] = []

    # ------------------------------------------------------------------
    # ingestion (called from the kernels / traffic plane)
    # ------------------------------------------------------------------
    def on_round(
        self,
        sent: int,
        dropped: int,
        executed: int,
        replayed: int,
    ) -> None:
        """Per-round bookkeeping, called once by whichever kernel ran."""
        c = self.counters
        c["rounds"] += 1
        c["sent"] += sent
        c["dropped"] += dropped
        k = self.kernel
        k["executed"] += executed
        k["replayed"] += replayed
        if executed > k["dirty_peak"]:
            k["dirty_peak"] = executed

    def add_time(self, phase: str, seconds: float, calls: int = 1) -> None:
        """Accumulate one wall-clock span under a phase label."""
        slot = self.timers.get(phase)
        if slot is None:
            self.timers[phase] = [seconds, calls]
        else:
            slot[0] += seconds
            slot[1] += calls

    def sampled(self, op_id: int) -> bool:
        """Deterministic sampling decision for one op id."""
        return op_id % self.trace_sample_interval == 0

    def add_trace(self, op_id: int, op: str, outcome: str, hops: tuple) -> None:
        """Store one completed sampled op's hop path (bounded)."""
        if len(self.traces) < self.max_traces:
            self.traces.append((op_id, op, outcome, tuple(hops)))

    # ------------------------------------------------------------------
    # views
    # ------------------------------------------------------------------
    def census(self) -> dict:
        """The deterministic, engine-invariant counter census."""
        return {
            "rounds": self.counters.get("rounds", 0),
            "sent": self.counters.get("sent", 0),
            "dropped": self.counters.get("dropped", 0),
            "messages": {k: v for k, v in sorted(self.messages.items()) if v},
            "rules": dict(sorted(self.rule_fires.items())),
        }

    def kernel_stats(self) -> dict:
        """The kernel-plane split (invariant incremental ≡ columnar)."""
        return {
            "executed": self.kernel.get("executed", 0),
            "replayed": self.kernel.get("replayed", 0),
            "dirty_peak": self.kernel.get("dirty_peak", 0),
        }

    def phase_table(self) -> List[Tuple[str, float, int]]:
        """(phase, total seconds, calls) rows, slowest first."""
        rows = [(p, t[0], int(t[1])) for p, t in self.timers.items()]
        rows.sort(key=lambda row: (-row[1], row[0]))
        return rows

    def rule_hotspots(self, k: int = 3) -> List[Tuple[str, float, int]]:
        """The ``k`` most expensive ``rule.*`` phases by wall time."""
        return [row for row in self.phase_table() if row[0].startswith("rule.")][:k]

    # ------------------------------------------------------------------
    # export
    # ------------------------------------------------------------------
    def dump(self, path) -> int:
        """Write the full record set as JSONL; returns records written.

        One record per line, each self-describing via a ``kind`` field:
        ``census`` and ``kernel`` (deterministic), ``timer`` rows
        (wall-clock), and one ``trace`` row per stored sampled op.
        """
        records = self.records()
        with open(path, "w") as fh:
            for rec in records:
                fh.write(json.dumps(rec, sort_keys=True) + "\n")
        return len(records)

    def records(self) -> List[dict]:
        """The JSONL record set as dicts (deterministic ordering)."""
        out: List[dict] = [
            {"kind": "census", **self.census()},
            {"kind": "kernel", **self.kernel_stats()},
        ]
        for phase, seconds, calls in self.phase_table():
            out.append(
                {"kind": "timer", "phase": phase,
                 "seconds": round(seconds, 6), "calls": calls}
            )
        for op_id, op, outcome, hops in self.traces:
            out.append(
                {"kind": "trace", "op_id": op_id, "op": op,
                 "outcome": outcome,
                 "hops": [list(h) for h in hops]}
            )
        return out

    def clear(self) -> None:
        """Reset every plane (sampling config is kept)."""
        self.counters.clear()
        self.messages.clear()
        self.kernel.clear()
        self.timers.clear()
        self.rule_fires.clear()
        self.traces.clear()
