"""Unified telemetry plane: counters, phase timers, causal op traces.

Three strictly separated data planes live in one
:class:`TelemetryRecorder`:

* **deterministic, engine-invariant counters** — messages by payload
  type, total emissions, drop-filter hits, round count.  Identical
  across the ``full``/``incremental``/``columnar`` kernels for the same
  seeded run, and therefore equivalence-testable;
* **deterministic kernel-plane counters** — execute/replay splits and
  dirty-set sizes.  Identical between the ``incremental`` and
  ``columnar`` kernels (the full-scan kernel executes everybody, so its
  split is trivially different);
* **wall-clock phase timers** — ``perf_counter`` spans around the
  kernel phases and the per-rule sweeps.  Nondeterministic by nature;
  never compared, only reported.

The overhead contract: with telemetry disabled (the default) the
instrumented code paths are guarded by a single ``is None`` check per
round (per actor in the hot loops), and enabling telemetry never
changes simulation behavior — traces ride outside payload equality and
counters never gate a decision.

>>> from repro.telemetry import TelemetryRecorder, TraceContext
>>> rec = TelemetryRecorder()
>>> rec.sampled(0) and rec.sampled(7)   # default: trace every op
True
>>> TraceContext(op_id=7).extended(3, 1, "greedy").hops
((3, 1, 'greedy'),)
"""

from repro.telemetry.recorder import TelemetryRecorder
from repro.telemetry.report import render_telemetry
from repro.telemetry.sketch import P2Quantile
from repro.telemetry.tracing import TraceContext

__all__ = [
    "TelemetryRecorder",
    "TraceContext",
    "P2Quantile",
    "render_telemetry",
]
