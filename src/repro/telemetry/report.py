"""Text renderers for the telemetry plane (the `rechord observe` body).

Deterministic content (censuses, traces) renders deterministically;
wall-clock tables are explicitly labeled as such and never enter a
baseline.

>>> from repro.telemetry.recorder import TelemetryRecorder
>>> rec = TelemetryRecorder()
>>> rec.messages["Introduce"] += 2
>>> rec.on_round(sent=2, dropped=1, executed=1, replayed=3)
>>> print(render_census(rec))          # doctest: +NORMALIZE_WHITESPACE
rounds           : 1
messages sent    : 2
drop-filter hits : 1
executed         : 1
replayed         : 3
dirty-set peak   : 1
message census:
  Introduce 2
"""

from __future__ import annotations

from typing import List

from repro.telemetry.recorder import TelemetryRecorder


def render_census(rec: TelemetryRecorder) -> str:
    """The deterministic counter census (plus the kernel split)."""
    census = rec.census()
    kernel = rec.kernel_stats()
    lines = [
        f"rounds           : {census['rounds']}",
        f"messages sent    : {census['sent']}",
        f"drop-filter hits : {census['dropped']}",
        f"executed         : {kernel['executed']}",
        f"replayed         : {kernel['replayed']}",
        f"dirty-set peak   : {kernel['dirty_peak']}",
    ]
    if census["messages"]:
        lines.append("message census:")
        for name, count in census["messages"].items():
            lines.append(f"  {name:<24} {count:>8}")
    if census["rules"]:
        lines.append("rule firings:")
        for name, count in census["rules"].items():
            lines.append(f"  {name:<24} {count:>8}")
    return "\n".join(lines)


def render_phase_table(rec: TelemetryRecorder) -> str:
    """Wall-clock flame table, slowest phase first (nondeterministic)."""
    rows = rec.phase_table()
    if not rows:
        return "phase timers: (no spans recorded)"
    total = sum(seconds for _, seconds, _ in rows)
    lines = ["phase timers (wall clock; not comparable across machines):"]
    lines.append(f"  {'phase':<24} {'seconds':>10} {'calls':>10} {'share':>7}")
    for phase, seconds, calls in rows:
        share = seconds / total if total else 0.0
        lines.append(
            f"  {phase:<24} {seconds:>10.4f} {calls:>10} {share:>6.1%}"
        )
    hot = rec.rule_hotspots(3)
    if hot:
        names = ", ".join(phase for phase, _, _ in hot)
        lines.append(f"  top rule hotspots: {names}")
    return "\n".join(lines)


def render_traces(rec: TelemetryRecorder, limit: int = 3) -> str:
    """Hop traces of up to ``limit`` sampled completed operations."""
    if not rec.traces:
        return "hop traces: (no sampled operations completed)"
    lines = [f"hop traces ({min(limit, len(rec.traces))} of {len(rec.traces)} sampled ops):"]
    for op_id, op, outcome, hops in rec.traces[:limit]:
        lines.append(f"  op {op_id} ({op}) -> {outcome}, {max(0, len(hops) - 1)} forwards:")
        for peer, round_no, rule in hops:
            lines.append(f"    round {round_no:>4}  peer {peer:>8}  {rule}")
    return "\n".join(lines)


def render_telemetry(rec: TelemetryRecorder, traces: int = 3) -> str:
    """The full observe block: census, flame table, hop traces."""
    parts: List[str] = [
        render_census(rec),
        render_phase_table(rec),
        render_traces(rec, limit=traces),
    ]
    return "\n\n".join(parts)
