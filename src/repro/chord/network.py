"""Chord network facade: construction, correctness oracle, lookups.

Provides the adversarial constructors used by experiment E8: an arbitrary
successor map (weakly connected but wrong) and the classic *two-ring*
state — two internally consistent rings that Chord's maintenance protocol
provably never merges (no rule ever contacts a node outside the ring),
demonstrating that classic Chord is not self-stabilizing.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from repro.chord.node import ChordPeer, FindSuccessorStep, LeaveNotice, LookupState
from repro.core.ideal import chord_successor
from repro.idspace.ring import IdSpace
from repro.netsim.messages import Envelope
from repro.netsim.scheduler import SynchronousScheduler
from repro.netsim.trace import TraceRecorder


class ChordNetwork:
    """A set of classic Chord peers on the synchronous kernel."""

    def __init__(
        self,
        space: Optional[IdSpace] = None,
        successor_list_len: int = 4,
        fingers_per_round: int = 1,
        record_trace: bool = False,
    ) -> None:
        self.space = space if space is not None else IdSpace()
        self.trace: Optional[TraceRecorder] = TraceRecorder() if record_trace else None
        self.scheduler = SynchronousScheduler(self.trace)
        self.peers: Dict[int, ChordPeer] = {}
        self.successor_list_len = successor_list_len
        self.fingers_per_round = fingers_per_round

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    def add_peer(self, peer_id: int) -> ChordPeer:
        """Register a peer (successor initially itself: a singleton ring)."""
        if peer_id in self.peers:
            raise ValueError(f"duplicate peer id {peer_id}")
        peer = ChordPeer(
            peer_id,
            self.space,
            successor_list_len=self.successor_list_len,
            fingers_per_round=self.fingers_per_round,
        )
        peer.successor = peer_id
        self.peers[peer_id] = peer
        self.scheduler.add_actor(peer_id, peer)
        return peer

    @classmethod
    def perfect_ring(cls, ids: Sequence[int], space: Optional[IdSpace] = None, **kw) -> "ChordNetwork":
        """A correct ring: successors/predecessors set to the true values."""
        net = cls(space, **kw)
        ordered = sorted(set(ids))
        for u in ordered:
            net.add_peer(u)
        n = len(ordered)
        for i, u in enumerate(ordered):
            peer = net.peers[u]
            peer.successor = ordered[(i + 1) % n]
            peer.predecessor = ordered[(i - 1) % n]
            peer.successor_list = [ordered[(i + k) % n] for k in range(1, min(n, peer.successor_list_len + 1))]
        return net

    @classmethod
    def from_successor_map(
        cls, successors: Dict[int, int], space: Optional[IdSpace] = None, **kw
    ) -> "ChordNetwork":
        """Arbitrary (possibly wrong) successor pointers — E8's bad states."""
        net = cls(space, **kw)
        for u in sorted(successors):
            net.add_peer(u)
        for u, s in successors.items():
            if s not in net.peers:
                raise ValueError(f"successor {s} of {u} is not a peer")
            net.peers[u].successor = s
        return net

    @classmethod
    def two_rings(cls, ids: Sequence[int], space: Optional[IdSpace] = None, **kw) -> "ChordNetwork":
        """Two disjoint, internally consistent rings (odd/even split).

        Each ring is a perfectly stable Chord network on its own subset;
        the union is NOT the correct topology, and classic Chord never
        repairs it.
        """
        ordered = sorted(set(ids))
        if len(ordered) < 4:
            raise ValueError("need at least 4 peers for two rings")
        net = cls(space, **kw)
        for u in ordered:
            net.add_peer(u)
        for group in (ordered[0::2], ordered[1::2]):
            n = len(group)
            for i, u in enumerate(group):
                peer = net.peers[u]
                peer.successor = group[(i + 1) % n]
                peer.predecessor = group[(i - 1) % n]
                peer.successor_list = [group[(i + k) % n] for k in range(1, min(n, peer.successor_list_len + 1))]
        return net

    # ------------------------------------------------------------------
    # execution
    # ------------------------------------------------------------------
    @property
    def peer_ids(self) -> List[int]:
        """Sorted live peer ids."""
        return sorted(self.peers)

    @property
    def round_no(self) -> int:
        """Completed rounds."""
        return self.scheduler.round_no

    def run(self, rounds: int) -> None:
        """Execute ``rounds`` synchronous rounds."""
        self.scheduler.run(rounds)

    # ------------------------------------------------------------------
    # correctness oracle
    # ------------------------------------------------------------------
    def true_successor(self, u: int) -> int:
        """The correct ring successor of ``u`` among live peers."""
        return chord_successor(self.space, self.peer_ids, (u + 1) % self.space.size)

    def ring_correct(self) -> bool:
        """Whether every peer's successor pointer is the true successor."""
        return all(self.peers[u].successor == self.true_successor(u) for u in self.peers)

    def ring_errors(self) -> List[Tuple[int, Optional[int], int]]:
        """Peers with wrong successors: ``(peer, has, wants)``."""
        out = []
        for u in sorted(self.peers):
            want = self.true_successor(u)
            if self.peers[u].successor != want:
                out.append((u, self.peers[u].successor, want))
        return out

    def fingers_correct(self, u: int) -> bool:
        """Whether peer ``u``'s filled finger entries are all correct."""
        peer = self.peers[u]
        for i in range(1, self.space.bits + 1):
            have = peer.fingers.get(i)
            if have is None:
                continue
            want = chord_successor(self.space, self.peer_ids, self.space.finger_target(u, i))
            if have != want:
                return False
        return True

    # ------------------------------------------------------------------
    # membership
    # ------------------------------------------------------------------
    def join(self, new_id: int, gateway_id: int) -> None:
        """A new peer joins via ``gateway_id`` (find_successor(new_id))."""
        if gateway_id not in self.peers:
            raise KeyError(f"gateway {gateway_id} is not a live peer")
        peer = self.add_peer(new_id)
        peer._lookups[0] = LookupState(
            key=new_id,
            hops=0,
            started_round=self.scheduler.round_no,
            purpose="join",
            current_target=gateway_id,
        )
        self.scheduler.post(Envelope(new_id, gateway_id, FindSuccessorStep(new_id, new_id, 0)))

    def leave(self, peer_id: int) -> None:
        """Voluntary departure with neighbor hand-off."""
        peer = self.peers.get(peer_id)
        if peer is None:
            raise KeyError(f"unknown peer {peer_id}")
        if peer.predecessor is not None and peer.predecessor in self.peers and peer.predecessor != peer_id:
            self.scheduler.post(
                Envelope(peer_id, peer.predecessor, LeaveNotice(None, peer.successor))
            )
        if peer.successor is not None and peer.successor in self.peers and peer.successor != peer_id:
            self.scheduler.post(
                Envelope(peer_id, peer.successor, LeaveNotice(peer.predecessor, None))
            )
        peer.left = True
        del self.peers[peer_id]
        self.scheduler.remove_actor(peer_id)

    def crash(self, peer_id: int) -> None:
        """Abrupt failure."""
        if peer_id not in self.peers:
            raise KeyError(f"unknown peer {peer_id}")
        self.peers[peer_id].left = True
        del self.peers[peer_id]
        self.scheduler.remove_actor(peer_id)

    # ------------------------------------------------------------------
    # lookups
    # ------------------------------------------------------------------
    def lookup(self, start: int, key: int, max_rounds: int = 500) -> Tuple[int, int, int]:
        """Synchronously resolve ``find_successor(key)`` from ``start``.

        Returns ``(owner, hops, rounds)``.  Raises ``RuntimeError`` if the
        lookup does not finish within ``max_rounds`` (e.g. in a broken
        topology).
        """
        peer = self.peers[start]
        token = peer._new_token()
        peer._lookups[token] = LookupState(
            key=key,
            hops=0,
            started_round=self.scheduler.round_no,
            purpose="user",
            current_target=start,
        )
        self.scheduler.post(Envelope(start, start, FindSuccessorStep(key, start, token)))
        for _ in range(max_rounds):
            self.scheduler.run_round()
            if token in peer.completed_lookups:
                return peer.completed_lookups.pop(token)
        raise RuntimeError(f"lookup for {key} from {start} unresolved after {max_rounds} rounds")
