"""Classic Chord baseline (Stoica et al., SIGCOMM 2001).

A faithful message-based implementation of the original Chord maintenance
protocol on the same synchronous kernel as Re-Chord: ``stabilize`` /
``notify`` / ``fix_fingers`` / successor lists, iterative
``find_successor`` lookups, joins and failure handling.

Its role in the reproduction is the motivating contrast of the paper's
introduction: classic Chord keeps a correct ring correct and absorbs
benign churn, but it is **not self-stabilizing** — e.g. a "two-ring"
state (two disjoint, internally consistent rings) is a fixed point of its
maintenance protocol and is never repaired, whereas Re-Chord recovers
from *any* weakly connected state (experiment E8).
"""

from repro.chord.node import ChordPeer, FingerTable
from repro.chord.network import ChordNetwork

__all__ = ["ChordPeer", "ChordNetwork", "FingerTable"]
