"""Chord peer: state, messages and the periodic maintenance protocol.

The maintenance protocol is the one from the original paper:

* ``stabilize()`` — ask the successor for its predecessor, adopt it if it
  lies between, then ``notify`` the successor;
* ``notify(p)`` — adopt ``p`` as predecessor if closer;
* ``fix_fingers()`` — refresh finger-table entries via iterative
  ``find_successor`` lookups;
* successor lists for fault tolerance.

All communication is message-based on the synchronous kernel: a remote
procedure call takes one round to reach the callee and one round for the
response.  Iterative lookups are client-driven state machines (one
referral per round trip), exactly as in iterative Chord deployments.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from repro.chord.routing import merge_successor_list, prune_successor_list
from repro.idspace.ring import IdSpace
from repro.netsim.messages import Envelope
from repro.netsim.scheduler import RoundContext


# ----------------------------------------------------------------------
# RPC payloads
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class GetPredecessor:
    """stabilize(): ask a peer for its predecessor pointer."""

    reply_to: int
    token: int


@dataclass(frozen=True)
class PredecessorIs:
    """Response to :class:`GetPredecessor`."""

    token: int
    value: Optional[int]
    sender_successor: int


@dataclass(frozen=True)
class Notify:
    """notify(): tell the successor we believe we precede it."""

    candidate: int


@dataclass(frozen=True)
class GetSuccessorList:
    """Ask a peer for its successor list (fault tolerance)."""

    reply_to: int
    token: int


@dataclass(frozen=True)
class SuccessorListIs:
    """Response to :class:`GetSuccessorList`."""

    token: int
    values: tuple


@dataclass(frozen=True)
class FindSuccessorStep:
    """One step of an iterative find_successor(key) query."""

    key: int
    reply_to: int
    token: int


@dataclass(frozen=True)
class FindSuccessorAnswer:
    """Terminal answer of a lookup: ``owner`` is responsible for the key."""

    token: int
    owner: int


@dataclass(frozen=True)
class FindSuccessorReferral:
    """Non-terminal lookup step: retry at ``next_hop``."""

    token: int
    next_hop: int


@dataclass(frozen=True)
class LeaveNotice:
    """Voluntary departure: hand neighbors to each other."""

    new_predecessor: Optional[int]
    new_successor: Optional[int]


@dataclass(frozen=True)
class LookupState:
    """Client-side bookkeeping of an in-flight iterative lookup."""

    key: int
    hops: int
    started_round: int
    purpose: str  # "finger:<i>" | "user" | "join"
    current_target: int


class FingerTable:
    """The classic Chord finger table: entry ``i`` covers ``u + 2**(B-i)``.

    Indexed 1..bits like the paper (entry 1 is the farthest finger at
    half-ring distance, entry ``bits`` the closest).
    """

    def __init__(self, space: IdSpace) -> None:
        self.space = space
        self.entries: Dict[int, Optional[int]] = {i: None for i in range(1, space.bits + 1)}

    def set(self, index: int, value: Optional[int]) -> None:
        """Set finger ``index``."""
        if index not in self.entries:
            raise IndexError(f"finger index {index} out of range")
        self.entries[index] = value

    def get(self, index: int) -> Optional[int]:
        """Finger ``index`` (may be stale or ``None``)."""
        return self.entries[index]

    def drop_value(self, value: int) -> None:
        """Remove a failed peer from all entries."""
        for i, v in self.entries.items():
            if v == value:
                self.entries[i] = None

    def known(self) -> List[int]:
        """All distinct live finger values."""
        return sorted({v for v in self.entries.values() if v is not None})


class ChordPeer:
    """One Chord peer as a synchronous-kernel actor."""

    def __init__(
        self,
        peer_id: int,
        space: IdSpace,
        successor_list_len: int = 4,
        fingers_per_round: int = 1,
    ) -> None:
        space.check_id(peer_id)
        self.id = peer_id
        self.space = space
        self.successor: Optional[int] = None
        self.predecessor: Optional[int] = None
        self.successor_list: List[int] = []
        self.fingers = FingerTable(space)
        self.successor_list_len = successor_list_len
        self.fingers_per_round = max(0, fingers_per_round)
        self._next_finger = 1
        self._token = 0
        self._lookups: Dict[int, LookupState] = {}
        self.completed_lookups: Dict[int, tuple] = {}  # token -> (owner, hops, rounds)
        self.left = False

    # ------------------------------------------------------------------
    # helpers
    # ------------------------------------------------------------------
    def _new_token(self) -> int:
        self._token += 1
        return self._token

    def _between_oc(self, a: int, x: int, b: int) -> bool:
        return self.space.between_open_closed(a, x, b)

    def closest_preceding_node(self, key: int) -> int:
        """The best known next hop for ``key`` (fingers + successor)."""
        candidates = set(self.fingers.known())
        if self.successor is not None:
            candidates.add(self.successor)
        best = self.id
        best_d = self.space.size  # distance from candidate to key, want max progress
        for c in sorted(candidates):
            if c == self.id:
                continue
            # c must lie strictly between us and the key (no overshoot)
            if self.space.between_open(self.id, c, key):
                d = self.space.distance_cw(c, key)
                if d < best_d:
                    best, best_d = c, d
        return best

    # ------------------------------------------------------------------
    # round entry point
    # ------------------------------------------------------------------
    def step(self, inbox: Sequence[Envelope], ctx: RoundContext) -> None:
        """One synchronous round: serve requests, then run maintenance."""
        if self.left:
            return
        for env in inbox:
            self._handle(env, ctx)
        self._purge_failed(ctx)
        self._stabilize(ctx)
        self._fix_fingers(ctx)
        self._refresh_successor_list(ctx)

    # ------------------------------------------------------------------
    # request handling (server side, answered within the round)
    # ------------------------------------------------------------------
    def _handle(self, env: Envelope, ctx: RoundContext) -> None:
        msg = env.payload
        if isinstance(msg, GetPredecessor):
            ctx.send(msg.reply_to, PredecessorIs(msg.token, self.predecessor, self.successor or self.id))
        elif isinstance(msg, PredecessorIs):
            self._on_predecessor(msg, ctx)
        elif isinstance(msg, Notify):
            self._on_notify(msg.candidate)
        elif isinstance(msg, GetSuccessorList):
            ctx.send(msg.reply_to, SuccessorListIs(msg.token, tuple(self.successor_list)))
        elif isinstance(msg, SuccessorListIs):
            self._on_successor_list(msg)
        elif isinstance(msg, FindSuccessorStep):
            self._serve_lookup(msg, ctx)
        elif isinstance(msg, FindSuccessorAnswer):
            self._on_answer(msg, ctx)
        elif isinstance(msg, FindSuccessorReferral):
            self._on_referral(msg, ctx)
        elif isinstance(msg, LeaveNotice):
            self._on_leave_notice(msg)
        else:  # pragma: no cover - protocol violation
            raise TypeError(f"unexpected message {msg!r}")

    def _serve_lookup(self, msg: FindSuccessorStep, ctx: RoundContext) -> None:
        succ = self.successor if self.successor is not None else self.id
        if succ == self.id or self._between_oc(self.id, msg.key, succ):
            ctx.send(msg.reply_to, FindSuccessorAnswer(msg.token, succ))
            return
        nxt = self.closest_preceding_node(msg.key)
        if nxt == self.id:
            # no finger makes progress: fall back to the successor (the
            # linear walk of the base protocol)
            nxt = succ
        ctx.send(msg.reply_to, FindSuccessorReferral(msg.token, nxt))

    # ------------------------------------------------------------------
    # client-side continuations
    # ------------------------------------------------------------------
    def _on_predecessor(self, msg: PredecessorIs, ctx: RoundContext) -> None:
        if self.successor is None:
            return
        p = msg.value
        if p is not None and p != self.id and self.space.between_open(self.id, p, self.successor):
            if ctx.actor_exists(p):
                self.successor = p
        ctx.send(self.successor, Notify(self.id))

    def _on_notify(self, candidate: int) -> None:
        if candidate == self.id:
            return
        if self.predecessor is None or self.space.between_open(self.predecessor, candidate, self.id):
            self.predecessor = candidate

    def _on_successor_list(self, msg: SuccessorListIs) -> None:
        if self.successor is None:
            return
        self.successor_list = merge_successor_list(
            self.successor, msg.values, me=self.id, length=self.successor_list_len
        )

    def _on_answer(self, msg: FindSuccessorAnswer, ctx: RoundContext) -> None:
        state = self._lookups.pop(msg.token, None)
        if state is None:
            return
        rounds = ctx.round_no - state.started_round
        self.completed_lookups[msg.token] = (msg.owner, state.hops, rounds)
        if state.purpose.startswith("finger:"):
            index = int(state.purpose.split(":", 1)[1])
            self.fingers.set(index, msg.owner)
        elif state.purpose == "join":
            self.successor = msg.owner

    def _on_referral(self, msg: FindSuccessorReferral, ctx: RoundContext) -> None:
        state = self._lookups.get(msg.token)
        if state is None:
            return
        if not ctx.actor_exists(msg.next_hop) or state.hops > 4 * self.space.bits:
            # dead next hop or routing loop: abandon (callers retry)
            self._lookups.pop(msg.token, None)
            return
        self._lookups[msg.token] = LookupState(
            key=state.key,
            hops=state.hops + 1,
            started_round=state.started_round,
            purpose=state.purpose,
            current_target=msg.next_hop,
        )
        ctx.send(msg.next_hop, FindSuccessorStep(state.key, self.id, msg.token))

    def _on_leave_notice(self, msg: LeaveNotice) -> None:
        if msg.new_successor is not None:
            self.successor = msg.new_successor
        if msg.new_predecessor is not None:
            self.predecessor = msg.new_predecessor

    # ------------------------------------------------------------------
    # periodic maintenance
    # ------------------------------------------------------------------
    def _purge_failed(self, ctx: RoundContext) -> None:
        if self.predecessor is not None and not ctx.actor_exists(self.predecessor):
            self.predecessor = None
        self.successor_list = prune_successor_list(self.successor_list, ctx.actor_exists)
        for v in list(self.fingers.known()):
            if not ctx.actor_exists(v):
                self.fingers.drop_value(v)
        if self.successor is not None and not ctx.actor_exists(self.successor):
            self.successor = self.successor_list[0] if self.successor_list else None
        if self.successor is None:
            # last resort: any live finger, else ourselves (singleton ring)
            known = self.fingers.known()
            self.successor = known[0] if known else self.id

    def _stabilize(self, ctx: RoundContext) -> None:
        if self.successor is None or self.successor == self.id:
            return
        ctx.send(self.successor, GetPredecessor(self.id, self._new_token()))

    def _fix_fingers(self, ctx: RoundContext) -> None:
        for _ in range(self.fingers_per_round):
            index = self._next_finger
            self._next_finger = 1 + (self._next_finger % self.space.bits)
            target = self.space.finger_target(self.id, index)
            self.start_lookup(target, purpose=f"finger:{index}", ctx=ctx)

    def _refresh_successor_list(self, ctx: RoundContext) -> None:
        if self.successor is not None and self.successor != self.id:
            ctx.send(self.successor, GetSuccessorList(self.id, self._new_token()))

    # ------------------------------------------------------------------
    # public operations
    # ------------------------------------------------------------------
    def start_lookup(self, key: int, purpose: str, ctx: RoundContext) -> int:
        """Begin an iterative find_successor(key); returns the token."""
        token = self._new_token()
        self._lookups[token] = LookupState(
            key=key, hops=0, started_round=ctx.round_no, purpose=purpose, current_target=self.id
        )
        # first step is served locally next round (sent to ourselves) so
        # that every step has uniform round-trip accounting
        ctx.send(self.id, FindSuccessorStep(key, self.id, token))
        return token

    def pending_lookup_count(self) -> int:
        """In-flight lookups (diagnostics)."""
        return len(self._lookups)
