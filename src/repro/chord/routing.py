"""Greedy Chord routing as a pure graph walk.

Used to analyze hop counts over *materialized* topologies (the classic
binary-search argument of Section 1.1): at each peer, hop to the known
out-neighbor that makes the most clockwise progress toward the key
without overshooting; if none helps, take the successor.  Both the Chord
baseline's finger tables and the Re-Chord projection (Fact 2.1) can be
routed this way, which is how the lookup experiment (E7) measures path
lengths without simulating message exchanges.

Failure semantics: routing over a *degraded* view (mid-stabilization
snapshots, the usability experiment) can dead-end, loop, or simply not
converge.  Loops are detected explicitly via a visited-set — the walk
is memoryless-deterministic, so any revisit repeats the same trajectory
forever — and every failure carries a machine-readable kind: ``strict=True`` (default) raises :class:`RoutingError` with a
``kind`` attribute, ``strict=False`` returns a :class:`RouteResult`
whose ``status`` names the failure and whose ``owner`` is the last peer
reached.  In-band routing (:mod:`repro.traffic.plane`) mirrors these
kinds, so snapshot and live routing report comparable outcomes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional, Sequence, Set

from repro.core.ideal import chord_successor
from repro.idspace.ring import IdSpace

#: returns the out-neighbors (peer ids) a peer can route through
NeighborFn = Callable[[int], Set[int]]

#: route statuses carried by RouteResult
ROUTE_OK = "ok"
ROUTE_LOOP = "loop"
ROUTE_DEAD_END = "dead_end"
ROUTE_HOP_LIMIT = "hop_limit"


@dataclass(frozen=True)
class RouteResult:
    """Outcome of a greedy route.

    ``status`` is ``"ok"`` when the walk terminated at the responsible
    peer; otherwise it names the failure (``loop`` / ``dead_end`` /
    ``hop_limit``) and ``owner`` is the peer where the walk stopped.
    """

    owner: int
    hops: int
    path: tuple
    status: str = ROUTE_OK

    @property
    def ok(self) -> bool:
        """Whether the route reached the responsible peer."""
        return self.status == ROUTE_OK


class RoutingError(RuntimeError):
    """Raised (in strict mode) when greedy routing cannot reach the
    responsible peer.  ``kind`` is the failure status, ``result`` the
    partial :class:`RouteResult`."""

    def __init__(self, message: str, kind: str = ROUTE_DEAD_END, result: Optional[RouteResult] = None) -> None:
        super().__init__(message)
        self.kind = kind
        self.result = result


def route_greedy(
    space: IdSpace,
    peer_ids: Sequence[int],
    neighbors: NeighborFn,
    start: int,
    key: int,
    max_hops: int = 512,
    strict: bool = True,
) -> RouteResult:
    """Route ``key`` from ``start`` over the given neighbor views.

    The responsible peer is ``chord_successor(key)``.  Progress metric:
    clockwise distance from the candidate to the key; a candidate is
    usable if it lies in the half-open arc ``(current, key]`` (no
    overshoot), exactly the paper's path definition.

    ``strict=True`` raises :class:`RoutingError` on failure (historical
    behavior); ``strict=False`` returns the partial result with its
    ``status`` set instead.

    A three-peer ring routed by hand (the key 190 is owned by peer 200,
    the first peer at-or-after it on the circle):

    >>> from repro.chord.routing import route_greedy
    >>> from repro.idspace.ring import IdSpace
    >>> space = IdSpace(8)                      # 256 positions
    >>> ring = {10: {80}, 80: {200}, 200: {10}}
    >>> result = route_greedy(space, [10, 80, 200], ring.__getitem__, 10, 190)
    >>> result.owner, result.hops, result.path, result.ok
    (200, 2, (10, 80, 200), True)

    Routing over a *degraded* view surfaces the failure kind instead:

    >>> broken = {10: set(), 80: {200}, 200: {10}}
    >>> route_greedy(space, [10, 80, 200], broken.__getitem__, 10, 190,
    ...              strict=False).status
    'dead_end'
    """
    ids = sorted(peer_ids)
    owner = chord_successor(space, ids, key)
    current = start
    path: List[int] = [start]
    seen: Set[int] = {start}

    def fail(kind: str, message: str) -> RouteResult:
        result = RouteResult(current, len(path) - 1, tuple(path), kind)
        if strict:
            raise RoutingError(message, kind=kind, result=result)
        return result

    for _ in range(max_hops):
        if current == owner:
            return RouteResult(owner, len(path) - 1, tuple(path))
        best = None
        best_d = space.distance_cw(current, key)
        for cand in sorted(neighbors(current)):
            if cand == current:
                continue
            if space.between_open_closed(current, cand, key):
                d = space.distance_cw(cand, key)
                if d < best_d:
                    best, best_d = cand, d
        if best is None:
            # key lies between current and all its neighbors going
            # clockwise: the next hop is whoever owns the key among the
            # neighbors — if the topology is correct, that is the
            # successor and it equals `owner`
            forward = [c for c in neighbors(current) if c != current]
            if not forward:
                return fail(ROUTE_DEAD_END, f"dead end at {current} routing {key}")
            best = min(forward, key=lambda c: space.distance_cw(current, c))
        if best in seen:
            # the walk is memoryless-deterministic: any revisit repeats
            # the exact same trajectory forever
            return fail(ROUTE_LOOP, f"routing loop via {best} routing {key}")
        current = best
        seen.add(current)
        path.append(current)
    if current == owner:  # reached on exactly the max_hops-th hop
        return RouteResult(owner, len(path) - 1, tuple(path))
    return fail(ROUTE_HOP_LIMIT, f"no convergence after {max_hops} hops routing {key}")


def merge_successor_list(
    successor: int,
    advertised: Sequence[int],
    me: int,
    length: int,
) -> List[int]:
    """Merge a successor's advertised list into a fresh successor list.

    The maintenance pattern every successor-list holder needs (shared by
    the Chord baseline's ``_on_successor_list`` and the resilient
    traffic plane's redundancy docs): prepend the current believed
    successor, append the advertised entries, drop ``me`` (a peer never
    backs itself up with itself), dedup keeping the *first* occurrence —
    closer entries shadow farther duplicates — and truncate to
    ``length``.

    >>> from repro.chord.routing import merge_successor_list
    >>> merge_successor_list(20, (30, 40, 50), me=10, length=3)
    [20, 30, 40]

    Duplicate ids collapse onto their first (closest) position, and the
    merging peer's own id is ignored wherever it appears:

    >>> merge_successor_list(20, (20, 10, 30, 30, 40), me=10, length=4)
    [20, 30, 40]
    """
    merged = [successor] + [v for v in advertised if v != me]
    deduped: List[int] = []
    for v in merged:
        if v not in deduped:
            deduped.append(v)
    return deduped[:length]


def prune_successor_list(
    entries: Sequence[int],
    alive: Callable[[int], bool],
) -> List[int]:
    """Drop dead entries from a successor list, preserving order.

    ``alive`` is whatever liveness evidence the caller has (the Chord
    baseline passes ``ctx.actor_exists``).  Relative order is kept so
    the head of the pruned list remains the closest live backup —
    exactly the entry ``_purge_failed`` promotes when the primary
    successor dies.

    >>> from repro.chord.routing import prune_successor_list
    >>> prune_successor_list([20, 30, 40], {20, 40}.__contains__)
    [20, 40]
    """
    return [v for v in entries if alive(v)]
