"""Greedy Chord routing as a pure graph walk.

Used to analyze hop counts over *materialized* topologies (the classic
binary-search argument of Section 1.1): at each peer, hop to the known
out-neighbor that makes the most clockwise progress toward the key
without overshooting; if none helps, take the successor.  Both the Chord
baseline's finger tables and the Re-Chord projection (Fact 2.1) can be
routed this way, which is how the lookup experiment (E7) measures path
lengths without simulating message exchanges.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Sequence, Set

from repro.core.ideal import chord_successor
from repro.idspace.ring import IdSpace

#: returns the out-neighbors (peer ids) a peer can route through
NeighborFn = Callable[[int], Set[int]]


@dataclass(frozen=True)
class RouteResult:
    """Outcome of a greedy route: owner, hop count, and the path taken."""

    owner: int
    hops: int
    path: tuple


class RoutingError(RuntimeError):
    """Raised when greedy routing cannot reach the responsible peer."""


def route_greedy(
    space: IdSpace,
    peer_ids: Sequence[int],
    neighbors: NeighborFn,
    start: int,
    key: int,
    max_hops: int = 512,
) -> RouteResult:
    """Route ``key`` from ``start`` over the given neighbor views.

    The responsible peer is ``chord_successor(key)``.  Progress metric:
    clockwise distance from the candidate to the key; a candidate is
    usable if it lies in the half-open arc ``(current, key]`` (no
    overshoot), exactly the paper's path definition.
    """
    ids = sorted(peer_ids)
    owner = chord_successor(space, ids, key)
    current = start
    path: List[int] = [start]
    for _ in range(max_hops):
        if current == owner:
            return RouteResult(owner, len(path) - 1, tuple(path))
        best = None
        best_d = space.distance_cw(current, key)
        for cand in sorted(neighbors(current)):
            if cand == current:
                continue
            if space.between_open_closed(current, cand, key):
                d = space.distance_cw(cand, key)
                if d < best_d:
                    best, best_d = cand, d
        if best is None:
            # key lies between current and all its neighbors going
            # clockwise: the next hop is whoever owns the key among the
            # neighbors — if the topology is correct, that is the
            # successor and it equals `owner`
            forward = [c for c in neighbors(current) if c != current]
            if not forward:
                raise RoutingError(f"dead end at {current} routing {key}")
            succ = min(forward, key=lambda c: space.distance_cw(current, c))
            best = succ
        current = best
        path.append(current)
    raise RoutingError(f"no convergence after {max_hops} hops routing {key}")
