"""Declarative scenario specifications.

A :class:`ScenarioSpec` is a *value*: a seeded, self-contained
description of one adversity campaign — the initial topology, a timeline
of fault/churn/corruption events, the concurrent traffic workload, and
the sampling/recovery policy.  Specs are plain dataclasses, round-trip
losslessly through JSON (:meth:`ScenarioSpec.to_json` /
:meth:`ScenarioSpec.from_json`), and are executed by
:func:`repro.scenarios.executor.run_scenario` on either simulation
kernel.  Everything downstream of a ``(spec, kernel)`` pair is
deterministic; the determinism and engine-equivalence suites rely on
that.

Example::

    >>> from repro.scenarios import ScenarioSpec, EventSpec, TrafficSpec
    >>> spec = ScenarioSpec(
    ...     name="two-crashes", n=16, seed=7, start="ideal", rounds=12,
    ...     events=(EventSpec(at=4, kind="crash_wave", params={"count": 2}),),
    ...     traffic=TrafficSpec(rate=1.0),
    ... )
    >>> ScenarioSpec.from_json(spec.to_json()) == spec
    True
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field, replace
from typing import Any, Dict, Optional, Tuple

from repro.traffic.messages import OP_GET, OP_LOOKUP, OP_PUT

#: initial-topology builders accepted by ScenarioSpec.start
START_KINDS = (
    "ideal",        # the unique stable topology (build_ideal_network)
    "random",       # Section 5's random weakly connected start
    "line",         # degenerate shapes (build_shaped_network)
    "star",
    "two_cliques",
    "lollipop",
    "two_rings",    # the interleaved split that breaks classic Chord
)


@dataclass(frozen=True)
class EventSpec:
    """One timed adversity event.

    ``at`` is the round offset from campaign start at which the event
    fires (events fire at a round *boundary*, before that round
    executes); ``kind`` names an entry of
    :data:`repro.scenarios.events.EVENT_KINDS`; ``params`` are the
    kind-specific knobs (validated when the event is applied).
    """

    at: int
    kind: str
    params: Dict[str, Any] = field(default_factory=dict)

    def to_dict(self) -> dict:
        """JSON-serializable form."""
        return {"at": self.at, "kind": self.kind, "params": dict(self.params)}

    @staticmethod
    def from_dict(data: dict) -> "EventSpec":
        """Inverse of :meth:`to_dict`."""
        return EventSpec(
            at=int(data["at"]),
            kind=str(data["kind"]),
            params=dict(data.get("params", {})),
        )


@dataclass(frozen=True)
class TrafficSpec:
    """The concurrent workload riding the campaign (see
    :class:`repro.traffic.generator.WorkloadGenerator` for the knobs).

    ``op_mix`` weights are normalized by the generator; a mix containing
    ``put``/``get`` makes the executor attach a
    :class:`repro.dht.storage.KeyValueStore` automatically.
    """

    rate: float = 2.0
    op_mix: Tuple[Tuple[str, float], ...] = ((OP_LOOKUP, 1.0),)
    key_universe: int = 64
    popularity: str = "uniform"
    zipf_s: float = 1.1
    deadline: int = 32
    ttl: Optional[int] = None
    max_outstanding: Optional[int] = None
    #: opt-in P² streaming latency quantiles (e.g. ``(0.5, 0.99)``);
    #: estimates land under separate ``latency_p*_sketch`` summary keys,
    #: so default reports (and their baselines) are unchanged
    sketch_quantiles: Optional[Tuple[float, ...]] = None
    #: resilient request plane (see TrafficPlane): attempts budget per
    #: op (1 = retries off), base backoff in rounds, hedge delay in
    #: rounds (None = hedging off), and redundant-successor fan
    #: (1 = single-choice forwarding).  All defaults leave the plane
    #: bit-for-bit identical to the pre-resilience behavior.
    max_attempts: int = 1
    retry_backoff: int = 4
    hedge_after: Optional[int] = None
    route_redundancy: int = 1

    def needs_store(self) -> bool:
        """Whether the mix issues KV operations."""
        return any(op in (OP_GET, OP_PUT) and w > 0 for op, w in self.op_mix)

    def to_dict(self) -> dict:
        """JSON-serializable form."""
        return {
            "rate": self.rate,
            "op_mix": [[op, w] for op, w in self.op_mix],
            "key_universe": self.key_universe,
            "popularity": self.popularity,
            "zipf_s": self.zipf_s,
            "deadline": self.deadline,
            "ttl": self.ttl,
            "max_outstanding": self.max_outstanding,
            "sketch_quantiles": (
                list(self.sketch_quantiles) if self.sketch_quantiles else None
            ),
            "max_attempts": self.max_attempts,
            "retry_backoff": self.retry_backoff,
            "hedge_after": self.hedge_after,
            "route_redundancy": self.route_redundancy,
        }

    @staticmethod
    def from_dict(data: dict) -> "TrafficSpec":
        """Inverse of :meth:`to_dict`."""
        kw = dict(data)
        kw["op_mix"] = tuple((str(op), float(w)) for op, w in kw.get("op_mix", [["lookup", 1.0]]))
        if kw.get("sketch_quantiles") is not None:
            kw["sketch_quantiles"] = tuple(float(q) for q in kw["sketch_quantiles"])
        return TrafficSpec(**kw)


@dataclass(frozen=True)
class ScenarioSpec:
    """A complete, seeded adversity campaign.

    Execution phases (see :func:`repro.scenarios.executor.run_scenario`):

    1. **start** — build the initial topology named by ``start`` (with
       ``start_params``: ``"corrupt"`` may be ``true`` or a dict of
       :func:`repro.workloads.initial.corrupt_network` intensity knobs,
       e.g. ``{"corrupt": {"virtual_fraction": 1.0}}``) and optionally
       pre-stabilize it (``start_params["stabilize"]``);
    2. **adversity window** — drive ``rounds`` traffic-carrying rounds,
       firing every :class:`EventSpec` at its offset;
    3. **recovery** — pause the workload and run until the global
       configuration repeats *and* all outstanding operations complete,
       bounded by ``max_recovery_rounds``.

    ``sample_every`` sets the cadence of the repair-curve samples
    (local-checker violations, pending messages, outstanding ops).

    ``latency`` / ``daemon`` install a delivery model / activation
    daemon (spec dicts, see :mod:`repro.netsim.timemodel`) for the
    whole campaign — the time model the network starts the adversity
    window under; mid-campaign changes go through the ``set_latency``,
    ``jitter_storm``, ``slow_links``, ``latency_partition`` and
    ``set_daemon`` events instead.  ``None`` keeps the paper's model
    (unit delivery, full activation).
    """

    name: str
    n: int
    seed: int
    rounds: int
    start: str = "ideal"
    start_params: Dict[str, Any] = field(default_factory=dict)
    events: Tuple[EventSpec, ...] = ()
    traffic: Optional[TrafficSpec] = TrafficSpec()
    sample_every: int = 2
    max_recovery_rounds: int = 5000
    description: str = ""
    latency: Optional[Dict[str, Any]] = None
    daemon: Optional[Dict[str, Any]] = None

    def __post_init__(self) -> None:
        if self.start not in START_KINDS:
            raise ValueError(f"unknown start {self.start!r}; choose from {START_KINDS}")
        # fail loudly at construction, not mid-campaign
        if self.latency is not None:
            from repro.netsim.timemodel import make_delivery_model

            make_delivery_model(dict(self.latency))
        if self.daemon is not None:
            from repro.netsim.timemodel import make_daemon

            make_daemon(dict(self.daemon))
        if self.n < 1:
            raise ValueError("need at least one peer")
        if self.rounds < 0:
            raise ValueError("rounds must be non-negative")
        if self.sample_every < 1:
            raise ValueError("sample_every must be positive")
        for event in self.events:
            # events fire at the boundary BEFORE their round executes, so
            # valid offsets are 0..rounds-1: an event at `rounds` would
            # silently never fire
            if event.at < 0 or event.at >= self.rounds:
                raise ValueError(
                    f"event {event.kind!r} at round {event.at} lies outside "
                    f"the adversity window (valid offsets: 0..{self.rounds - 1})"
                )

    def with_overrides(self, **kw: Any) -> "ScenarioSpec":
        """A copy with the given fields replaced (used by the CLI)."""
        return replace(self, **kw)

    def to_dict(self) -> dict:
        """JSON-serializable form (lossless; see :meth:`from_dict`)."""
        return {
            "name": self.name,
            "n": self.n,
            "seed": self.seed,
            "rounds": self.rounds,
            "start": self.start,
            "start_params": dict(self.start_params),
            "events": [event.to_dict() for event in self.events],
            "traffic": None if self.traffic is None else self.traffic.to_dict(),
            "sample_every": self.sample_every,
            "max_recovery_rounds": self.max_recovery_rounds,
            "description": self.description,
            "latency": None if self.latency is None else dict(self.latency),
            "daemon": None if self.daemon is None else dict(self.daemon),
        }

    @staticmethod
    def from_dict(data: dict) -> "ScenarioSpec":
        """Inverse of :meth:`to_dict`."""
        kw = dict(data)
        kw["events"] = tuple(EventSpec.from_dict(e) for e in kw.get("events", []))
        traffic = kw.get("traffic")
        kw["traffic"] = None if traffic is None else TrafficSpec.from_dict(traffic)
        kw["start_params"] = dict(kw.get("start_params", {}))
        return ScenarioSpec(**kw)

    def to_json(self, **json_kw: Any) -> str:
        """The spec as a JSON document."""
        return json.dumps(self.to_dict(), sort_keys=True, **json_kw)

    @staticmethod
    def from_json(text: str) -> "ScenarioSpec":
        """Parse a spec from JSON (inverse of :meth:`to_json`)."""
        return ScenarioSpec.from_dict(json.loads(text))
