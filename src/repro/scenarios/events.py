"""The adversity-event vocabulary of the scenario engine.

Every event is a named, parameterized mutation of the live campaign —
membership waves, network partitions, targeted state corruption, or
workload phase changes — applied at a round boundary through the paths
the simulation kernels track exactly:

* **membership** events (crash/leave/join waves, churn bursts) go
  through :meth:`ReChordNetwork.crash` / ``leave`` / ``join``, which
  feed the liveness-oracle refresh, watcher wakes and in-flight ref
  scans of the incremental engine;
* **corruption** events (finger poisoning, phantom refs, ring splits,
  partition severing) mutate :class:`repro.core.state.PeerState`
  directly — every effective mutation bumps the peer's version counter,
  so the out-of-band sweep in :meth:`ReChordNetwork.run_round`
  re-activates and re-baselines exactly the touched peers;
* **partition** events install a delivery-time drop filter on the
  scheduler (:meth:`SynchronousScheduler.set_drop_filter`), which is
  applied identically by both kernels and re-baselines every actor when
  installed or removed.

Because every path above is kernel-exact, a campaign executed on the
incremental engine is round-for-round equivalent to the same campaign
on the legacy full-scan engine — ``tests/test_scenarios.py`` enforces
this for every named scenario.

Each event receives its own :class:`random.Random` derived from the
spec seed, the event's scheduled round, its kind, and its occurrence
index among same-round same-kind events — so adding or removing an
unrelated event never perturbs the draws of its neighbors, and a tuned
campaign stays comparable across spec edits.
"""

from __future__ import annotations

import random
from typing import Any, Callable, Dict, List, Optional, Set

from repro.core.network import ReChordNetwork
from repro.graphs.digraph import EdgeKind
from repro.netsim.messages import envelope_canon
from repro.netsim.timemodel import stable_u64
from repro.workloads.churn import ChurnSchedule, apply_event
from repro.workloads.initial import random_peer_ids

#: event-kind registry: name -> handler(ctx, rng, **params)
EVENT_KINDS: Dict[str, Callable] = {}


def event_kind(name: str) -> Callable:
    """Decorator registering an event handler under ``name``."""

    def register(fn: Callable) -> Callable:
        EVENT_KINDS[name] = fn
        return fn

    return register


class EventContext:
    """What an event handler may touch.

    ``memory`` persists across events of one campaign (the heal event
    reads the cut its partition event stored); ``census`` counts applied
    sub-events per kind for the report.
    """

    def __init__(self, net: ReChordNetwork, plane=None) -> None:
        self.net = net
        self.plane = plane
        self.memory: Dict[str, Any] = {}
        self.census: Dict[str, int] = {}

    def count(self, kind: str, amount: int = 1) -> None:
        """Record ``amount`` applied sub-events of ``kind``."""
        self.census[kind] = self.census.get(kind, 0) + amount


def _wave_size(ctx: EventContext, rng: random.Random, count, fraction) -> int:
    """Resolve a wave size from an absolute count or a live fraction."""
    if count is not None:
        return int(count)
    if fraction is None:
        raise ValueError("wave events need either count or fraction")
    return max(1, int(len(ctx.net.peers) * float(fraction)))


def _pick_victims(
    ctx: EventContext, rng: random.Random, size: int, targeting: str
) -> List[int]:
    """Choose wave victims; never empties the network below two peers."""
    ids = ctx.net.peer_ids  # sorted — identical under both kernels
    size = min(size, max(0, len(ids) - 2))
    if size <= 0:
        return []
    if targeting == "random":
        return rng.sample(ids, size)
    if targeting == "clustered":
        # consecutive on the identifier circle: the correlated failure
        # that wipes out a whole neighborhood of successor knowledge
        start = rng.randrange(len(ids))
        return [ids[(start + i) % len(ids)] for i in range(size)]
    if targeting == "extremes":
        # alternate ring-seam extremes: these peers hold the wrap
        # pointers and seam ring edges — the hardest single losses
        half = (size + 1) // 2
        return list(ids[-half:]) + list(ids[: size - half])
    raise ValueError(f"unknown targeting {targeting!r}")


# ----------------------------------------------------------------------
# membership waves
# ----------------------------------------------------------------------
@event_kind("crash_wave")
def crash_wave(
    ctx: EventContext,
    rng: random.Random,
    count: Optional[int] = None,
    fraction: Optional[float] = None,
    targeting: str = "random",
) -> None:
    """A correlated wave of abrupt failures (paper Theorem 4.2)."""
    for victim in _pick_victims(ctx, rng, _wave_size(ctx, rng, count, fraction), targeting):
        ctx.net.crash(victim)
        ctx.count("crash")


@event_kind("leave_wave")
def leave_wave(
    ctx: EventContext,
    rng: random.Random,
    count: Optional[int] = None,
    fraction: Optional[float] = None,
    targeting: str = "random",
) -> None:
    """A wave of graceful departures (farewell introductions sent)."""
    for victim in _pick_victims(ctx, rng, _wave_size(ctx, rng, count, fraction), targeting):
        ctx.net.leave(victim)
        ctx.count("leave")


@event_kind("flash_crowd")
def flash_crowd(
    ctx: EventContext,
    rng: random.Random,
    count: Optional[int] = None,
    fraction: Optional[float] = None,
    gateway: str = "random",
) -> None:
    """A burst of simultaneous joins (paper Theorem 4.1, en masse).

    ``gateway="single"`` funnels every newcomer through one existing
    peer — the hotspot case; ``"random"`` spreads them uniformly.
    """
    size = _wave_size(ctx, rng, count, fraction)
    net = ctx.net
    single = rng.choice(net.peer_ids) if gateway == "single" else None
    for _ in range(size):
        new_id = random_peer_ids(1, rng, net.space)[0]
        while new_id in net.peers:
            new_id = random_peer_ids(1, rng, net.space)[0]
        gw = single if single is not None else rng.choice(net.peer_ids)
        net.join(new_id, gw)
        ctx.count("join")


@event_kind("churn_burst")
def churn_burst(
    ctx: EventContext,
    rng: random.Random,
    events: int = 4,
    join_prob: float = 0.4,
    crash_prob: float = 0.3,
) -> None:
    """A scripted random mix of joins/leaves/crashes in one boundary."""
    schedule = ChurnSchedule.random(
        ctx.net,
        events=events,
        seed=rng.randrange(2**63),
        join_prob=join_prob,
        crash_prob=crash_prob,
    )
    for event in schedule:
        apply_event(ctx.net, event)
        ctx.count(event.kind)


# ----------------------------------------------------------------------
# partitions
# ----------------------------------------------------------------------
def _partition_sides(
    ctx: EventContext, rng: random.Random, mode: str, fraction: float
) -> Set[int]:
    """The id set of side A of the cut."""
    ids = ctx.net.peer_ids
    if mode == "id_split":
        # a contiguous arc of the identifier circle — the geographically
        # correlated cut (one datacenter region vanishing)
        size = max(1, int(len(ids) * fraction))
        start = rng.randrange(len(ids))
        return {ids[(start + i) % len(ids)] for i in range(size)}
    if mode == "random":
        size = max(1, int(len(ids) * fraction))
        return set(rng.sample(ids, size))
    raise ValueError(f"unknown partition mode {mode!r}")


@event_kind("partition")
def partition(
    ctx: EventContext,
    rng: random.Random,
    mode: str = "id_split",
    fraction: float = 0.5,
    sever: bool = False,
) -> None:
    """Split the network: messages across the cut are silently dropped.

    The cut is a delivery-time drop filter (a pure function of the
    envelope endpoints); peers that join mid-partition land on side B.
    Endpoints still *appear* alive to the liveness oracle — the silent
    partition, not a crash — so each side keeps trying to talk across
    and traffic crossing the cut times out.

    ``sever=True`` additionally purges every cross-cut reference from
    peer state (partition detected by the connection layer): the sides
    must then rebuild two independent overlays and a later ``heal``
    event must re-bridge them explicitly.
    """
    side_a = frozenset(_partition_sides(ctx, rng, mode, fraction))
    ctx.memory["partition"] = {"side_a": side_a, "severed": bool(sever)}
    ctx.net.scheduler.set_drop_filter(
        lambda env, _a=side_a: (env.sender in _a) != (env.target in _a)
    )
    ctx.count("partition")
    if not sever:
        return
    for pid in ctx.net.peer_ids:
        state = ctx.net.peers[pid].state
        same = pid in side_a

        def crosses(ref) -> bool:
            return (ref.owner in side_a) != same

        for node in state.nodes.values():
            for attr in ("nu", "nr", "nc"):
                sset = getattr(node, attr)
                for ref in [r for r in sset if crosses(r)]:
                    sset.discard(ref)
            for attr in ("rl", "rr", "wrap_rl", "wrap_rr"):
                ref = getattr(node, attr)
                if ref is not None and crosses(ref):
                    setattr(node, attr, None)
        ctx.count("sever")


@event_kind("gray_failure")
def gray_failure(
    ctx: EventContext,
    rng: random.Random,
    fraction: float = 0.25,
    drop_prob: float = 0.3,
    seed: Optional[int] = None,
) -> None:
    """A seeded subset of peers turns *gray*: alive, but lossy.

    Gray failure is the partial, probabilistic sibling of the partition
    — the failing NIC or overloaded host that still answers often enough
    to evade the liveness oracle.  A seeded ``fraction`` of peers is
    marked gray; every message touching a gray endpoint is dropped with
    probability ``drop_prob``, keyed on the message *content* via
    :func:`repro.netsim.timemodel.stable_u64` — a pure function of the
    envelope, so both kernels (and replays) drop exactly the same
    messages and campaigns stay bit-for-bit reproducible.

    Self-addressed envelopes are exempt (workload injections post
    origin-to-origin and model the local request arrival, not a network
    link).  The resilient request plane's retries are the intended
    countermeasure: each relaunch is a *different* message (new attempt
    stamp), so it redraws its drop coin.  Clear with ``heal``.
    """
    if seed is None:
        seed = rng.randrange(2**63)
    ids = ctx.net.peer_ids
    size = min(max(1, int(len(ids) * float(fraction))), max(0, len(ids) - 2))
    gray = frozenset(rng.sample(ids, size)) if size > 0 else frozenset()
    threshold = min(int(float(drop_prob) * 2**64), 2**64 - 1)

    def drop(env, _gray=gray, _seed=int(seed), _thr=threshold) -> bool:
        if env.sender == env.target:
            return False
        if env.sender not in _gray and env.target not in _gray:
            return False
        return (
            stable_u64("gray", _seed, env.sender, env.target, envelope_canon(env))
            < _thr
        )

    ctx.net.scheduler.set_drop_filter(drop)
    ctx.memory["gray"] = {"peers": gray, "seed": int(seed), "drop_prob": float(drop_prob)}
    ctx.count("gray_failure")
    ctx.count("gray_peer", len(gray))


@event_kind("heal")
def heal(
    ctx: EventContext,
    rng: random.Random,
    bridges: int = 1,
) -> None:
    """Lift the partition (or gray-failure loss); re-bridge severed
    sides with unmarked edges.

    Clearing the drop filter resumes cross-cut flows.  If the partition
    was severed, the sides are structurally disjoint overlays, so
    ``bridges`` cross-cut unmarked edges are injected (weak connectivity
    is the protocol's merge precondition — a bridge is the minimum
    concession, exactly as in the two-rings adversarial start).
    """
    ctx.net.scheduler.set_drop_filter(None)
    ctx.memory.pop("gray", None)
    ctx.count("heal")
    cut = ctx.memory.pop("partition", None)
    if cut is None or not cut["severed"]:
        return
    side_a = [pid for pid in ctx.net.peer_ids if pid in cut["side_a"]]
    side_b = [pid for pid in ctx.net.peer_ids if pid not in cut["side_a"]]
    if not side_a or not side_b:
        return
    for _ in range(max(1, bridges)):
        u = rng.choice(side_a)
        v = rng.choice(side_b)
        ctx.net.add_initial_edge(ctx.net.ref(u), ctx.net.ref(v), EdgeKind.UNMARKED)
        ctx.count("bridge")


# ----------------------------------------------------------------------
# time-model adversity (repro.netsim.timemodel)
# ----------------------------------------------------------------------
@event_kind("set_latency")
def set_latency(ctx: EventContext, rng: random.Random, kind: str = "unit", **params: Any) -> None:
    """Install a delivery model mid-campaign (``kind="unit"`` restores
    the paper's synchronous delivery).

    ``params`` are the model's constructor knobs (see
    :data:`repro.netsim.timemodel.DELIVERY_KINDS`); the change is a
    kernel-exact flow event — the scheduler re-baselines every actor,
    identically on both kernels, and envelopes already in flight keep
    their assigned delivery rounds.
    """
    ctx.net.set_delivery_model({"kind": kind, **params})
    ctx.count("set_latency")


@event_kind("jitter_storm")
def jitter_storm(
    ctx: EventContext,
    rng: random.Random,
    bound: int = 3,
    seed: Optional[int] = None,
) -> None:
    """Adversarial reorder-within-bound jitter on every link.

    Each message draws a seeded delay in ``[1, bound]`` keyed on its
    content, so distinct messages on one link overtake each other — the
    asynchronous-delivery adversary of the universal monotonic-
    searchability setting, bounded so starvation stays impossible.
    """
    if seed is None:
        seed = rng.randrange(2**63)
    ctx.net.set_delivery_model({"kind": "reorder", "bound": int(bound), "seed": int(seed)})
    ctx.count("jitter_storm")


@event_kind("slow_links")
def slow_links(
    ctx: EventContext,
    rng: random.Random,
    fraction: float = 0.25,
    delay: int = 4,
    seed: Optional[int] = None,
) -> None:
    """A seeded fraction of directed links degrades to ``delay`` rounds.

    The heterogeneous-bandwidth population: most links stay fast, a
    seeded minority turns slow, and stabilization plus traffic must
    live with the mix (no message is ever lost — only late).
    """
    if seed is None:
        seed = rng.randrange(2**63)
    ctx.net.set_delivery_model(
        {"kind": "slow_links", "fraction": float(fraction), "delay": int(delay), "seed": int(seed)}
    )
    ctx.count("slow_links")


@event_kind("latency_partition")
def latency_partition(
    ctx: EventContext,
    rng: random.Random,
    mode: str = "id_split",
    fraction: float = 0.5,
    delay: int = 5,
) -> None:
    """Links crossing a cut turn slow — the partition's gentle sibling.

    Same cut geometry as the ``partition`` event, but cross-cut
    messages arrive ``delay`` rounds late instead of never: the WAN
    degradation where one region keeps answering, slowly.  Restore with
    ``set_latency`` (kind ``unit``).
    """
    side_a = _partition_sides(ctx, rng, mode, fraction)
    ctx.net.set_delivery_model(
        {"kind": "cross_cut", "side_a": sorted(side_a), "delay": int(delay)}
    )
    ctx.count("latency_partition")


@event_kind("set_daemon")
def set_daemon(ctx: EventContext, rng: random.Random, kind: str = "full", **params: Any) -> None:
    """Install an activation daemon mid-campaign (``kind="full"``
    restores the paper's every-actor rounds).

    ``params`` are the daemon's constructor knobs (see
    :data:`repro.netsim.timemodel.DAEMON_KINDS`).  Under a non-full
    daemon the configuration generally never repeats round-to-round,
    so campaigns should restore ``full`` before expecting recovery to
    detect a fixpoint.
    """
    ctx.net.set_daemon({"kind": kind, **params})
    ctx.count("set_daemon")


# ----------------------------------------------------------------------
# targeted state corruption
# ----------------------------------------------------------------------
@event_kind("poison_fingers")
def poison_fingers(
    ctx: EventContext,
    rng: random.Random,
    fraction: float = 0.5,
    edges_per_peer: int = 4,
) -> None:
    """Inject garbage marked/unmarked edges into live peer state.

    Random ring/connection/unmarked edges between arbitrary simulated
    nodes — the adversary that rewrites routing state without touching
    membership.  The forwarding rules must drain or convert every one
    of them (paper rules 4-6); corruption never removes edges, so weak
    connectivity is preserved.
    """
    net = ctx.net
    ids = net.peer_ids
    all_refs = [
        node.ref for pid in ids for node in net.peers[pid].state.nodes.values()
    ]
    victims = [pid for pid in ids if rng.random() < fraction]
    for pid in victims:
        for _ in range(edges_per_peer):
            src = rng.choice(
                [n.ref for n in net.peers[pid].state.nodes.values()]
            )
            dst = rng.choice(all_refs)
            kind = rng.choice(
                [EdgeKind.UNMARKED, EdgeKind.RING, EdgeKind.CONNECTION]
            )
            if dst != src:
                net.add_initial_edge(src, dst, kind)
                ctx.count("poison_edge")


@event_kind("phantom_refs")
def phantom_refs(
    ctx: EventContext,
    rng: random.Random,
    fraction: float = 0.5,
    levels_per_peer: int = 2,
    max_level: int = 8,
) -> None:
    """Excess virtual levels plus edges to levels nobody simulates.

    Pre-creates virtual nodes above the stable ``m*`` on a fraction of
    peers (rule 1 must delete the excess and re-home their
    neighborhoods) and points unmarked edges at *phantom* virtual refs
    (the purge step must re-point them, DESIGN.md [D11]).
    """
    net = ctx.net
    ids = net.peer_ids
    top = min(max_level, net.space.max_level())
    victims = [pid for pid in ids if rng.random() < fraction]
    for pid in victims:
        for _ in range(levels_per_peer):
            net.ensure_virtual(pid, rng.randint(1, top))
            ctx.count("virtual_level")
        owner = rng.choice(ids)
        phantom = net.ref(owner, rng.randint(1, top))
        src = net.ref(pid, 0)
        if phantom != src:
            net.add_initial_edge(src, phantom, EdgeKind.UNMARKED)
            ctx.count("phantom_edge")


@event_kind("ring_split")
def ring_split(ctx: EventContext, rng: random.Random) -> None:
    """Reset the whole overlay into the interleaved two-ring state.

    The classic-Chord-killing split, applied *mid-run* to live peers:
    every peer's neighborhoods are wiped, all virtual levels dropped,
    and the real nodes rewired into two parity-interleaved directed
    cycles joined by a single bridge edge (weak connectivity, the
    protocol's sole precondition).  In-flight protocol messages keep
    circulating — the arbitrary-state part of Theorem 1.1.
    """
    net = ctx.net
    ordered = net.peer_ids
    for pid in ordered:
        state = net.peers[pid].state
        for level in [lv for lv in state.nodes if lv != 0]:
            state.drop_level(level)
        node = state.nodes[0]
        node.nu.clear()
        node.nr.clear()
        node.nc.clear()
        node.rl = None
        node.rr = None
        node.wrap_rl = None
        node.wrap_rr = None
    if len(ordered) >= 2:
        for group in (ordered[0::2], ordered[1::2]):
            for i, u in enumerate(group):
                net.add_initial_edge(
                    net.ref(u), net.ref(group[(i + 1) % len(group)]), EdgeKind.UNMARKED
                )
        net.add_initial_edge(net.ref(ordered[0]), net.ref(ordered[1]), EdgeKind.UNMARKED)
    ctx.count("ring_split")


# ----------------------------------------------------------------------
# workload phases
# ----------------------------------------------------------------------
@event_kind("set_rate")
def set_rate(ctx: EventContext, rng: random.Random, rate: float = 0.0) -> None:
    """Change the workload arrival rate mid-campaign (0 pauses).

    Models load phases: a quiet overlay suddenly hit by a traffic
    spike, or load shed during an incident window.
    """
    if ctx.plane is None or ctx.plane.generator is None:
        raise ValueError("set_rate needs a traffic-carrying scenario")
    generator = ctx.plane.generator
    if rate < 0:
        raise ValueError("rate must be non-negative")
    generator.rate = float(rate)
    generator.active = rate > 0
    ctx.count("set_rate")


def apply_event_spec(ctx: EventContext, rng: random.Random, kind: str, params: dict) -> None:
    """Dispatch one :class:`repro.scenarios.spec.EventSpec`."""
    handler = EVENT_KINDS.get(kind)
    if handler is None:
        raise ValueError(f"unknown event kind {kind!r}; choose from {sorted(EVENT_KINDS)}")
    handler(ctx, rng, **params)
