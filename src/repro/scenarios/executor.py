"""Campaign execution: drive a :class:`ScenarioSpec` against a live
network and produce a :class:`ScenarioReport`.

The executor owns the three campaign phases (start / adversity window /
recovery), fires events at their round boundaries through
:mod:`repro.scenarios.events`, keeps the traffic plane fed and its
deadline ledger swept, and samples the **repair curve** — per-boundary
local-checker violations (:func:`repro.core.checker.local_check_peer`),
pending protocol messages and outstanding operations — so a report
shows *how* the overlay healed, not only that it did.

Everything in the report is a deterministic function of
``(spec, kernel)``; kernel-specific instrumentation (executed/replayed
split) is carried in a comparison-excluded field so reports from the
two engines compare equal — the property ``tests/test_scenarios.py``
asserts for every named scenario.

Stability is detected uniformly for both kernels by fingerprint
comparison (states + in-flight messages), mirroring
:meth:`ReChordNetwork.run_until_stable`'s legacy criterion; recovery
additionally waits for the operation ledger to drain (deadlines bound
that wait).
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.core.checker import local_check_peer
from repro.core.network import ReChordNetwork
from repro.dht.lookup import ReChordRouter
from repro.dht.storage import KeyValueStore
from repro.experiments.scaling import build_ideal_network
from repro.netsim.rng import SeedSequence
from repro.scenarios.events import EventContext, apply_event_spec
from repro.scenarios.spec import ScenarioSpec
from repro.traffic.generator import WorkloadGenerator
from repro.traffic.plane import TrafficPlane
from repro.workloads.initial import (
    build_random_network,
    build_shaped_network,
    build_two_rings_network,
    corrupt_network,
    random_peer_ids,
)


@dataclass(frozen=True)
class RecoverySample:
    """One point of the repair curve (taken at a round boundary)."""

    round: int
    peers: int
    failing_peers: int
    check_violations: int
    pending_messages: int
    outstanding_ops: int
    completed_ops: int


@dataclass(frozen=True)
class ScenarioReport:
    """Deterministic outcome of one campaign.

    ``recovery_rounds`` follows the paper's Fig. 6 convention: the index
    (relative to the end of the adversity window) of the first round
    boundary whose configuration never changes again.  ``config_digest``
    is a stable digest of the final global configuration — two runs of
    the same ``(spec, kernel)`` pair, and the same spec across the two
    kernels, must produce byte-identical digests.  ``activity`` carries
    kernel-specific instrumentation and is excluded from comparison.
    """

    name: str
    n: int
    seed: int
    peers_start: int
    peers_final: int
    rounds_adversity: int
    recovery_rounds: int
    rounds_total: int
    stable: bool
    ideal: bool
    event_census: Dict[str, int]
    samples: Tuple[RecoverySample, ...]
    slo: Optional[dict]
    rule_fires: int
    config_digest: str
    #: drop-filter hits per event window, in campaign order: ("start",
    #: total), one (f"r{round}:{kinds}", total) per event-firing round,
    #: then ("recovery", total).  Drops are behavior-affecting, so the
    #: totals are engine-invariant and participate in comparison.
    dropped_by_window: Tuple[Tuple[str, int], ...] = ()
    #: survival metric: per event window, ``(label, ops issued during
    #: the window, ops that eventually reached the true owner)`` —
    #: "eventually" includes completions that landed after the window
    #: closed (e.g. a retry that succeeded during recovery), which is
    #: exactly the mass-failure question: do ops issued *during* the
    #: failure window still succeed once the overlay heals?  Windows
    #: with no issued ops are omitted.  Engine-invariant, compared.
    survival_by_window: Tuple[Tuple[str, int, int], ...] = ()
    activity: Dict[str, int] = field(compare=False, default_factory=dict)
    #: per-window telemetry segments + final census when the campaign
    #: ran with a recorder attached (None otherwise); wall-clock data
    #: never participates in comparison
    telemetry: Optional[dict] = field(compare=False, default=None)

    def to_dict(self) -> dict:
        """JSON-serializable form (stable key order left to callers)."""
        out = {
            "name": self.name,
            "n": self.n,
            "seed": self.seed,
            "peers_start": self.peers_start,
            "peers_final": self.peers_final,
            "rounds_adversity": self.rounds_adversity,
            "recovery_rounds": self.recovery_rounds,
            "rounds_total": self.rounds_total,
            "stable": self.stable,
            "ideal": self.ideal,
            "event_census": dict(sorted(self.event_census.items())),
            "samples": [vars(s) for s in self.samples],
            "slo": self.slo,
            "rule_fires": self.rule_fires,
            "config_digest": self.config_digest,
            "dropped_by_window": [list(w) for w in self.dropped_by_window],
            "survival_by_window": [list(w) for w in self.survival_by_window],
            "activity": dict(self.activity),
            "telemetry": self.telemetry,
        }
        return out


def _build_start(
    spec: ScenarioSpec,
    seq: SeedSequence,
    incremental: bool,
    engine: Optional[str] = None,
    rule_backend: str = "scalar",
) -> ReChordNetwork:
    """Materialize the campaign's initial topology."""
    params = dict(spec.start_params)
    build_seed = seq.child("build").seed()
    stabilize = params.pop("stabilize", False)
    # corrupt: False | True | {corrupt_network kwargs} (intensity knobs)
    corrupt = params.pop("corrupt", False)
    corrupt_kw = dict(corrupt) if isinstance(corrupt, dict) else {}
    if spec.start == "ideal":
        net = build_ideal_network(
            spec.n, build_seed, incremental=incremental, engine=engine,
            rule_backend=rule_backend,
        )
    elif spec.start == "random":
        net = build_random_network(
            spec.n, build_seed, incremental=incremental, engine=engine,
            rule_backend=rule_backend, **params
        )
    elif spec.start == "two_rings":
        rng = seq.child("ids").rng()
        from repro.idspace.ring import IdSpace

        space = IdSpace()
        ids = random_peer_ids(spec.n, rng, space)
        net = build_two_rings_network(
            ids, space, incremental=incremental, engine=engine,
            rule_backend=rule_backend,
        )
    else:  # a degenerate shape
        net = build_shaped_network(
            spec.start, spec.n, build_seed, incremental=incremental, engine=engine,
            rule_backend=rule_backend,
        )
    if corrupt:
        corrupt_network(net, seq.child("corrupt").seed(), **corrupt_kw)
    if stabilize:
        net.run_until_stable(max_rounds=spec.max_recovery_rounds)
    return net


def _sample(
    net: ReChordNetwork, plane: Optional[TrafficPlane]
) -> RecoverySample:
    failing = 0
    violations = 0
    for peer in net.peers.values():
        problems = local_check_peer(peer)
        if problems:
            failing += 1
            violations += len(problems)
    return RecoverySample(
        round=net.round_no,
        peers=len(net.peers),
        failing_peers=failing,
        check_violations=violations,
        pending_messages=net.scheduler.pending_messages(),
        outstanding_ops=(
            plane.collector.outstanding_count() if plane is not None else 0
        ),
        completed_ops=(plane.collector.completed_count if plane is not None else 0),
    )


def run_scenario(
    spec: ScenarioSpec,
    incremental: bool = True,
    engine: Optional[str] = None,
    telemetry: object = None,
    rule_backend: str = "scalar",
) -> ScenarioReport:
    """Execute one campaign and report recovery + SLO metrics.

    ``incremental`` selects the simulation kernel (``engine`` names one
    explicitly — ``"full"``, ``"incremental"`` or ``"columnar"`` — and
    wins over the boolean); the report (minus the comparison-excluded
    ``activity`` and ``telemetry`` fields) is identical for every
    kernel — the engine-equivalence suite runs every named scenario
    through this function once per engine and compares.

    ``telemetry`` opts the campaign into the observation plane: pass
    ``True`` for a fresh :class:`repro.telemetry.TelemetryRecorder` or
    an existing recorder to reuse (e.g. one with a wider trace sampling
    interval).  The recorder is attached *before* the traffic plane so
    sampled ops carry hop traces, which are harvested into the recorder
    at campaign end; per-window counter segments and the final census
    land in the report's ``telemetry`` field.  Attaching a recorder
    never changes the rest of the report (the observational contract of
    :meth:`ReChordNetwork.enable_telemetry`).
    """
    seq = SeedSequence(spec.seed).child("scenario", spec.name, n=spec.n)
    net = _build_start(spec, seq, incremental, engine=engine, rule_backend=rule_backend)
    recorder = None
    if telemetry:
        recorder = net.enable_telemetry(None if telemetry is True else telemetry)
    # campaign-wide time model: installed after the (unit-time) start
    # phase so pre-stabilized starts build fast, before any traffic or
    # adversity round runs; both kernels install identically
    if spec.latency is not None:
        net.set_delivery_model(dict(spec.latency))
    if spec.daemon is not None:
        net.set_daemon(dict(spec.daemon))
    peers_start = len(net.peers)

    plane: Optional[TrafficPlane] = None
    if spec.traffic is not None:
        t = spec.traffic
        store = None
        if t.needs_store():
            store = KeyValueStore(ReChordRouter(net))
        plane = TrafficPlane(
            net,
            store=store,
            default_deadline=t.deadline,
            sketch_quantiles=t.sketch_quantiles,
            max_attempts=t.max_attempts,
            retry_backoff=t.retry_backoff,
            hedge_after=t.hedge_after,
            route_redundancy=t.route_redundancy,
            # the jitter stream derives from the campaign seed, so two
            # same-seed runs (on any kernel) retry in lockstep
            retry_seed=seq.child("retry").seed(),
        )
        # no explicit per-op deadline: ops fall through to the plane's
        # default, which scales with the installed delivery model's
        # wire-delay bound (identical to t.deadline under unit delivery)
        WorkloadGenerator(
            plane,
            rate=t.rate,
            op_mix=t.op_mix,
            key_universe=t.key_universe,
            popularity=t.popularity,
            zipf_s=t.zipf_s,
            ttl=t.ttl,
            max_outstanding=t.max_outstanding,
            seed=seq.child("workload").seed(),
        )

    ctx = EventContext(net, plane)
    # each event's RNG stream is keyed on (round, kind, occurrence among
    # same-round same-kind events) — NOT its position in spec.events —
    # so inserting or removing an unrelated event leaves every other
    # event's draws untouched (the tunability contract of events.py)
    timeline: Dict[int, List[Tuple[tuple, str, dict]]] = {}
    occurrence: Dict[Tuple[int, str], int] = {}
    for event in spec.events:
        k = occurrence.get((event.at, event.kind), 0)
        occurrence[(event.at, event.kind)] = k + 1
        stream = ("event", event.at, event.kind, k)
        timeline.setdefault(event.at, []).append((stream, event.kind, dict(event.params)))

    samples: List[RecoverySample] = [_sample(net, plane)]

    # ---- event windows ----------------------------------------------
    # the campaign is segmented at event-firing rounds: "start", one
    # f"r{round}:{kinds}" window per firing boundary, then "recovery".
    # per-window drop-filter hits are engine-invariant (drops change
    # behavior, so the equivalence suites pin them); per-window
    # telemetry counter segments ride along when a recorder is attached
    window = "start"
    window_order: List[str] = [window]
    window_drops: Dict[str, int] = {window: 0}
    window_rounds: Dict[str, int] = {window: 0}
    window_opens: Dict[str, int] = {window: net.round_no}
    tel_segments: List[dict] = []
    tel_snap = [0, 0, 0]  # recorder (rounds, sent, dropped) at window open

    def _flush_segment() -> None:
        if recorder is None:
            return
        c = recorder.counters
        cur = [c.get("rounds", 0), c.get("sent", 0), c.get("dropped", 0)]
        if cur[0] > tel_snap[0]:
            tel_segments.append(
                {
                    "window": window,
                    "rounds": cur[0] - tel_snap[0],
                    "sent": cur[1] - tel_snap[1],
                    "dropped": cur[2] - tel_snap[2],
                }
            )
        tel_snap[:] = cur

    def _open_window(label: str) -> None:
        nonlocal window
        _flush_segment()
        window = label
        if label not in window_drops:
            window_order.append(label)
            window_drops[label] = 0
            window_rounds[label] = 0
            window_opens[label] = net.round_no

    def run_one_round() -> None:
        if plane is not None:
            plane.run_round()
        else:
            net.run_round()
        window_drops[window] += net.scheduler.dropped_last_round
        window_rounds[window] += 1

    # ---- adversity window -------------------------------------------
    for offset in range(spec.rounds):
        fired_kinds: List[str] = []
        for stream, kind, params in timeline.get(offset, ()):
            rng = seq.child(*stream).rng()
            apply_event_spec(ctx, rng, kind, params)
            fired_kinds.append(kind)
        fired = bool(fired_kinds)
        if fired:
            # capture the damage at the boundary it lands on, before the
            # protocol gets a round to repair it (the repair curve's peak)
            samples.append(_sample(net, plane))
            _open_window(
                f"r{net.round_no}:{'+'.join(sorted(set(fired_kinds)))}"
            )
        run_one_round()
        if fired or (offset + 1) % spec.sample_every == 0:
            samples.append(_sample(net, plane))

    # ---- recovery: workload off, run to configuration fixpoint ------
    if plane is not None and plane.generator is not None:
        plane.generator.active = False
    _open_window("recovery")
    adversity_end = net.round_no
    recovery_rounds = -1
    prev = net.fingerprint()
    stable = False
    for executed in range(1, spec.max_recovery_rounds + 1):
        run_one_round()
        if executed % spec.sample_every == 0:
            samples.append(_sample(net, plane))
        cur = net.fingerprint()
        drained = plane is None or not plane.collector.outstanding
        if cur == prev and drained:
            # the configuration reached at `executed - 1` is final
            recovery_rounds = executed - 1
            stable = True
            break
        prev = cur
    if samples[-1].round != net.round_no:
        samples.append(_sample(net, plane))

    # ---- survival: eventual success of ops issued per window --------
    # attribute every completion to the window its *issue* round fell
    # in; a retry completing during recovery still credits the failure
    # window it was issued in — the resilience gate's survival floor
    survival: Tuple[Tuple[str, int, int], ...] = ()
    if plane is not None and plane.collector.mode == "list":
        from bisect import bisect_right as _bisect_right

        labels = [w for w in window_order if window_rounds.get(w)]
        opens = [window_opens[w] for w in labels]
        counts = {w: [0, 0] for w in labels}
        for comp in plane.collector.completed:
            i = _bisect_right(opens, comp.issue_round) - 1
            tally = counts[labels[i if i >= 0 else 0]]
            tally[0] += 1
            if comp.routed:
                tally[1] += 1
        survival = tuple(
            (w, counts[w][0], counts[w][1]) for w in labels if counts[w][0]
        )

    digest = hashlib.sha256(repr(net.fingerprint()).encode()).hexdigest()[:16]
    activity: Dict[str, int] = {}
    if net.incremental:
        executed_last, replayed_last = net.activity_stats()
        activity = {
            "executed_last_round": executed_last,
            "replayed_last_round": replayed_last,
            "dirty_next_round": net.scheduler.dirty_count(),
        }
    tel_out: Optional[dict] = None
    if recorder is not None:
        _flush_segment()
        recorder.rule_fires = dict(net.counters().fires)
        if plane is not None:
            # harvest hop traces of completed sampled ops into the sink
            for comp in plane.collector.traced():
                recorder.add_trace(
                    comp.op_id, comp.op, comp.outcome, comp.trace.hops
                )
        tel_out = {
            "census": recorder.census(),
            "kernel": recorder.kernel_stats(),
            "segments": tel_segments,
        }
    return ScenarioReport(
        name=spec.name,
        n=spec.n,
        seed=spec.seed,
        peers_start=peers_start,
        peers_final=len(net.peers),
        rounds_adversity=adversity_end,
        recovery_rounds=recovery_rounds,
        rounds_total=net.round_no,
        stable=stable,
        ideal=net.matches_ideal() if not net.scheduler.has_drop_filter() else False,
        event_census=dict(sorted(ctx.census.items())),
        samples=tuple(samples),
        slo=plane.collector.summary() if plane is not None else None,
        rule_fires=net.counters().total(),
        config_digest=digest,
        dropped_by_window=tuple(
            (w, window_drops[w]) for w in window_order if window_rounds[w]
        ),
        survival_by_window=survival,
        activity=activity,
        telemetry=tel_out,
    )
