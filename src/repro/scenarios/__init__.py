"""Declarative fault/churn campaigns over the live overlay.

Re-Chord's claim is self-stabilization from *arbitrary* initial states;
this package makes "arbitrary" executable.  A scenario is a seeded,
JSON-loadable value (:class:`ScenarioSpec`) composing timed adversity
events — correlated crash waves, flash-crowd joins, silent or severed
network partitions, targeted state corruption (finger poisoning,
phantom refs, mid-run ring splits) and workload phases — over the
incremental scheduler with the traffic plane active.  The executor
(:func:`run_scenario`) drives the campaign on either simulation kernel
and produces a :class:`ScenarioReport` joining recovery metrics
(rounds-to-stable, the local-checker repair curve) with the traffic
plane's SLO ledger.

Entry points:

* :func:`make_scenario` / :func:`scenario_names` — the named library
  (documented scenario-by-scenario in ``docs/SCENARIOS.md``);
* ``rechord scenario`` — the CLI (``--list``, ``--json``, size/seed
  overrides);
* :mod:`repro.experiments.scenarios` — the all-scenarios sweep.
"""

from repro.scenarios.events import EVENT_KINDS, EventContext, apply_event_spec
from repro.scenarios.executor import RecoverySample, ScenarioReport, run_scenario
from repro.scenarios.library import (
    DEFAULT_N,
    default_suite,
    make_scenario,
    scenario_description,
    scenario_names,
)
from repro.scenarios.spec import EventSpec, ScenarioSpec, TrafficSpec

__all__ = [
    "DEFAULT_N",
    "EVENT_KINDS",
    "EventContext",
    "EventSpec",
    "RecoverySample",
    "ScenarioReport",
    "ScenarioSpec",
    "TrafficSpec",
    "apply_event_spec",
    "default_suite",
    "make_scenario",
    "run_scenario",
    "scenario_description",
    "scenario_names",
]
