"""The named scenario library.

Each entry composes the event vocabulary into one reusable adversity
campaign: a short name, a default size, the timeline, and the workload
riding it.  ``docs/SCENARIOS.md`` documents the adversary model, the
expected recovery behavior and the paper claim each scenario probes;
the CLI (``rechord scenario``) and the sweep experiment
(:mod:`repro.experiments.scenarios`) both resolve names here.

Use :func:`make_scenario` to instantiate one at a chosen size/seed::

    >>> from repro.scenarios import make_scenario
    >>> spec = make_scenario("flash-crowd", n=16, seed=3)
    >>> (spec.name, spec.n, len(spec.events) > 0)
    ('flash-crowd', 16, True)
"""

from __future__ import annotations

from typing import Callable, Dict, List, Tuple

from repro.scenarios.spec import EventSpec, ScenarioSpec, TrafficSpec
from repro.traffic.messages import OP_GET, OP_LOOKUP, OP_PUT

#: name -> (description, builder(n, seed) -> ScenarioSpec)
_REGISTRY: Dict[str, Tuple[str, Callable[[int, int], ScenarioSpec]]] = {}

#: default campaign size (overridable per scenario via make_scenario)
DEFAULT_N = 32

#: the default mixed workload (lookups dominate, KV keeps a store hot)
MIXED_TRAFFIC = TrafficSpec(
    rate=2.0,
    op_mix=((OP_LOOKUP, 0.6), (OP_GET, 0.2), (OP_PUT, 0.2)),
    popularity="zipf",
)


def scenario(name: str, description: str) -> Callable:
    """Decorator registering a named scenario builder."""

    def register(fn: Callable[[int, int], ScenarioSpec]) -> Callable:
        _REGISTRY[name] = (description, fn)
        return fn

    return register


def scenario_names() -> List[str]:
    """All registered scenario names, sorted."""
    return sorted(_REGISTRY)


def scenario_description(name: str) -> str:
    """The one-line adversary summary of a named scenario."""
    return _get(name)[0]


def _get(name: str) -> Tuple[str, Callable[[int, int], ScenarioSpec]]:
    entry = _REGISTRY.get(name)
    if entry is None:
        raise KeyError(
            f"unknown scenario {name!r}; choose from {scenario_names()}"
        )
    return entry


def make_scenario(name: str, n: int = DEFAULT_N, seed: int = 1, **overrides) -> ScenarioSpec:
    """Instantiate a named scenario at the given size and seed."""
    description, builder = _get(name)
    spec = builder(n, seed)
    if overrides:
        spec = spec.with_overrides(**overrides)
    return spec


# ----------------------------------------------------------------------
# membership adversaries
# ----------------------------------------------------------------------
@scenario(
    "flash-crowd",
    "25% of the network joins at once through a single gateway peer",
)
def _flash_crowd(n: int, seed: int) -> ScenarioSpec:
    return ScenarioSpec(
        name="flash-crowd",
        n=n,
        seed=seed,
        start="ideal",
        rounds=28,
        events=(
            EventSpec(
                at=6,
                kind="flash_crowd",
                params={"fraction": 0.25, "gateway": "single"},
            ),
        ),
        traffic=MIXED_TRAFFIC,
        description=(
            "A stable overlay is hit by a join burst funneled through one "
            "gateway — the hotspot version of Theorem 4.1's isolated join."
        ),
    )


@scenario(
    "crash-wave",
    "a correlated crash of 25% consecutive peers (a whole ring neighborhood)",
)
def _crash_wave(n: int, seed: int) -> ScenarioSpec:
    return ScenarioSpec(
        name="crash-wave",
        n=n,
        seed=seed,
        start="ideal",
        rounds=28,
        events=(
            EventSpec(
                at=6,
                kind="crash_wave",
                params={"fraction": 0.25, "targeting": "clustered"},
            ),
        ),
        traffic=MIXED_TRAFFIC,
        description=(
            "Correlated failure of consecutive identifiers — successor "
            "knowledge of a whole arc vanishes at once (Theorem 4.2, en "
            "masse, the failure mode successor lists exist for)."
        ),
    )


@scenario(
    "seam-crash",
    "both ring-seam extremes crash simultaneously (wrap-pointer holders)",
)
def _seam_crash(n: int, seed: int) -> ScenarioSpec:
    return ScenarioSpec(
        name="seam-crash",
        n=n,
        seed=seed,
        start="ideal",
        rounds=24,
        events=(
            EventSpec(
                at=6,
                kind="crash_wave",
                params={"count": 2, "targeting": "extremes"},
            ),
        ),
        traffic=MIXED_TRAFFIC,
        description=(
            "The minimum and maximum identifiers crash together: the seam "
            "ring edge and both wrap pointers [D6] die in one round — the "
            "hardest two-peer loss on the circle."
        ),
    )


@scenario(
    "churn-storm",
    "five back-to-back random churn bursts while traffic keeps flowing",
)
def _churn_storm(n: int, seed: int) -> ScenarioSpec:
    return ScenarioSpec(
        name="churn-storm",
        n=n,
        seed=seed,
        start="ideal",
        rounds=40,
        events=tuple(
            EventSpec(at=6 + 6 * i, kind="churn_burst", params={"events": 3})
            for i in range(5)
        ),
        traffic=MIXED_TRAFFIC,
        description=(
            "Sustained mixed churn: a new burst lands before the previous "
            "one's repair finishes, so stabilization never gets a quiet "
            "window until the storm passes."
        ),
    )


@scenario(
    "rolling-restart",
    "crash-then-rejoin sweeps across the network, one peer every 4 rounds",
)
def _rolling_restart(n: int, seed: int) -> ScenarioSpec:
    events = []
    for i in range(4):
        events.append(
            EventSpec(at=4 + 8 * i, kind="crash_wave", params={"count": 1})
        )
        events.append(
            EventSpec(at=8 + 8 * i, kind="flash_crowd", params={"count": 1})
        )
    return ScenarioSpec(
        name="rolling-restart",
        n=n,
        seed=seed,
        start="ideal",
        rounds=40,
        events=tuple(events),
        traffic=MIXED_TRAFFIC,
        description=(
            "An operator rolling through the fleet: individual peers crash "
            "and fresh ones join in alternation, testing that repairs stay "
            "local (Theorems 4.1/4.2) while operations keep succeeding."
        ),
    )


# ----------------------------------------------------------------------
# resilience: mass failure and gray failure under the retrying plane
# ----------------------------------------------------------------------
@scenario(
    "mass-failure",
    "half the network crashes at once; the retrying request plane must carry traffic through",
)
def _mass_failure(n: int, seed: int) -> ScenarioSpec:
    return ScenarioSpec(
        name="mass-failure",
        n=n,
        seed=seed,
        start="ideal",
        rounds=36,
        events=(
            EventSpec(
                at=8,
                kind="crash_wave",
                params={"fraction": 0.5, "targeting": "random"},
            ),
        ),
        traffic=TrafficSpec(
            rate=2.0,
            op_mix=((OP_LOOKUP, 1.0),),
            popularity="zipf",
            # short per-attempt deadlines so the attempt budget actually
            # cycles inside the adversity window; the survival metric
            # (ScenarioReport.survival_by_window) scores the ops issued
            # *during* the outage by eventual success.  The exponential
            # backoff makes the budget deep enough that the last
            # attempts land after the overlay has re-stabilized (in-band
            # failure replies burn early attempts within a few rounds)
            deadline=12,
            max_attempts=6,
            retry_backoff=4,
            route_redundancy=2,
        ),
        description=(
            "The mass-failure survival drill: 50% of the peers crash in "
            "one round mid-traffic.  First attempts issued during the "
            "window die on dead hops; seeded retries with backoff plus "
            "r=2 redundant forwarding must route them eventually, and "
            "the per-window survival census records the fraction that "
            "made it (Theorem 4.2 pushed to the regime successor lists "
            "and retries exist for)."
        ),
    )


@scenario(
    "gray-failure",
    "a lossy gray peer subset drops ~30% of its messages until the links heal",
)
def _gray_failure(n: int, seed: int) -> ScenarioSpec:
    return ScenarioSpec(
        name="gray-failure",
        n=n,
        seed=seed,
        start="ideal",
        rounds=36,
        events=(
            EventSpec(
                at=6,
                kind="gray_failure",
                params={"fraction": 0.25, "drop_prob": 0.3},
            ),
            EventSpec(at=26, kind="heal", params={}),
        ),
        traffic=TrafficSpec(
            rate=2.0,
            op_mix=((OP_LOOKUP, 1.0),),
            popularity="zipf",
            deadline=12,
            max_attempts=3,
            retry_backoff=3,
            hedge_after=6,
        ),
        description=(
            "Gray failure: a seeded quarter of the peers stays alive but "
            "drops ~30% of its messages (content-keyed, so both kernels "
            "drop identically).  The liveness oracle never notices — only "
            "the request plane's deadlines do.  Retries redraw the drop "
            "coin with a fresh attempt stamp and hedged duplicates race "
            "the lossy path until the links heal."
        ),
    )


# ----------------------------------------------------------------------
# partitions
# ----------------------------------------------------------------------
@scenario(
    "partition-heal",
    "a silent half/half partition for 14 rounds, then the link returns",
)
def _partition_heal(n: int, seed: int) -> ScenarioSpec:
    return ScenarioSpec(
        name="partition-heal",
        n=n,
        seed=seed,
        start="ideal",
        rounds=34,
        events=(
            EventSpec(at=6, kind="partition", params={"mode": "id_split", "fraction": 0.5}),
            EventSpec(at=20, kind="heal", params={}),
        ),
        traffic=MIXED_TRAFFIC,
        description=(
            "Messages across an identifier-arc cut vanish silently while "
            "both sides keep believing the other is alive: cross-cut "
            "operations time out (monotonic-searchability violations "
            "spike), then the link heals and the flows resume."
        ),
    )


@scenario(
    "partition-sever",
    "a detected partition severs all cross refs; heal must re-bridge",
)
def _partition_sever(n: int, seed: int) -> ScenarioSpec:
    return ScenarioSpec(
        name="partition-sever",
        n=n,
        seed=seed,
        start="ideal",
        rounds=40,
        events=(
            EventSpec(
                at=6,
                kind="partition",
                params={"mode": "id_split", "fraction": 0.5, "sever": True},
            ),
            EventSpec(at=24, kind="heal", params={"bridges": 1}),
        ),
        traffic=MIXED_TRAFFIC,
        description=(
            "The connection layer notices the partition and purges every "
            "cross-cut reference: two independent overlays stabilize in "
            "isolation, then a single bridge edge (the weak-connectivity "
            "minimum) must merge them — Berns' scaffolding regime."
        ),
    )


# ----------------------------------------------------------------------
# state corruption
# ----------------------------------------------------------------------
@scenario(
    "finger-poison",
    "garbage ring/connection/unmarked edges injected into every peer",
)
def _finger_poison(n: int, seed: int) -> ScenarioSpec:
    return ScenarioSpec(
        name="finger-poison",
        n=n,
        seed=seed,
        start="ideal",
        rounds=28,
        events=(
            EventSpec(
                at=6,
                kind="poison_fingers",
                params={"fraction": 1.0, "edges_per_peer": 6},
            ),
        ),
        traffic=MIXED_TRAFFIC,
        description=(
            "An adversary rewrites routing state without touching "
            "membership: rules 4-6 must drain or convert every garbage "
            "edge while greedy forwarding survives on the poisoned views."
        ),
    )


@scenario(
    "phantom-storm",
    "excess virtual levels plus edges to levels nobody simulates",
)
def _phantom_storm(n: int, seed: int) -> ScenarioSpec:
    return ScenarioSpec(
        name="phantom-storm",
        n=n,
        seed=seed,
        start="ideal",
        rounds=28,
        events=(
            EventSpec(
                at=6,
                kind="phantom_refs",
                params={"fraction": 0.8, "levels_per_peer": 3},
            ),
        ),
        traffic=MIXED_TRAFFIC,
        description=(
            "Phantom virtual references and over-provisioned sibling "
            "levels: rule 1 must delete the excess and the purge step "
            "must re-point every phantom ref [D11]."
        ),
    )


@scenario(
    "ring-split",
    "the overlay is reset mid-run into two interleaved rings",
)
def _ring_split(n: int, seed: int) -> ScenarioSpec:
    return ScenarioSpec(
        name="ring-split",
        n=n,
        seed=seed,
        start="ideal",
        rounds=32,
        events=(EventSpec(at=6, kind="ring_split", params={}),),
        traffic=MIXED_TRAFFIC,
        description=(
            "The arbitrary-state reset: all neighborhoods wiped and "
            "rewired into the interleaved two-ring split that permanently "
            "breaks classic Chord — Re-Chord must merge them (Theorem "
            "1.1) with operations in flight."
        ),
    )


# ----------------------------------------------------------------------
# time-model adversity (latency + activation daemons)
# ----------------------------------------------------------------------
@scenario(
    "jitter-storm",
    "bounded message reordering on every link while churn bursts land",
)
def _jitter_storm(n: int, seed: int) -> ScenarioSpec:
    return ScenarioSpec(
        name="jitter-storm",
        n=n,
        seed=seed,
        start="ideal",
        rounds=26,
        events=(
            EventSpec(at=2, kind="jitter_storm", params={"bound": 3}),
            EventSpec(at=8, kind="churn_burst", params={"events": 3}),
        ),
        traffic=MIXED_TRAFFIC,
        description=(
            "Every link draws a seeded delay in [1, 3] per message, so "
            "deliveries reorder within the bound — the asynchronous "
            "adversary of monotonic searchability — while a churn burst "
            "lands mid-storm.  The jitter persists through recovery: "
            "stabilization must reach its fixpoint on reordered flows."
        ),
    )


@scenario(
    "slow-links",
    "a third of the links degrade to 3-round latency, then get repaired",
)
def _slow_links(n: int, seed: int) -> ScenarioSpec:
    return ScenarioSpec(
        name="slow-links",
        n=n,
        seed=seed,
        start="ideal",
        rounds=28,
        events=(
            EventSpec(at=2, kind="slow_links", params={"fraction": 0.3, "delay": 3}),
            EventSpec(at=8, kind="crash_wave", params={"count": 2}),
            EventSpec(at=20, kind="set_latency", params={"kind": "unit"}),
        ),
        traffic=MIXED_TRAFFIC,
        description=(
            "A seeded 30% of directed links turns slow (3 rounds) — the "
            "heterogeneous-bandwidth population — and two peers crash "
            "while repairs ride the degraded links; the operator then "
            "upgrades the links back to unit latency."
        ),
    )


@scenario(
    "latency-partition",
    "cross-cut links of an identifier arc slow to 5 rounds, then heal",
)
def _latency_partition(n: int, seed: int) -> ScenarioSpec:
    return ScenarioSpec(
        name="latency-partition",
        n=n,
        seed=seed,
        start="ideal",
        rounds=30,
        events=(
            EventSpec(
                at=4,
                kind="latency_partition",
                params={"mode": "id_split", "fraction": 0.5, "delay": 5},
            ),
            EventSpec(at=10, kind="flash_crowd", params={"count": 2}),
            EventSpec(at=22, kind="set_latency", params={"kind": "unit"}),
        ),
        traffic=MIXED_TRAFFIC,
        description=(
            "The partition's gentle sibling: messages across an "
            "identifier-arc cut arrive five rounds late instead of "
            "never.  Cross-cut operations stretch toward their "
            "deadlines while joins land on the slow side, then the WAN "
            "link recovers."
        ),
    )


@scenario(
    "brownout",
    "a seeded-partial activation daemon idles 40% of peers, then lifts",
)
def _brownout(n: int, seed: int) -> ScenarioSpec:
    return ScenarioSpec(
        name="brownout",
        n=n,
        seed=seed,
        start="ideal",
        rounds=26,
        events=(
            EventSpec(at=4, kind="set_daemon", params={"kind": "partial", "p": 0.6}),
            EventSpec(at=8, kind="churn_burst", params={"events": 3}),
            EventSpec(at=20, kind="set_daemon", params={"kind": "full"}),
        ),
        traffic=MIXED_TRAFFIC,
        description=(
            "An activation brownout: each round only a seeded ~60% of "
            "peers execute (the fair-scheduling bridge toward "
            "asynchrony), churn lands mid-brownout, and full activation "
            "returns before recovery — sleeping peers' inboxes "
            "accumulate and drain without breaking kernel equivalence."
        ),
    )


# ----------------------------------------------------------------------
# adversarial starts under load
# ----------------------------------------------------------------------
@scenario(
    "cold-start-line",
    "traffic from round 0 on a line graph — the slowest information spreader",
)
def _cold_start_line(n: int, seed: int) -> ScenarioSpec:
    return ScenarioSpec(
        name="cold-start-line",
        n=n,
        seed=seed,
        start="line",
        rounds=24,
        events=(
            EventSpec(at=12, kind="set_rate", params={"rate": 4.0}),
        ),
        traffic=TrafficSpec(rate=1.0, op_mix=((OP_LOOKUP, 1.0),), popularity="zipf"),
        description=(
            "The overlay is *used before it ever stabilizes*: lookups "
            "start on a degenerate line topology, and the offered load "
            "doubles mid-convergence — routability during convergence, "
            "from the worst O(n)-diameter start."
        ),
    )


def default_suite() -> List[str]:
    """The scenario names exercised by the sweep and the smoke gate."""
    return scenario_names()
