"""Garbage-collection batching for allocation-heavy simulation loops.

The synchronous kernel allocates millions of short-lived envelopes and
payloads per large run.  CPython's generational collector is triggered
by *allocation counts*, so those bursts schedule frequent collections —
and the periodic full (gen-2) passes scan the entire live heap, which
at n ≥ 1k peers is large enough that collection dominates the round
loop (measured: ~half the wall-clock of a columnar re-stabilization at
n=1024 was collector time).

Almost all kernel garbage is *acyclic* (envelopes, payloads, tuples)
and is reclaimed immediately by reference counting; the collector only
exists to catch cycles, which the kernel creates rarely (the
``PeerState <-> LocalNode`` back-references of peers removed by
churn).  :func:`gc_batched` therefore suspends automatic collection
for the duration of a run loop and performs one young-generation
(gen-0/gen-1) pass on exit, which reclaims any churn cycles created
inside the window without ever scanning the full heap.

Usage — wrap complete measurement or experiment loops, not single
rounds::

    with gc_batched():
        while not net.is_ideal_stable():
            net.run_round()

The context restores the collector's previous enabled state on exit,
so nesting and use from already-``gc.disable()``-d contexts are safe.
"""

from __future__ import annotations

import gc
from contextlib import contextmanager
from typing import Iterator


@contextmanager
def gc_batched() -> Iterator[None]:
    """Suspend automatic garbage collection; young-gen sweep on exit.

    Reference counting still reclaims acyclic garbage immediately while
    active; only *cycle* collection is deferred to the exit sweep.  The
    deferred-memory ceiling inside the window is therefore bounded by
    the cyclic garbage produced in it (peer removals), not by message
    volume.
    """
    was_enabled = gc.isenabled()
    gc.disable()
    try:
        yield
    finally:
        # young generations only: churn cycles created inside the
        # window live in gen 0/1 (objects are promoted only by the
        # collections we just suppressed), so a full-heap pass is
        # never needed here
        gc.collect(1)
        if was_enabled:
            gc.enable()
