"""Message envelopes for the synchronous kernel."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Hashable


@dataclass(frozen=True)
class Envelope:
    """A message in flight between two actors.

    ``sender``/``target`` are actor keys known to the scheduler; ``payload``
    is protocol-defined and treated opaquely by the kernel.  Envelopes are
    immutable: the synchronous model forbids a sender from mutating a
    message after the send.
    """

    sender: Hashable
    target: Hashable
    payload: Any

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Envelope({self.sender!r} -> {self.target!r}: {self.payload!r})"
