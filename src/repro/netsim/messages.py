"""Message envelopes for the synchronous kernel."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Hashable, Sequence

#: 64-bit wrap-around for the rolling multiset fingerprints
HASH_MASK = (1 << 64) - 1


class AppPayload:
    """Marker base for application-plane payloads (the traffic plane).

    The kernel treats these like any other payload (buffered, delivered
    at the round boundary, fingerprinted via ``canonical()``), but the
    protocol layer routes them to the peer's attached traffic handler
    instead of the stabilization rules.  Subclasses must provide
    ``canonical()`` and ``refs()`` like the protocol payloads do.

    Exactness contract (activity-tracked kernel): handlers may read the
    peer's state, external stores and the message — never the liveness
    oracle — and must not mutate overlay state.  Application messages
    are *one-shot*, not steady flows, so the protocol layer forces any
    actor that consumed one to execute (not replay) the following round,
    keeping traffic emissions out of the steady-emission cache.
    """

    __slots__ = ()


@dataclass(frozen=True, eq=False)
class Envelope:
    """A message in flight between two actors.

    ``sender``/``target`` are actor keys known to the scheduler; ``payload``
    is protocol-defined and treated opaquely by the kernel.  Envelopes are
    immutable: the synchronous model forbids a sender from mutating a
    message after the send.

    ``_fp`` is the lazily memoized fingerprint slot (see
    :func:`envelope_fingerprint`); slots keep construction and field
    access cheap on the millions of envelopes a large run mints.
    Equality/hash are hand-rolled with the usual dataclass semantics
    (field-wise) but without intermediate tuple allocations: the
    round-boundary outbox diffs compare whole outboxes every round, and
    this is their innermost loop.
    """

    __slots__ = ("sender", "target", "payload", "_fp")

    sender: Hashable
    target: Hashable
    payload: Any

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Envelope({self.sender!r} -> {self.target!r}: {self.payload!r})"

    def __eq__(self, other: object) -> bool:
        if self is other:
            return True
        if other.__class__ is not Envelope:
            return NotImplemented
        return (
            self.target == other.target
            and self.sender == other.sender
            and self.payload == other.payload
        )

    def __hash__(self) -> int:
        return hash((self.sender, self.target, self.payload))

    def __getstate__(self) -> tuple:
        # the memoized fingerprint (see envelope_fingerprint) is only
        # valid within this process — hash() of strings is randomized
        # per interpreter — so it must not survive pickling
        return (self.sender, self.target, self.payload)

    def __setstate__(self, state: tuple) -> None:
        object.__setattr__(self, "sender", state[0])
        object.__setattr__(self, "target", state[1])
        object.__setattr__(self, "payload", state[2])


def envelope_fingerprint(env: Envelope) -> int:
    """Order-independent fingerprint contribution of one in-flight message.

    Mirrors the canonical pending-message identity used by the global
    network fingerprint: ``(target, payload.canonical())`` — the sender
    is deliberately excluded.  Payloads without ``canonical()`` (generic
    actors in unit tests) hash directly, falling back to ``repr`` for
    unhashable ones; exactness guarantees only cover canonical payloads.

    The value is memoized on the (immutable) envelope: the rolling
    pending-multiset hashes touch the same envelope several times over
    its life (post, account, deliver), and the columnar kernel's flow
    surgery would otherwise recompute canonical forms per boundary.
    """
    try:
        return env._fp
    except AttributeError:
        pass
    payload = env.payload
    canon = payload.canonical() if hasattr(payload, "canonical") else payload
    try:
        fp = hash((env.target, canon)) & HASH_MASK
    except TypeError:
        fp = hash((env.target, repr(canon))) & HASH_MASK
    object.__setattr__(env, "_fp", fp)
    return fp


def envelope_canon(env: Envelope) -> object:
    """The hashable canonical pending identity of one payload.

    Mirrors the identity used by :func:`envelope_fingerprint` and the
    global network fingerprint, but returns the value itself (for exact
    multiset comparisons) instead of a hash.  Falls back to ``repr``
    for unhashable payloads without ``canonical()`` (generic unit-test
    actors) — exactness guarantees only cover canonical payloads.
    """
    payload = env.payload
    canon = payload.canonical() if hasattr(payload, "canonical") else payload
    try:
        hash(canon)
    except TypeError:
        return repr(canon)
    return canon


def future_fingerprint(env: Envelope, remaining: int) -> int:
    """Fingerprint contribution of a scheduled (not yet matured)
    delivery: the pending identity extended with the remaining delay in
    rounds — two configurations holding the same envelope at different
    maturities are different configurations."""
    return hash((env.target, envelope_canon(env), remaining)) & HASH_MASK


def outbox_fingerprint(outbox: Sequence[Envelope]) -> int:
    """Multiset hash-sum of one actor's emissions (64-bit wrap-around)."""
    total = 0
    for env in outbox:
        total = (total + envelope_fingerprint(env)) & HASH_MASK
    return total
