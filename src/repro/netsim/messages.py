"""Message envelopes for the synchronous kernel."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Hashable, Sequence

#: 64-bit wrap-around for the rolling multiset fingerprints
HASH_MASK = (1 << 64) - 1


class AppPayload:
    """Marker base for application-plane payloads (the traffic plane).

    The kernel treats these like any other payload (buffered, delivered
    at the round boundary, fingerprinted via ``canonical()``), but the
    protocol layer routes them to the peer's attached traffic handler
    instead of the stabilization rules.  Subclasses must provide
    ``canonical()`` and ``refs()`` like the protocol payloads do.

    Exactness contract (activity-tracked kernel): handlers may read the
    peer's state, external stores and the message — never the liveness
    oracle — and must not mutate overlay state.  Application messages
    are *one-shot*, not steady flows, so the protocol layer forces any
    actor that consumed one to execute (not replay) the following round,
    keeping traffic emissions out of the steady-emission cache.
    """

    __slots__ = ()


@dataclass(frozen=True)
class Envelope:
    """A message in flight between two actors.

    ``sender``/``target`` are actor keys known to the scheduler; ``payload``
    is protocol-defined and treated opaquely by the kernel.  Envelopes are
    immutable: the synchronous model forbids a sender from mutating a
    message after the send.
    """

    sender: Hashable
    target: Hashable
    payload: Any

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Envelope({self.sender!r} -> {self.target!r}: {self.payload!r})"


def envelope_fingerprint(env: Envelope) -> int:
    """Order-independent fingerprint contribution of one in-flight message.

    Mirrors the canonical pending-message identity used by the global
    network fingerprint: ``(target, payload.canonical())`` — the sender
    is deliberately excluded.  Payloads without ``canonical()`` (generic
    actors in unit tests) hash directly, falling back to ``repr`` for
    unhashable ones; exactness guarantees only cover canonical payloads.
    """
    payload = env.payload
    canon = payload.canonical() if hasattr(payload, "canonical") else payload
    try:
        return hash((env.target, canon)) & HASH_MASK
    except TypeError:
        return hash((env.target, repr(canon))) & HASH_MASK


def envelope_canon(env: Envelope) -> object:
    """The hashable canonical pending identity of one payload.

    Mirrors the identity used by :func:`envelope_fingerprint` and the
    global network fingerprint, but returns the value itself (for exact
    multiset comparisons) instead of a hash.  Falls back to ``repr``
    for unhashable payloads without ``canonical()`` (generic unit-test
    actors) — exactness guarantees only cover canonical payloads.
    """
    payload = env.payload
    canon = payload.canonical() if hasattr(payload, "canonical") else payload
    try:
        hash(canon)
    except TypeError:
        return repr(canon)
    return canon


def future_fingerprint(env: Envelope, remaining: int) -> int:
    """Fingerprint contribution of a scheduled (not yet matured)
    delivery: the pending identity extended with the remaining delay in
    rounds — two configurations holding the same envelope at different
    maturities are different configurations."""
    return hash((env.target, envelope_canon(env), remaining)) & HASH_MASK


def outbox_fingerprint(outbox: Sequence[Envelope]) -> int:
    """Multiset hash-sum of one actor's emissions (64-bit wrap-around)."""
    total = 0
    for env in outbox:
        total = (total + envelope_fingerprint(env)) & HASH_MASK
    return total
