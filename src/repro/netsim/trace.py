"""Round-level tracing: message counts and actor counts over time.

Used by the message-complexity experiment (E12) and by debugging tools.
Recording is O(1) per round and allocation-light so it can stay enabled
during benchmarks.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional


@dataclass(frozen=True)
class RoundStats:
    """Statistics of a single synchronous round.

    ``executed`` is the number of actors that actually ran their rules
    (vs. having a quiescent round replayed by the activity-tracked
    scheduler); ``-1`` means the kernel did not report the split (the
    legacy full-scan engine steps everyone).
    """

    round_no: int
    actors: int
    sent: int
    dropped: int
    executed: int = -1


class TraceRecorder:
    """Accumulates :class:`RoundStats` for every executed round."""

    def __init__(self) -> None:
        self._rounds: List[RoundStats] = []

    def record_round(
        self, round_no: int, actors: int, sent: int, dropped: int, executed: int = -1
    ) -> None:
        """Append one round record (called by the scheduler)."""
        self._rounds.append(RoundStats(round_no, actors, sent, dropped, executed))

    def __len__(self) -> int:
        return len(self._rounds)

    def rounds(self) -> List[RoundStats]:
        """All recorded rounds in execution order."""
        return list(self._rounds)

    def total_messages(self) -> int:
        """Total messages sent across all recorded rounds."""
        return sum(r.sent for r in self._rounds)

    def peak_round_messages(self) -> int:
        """Largest per-round message count (0 if nothing recorded)."""
        return max((r.sent for r in self._rounds), default=0)

    def messages_series(self) -> List[int]:
        """Per-round sent-message counts, in order."""
        return [r.sent for r in self._rounds]

    def executed_series(self) -> List[Optional[int]]:
        """Per-round executed-actor counts, ``None`` where unreported.

        The ``-1`` sentinel the full-scan kernel stores (it has no
        execute/replay split) is mapped to ``None`` here so consumers
        can render "n/a" instead of treating ``-1`` as a literal actor
        count — never include ``None`` entries in series arithmetic.
        """
        return [r.executed if r.executed >= 0 else None for r in self._rounds]

    def clear(self) -> None:
        """Drop all records."""
        self._rounds.clear()
