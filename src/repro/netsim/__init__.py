"""Synchronous message-passing simulation kernel.

Implements the paper's execution model (Section 2.1): time proceeds in
synchronous rounds; in round ``i`` every actor inspects only its own state
plus the messages delivered at the end of round ``i-1``, and all messages
generated in round ``i`` are delivered simultaneously at the end of round
``i``.  The kernel is protocol-agnostic: Re-Chord, the classic-Chord
baseline and the linearization baseline all run on it.
"""

from repro.netsim.messages import Envelope
from repro.netsim.scheduler import Actor, RoundContext, SynchronousScheduler
from repro.netsim.timemodel import (
    ActivationDaemon,
    DeliveryModel,
    TimeModel,
    make_daemon,
    make_delivery_model,
)
from repro.netsim.trace import RoundStats, TraceRecorder
from repro.netsim.rng import SeedSequence

__all__ = [
    "ActivationDaemon",
    "Actor",
    "DeliveryModel",
    "Envelope",
    "RoundContext",
    "RoundStats",
    "SeedSequence",
    "SynchronousScheduler",
    "TimeModel",
    "TraceRecorder",
    "make_daemon",
    "make_delivery_model",
]
