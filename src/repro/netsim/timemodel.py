"""The pluggable time model: delivery latency + activation daemons.

The synchronous kernel's original notion of time is implicit: every
message sent in round ``i`` is consumed in round ``i + 1`` and every
actor steps every round.  This module makes both halves explicit and
swappable:

* a :class:`DeliveryModel` assigns each send a **delivery delay in
  rounds** (``unit`` reproduces the paper's model bit-for-bit; other
  models give constant-``k`` slow links, a seeded fraction of slow
  links, per-link log-normal latency, region/WAN matrices, adversarial
  reorder-within-bound, or a slow cut across an explicit peer set);
* an :class:`ActivationDaemon` decides which actors step each round
  (``full`` is the paper's model; ``partial`` flips seeded per-actor
  coins, ``round_robin`` rotates fair stripes, ``unfair`` is the
  adversary that activates every actor exactly once per window, as
  rarely as the fairness bound allows).

Exactness contract
------------------

Both halves must be **deterministic pure functions** so the two
simulation kernels (dirty-set and full-scan) stay round-for-round
equivalent and seeded runs reproduce across processes and platforms:

* ``DeliveryModel.delay(env)`` may depend only on the model's own
  parameters/seed and the envelope *content* (sender, target, canonical
  payload) — never on wall clock, call order, or mutable state.  A
  replayed steady emission is content-identical to the executed one, so
  it draws the same delay; that is what keeps the steady-emission
  replay and the pending-configuration fingerprints exact under
  latency.  Seeded draws go through :func:`stable_u64` (BLAKE2) or a
  ``random.Random`` seeded from it — never through builtin ``hash``,
  which is process-randomized.
* A message to yourself never crosses the network: ``delay`` is 1 for
  ``sender == target`` under every model (traffic injection posts into
  the origin's own inbox and must not be wire-delayed).
* ``ActivationDaemon.select(round_no, keys)`` may depend only on the
  daemon's parameters/seed, the round number and the sorted key list.

Models and daemons are values: ``to_dict()`` round-trips through JSON
and :func:`make_delivery_model` / :func:`make_daemon` rebuild them,
which is how :class:`repro.scenarios.spec.ScenarioSpec` and the CLI
(``--latency-model`` / ``--daemon``) carry them.

>>> from repro.netsim.timemodel import make_delivery_model, make_daemon
>>> make_delivery_model({"kind": "constant", "delay": 3}).delay_bound()
3
>>> make_delivery_model("unit").is_unit
True
>>> sorted(make_daemon({"kind": "round_robin", "groups": 2}).select(0, [1, 2, 3]))
[1, 3]
"""

from __future__ import annotations

import random
from hashlib import blake2b
from typing import Any, Dict, FrozenSet, Hashable, List, Optional, Sequence, Type

from repro.netsim.messages import Envelope


def stable_u64(*parts: object) -> int:
    """A process-stable 64-bit hash of the ``repr`` of ``parts``.

    Builtin ``hash`` is randomized per process (strings) and therefore
    unusable for seeded delay draws that must reproduce across runs,
    machines and CI; BLAKE2 of the canonical reprs is.
    """
    h = blake2b(digest_size=8)
    for part in parts:
        h.update(repr(part).encode("utf-8", "backslashreplace"))
        h.update(b"\x1f")
    return int.from_bytes(h.digest(), "big")


def _payload_identity(env: Envelope) -> object:
    """The canonical payload identity used for per-envelope delay keys."""
    payload = env.payload
    return payload.canonical() if hasattr(payload, "canonical") else payload


# ----------------------------------------------------------------------
# delivery models
# ----------------------------------------------------------------------
class DeliveryModel:
    """Assigns every send a delivery delay in rounds (``>= 1``).

    ``delay(env) == d`` means an envelope sent during round ``r`` is
    consumed by its target during round ``r + d`` (``d == 1`` is the
    paper's synchronous delivery).  Subclasses implement
    :meth:`_link_delay`; the base class enforces the self-link and
    lower-bound contracts.
    """

    kind = "?"

    def delay(self, env: Envelope) -> int:
        """Delivery delay for one envelope (deterministic, ``>= 1``)."""
        if env.sender == env.target:
            return 1
        return max(1, int(self._link_delay(env)))

    def _link_delay(self, env: Envelope) -> int:
        raise NotImplementedError

    def delay_bound(self) -> int:
        """The largest delay this model can assign (``unit`` iff 1)."""
        raise NotImplementedError

    @property
    def is_unit(self) -> bool:
        """Whether the model is indistinguishable from unit delivery."""
        return self.delay_bound() <= 1

    def params(self) -> Dict[str, Any]:
        """JSON-serializable parameters (inverse of the constructor)."""
        return {}

    def to_dict(self) -> Dict[str, Any]:
        """The model as a spec dict (see :func:`make_delivery_model`)."""
        return {"kind": self.kind, **self.params()}

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}({self.to_dict()!r})"


class UnitDelivery(DeliveryModel):
    """Today's behavior: every message is consumed the next round."""

    kind = "unit"

    def _link_delay(self, env: Envelope) -> int:
        return 1

    def delay_bound(self) -> int:
        return 1


class ConstantDelivery(DeliveryModel):
    """Every cross-peer link takes a constant ``delay`` rounds."""

    kind = "constant"

    def __init__(self, delay: int = 2) -> None:
        if delay < 1:
            raise ValueError(f"delay must be >= 1, got {delay}")
        self._delay = int(delay)

    def _link_delay(self, env: Envelope) -> int:
        return self._delay

    def delay_bound(self) -> int:
        return self._delay

    def params(self) -> Dict[str, Any]:
        return {"delay": self._delay}


class SlowLinksDelivery(DeliveryModel):
    """A seeded fraction of directed links is slow (constant ``delay``).

    Link classification is a pure function of ``(seed, sender, target)``
    and memoized, so a link's speed never changes while the model is
    installed — the heterogeneous-bandwidth population of HSkip+.
    """

    kind = "slow_links"

    def __init__(self, fraction: float = 0.25, delay: int = 4, seed: int = 0) -> None:
        if not 0.0 <= fraction <= 1.0:
            raise ValueError(f"fraction must be in [0, 1], got {fraction}")
        if delay < 1:
            raise ValueError(f"delay must be >= 1, got {delay}")
        self._fraction = float(fraction)
        self._delay = int(delay)
        self._seed = int(seed)
        self._memo: Dict[tuple, int] = {}

    def _link_delay(self, env: Envelope) -> int:
        link = (env.sender, env.target)
        got = self._memo.get(link)
        if got is None:
            u = stable_u64("slow_links", self._seed, *link) / 2.0**64
            got = self._delay if u < self._fraction else 1
            self._memo[link] = got
        return got

    def delay_bound(self) -> int:
        return self._delay if self._fraction > 0 else 1

    def params(self) -> Dict[str, Any]:
        return {"fraction": self._fraction, "delay": self._delay, "seed": self._seed}


class LogNormalDelivery(DeliveryModel):
    """Per-link log-normal latency, capped at ``cap`` rounds.

    Each directed link draws ``1 + floor(lognormvariate(mu, sigma))``
    once (seeded per link, memoized): a long-tailed but *fixed* latency
    population, the WAN-like heterogeneity of HSkip+-style systems.
    """

    kind = "lognormal"

    def __init__(
        self, mu: float = 0.0, sigma: float = 0.8, cap: int = 8, seed: int = 0
    ) -> None:
        if cap < 1:
            raise ValueError(f"cap must be >= 1, got {cap}")
        if sigma < 0:
            raise ValueError(f"sigma must be >= 0, got {sigma}")
        self._mu = float(mu)
        self._sigma = float(sigma)
        self._cap = int(cap)
        self._seed = int(seed)
        self._memo: Dict[tuple, int] = {}

    def _link_delay(self, env: Envelope) -> int:
        link = (env.sender, env.target)
        got = self._memo.get(link)
        if got is None:
            rng = random.Random(stable_u64("lognormal", self._seed, *link))
            got = min(self._cap, 1 + int(rng.lognormvariate(self._mu, self._sigma)))
            self._memo[link] = got
        return got

    def delay_bound(self) -> int:
        return self._cap

    def params(self) -> Dict[str, Any]:
        return {"mu": self._mu, "sigma": self._sigma, "cap": self._cap, "seed": self._seed}


class RegionDelivery(DeliveryModel):
    """A WAN matrix: peers hash into ``regions``; cross-region links
    cost ``delay`` rounds, intra-region links are unit."""

    kind = "regions"

    def __init__(self, regions: int = 2, delay: int = 4, seed: int = 0) -> None:
        if regions < 1:
            raise ValueError(f"need at least one region, got {regions}")
        if delay < 1:
            raise ValueError(f"delay must be >= 1, got {delay}")
        self._regions = int(regions)
        self._delay = int(delay)
        self._seed = int(seed)
        self._memo: Dict[Hashable, int] = {}

    def _region(self, peer: Hashable) -> int:
        got = self._memo.get(peer)
        if got is None:
            got = stable_u64("region", self._seed, peer) % self._regions
            self._memo[peer] = got
        return got

    def _link_delay(self, env: Envelope) -> int:
        return self._delay if self._region(env.sender) != self._region(env.target) else 1

    def delay_bound(self) -> int:
        return self._delay if self._regions > 1 else 1

    def params(self) -> Dict[str, Any]:
        return {"regions": self._regions, "delay": self._delay, "seed": self._seed}


class ReorderDelivery(DeliveryModel):
    """Adversarial reorder-within-bound: every envelope draws a delay in
    ``[1, bound]`` keyed on its full content (link *and* payload), so
    distinct messages on the same link overtake each other — the
    maximally unordered delivery the bound admits.  Content-identical
    envelopes still draw the same delay, which keeps steady flows (and
    their replay) deterministic.
    """

    kind = "reorder"

    def __init__(self, bound: int = 3, seed: int = 0) -> None:
        if bound < 1:
            raise ValueError(f"bound must be >= 1, got {bound}")
        self._bound = int(bound)
        self._seed = int(seed)

    def _link_delay(self, env: Envelope) -> int:
        u = stable_u64(
            "reorder", self._seed, env.sender, env.target, _payload_identity(env)
        )
        return 1 + u % self._bound

    def delay_bound(self) -> int:
        return self._bound

    def params(self) -> Dict[str, Any]:
        return {"bound": self._bound, "seed": self._seed}


class CrossCutDelivery(DeliveryModel):
    """A latency partition: links crossing an explicit cut are slow.

    The slow analog of the scenario engine's drop-filter partition —
    the cut's messages arrive late instead of never.  ``side_a`` is an
    explicit peer-id collection so an event can slow exactly the arc it
    chose.
    """

    kind = "cross_cut"

    def __init__(self, side_a: Sequence[int] = (), delay: int = 5) -> None:
        if delay < 1:
            raise ValueError(f"delay must be >= 1, got {delay}")
        self._side_a = frozenset(side_a)
        self._delay = int(delay)

    def _link_delay(self, env: Envelope) -> int:
        crosses = (env.sender in self._side_a) != (env.target in self._side_a)
        return self._delay if crosses else 1

    def delay_bound(self) -> int:
        return self._delay if self._side_a else 1

    def params(self) -> Dict[str, Any]:
        return {"side_a": sorted(self._side_a), "delay": self._delay}


#: delivery-model registry: kind -> class
DELIVERY_KINDS: Dict[str, Type[DeliveryModel]] = {
    cls.kind: cls
    for cls in (
        UnitDelivery,
        ConstantDelivery,
        SlowLinksDelivery,
        LogNormalDelivery,
        RegionDelivery,
        ReorderDelivery,
        CrossCutDelivery,
    )
}


def make_delivery_model(spec: "DeliveryModel | str | Dict[str, Any]") -> DeliveryModel:
    """Build a delivery model from an instance, a kind name, or a spec
    dict (``{"kind": ..., **params}`` — the :meth:`DeliveryModel.to_dict`
    form, JSON round-trippable)."""
    if isinstance(spec, DeliveryModel):
        return spec
    if isinstance(spec, str):
        spec = {"kind": spec}
    kw = dict(spec)
    kind = kw.pop("kind", None)
    cls = DELIVERY_KINDS.get(kind)
    if cls is None:
        raise ValueError(
            f"unknown delivery model {kind!r}; choose from {sorted(DELIVERY_KINDS)}"
        )
    return cls(**kw)


# ----------------------------------------------------------------------
# activation daemons
# ----------------------------------------------------------------------
class ActivationDaemon:
    """Chooses the actors that execute each round.

    ``select`` returns ``None`` for full activation or the (possibly
    empty) set of active keys; actors left out keep their state and
    accumulate their inboxes — the standard bridge from the synchronous
    model toward asynchrony.
    """

    kind = "?"
    #: full daemons short-circuit to the paper's every-actor semantics
    is_full = False

    def select(
        self, round_no: int, keys: Sequence[Hashable]
    ) -> Optional[FrozenSet[Hashable]]:
        """The active set for ``round_no`` (``keys`` arrive sorted)."""
        raise NotImplementedError

    def params(self) -> Dict[str, Any]:
        """JSON-serializable parameters (inverse of the constructor)."""
        return {}

    def to_dict(self) -> Dict[str, Any]:
        """The daemon as a spec dict (see :func:`make_daemon`)."""
        return {"kind": self.kind, **self.params()}

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}({self.to_dict()!r})"


class FullActivation(ActivationDaemon):
    """Everyone steps every round — the paper's model."""

    kind = "full"
    is_full = True

    def select(self, round_no, keys):
        return None


class SeededPartialActivation(ActivationDaemon):
    """Independent seeded coin flips: each actor is active with
    probability ``p`` each round (fair: activated infinitely often)."""

    kind = "partial"

    def __init__(self, p: float = 0.5, seed: int = 0) -> None:
        if not 0.0 < p <= 1.0:
            raise ValueError(f"activation probability must be in (0, 1], got {p}")
        self._p = float(p)
        self._seed = int(seed)

    @property
    def is_full(self) -> bool:
        return self._p >= 1.0

    def select(self, round_no, keys):
        if self._p >= 1.0:
            return None
        rng = random.Random(stable_u64("partial", self._seed, round_no))
        return frozenset(key for key in keys if rng.random() < self._p)

    def params(self) -> Dict[str, Any]:
        return {"p": self._p, "seed": self._seed}


class RoundRobinActivation(ActivationDaemon):
    """Fair stripes: the sorted key list is split into ``groups``
    stripes and stripe ``round_no % groups`` steps — every actor is
    activated exactly once per ``groups`` rounds."""

    kind = "round_robin"

    def __init__(self, groups: int = 2) -> None:
        if groups < 1:
            raise ValueError(f"need at least one group, got {groups}")
        self._groups = int(groups)

    @property
    def is_full(self) -> bool:
        return self._groups == 1

    def select(self, round_no, keys):
        turn = round_no % self._groups
        return frozenset(key for i, key in enumerate(keys) if i % self._groups == turn)

    def params(self) -> Dict[str, Any]:
        return {"groups": self._groups}


class UnfairBoundedActivation(ActivationDaemon):
    """The adversary at the edge of the fairness bound: every actor is
    activated exactly once per ``bound``-round window, at a seeded
    per-actor phase — as rarely and as skewed as the bound allows."""

    kind = "unfair"

    def __init__(self, bound: int = 4, seed: int = 0) -> None:
        if bound < 1:
            raise ValueError(f"bound must be >= 1, got {bound}")
        self._bound = int(bound)
        self._seed = int(seed)

    @property
    def is_full(self) -> bool:
        return self._bound == 1

    def select(self, round_no, keys):
        turn = round_no % self._bound
        return frozenset(
            key
            for key in keys
            if stable_u64("unfair", self._seed, key) % self._bound == turn
        )

    def params(self) -> Dict[str, Any]:
        return {"bound": self._bound, "seed": self._seed}


#: daemon registry: kind -> class
DAEMON_KINDS: Dict[str, Type[ActivationDaemon]] = {
    cls.kind: cls
    for cls in (
        FullActivation,
        SeededPartialActivation,
        RoundRobinActivation,
        UnfairBoundedActivation,
    )
}


def make_daemon(spec: "ActivationDaemon | str | Dict[str, Any]") -> ActivationDaemon:
    """Build an activation daemon from an instance, a kind name, or a
    spec dict (the :meth:`ActivationDaemon.to_dict` form)."""
    if isinstance(spec, ActivationDaemon):
        return spec
    if isinstance(spec, str):
        spec = {"kind": spec}
    kw = dict(spec)
    kind = kw.pop("kind", None)
    cls = DAEMON_KINDS.get(kind)
    if cls is None:
        raise ValueError(f"unknown daemon {kind!r}; choose from {sorted(DAEMON_KINDS)}")
    return cls(**kw)


# ----------------------------------------------------------------------
# the combined time model
# ----------------------------------------------------------------------
class TimeModel:
    """One value owning both halves of the simulation's notion of time:
    a :class:`DeliveryModel` and an :class:`ActivationDaemon`."""

    __slots__ = ("delivery", "daemon")

    def __init__(
        self,
        delivery: "DeliveryModel | str | Dict[str, Any] | None" = None,
        daemon: "ActivationDaemon | str | Dict[str, Any] | None" = None,
    ) -> None:
        self.delivery = make_delivery_model(delivery if delivery is not None else "unit")
        self.daemon = make_daemon(daemon if daemon is not None else "full")

    @staticmethod
    def unit() -> "TimeModel":
        """The paper's model: unit delivery, full activation."""
        return TimeModel()

    @property
    def is_unit(self) -> bool:
        """Whether the model reproduces the paper's semantics exactly."""
        return self.delivery.is_unit and self.daemon.is_full

    def to_dict(self) -> Dict[str, Any]:
        """JSON-serializable form (inverse of :meth:`from_dict`)."""
        return {"delivery": self.delivery.to_dict(), "daemon": self.daemon.to_dict()}

    @staticmethod
    def from_dict(data: Dict[str, Any]) -> "TimeModel":
        """Rebuild a model from its :meth:`to_dict` form."""
        return TimeModel(data.get("delivery"), data.get("daemon"))

    def describe(self) -> str:
        """One-line human-readable summary."""
        return f"delivery={self.delivery.to_dict()} daemon={self.daemon.to_dict()}"

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"TimeModel({self.describe()})"
