"""Deterministic random-stream management for experiments.

Experiments sweep (size, seed) grids; every cell must be reproducible in
isolation (re-running one cell gives the same sample as running the whole
sweep).  ``SeedSequence`` derives independent child streams from a root
seed and a label, using SHA-256 so that nearby labels give uncorrelated
streams — the stdlib ``random.Random(seed + i)`` pattern does not.
"""

from __future__ import annotations

import hashlib
import random
from typing import Iterable


class SeedSequence:
    """Hierarchical seed derivation.

    Example::

        root = SeedSequence(12345)
        rng = root.child("fig6", n=25, rep=7).rng()
    """

    def __init__(self, root_seed: int, path: tuple = ()) -> None:
        self._root = int(root_seed)
        self._path = path

    def child(self, *labels: object, **kv: object) -> "SeedSequence":
        """Derive a child sequence from positional and keyword labels."""
        frozen = tuple(str(x) for x in labels) + tuple(
            f"{k}={kv[k]}" for k in sorted(kv)
        )
        return SeedSequence(self._root, self._path + frozen)

    def seed(self) -> int:
        """A 64-bit seed derived from the root seed and the path."""
        h = hashlib.sha256()
        h.update(str(self._root).encode())
        for part in self._path:
            h.update(b"/")
            h.update(part.encode())
        return int.from_bytes(h.digest()[:8], "big")

    def rng(self) -> random.Random:
        """A fresh ``random.Random`` seeded from this sequence."""
        return random.Random(self.seed())

    def spawn(self, count: int) -> Iterable["SeedSequence"]:
        """``count`` numbered children."""
        return (self.child(i) for i in range(count))

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"SeedSequence(root={self._root}, path={'/'.join(self._path)})"
