"""The synchronous round scheduler.

Semantics (paper Section 2.1):

* all actors conceptually step **in parallel** each round — an actor may
  only read its own state and the messages delivered to it at the previous
  round boundary;
* messages sent during round ``i`` are buffered and delivered together at
  the end of round ``i``;
* the global state at each round boundary is therefore well defined.

The scheduler iterates actors in sorted-key order for determinism, but
because actors cannot read each other's state the iteration order is
unobservable to a correct protocol (a property the test suite checks).

Activity tracking (the incremental engine)
------------------------------------------

With ``activity_tracking=True`` (the default) the scheduler exploits the
locality of self-stabilization (paper Theorems 4.1/4.2: post-churn
recovery only touches a neighborhood): instead of stepping every actor
every round, it maintains a **dirty set** and only executes actors that
can possibly behave differently from their last executed step.  An actor
is dirty when

* it was just registered, or externally marked via :meth:`mark_dirty`;
* its state changed — detected cheaply via the optional ``state_version``
  probe (a monotonic counter bumped by every mutating operation) and
  confirmed exactly via the optional ``state_token`` probe (a canonical
  state tuple), so transient within-step mutations that cancel out do
  not keep an actor dirty;
* a message was :meth:`post`-ed to it; or
* an actor whose *emissions changed* sent to it (receivers of both the
  old and the new outbox are re-activated, so vanished flows wake their
  former receivers too).

A clean actor's round is **replayed** from the steady-emission cache:
its inbox is consumed with no state effect, its cached outbox is re-sent
verbatim, and its optional ``replay_step`` hook re-applies cached side
effects (e.g. rule-counter increments).  This is exact, not heuristic:
by induction a clean actor's inbox equals the inbox of its last executed
step, so re-running the (deterministic) step would reproduce the cached
emissions and leave the state untouched.  Actors that implement none of
the probes are simply always dirty and keep the paper's every-actor
semantics.

The O(active-work) stability flag :attr:`changed_last_round` (used by
``ReChordNetwork.run_until_stable`` instead of a full O(n) fingerprint
per round) is computed from **exact** comparisons only: per-actor state
tokens plus per-actor emission comparisons against the steady-emission
cache, with one-shot flags for posts and membership changes.  The
scheduler additionally maintains a **rolling configuration hash** — a
64-bit multiset sum over state-token hashes and all in-flight envelope
hashes, updated only from dirty actors and delivered/expired/posted
envelopes.  The hash is exposed for cheap external observation
(:meth:`config_hash`); it is deliberately *not* part of the stability
decision because a sum of non-cryptographic hashes admits structured
collisions.  ``changed_last_round`` is meaningful only for fully
activated rounds; a partial-activation round (the asynchrony bridge)
conservatively marks every actor dirty and reports ``True``.

The time model (latency + activation daemons)
---------------------------------------------

The scheduler's notion of time is pluggable
(:mod:`repro.netsim.timemodel`): a :class:`DeliveryModel` assigns every
send a delivery delay in rounds and an :class:`ActivationDaemon` picks
the active set when ``run_round`` is called without an explicit one.
Delays beyond one round park the envelope in a **delivery-round-keyed
queue** (``_future``); it matures — drop filter applied, inbox appended
— at the end of the round before its consumption round.  Exactness
rules under non-unit delivery:

* a matured delayed envelope dirties its receiver with the one-round
  carry, exactly like a :meth:`post` (the inbox differs from the replay
  baseline at the delivery round and again when the one-shot delivery
  vanishes), so the replay induction never sees a delayed delivery;
* scheduled envelopes are part of the configuration: they enter
  :meth:`config_hash` and the network fingerprint keyed by their
  *remaining* delay, and :attr:`changed_last_round` is computed from an
  exact multiset comparison of the whole pending structure (inbox +
  future, O(pending) per round) instead of the unit-mode flow flags —
  the unit model keeps the O(active-work) fast path bit-for-bit.
"""

from __future__ import annotations

from collections import Counter
from typing import Any, Callable, Dict, Hashable, List, Optional, Protocol, Sequence, Set, Tuple

from repro.netsim.messages import (
    HASH_MASK as _MASK,
    Envelope,
    envelope_canon as _envelope_canon,
    envelope_fingerprint as _envelope_hash,
    future_fingerprint as _future_hash,
    outbox_fingerprint as _outbox_hash,
)
from repro.netsim.timemodel import TimeModel, make_daemon, make_delivery_model
from repro.netsim.trace import TraceRecorder
from time import perf_counter as _perf


#: envelope intern-cache ceiling per scheduler; on overflow the cache is
#: simply cleared (it is a pure performance cache — correctness never
#: depends on interning, only outbox-compare speed does)
_ENV_CACHE_MAX = 4_000_000


class Actor(Protocol):
    """Protocol for scheduler participants.

    ``step`` is invoked once per round with the actor's fresh inbox and a
    :class:`RoundContext` used to emit messages.

    Actors may additionally implement the optional activity-tracking
    probes ``state_version() -> int`` (cheap monotonic possibly-changed
    counter), ``state_token() -> Hashable`` (exact canonical state,
    queried only when the version moved) and ``replay_step() -> None``
    (re-apply cached side effects of the last executed step).  Actors
    without the probes are treated as always-dirty and never replayed.
    """

    def step(self, inbox: Sequence[Envelope], ctx: "RoundContext") -> None:
        """Execute one synchronous round."""
        ...  # pragma: no cover - protocol declaration


class RoundContext:
    """Per-actor view of the current round, used to send messages."""

    __slots__ = ("round_no", "self_key", "_outbox", "_scheduler")

    def __init__(self, round_no: int, self_key: Hashable, scheduler: "SynchronousScheduler") -> None:
        self.round_no = round_no
        self.self_key = self_key
        self._outbox: List[Envelope] = []
        self._scheduler = scheduler

    def send(self, target: Hashable, payload: Any) -> None:
        """Queue a message for delivery at the end of this round.

        Envelopes are interned per scheduler: a steady flow re-emits the
        same ``(sender, target, payload)`` value every round, and handing
        back the *same object* lets the round-boundary outbox comparisons
        (steady-emission caches, columnar flow diffs) short-circuit on
        identity instead of deep-comparing payloads, and lets the
        memoized envelope fingerprint survive across rounds.  Unhashable
        payloads (generic unit-test actors) skip the cache.
        """
        try:
            env = self._scheduler._env_cache.get((self.self_key, target, payload))
        except TypeError:
            env = Envelope(self.self_key, target, payload)
        else:
            if env is None:
                cache = self._scheduler._env_cache
                if len(cache) >= _ENV_CACHE_MAX:
                    cache.clear()  # plain perf cache: dropping it only costs speed
                env = cache[(self.self_key, target, payload)] = Envelope(
                    self.self_key, target, payload
                )
        self._outbox.append(env)

    def actor_exists(self, key: Hashable) -> bool:
        """Liveness oracle: whether ``key`` is currently registered.

        Models the connection-layer knowledge that a remote endpoint is
        gone (failed keep-alive); protocols use it to purge dead references
        (DESIGN.md [D7]).  It reveals no topology information.
        """
        return self._scheduler.has_actor(key)

    def reexecute_next_round(self) -> None:
        """Force this actor to execute (not replay) next round.

        Required whenever the current step consumed or emitted a
        *one-shot* message (application traffic): the steady-emission
        cache would otherwise treat this step's outbox as a repeating
        flow and replay it verbatim, and the cached rule-counter delta
        would re-apply side effects that happened only once.  Executing
        once more with the one-shot inbox gone re-baselines the cache,
        and the resulting emission diff wakes the downstream receivers
        of the vanished flow.
        """
        self._scheduler.mark_dirty(self.self_key)


class SynchronousScheduler:
    """Drives a set of actors through synchronous rounds."""

    def __init__(
        self,
        trace: Optional[TraceRecorder] = None,
        activity_tracking: bool = True,
        time_model: Optional[TimeModel] = None,
    ) -> None:
        self._actors: Dict[Hashable, Actor] = {}
        self._inboxes: Dict[Hashable, List[Envelope]] = {}
        self._round = 0
        #: (sender, target, payload) -> interned Envelope (see RoundContext.send)
        self._env_cache: Dict[tuple, Envelope] = {}
        self._trace = trace
        #: optional TelemetryRecorder (None = disabled, the default);
        #: every instrumented path is guarded by one ``is None`` check
        #: per round, and nothing it records ever gates behavior
        self._telemetry = None
        #: the pluggable notion of time (delivery latency + activation)
        self.time_model = time_model if time_model is not None else TimeModel.unit()
        self._delivery = self.time_model.delivery
        self._daemon = self.time_model.daemon
        #: delivery-round-keyed queue of delayed sends: consumption
        #: round -> envelopes, drained at the end of the preceding round
        self._future: Dict[int, List[Envelope]] = {}
        #: exact pending multiset at the last boundary, keyed
        #: (remaining, target, canonical) — maintained only while the
        #: delivery model is non-unit or scheduled envelopes exist (the
        #: "token mode" of changed_last_round); None otherwise
        self._prev_pending: Optional[Counter] = None
        #: forces the pending part of changed_last_round for one round
        #: (mid-round posts under token mode cannot be attributed)
        self._pending_force_changed = False
        #: the active set the last round ran with (None = full)
        self.active_last_round: Optional[frozenset] = None
        #: messages addressed to unregistered actors in the last round
        self.dropped_last_round = 0
        #: optional fault filter: ``filter(env) -> True`` silently drops
        #: the envelope at delivery time (network partitions; see
        #: :meth:`set_drop_filter`).  Applied identically by every kernel
        #: and to replayed and executed emissions alike, so the two
        #: engines stay round-for-round equivalent under faults.
        self._drop_filter: Optional[Callable[[Envelope], bool]] = None
        #: whether the dirty-set/replay engine is active
        self.activity_tracking = activity_tracking
        # ---- activity-tracking state -------------------------------------
        #: actors that must execute (not replay) next round
        self._dirty: Set[Hashable] = set()
        #: actors that must ALSO execute the round after next: one-shot
        #: flow events (a post consumed, a removed actor's last in-flight
        #: emissions) change a receiver's inbox one round *after* the
        #: event round, so a single dirty mark would expire too early
        self._dirty_carry: Set[Hashable] = set()
        #: bound (state_version, state_token, replay_step) probes per actor
        self._probes: Dict[Hashable, tuple] = {}
        #: state_version observed at the last boundary sync per actor
        self._ver: Dict[Hashable, int] = {}
        #: exact state token at the last boundary sync per actor
        self._tok: Dict[Hashable, Hashable] = {}
        #: hash of the cached token (rolling-hash contribution) per actor
        self._tok_hash: Dict[Hashable, int] = {}
        #: steady-emission cache: outbox of the last executed step
        self._out: Dict[Hashable, List[Envelope]] = {}
        #: multiset hash-sum of the cached outbox per actor
        self._out_hash: Dict[Hashable, int] = {}
        #: rolling hash over all in-flight envelopes (next round's inboxes)
        self._pending_hash = 0
        #: rolling hash over all tracked actors' state tokens
        self._state_hash = 0
        #: external flow change (post / membership) pending for next round
        self._flow_flag = False
        #: targets post()ed to while a tracked round is executing: they
        #: must execute (not replay) THIS round or the injected message
        #: would be silently consumed by the replay inbox-clear
        self._posted_mid_round: Set[Hashable] = set()
        self._in_round = False
        #: whether the last full round changed the global configuration
        self.changed_last_round = True
        #: actors whose exact state token changed during the last round
        self.state_changed_keys: Set[Hashable] = set()
        #: execution/replay split of the last round (instrumentation)
        self.executed_last_round = 0
        self.replayed_last_round = 0
        #: optional batched rule backend (see repro.core.rules_batched):
        #: when set, each round hands the full list of step items to
        #: ``run_batch`` instead of calling ``actor.step`` one by one
        self._batch_stepper = None

    # ------------------------------------------------------------------
    # membership
    # ------------------------------------------------------------------
    def add_actor(self, key: Hashable, actor: Actor) -> None:
        """Register a new actor (effective immediately)."""
        if key in self._actors:
            raise KeyError(f"actor {key!r} already registered")
        self._actors[key] = actor
        self._inboxes[key] = []
        if self.activity_tracking:
            self._dirty.add(key)
            ver_fn = getattr(actor, "state_version", None)
            tok_fn = getattr(actor, "state_token", None)
            replay_fn = getattr(actor, "replay_step", None)
            self._probes[key] = (ver_fn, tok_fn, replay_fn)
            if ver_fn is not None and tok_fn is not None:
                # baseline the probes now so a no-op first round is
                # recognized as such (exactness of changed_last_round)
                self._ver[key] = ver_fn()
                tok = tok_fn()
                self._tok[key] = tok
                h = hash(tok) & _MASK
                self._tok_hash[key] = h
                self._state_hash = (self._state_hash + h) & _MASK
            self._out[key] = []
            self._out_hash[key] = 0

    def remove_actor(self, key: Hashable) -> Actor:
        """Remove an actor; undelivered messages to it will be dropped."""
        actor = self._actors.pop(key)
        box = self._inboxes.pop(key, None)
        if self.activity_tracking:
            # its steady flow vanishes: former receivers must re-run —
            # both next round (defensive) and the round after, when its
            # final in-flight emissions actually disappear from inboxes
            out = self._out.pop(key, [])
            if out:
                self._flow_flag = True  # its contribution leaves the pending set
            for env in out:
                if env.target != key:
                    self._dirty.add(env.target)
                    self._dirty_carry.add(env.target)
            self._out_hash.pop(key, None)
            self._dirty_carry.discard(key)
            if box:
                for env in box:
                    self._pending_hash = (self._pending_hash - _envelope_hash(env)) & _MASK
                    if self._prev_pending is not None:
                        # the envelopes die with the actor: the boundary
                        # comparison must start from the post-removal
                        # configuration, like a fresh full fingerprint
                        self._counter_remove((0, env.target, _envelope_canon(env)))
            h = self._tok_hash.pop(key, None)
            if h is not None:
                self._state_hash = (self._state_hash - h) & _MASK
            self._probes.pop(key, None)
            self._ver.pop(key, None)
            self._tok.pop(key, None)
            self._dirty.discard(key)
        return actor

    def has_actor(self, key: Hashable) -> bool:
        """Whether ``key`` is registered."""
        return key in self._actors

    def actor(self, key: Hashable) -> Actor:
        """Look up an actor by key."""
        return self._actors[key]

    def actor_keys(self) -> List[Hashable]:
        """Sorted list of registered actor keys."""
        return sorted(self._actors)

    def __len__(self) -> int:
        return len(self._actors)

    # ------------------------------------------------------------------
    # activity tracking
    # ------------------------------------------------------------------
    def mark_dirty(self, key: Hashable, carry: bool = False) -> None:
        """Force ``key`` to execute (not replay) next round.

        Used by the network layer when an actor's behavior may change for
        reasons the scheduler cannot see (external state mutation, a
        liveness-oracle change such as a membership event or a remote
        level-set change).  ``carry=True`` keeps the actor executing for
        one extra round — required when the trigger is a one-shot flow
        change whose effect reaches the actor's inbox a round later.
        """
        self._dirty.add(key)
        if carry:
            self._dirty_carry.add(key)

    def dirty_count(self) -> int:
        """Number of actors scheduled to execute next round."""
        return sum(1 for key in self._dirty if key in self._actors)

    def noted_version(self, key: Hashable) -> Optional[int]:
        """The actor's ``state_version`` at its last boundary sync.

        The network layer compares this against the live version to
        detect out-of-band state mutations between rounds.
        """
        return self._ver.get(key)

    def resync_actor(self, key: Hashable) -> None:
        """Re-baseline an externally mutated actor's probes *now*.

        Makes the current (mutated) state the comparison baseline so
        ``changed_last_round`` keeps measuring boundary-to-boundary
        differences exactly, matching a full-scan fingerprint comparison
        that would also start from the mutated state.
        """
        probes = self._probes.get(key)
        if probes is None or probes[0] is None:
            return
        ver_fn, tok_fn, _ = probes
        self._ver[key] = ver_fn()
        tok = tok_fn()
        if tok != self._tok.get(key):
            self._tok[key] = tok
            old_h = self._tok_hash.get(key, 0)
            h = hash(tok) & _MASK
            self._tok_hash[key] = h
            self._state_hash = (self._state_hash - old_h + h) & _MASK

    def set_drop_filter(self, drop: Optional[Callable[[Envelope], bool]]) -> None:
        """Install (or clear, with ``None``) a delivery-time fault filter.

        While installed, every envelope for which ``drop(env)`` is true
        is silently discarded at delivery — the model of a network
        partition: senders keep emitting, the link eats the message, and
        neither endpoint's *state* is touched.  The filter must be a
        pure function of the envelope (typically of ``env.sender`` /
        ``env.target``) and must stay constant between calls to this
        method, or the steady-emission replay's inbox-repetition
        induction breaks.

        Installing or clearing a filter is a flow event for the
        activity-tracked kernel: every actor's next inbox may differ
        from its cached baseline, so all actors are marked dirty (with
        the one-round carry, since the changed delivery lands one round
        later) and the boundary is flagged as changed.  The legacy
        full-scan kernel needs no bookkeeping — it re-executes everyone
        anyway — which keeps the two engines equivalent under faults.
        """
        if drop is None and self._drop_filter is None:
            return
        self._drop_filter = drop
        if self.activity_tracking:
            for key in self._actors:
                self._dirty.add(key)
                self._dirty_carry.add(key)
            self._flow_flag = True

    def has_drop_filter(self) -> bool:
        """Whether a delivery-time fault filter is currently installed."""
        return self._drop_filter is not None

    def set_telemetry(self, recorder) -> None:
        """Attach (or detach, with ``None``) a telemetry recorder.

        Purely observational: the recorder receives per-round counter
        updates, an envelope census by payload type, and wall-clock
        phase spans.  It never influences scheduling, delivery, or the
        stability decision, so runs with and without telemetry are
        bit-for-bit identical.
        """
        self._telemetry = recorder

    def set_batch_stepper(self, stepper) -> None:
        """Install (or clear, with ``None``) a batched rule backend.

        ``stepper`` must provide ``run_batch(items)`` where ``items`` is
        the round's ``[(key, actor, inbox, ctx), ...]`` in key order; it
        must leave every actor's observable effects (state, ``ctx``
        outbox, counters, replay hooks) exactly as the equivalent
        sequence of ``actor.step(inbox, ctx)`` calls would — the
        equivalence suites compare the two backends bit for bit.

        The batched path materializes every inbox before any step runs,
        so it assumes actors do not post messages or mutate scheduler
        membership *mid-round* (the Re-Chord actors never do: traffic
        injection and join/leave/crash all happen between rounds).  A
        mid-round post under this backend lands in the target's *next*
        inbox — the scalar semantics for a target that already stepped.
        """
        self._batch_stepper = stepper

    def wake_ref_receivers(self, owners: Set) -> bool:
        """Columnar fast path for the network's in-flight ref scan.

        Returns ``False`` here: this base kernel keeps no reverse index
        from referenced owners to pending-message receivers, so the
        caller must fall back to scanning :meth:`all_pending`.  The
        columnar subclass overrides this with an O(changed) indexed
        wake and returns ``True``.
        """
        return False

    # ------------------------------------------------------------------
    # time model (repro.netsim.timemodel)
    # ------------------------------------------------------------------
    def set_delivery_model(self, model) -> None:
        """Install a delivery model (instance, kind name, or spec dict).

        Effective for every send from the next round on; envelopes
        already scheduled keep their assigned delivery rounds.  Like
        :meth:`set_drop_filter`, a model change is a flow event for the
        activity-tracked kernel: every actor's upcoming inboxes may
        differ from their replay baselines, so all actors are marked
        dirty with the one-round carry.  Installing a model that is
        observably unit (``is_unit``) over another unit model is a
        no-op, keeping the fast path and the exact change flag intact.
        """
        model = make_delivery_model(model)
        old = self._delivery
        if (model.is_unit and old.is_unit) or model.to_dict() == old.to_dict():
            return
        self._delivery = model
        self.time_model = TimeModel(model, self._daemon)
        if self.activity_tracking:
            for key in self._actors:
                self._dirty.add(key)
                self._dirty_carry.add(key)
            self._flow_flag = True

    def set_daemon(self, daemon) -> None:
        """Install an activation daemon (instance, kind name, or spec
        dict); consulted by :meth:`run_round` when no explicit active
        set is passed.  Partial rounds are conservative for the
        activity-tracked kernel (every actor re-baselines), so no extra
        bookkeeping is needed here.
        """
        self._daemon = make_daemon(daemon)
        self.time_model = TimeModel(self._delivery, self._daemon)

    def delay_bound(self) -> int:
        """The largest delay the current delivery model can assign."""
        return self._delivery.delay_bound()

    def future_pending(self) -> List[Tuple[int, Envelope]]:
        """Scheduled (not yet matured) deliveries as ``(remaining, env)``.

        ``remaining`` counts rounds until consumption relative to the
        current boundary (inbox envelopes would be 0; scheduled ones are
        >= 1).  Part of the configuration: the network fingerprint
        appends these entries, so two configurations differing only in
        message maturity compare different.
        """
        out: List[Tuple[int, Envelope]] = []
        for t in sorted(self._future):
            for env in self._future[t]:
                out.append((t - self._round, env))
        return out

    def config_hash(self) -> tuple:
        """The rolling configuration hash ``(states, pending)``.

        A 64-bit multiset-sum fingerprint of all tracked actor states
        plus all in-flight messages, maintained incrementally from dirty
        actors and delivered/expired envelopes only.  Scheduled future
        deliveries contribute keyed by their remaining delay (computed
        on demand — the future queue is empty under unit delivery).
        Two equal configurations always hash equal; unequal
        configurations collide with probability ~2^-64.  Only meaningful
        with activity tracking.
        """
        pending = self._pending_hash
        if self._future:
            for t, batch in self._future.items():
                remaining = t - self._round
                for env in batch:
                    pending = (pending + _future_hash(env, remaining)) & _MASK
        return (self._state_hash, pending)

    # -- token-mode internals (exact pending comparison under latency) --
    def _counter_remove(self, entry: tuple) -> None:
        """Decrement one pending-identity count (drop zeros so Counter
        equality stays well-defined on every supported Python)."""
        prev = self._prev_pending
        count = prev.get(entry, 0)
        if count <= 1:
            prev.pop(entry, None)
        else:
            prev[entry] = count - 1

    def _pending_counter(self) -> Counter:
        """The exact pending multiset, keyed ``(remaining, target,
        canonical)`` — called at the end of a round, before the round
        counter advances, so inbox envelopes (consumed next round) get
        remaining 0 and scheduled ones >= 1."""
        cur: Counter = Counter()
        for box in self._inboxes.values():
            for env in box:
                cur[(0, env.target, _envelope_canon(env))] += 1
        base = self._round + 1
        for t, batch in self._future.items():
            remaining = t - base
            for env in batch:
                cur[(remaining, env.target, _envelope_canon(env))] += 1
        return cur

    def _drain_matured(self, round_no: int) -> Tuple[int, int]:
        """Deliver envelopes scheduled for consumption in ``round_no + 1``.

        The delivery point of a delayed send: the drop filter applies
        here (a partition installed mid-flight eats the message), and
        the activity-tracked kernel marks each receiver dirty with the
        one-round carry — the exact treatment of a :meth:`post`: the
        receiver's inbox differs from its replay baseline at the
        delivery round AND at the round after, when the one-shot
        delivery vanishes again.  Returns ``(delivered, dropped)``.
        """
        batch = self._future.pop(round_no + 1, None)
        if not batch:
            return 0, 0
        delivered = 0
        dropped = 0
        flt = self._drop_filter
        tracking = self.activity_tracking
        for env in batch:
            box = self._inboxes.get(env.target)
            if box is None or (flt is not None and flt(env)):
                dropped += 1
                continue
            box.append(env)
            delivered += 1
            if tracking:
                self._dirty.add(env.target)
                self._dirty_carry.add(env.target)
        return delivered, dropped

    # ------------------------------------------------------------------
    # execution
    # ------------------------------------------------------------------
    @property
    def round_no(self) -> int:
        """Number of completed rounds."""
        return self._round

    def pending_messages(self) -> int:
        """Messages in flight: next round's inboxes plus scheduled
        (not yet matured) delayed deliveries."""
        count = sum(len(box) for box in self._inboxes.values())
        if self._future:
            count += sum(len(batch) for batch in self._future.values())
        return count

    def all_pending(self) -> List[Envelope]:
        """All messages waiting for the next round (snapshot copy).

        Needed by protocols whose stable state is a constant *flow*: the
        global fingerprint must include in-flight messages.
        """
        out: List[Envelope] = []
        for key in sorted(self._inboxes):
            out.extend(self._inboxes[key])
        return out

    def post(self, envelope: Envelope) -> bool:
        """Inject a message from outside the round loop.

        Used for out-of-band events such as a departing peer's farewell
        introductions (Section 4.2).  Returns ``False`` (dropping the
        message) if the target is not registered.
        """
        box = self._inboxes.get(envelope.target)
        if box is None:
            return False
        delay = 1 if self._delivery.is_unit else self._delivery.delay(envelope)
        if delay > 1:
            # a delayed injection behaves like a send from the previous
            # round: it matures (drop filter applied there) for
            # consumption `delay` steps from the target's next step
            t = self._round + delay if self._in_round else self._round + delay - 1
            self._future.setdefault(t, []).append(envelope)
            if self.activity_tracking and self._prev_pending is not None:
                if self._in_round:
                    self._pending_force_changed = True
                else:
                    self._prev_pending[(delay - 1, envelope.target, _envelope_canon(envelope))] += 1
            return True
        if self._drop_filter is not None and self._drop_filter(envelope):
            return False
        box.append(envelope)
        if self.activity_tracking:
            # the target consumes the injected message next round AND has
            # it missing from its inbox the round after — dirty for both
            self._dirty.add(envelope.target)
            self._dirty_carry.add(envelope.target)
            if self._in_round:
                # mid-round injection: if the target has not stepped yet
                # this round it must execute, not replay, or the message
                # would vanish in the replay inbox-clear
                self._posted_mid_round.add(envelope.target)
            self._pending_hash = (self._pending_hash + _envelope_hash(envelope)) & _MASK
            self._flow_flag = True  # one-shot injection: next boundary differs
            if self._prev_pending is not None:
                if self._in_round:
                    self._pending_force_changed = True
                else:
                    self._prev_pending[(0, envelope.target, _envelope_canon(envelope))] += 1
        return True

    def post_batch(self, envelopes: Sequence[Envelope]) -> List[bool]:
        """Bulk :meth:`post`: inject a round's worth of messages in one pass.

        Semantically identical to posting each envelope in order — same
        per-envelope accept/reject results, same dirty-set, pending-hash
        and flow bookkeeping — so batched traffic injection cannot be
        distinguished from the one-at-a-time loop by any kernel.  The
        fast path applies in the batched-injection configuration (unit
        delivery, no drop filter, between rounds) and hoists the
        per-envelope attribute traffic and flow-flag writes out of the
        loop; any other configuration falls back to per-envelope
        :meth:`post`, which handles delayed maturation and drops.
        """
        if not envelopes:
            return []
        if (
            not self._delivery.is_unit
            or self._drop_filter is not None
            or self._in_round
        ):
            return [self.post(env) for env in envelopes]
        inboxes = self._inboxes
        tracking = self.activity_tracking
        dirty = self._dirty
        carry = self._dirty_carry
        prev = self._prev_pending
        pending = self._pending_hash
        results: List[bool] = []
        posted_any = False
        for env in envelopes:
            box = inboxes.get(env.target)
            if box is None:
                results.append(False)
                continue
            box.append(env)
            results.append(True)
            posted_any = True
            if tracking:
                dirty.add(env.target)
                carry.add(env.target)
                pending = (pending + _envelope_hash(env)) & _MASK
                if prev is not None:
                    prev[(0, env.target, _envelope_canon(env))] += 1
        if tracking:
            self._pending_hash = pending
            if posted_any:
                self._flow_flag = True  # one-shot injections: boundary differs
        return results

    def run_round(self, active: Optional[set] = None) -> None:
        """Execute one synchronous round.

        ``active`` restricts which actors step this round (fair partial
        activation — the standard bridge from the synchronous model
        toward asynchrony: a sleeping actor keeps its state and inbox
        untouched).  ``None`` consults the activation daemon of the
        time model, which defaults to everyone — the paper's model.
        """
        if active is None and not self._daemon.is_full:
            active = self._daemon.select(self._round, sorted(self._actors))
        self.active_last_round = frozenset(active) if active is not None else None
        if not self.activity_tracking:
            self._run_round_full(active)
        elif active is not None:
            self._run_round_partial_tracked(set(active))
        else:
            self._run_round_tracked()

    # -- legacy full-scan kernel (activity_tracking=False) --------------
    def _run_round_full(self, active: Optional[set]) -> None:
        round_no = self._round
        tel = self._telemetry
        _t0 = _perf() if tel is not None else 0.0
        outboxes: List[List[Envelope]] = []
        stepper = self._batch_stepper
        batch: Optional[List[tuple]] = [] if stepper is not None else None
        # Snapshot keys: actors added mid-round (e.g. by a join event
        # processed inside another actor) first step next round.
        keys = sorted(self._actors)
        for key in keys:
            if active is not None and key not in active:
                continue
            actor = self._actors.get(key)
            if actor is None:  # removed by an earlier actor this round
                continue
            inbox = self._inboxes.get(key, [])
            self._inboxes[key] = []
            ctx = RoundContext(round_no, key, self)
            if batch is None:
                actor.step(inbox, ctx)
            else:
                batch.append((key, actor, inbox, ctx))
            # the ctx outbox list is shared with the batch, so appending
            # it before the (deferred) batched execution is safe
            outboxes.append(ctx._outbox)
        if batch:
            stepper.run_batch(batch)

        if tel is not None:
            tel.add_time("kernel.step", _perf() - _t0, len(outboxes))
            _t0 = _perf()
        sent = 0
        _, dropped = self._drain_matured(round_no)
        flt = self._drop_filter
        delivery = self._delivery
        unit = delivery.is_unit
        for outbox in outboxes:
            for env in outbox:
                sent += 1
                if not unit:
                    d = delivery.delay(env)
                    if d > 1:
                        self._future.setdefault(round_no + d, []).append(env)
                        continue
                box = self._inboxes.get(env.target)
                if box is None or (flt is not None and flt(env)):
                    dropped += 1
                    continue
                box.append(env)
        self.dropped_last_round = dropped
        if tel is not None:
            tel.add_time("kernel.deliver", _perf() - _t0)
            msg = tel.messages
            for outbox in outboxes:
                for env in outbox:
                    msg[type(env.payload).__name__] += 1
            # the full-scan kernel executes every stepped actor
            tel.on_round(sent=sent, dropped=dropped,
                         executed=len(outboxes), replayed=0)
        if self._trace is not None:
            self._trace.record_round(round_no, actors=len(keys), sent=sent, dropped=dropped)
        self._round += 1

    def _probe_refresh(self, key: Hashable, probes: tuple) -> bool:
        """Refresh an executed actor's probe baselines after its step.

        Returns whether the exact state token changed (updating the
        version/token caches and the rolling state hash exactly like the
        inline block of the tracked hot loop).
        """
        version = probes[0]()
        if version != self._ver.get(key):
            self._ver[key] = version
            tok = probes[1]()
            if tok != self._tok.get(key):
                self._tok[key] = tok
                old_h = self._tok_hash.get(key, 0)
                h = hash(tok) & _MASK
                self._tok_hash[key] = h
                self._state_hash = (self._state_hash - old_h + h) & _MASK
                return True
        return False

    # -- activity-tracked kernel, full activation ------------------------
    def _run_round_tracked(self) -> None:
        if self._batch_stepper is not None:
            return self._run_round_tracked_batched(self._batch_stepper)
        round_no = self._round
        tel = self._telemetry
        _t0 = _perf() if tel is not None else 0.0
        keys = sorted(self._actors)
        state_changed_any = False
        flow_changed = self._flow_flag  # posts / membership since last round
        self._flow_flag = False
        changed_keys: Set[Hashable] = set()
        newly_dirty: Set[Hashable] = set()
        contributions: List[List[Envelope]] = []
        executed = 0
        replayed = 0
        new_pending = 0
        # the working dirty set is detached so marks added DURING the
        # round (mid-round remove_actor / mark_dirty / post) accumulate
        # in a fresh set and survive the end-of-round reassignment;
        # carries added mid-round likewise wait one extra round
        dirty = self._dirty
        self._dirty = set()
        carry_due = self._dirty_carry
        self._dirty_carry = set()
        self._posted_mid_round = set()
        self._in_round = True
        for key in keys:
            actor = self._actors.get(key)
            if actor is None:  # removed by an earlier actor this round
                continue
            if key in dirty or key in self._posted_mid_round:
                executed += 1
                inbox = self._inboxes.get(key, [])
                self._inboxes[key] = []
                ctx = RoundContext(round_no, key, self)
                actor.step(inbox, ctx)
                out = ctx._outbox
                probes = self._probes.get(key)
                ver_fn = probes[0] if probes else None
                if ver_fn is None:
                    # untracked actor: assume changed, never replay
                    state_changed = True
                    newly_dirty.add(key)
                else:
                    state_changed = False
                    version = ver_fn()
                    if version != self._ver.get(key):
                        # possibly changed; confirm with the exact token
                        self._ver[key] = version
                        tok = probes[1]()
                        if tok != self._tok.get(key):
                            self._tok[key] = tok
                            old_h = self._tok_hash.get(key, 0)
                            h = hash(tok) & _MASK
                            self._tok_hash[key] = h
                            self._state_hash = (self._state_hash - old_h + h) & _MASK
                            state_changed = True
                if state_changed:
                    state_changed_any = True
                    changed_keys.add(key)
                    newly_dirty.add(key)
                prev_out = self._out.get(key)
                if prev_out != out:
                    # this actor's flow changed: the next boundary's
                    # pending set cannot repeat the previous one (exact —
                    # a replayed actor repeats its contribution verbatim)
                    flow_changed = True
                    # wake only the targets whose per-sender sub-flow
                    # actually changed (receivers of messages that
                    # stopped, started, or were reordered), not every
                    # receiver of an otherwise-stable emission
                    prev_by: Dict[Hashable, List[Envelope]] = {}
                    for env in prev_out or ():
                        prev_by.setdefault(env.target, []).append(env)
                    new_by: Dict[Hashable, List[Envelope]] = {}
                    for env in out:
                        new_by.setdefault(env.target, []).append(env)
                    for target, sub in new_by.items():
                        if prev_by.get(target) != sub:
                            newly_dirty.add(target)
                    for target in prev_by:
                        if target not in new_by:
                            newly_dirty.add(target)
                    self._out[key] = out
                    self._out_hash[key] = _outbox_hash(out)
                contributions.append(self._out[key])
                new_pending = (new_pending + self._out_hash[key]) & _MASK
            else:
                # quiescent: replay the steady emissions without rules
                replayed += 1
                box = self._inboxes.get(key)
                if box:
                    # the inbox provably repeats the last executed one;
                    # consuming it is a known no-op on state
                    self._inboxes[key] = []
                replay_fn = self._probes.get(key, (None, None, None))[2]
                if replay_fn is not None:
                    replay_fn()
                out = self._out.get(key, [])
                contributions.append(out)
                new_pending = (new_pending + self._out_hash.get(key, 0)) & _MASK

        if tel is not None:
            tel.add_time("kernel.step", _perf() - _t0, executed + replayed)
            _t0 = _perf()
        sent = 0
        inboxes = self._inboxes
        flt = self._drop_filter
        delivery = self._delivery
        unit = delivery.is_unit
        # token mode: an exact multiset comparison of the whole pending
        # structure replaces the unit-mode flow flags while non-unit
        # delivery is (or until recently was) in effect — entered when a
        # non-unit model is installed or scheduled envelopes exist, left
        # one round after the last scheduled envelope drained
        token_mode = (not unit) or bool(self._future) or self._prev_pending is not None
        matured, dropped = self._drain_matured(round_no)
        for outbox in contributions:
            for env in outbox:
                sent += 1
                if not unit:
                    d = delivery.delay(env)
                    if d > 1:
                        self._future.setdefault(round_no + d, []).append(env)
                        continue
                box = inboxes.get(env.target)
                if box is None or (flt is not None and flt(env)):
                    dropped += 1
                    new_pending = (new_pending - _envelope_hash(env)) & _MASK
                    continue
                box.append(env)
        self.dropped_last_round = dropped
        if tel is not None:
            tel.add_time("kernel.deliver", _perf() - _t0)
            msg = tel.messages
            for outbox in contributions:
                for env in outbox:
                    msg[type(env.payload).__name__] += 1
            tel.on_round(sent=sent, dropped=dropped,
                         executed=executed, replayed=replayed)
        if token_mode:
            cur = self._pending_counter()
            pending_changed = (
                self._pending_force_changed
                or self._prev_pending is None
                or cur != self._prev_pending
            )
            self._pending_force_changed = False
            # the rolling inbox hash cannot be derived from outbox
            # contributions under latency (some sends were scheduled,
            # matured envelopes arrived): recompute it exactly
            pending = 0
            for box in inboxes.values():
                for env in box:
                    pending = (pending + _envelope_hash(env)) & _MASK
            self._pending_hash = pending
            if unit and not self._future and not matured:
                # fully drained AND no matured delivery still sitting in
                # an inbox: the next boundary's pending set is entirely
                # unit-produced, so the flow flags are sound again
                self._prev_pending = None
            else:
                self._prev_pending = cur
            self.changed_last_round = state_changed_any or pending_changed
        else:
            self._pending_hash = new_pending
            self.changed_last_round = state_changed_any or flow_changed
        self.state_changed_keys = changed_keys
        self.executed_last_round = executed
        self.replayed_last_round = replayed
        self._in_round = False
        self._posted_mid_round = set()
        newly_dirty |= carry_due
        newly_dirty |= self._dirty  # marks added mid-round
        self._dirty = newly_dirty
        if self._trace is not None:
            self._trace.record_round(
                round_no, actors=len(keys), sent=sent, dropped=dropped, executed=executed
            )
        self._round += 1

    # -- activity-tracked kernel, full activation, batched backend -------
    def _run_round_tracked_batched(self, stepper) -> None:
        """:meth:`_run_round_tracked` over a batched rule backend.

        Same round structure in two passes: pass A decides execute vs.
        replay per key (in key order), pops inboxes, performs the
        replays, and collects the execute items; the stepper then runs
        the whole batch; pass B does the probe checks and outbox diffs
        in the same key order, so contributions, wake-ups and hashes are
        computed exactly as the scalar interleaving would.  Relies on
        the no-mid-round-posts contract of :meth:`set_batch_stepper`
        (``_posted_mid_round`` stays empty for Re-Chord actors).
        """
        round_no = self._round
        tel = self._telemetry
        _t0 = _perf() if tel is not None else 0.0
        keys = sorted(self._actors)
        state_changed_any = False
        flow_changed = self._flow_flag  # posts / membership since last round
        self._flow_flag = False
        changed_keys: Set[Hashable] = set()
        newly_dirty: Set[Hashable] = set()
        contributions: List[List[Envelope]] = []
        executed = 0
        replayed = 0
        new_pending = 0
        dirty = self._dirty
        self._dirty = set()
        carry_due = self._dirty_carry
        self._dirty_carry = set()
        self._posted_mid_round = set()
        self._in_round = True
        # pass A: replay the quiescent actors, collect the dirty ones
        plan: List[tuple] = []  # (key, ctx or None)
        batch: List[tuple] = []
        for key in keys:
            actor = self._actors.get(key)
            if actor is None:
                continue
            if key in dirty:
                executed += 1
                inbox = self._inboxes.get(key, [])
                self._inboxes[key] = []
                ctx = RoundContext(round_no, key, self)
                batch.append((key, actor, inbox, ctx))
                plan.append((key, ctx))
            else:
                replayed += 1
                if self._inboxes.get(key):
                    self._inboxes[key] = []
                replay_fn = self._probes.get(key, (None, None, None))[2]
                if replay_fn is not None:
                    replay_fn()
                plan.append((key, None))
        if batch:
            stepper.run_batch(batch)
        # pass B: probe checks, outbox diffs and contributions, key order
        for key, ctx in plan:
            if ctx is None:
                out = self._out.get(key, [])
                contributions.append(out)
                new_pending = (new_pending + self._out_hash.get(key, 0)) & _MASK
                continue
            out = ctx._outbox
            probes = self._probes.get(key)
            if probes is None or probes[0] is None:
                state_changed = True
                newly_dirty.add(key)
            else:
                state_changed = self._probe_refresh(key, probes)
            if state_changed:
                state_changed_any = True
                changed_keys.add(key)
                newly_dirty.add(key)
            prev_out = self._out.get(key)
            if prev_out != out:
                flow_changed = True
                prev_by: Dict[Hashable, List[Envelope]] = {}
                for env in prev_out or ():
                    prev_by.setdefault(env.target, []).append(env)
                new_by: Dict[Hashable, List[Envelope]] = {}
                for env in out:
                    new_by.setdefault(env.target, []).append(env)
                for target, sub in new_by.items():
                    if prev_by.get(target) != sub:
                        newly_dirty.add(target)
                for target in prev_by:
                    if target not in new_by:
                        newly_dirty.add(target)
                self._out[key] = out
                self._out_hash[key] = _outbox_hash(out)
            contributions.append(self._out[key])
            new_pending = (new_pending + self._out_hash[key]) & _MASK

        if tel is not None:
            tel.add_time("kernel.step", _perf() - _t0, executed + replayed)
            _t0 = _perf()
        sent = 0
        inboxes = self._inboxes
        flt = self._drop_filter
        delivery = self._delivery
        unit = delivery.is_unit
        token_mode = (not unit) or bool(self._future) or self._prev_pending is not None
        matured, dropped = self._drain_matured(round_no)
        for outbox in contributions:
            for env in outbox:
                sent += 1
                if not unit:
                    d = delivery.delay(env)
                    if d > 1:
                        self._future.setdefault(round_no + d, []).append(env)
                        continue
                box = inboxes.get(env.target)
                if box is None or (flt is not None and flt(env)):
                    dropped += 1
                    new_pending = (new_pending - _envelope_hash(env)) & _MASK
                    continue
                box.append(env)
        self.dropped_last_round = dropped
        if tel is not None:
            tel.add_time("kernel.deliver", _perf() - _t0)
            msg = tel.messages
            for outbox in contributions:
                for env in outbox:
                    msg[type(env.payload).__name__] += 1
            tel.on_round(sent=sent, dropped=dropped,
                         executed=executed, replayed=replayed)
        if token_mode:
            cur = self._pending_counter()
            pending_changed = (
                self._pending_force_changed
                or self._prev_pending is None
                or cur != self._prev_pending
            )
            self._pending_force_changed = False
            pending = 0
            for box in inboxes.values():
                for env in box:
                    pending = (pending + _envelope_hash(env)) & _MASK
            self._pending_hash = pending
            if unit and not self._future and not matured:
                self._prev_pending = None
            else:
                self._prev_pending = cur
            self.changed_last_round = state_changed_any or pending_changed
        else:
            self._pending_hash = new_pending
            self.changed_last_round = state_changed_any or flow_changed
        self.state_changed_keys = changed_keys
        self.executed_last_round = executed
        self.replayed_last_round = replayed
        self._in_round = False
        self._posted_mid_round = set()
        newly_dirty |= carry_due
        newly_dirty |= self._dirty  # marks added mid-round
        self._dirty = newly_dirty
        if self._trace is not None:
            self._trace.record_round(
                round_no, actors=len(keys), sent=sent, dropped=dropped, executed=executed
            )
        self._round += 1

    # -- activity-tracked kernel, partial activation ---------------------
    def _run_round_partial_tracked(self, active: set) -> None:
        """Partial activation under tracking: execute actives, no replays.

        Sleeping actors keep state *and inbox*; because that breaks the
        inbox-repetition induction the replay cache relies on, every
        actor is conservatively marked dirty afterwards and the round is
        reported as changed.  Probe baselines of executed actors are kept
        exact so later full rounds still detect stability correctly.
        """
        round_no = self._round
        tel = self._telemetry
        _t0 = _perf() if tel is not None else 0.0
        keys = sorted(self._actors)
        outboxes: List[List[Envelope]] = []
        executed = 0
        changed_keys: Set[Hashable] = set()
        stepper = self._batch_stepper
        batch: Optional[List[tuple]] = [] if stepper is not None else None
        for key in keys:
            if key not in active:
                continue
            actor = self._actors.get(key)
            if actor is None:
                continue
            executed += 1
            inbox = self._inboxes.get(key, [])
            self._inboxes[key] = []
            ctx = RoundContext(round_no, key, self)
            if batch is None:
                actor.step(inbox, ctx)
            else:
                batch.append((key, actor, inbox, ctx))
                continue  # probe/cache refresh deferred past run_batch
            out = ctx._outbox
            outboxes.append(out)
            probes = self._probes.get(key)
            if probes and probes[0] is not None:
                if self._probe_refresh(key, probes):
                    changed_keys.add(key)
            # refresh the emission cache with this (accumulated-inbox)
            # execution so a later identity round can go quiescent
            self._out[key] = out
            self._out_hash[key] = _outbox_hash(out)
        if batch:
            stepper.run_batch(batch)
            for key, _actor, _inbox, ctx in batch:
                out = ctx._outbox
                outboxes.append(out)
                probes = self._probes.get(key)
                if probes and probes[0] is not None:
                    if self._probe_refresh(key, probes):
                        changed_keys.add(key)
                self._out[key] = out
                self._out_hash[key] = _outbox_hash(out)

        if tel is not None:
            tel.add_time("kernel.step", _perf() - _t0, executed)
            _t0 = _perf()
        sent = 0
        matured, dropped = self._drain_matured(round_no)
        flt = self._drop_filter
        delivery = self._delivery
        unit = delivery.is_unit
        for outbox in outboxes:
            for env in outbox:
                sent += 1
                if not unit:
                    d = delivery.delay(env)
                    if d > 1:
                        self._future.setdefault(round_no + d, []).append(env)
                        continue
                box = self._inboxes.get(env.target)
                if box is None or (flt is not None and flt(env)):
                    dropped += 1
                    continue
                box.append(env)
        self.dropped_last_round = dropped
        if tel is not None:
            tel.add_time("kernel.deliver", _perf() - _t0)
            msg = tel.messages
            for outbox in outboxes:
                for env in outbox:
                    msg[type(env.payload).__name__] += 1
            tel.on_round(sent=sent, dropped=dropped,
                         executed=executed, replayed=0)
        # pending hash cannot be derived from contributions alone here
        # (sleepers kept their inboxes): recompute it exactly
        pending = 0
        for box in self._inboxes.values():
            for env in box:
                pending = (pending + _envelope_hash(env)) & _MASK
        self._pending_hash = pending
        # keep the token-mode baseline current so a later *full* round's
        # exact pending comparison starts from this boundary
        self._pending_force_changed = False
        if unit and not self._future and not matured:
            self._prev_pending = None
        else:
            self._prev_pending = self._pending_counter()
        self.changed_last_round = True  # conservative; see docstring
        self._flow_flag = True  # sleepers' flow resumes later: boundary differs
        self.state_changed_keys = changed_keys
        self.executed_last_round = executed
        self.replayed_last_round = 0
        self._dirty = set(self._actors)
        if self._trace is not None:
            self._trace.record_round(
                round_no, actors=len(keys), sent=sent, dropped=dropped, executed=executed
            )
        self._round += 1

    def run(self, rounds: int) -> None:
        """Execute ``rounds`` consecutive rounds."""
        if rounds < 0:
            raise ValueError(f"rounds must be non-negative, got {rounds}")
        for _ in range(rounds):
            self.run_round()

    def run_until(self, predicate: Callable[[], bool], max_rounds: int) -> int:
        """Run until ``predicate()`` holds at a round boundary.

        Returns the number of rounds executed.  Raises ``RuntimeError`` if
        the predicate is still false after ``max_rounds`` rounds, so that
        non-converging protocols fail loudly in tests and experiments.
        """
        if predicate():
            return 0
        for executed in range(1, max_rounds + 1):
            self.run_round()
            if predicate():
                return executed
        raise RuntimeError(f"predicate not reached within {max_rounds} rounds")
