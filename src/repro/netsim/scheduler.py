"""The synchronous round scheduler.

Semantics (paper Section 2.1):

* all actors conceptually step **in parallel** each round — an actor may
  only read its own state and the messages delivered to it at the previous
  round boundary;
* messages sent during round ``i`` are buffered and delivered together at
  the end of round ``i``;
* the global state at each round boundary is therefore well defined.

The scheduler iterates actors in sorted-key order for determinism, but
because actors cannot read each other's state the iteration order is
unobservable to a correct protocol (a property the test suite checks).
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Hashable, List, Optional, Protocol, Sequence

from repro.netsim.messages import Envelope
from repro.netsim.trace import TraceRecorder


class Actor(Protocol):
    """Protocol for scheduler participants.

    ``step`` is invoked once per round with the actor's fresh inbox and a
    :class:`RoundContext` used to emit messages.
    """

    def step(self, inbox: Sequence[Envelope], ctx: "RoundContext") -> None:
        """Execute one synchronous round."""
        ...  # pragma: no cover - protocol declaration


class RoundContext:
    """Per-actor view of the current round, used to send messages."""

    __slots__ = ("round_no", "self_key", "_outbox", "_scheduler")

    def __init__(self, round_no: int, self_key: Hashable, scheduler: "SynchronousScheduler") -> None:
        self.round_no = round_no
        self.self_key = self_key
        self._outbox: List[Envelope] = []
        self._scheduler = scheduler

    def send(self, target: Hashable, payload: Any) -> None:
        """Queue a message for delivery at the end of this round."""
        self._outbox.append(Envelope(self.self_key, target, payload))

    def actor_exists(self, key: Hashable) -> bool:
        """Liveness oracle: whether ``key`` is currently registered.

        Models the connection-layer knowledge that a remote endpoint is
        gone (failed keep-alive); protocols use it to purge dead references
        (DESIGN.md [D7]).  It reveals no topology information.
        """
        return self._scheduler.has_actor(key)


class SynchronousScheduler:
    """Drives a set of actors through synchronous rounds."""

    def __init__(self, trace: Optional[TraceRecorder] = None) -> None:
        self._actors: Dict[Hashable, Actor] = {}
        self._inboxes: Dict[Hashable, List[Envelope]] = {}
        self._round = 0
        self._trace = trace
        #: messages addressed to unregistered actors in the last round
        self.dropped_last_round = 0

    # ------------------------------------------------------------------
    # membership
    # ------------------------------------------------------------------
    def add_actor(self, key: Hashable, actor: Actor) -> None:
        """Register a new actor (effective immediately)."""
        if key in self._actors:
            raise KeyError(f"actor {key!r} already registered")
        self._actors[key] = actor
        self._inboxes[key] = []

    def remove_actor(self, key: Hashable) -> Actor:
        """Remove an actor; undelivered messages to it will be dropped."""
        actor = self._actors.pop(key)
        self._inboxes.pop(key, None)
        return actor

    def has_actor(self, key: Hashable) -> bool:
        """Whether ``key`` is registered."""
        return key in self._actors

    def actor(self, key: Hashable) -> Actor:
        """Look up an actor by key."""
        return self._actors[key]

    def actor_keys(self) -> List[Hashable]:
        """Sorted list of registered actor keys."""
        return sorted(self._actors)

    def __len__(self) -> int:
        return len(self._actors)

    # ------------------------------------------------------------------
    # execution
    # ------------------------------------------------------------------
    @property
    def round_no(self) -> int:
        """Number of completed rounds."""
        return self._round

    def pending_messages(self) -> int:
        """Messages waiting in inboxes for the next round."""
        return sum(len(box) for box in self._inboxes.values())

    def all_pending(self) -> List[Envelope]:
        """All messages waiting for the next round (snapshot copy).

        Needed by protocols whose stable state is a constant *flow*: the
        global fingerprint must include in-flight messages.
        """
        out: List[Envelope] = []
        for key in sorted(self._inboxes):
            out.extend(self._inboxes[key])
        return out

    def post(self, envelope: Envelope) -> bool:
        """Inject a message from outside the round loop.

        Used for out-of-band events such as a departing peer's farewell
        introductions (Section 4.2).  Returns ``False`` (dropping the
        message) if the target is not registered.
        """
        box = self._inboxes.get(envelope.target)
        if box is None:
            return False
        box.append(envelope)
        return True

    def run_round(self, active: Optional[set] = None) -> None:
        """Execute one synchronous round.

        ``active`` restricts which actors step this round (fair partial
        activation — the standard bridge from the synchronous model
        toward asynchrony: a sleeping actor keeps its state and inbox
        untouched).  ``None`` activates everyone, the paper's model.
        """
        round_no = self._round
        outboxes: List[List[Envelope]] = []
        # Snapshot keys: actors added mid-round (e.g. by a join event
        # processed inside another actor) first step next round.
        keys = sorted(self._actors)
        for key in keys:
            if active is not None and key not in active:
                continue
            actor = self._actors.get(key)
            if actor is None:  # removed by an earlier actor this round
                continue
            inbox = self._inboxes.get(key, [])
            self._inboxes[key] = []
            ctx = RoundContext(round_no, key, self)
            actor.step(inbox, ctx)
            outboxes.append(ctx._outbox)

        sent = 0
        dropped = 0
        for outbox in outboxes:
            for env in outbox:
                sent += 1
                box = self._inboxes.get(env.target)
                if box is None:
                    dropped += 1
                    continue
                box.append(env)
        self.dropped_last_round = dropped
        if self._trace is not None:
            self._trace.record_round(round_no, actors=len(keys), sent=sent, dropped=dropped)
        self._round += 1

    def run(self, rounds: int) -> None:
        """Execute ``rounds`` consecutive rounds."""
        if rounds < 0:
            raise ValueError(f"rounds must be non-negative, got {rounds}")
        for _ in range(rounds):
            self.run_round()

    def run_until(self, predicate: Callable[[], bool], max_rounds: int) -> int:
        """Run until ``predicate()`` holds at a round boundary.

        Returns the number of rounds executed.  Raises ``RuntimeError`` if
        the predicate is still false after ``max_rounds`` rounds, so that
        non-converging protocols fail loudly in tests and experiments.
        """
        if predicate():
            return 0
        for executed in range(1, max_rounds + 1):
            self.run_round()
            if predicate():
                return executed
        raise RuntimeError(f"predicate not reached within {max_rounds} rounds")
