"""The columnar dirty-set kernel: O(dirty work) rounds at scale.

The activity-tracked kernel in :mod:`repro.netsim.scheduler` already
executes only dirty actors, but its *round loop* still costs O(n + E):
every round it sorts all actor keys, iterates every actor (replaying the
quiescent ones), clears every inbox, and re-appends every steady
envelope.  At n = 10k-100k peers that per-round floor — not rule
evaluation — dominates wall-clock time.

This subclass removes the floor by holding the steady state of the
network in *flow-indexed columns* instead of materialized per-round
inboxes:

* ``_flow_in[target][sender]`` — the delivered sub-flows of every
  sender's steady outbox, stored once and conceptually re-delivered
  every boundary (the parent rebuilds these lists physically each
  round);
* ``_ghost[target][sender]`` — one-shot remnants: the final emissions
  of a removed sender, consumed at the target's next materialization;
* ``_pre_buffer[target]`` / the plain inbox buffer — out-of-band posts
  that sort before / after the flows at the next boundary (matching the
  parent's physical append order exactly);
* ``_ref_watch[owner][target]`` — a reverse index from referenced
  owners of pending payloads to their receivers, replacing the
  network's O(pending) in-flight scan on liveness flips;
* ``_settled[key]`` — lazily settled rule-counter replays: a quiescent
  actor owes one replay delta per skipped round, applied in one batch
  (``replay_steps``) when it wakes or when counters are observed.

A round then touches only the dirty actors: each one *materializes* its
inbox ``[pre-buffer][flows + ghosts in sorted-sender order][buffer]``,
steps, and has its outbox diffed against the steady cache.  Flow
patches, removals and revivals are applied at the end-of-round delivery
point, exactly where the parent delivers, so every boundary observable
— fingerprints, pending multisets, change flags, sent/dropped/executed
counts, rule counters at observation points — is bit-for-bit identical
to the parent kernel (the differential suite in
``tests/test_columnar.py`` asserts this round-for-round).

The fast path is only sound under the parent's unit-delivery flow
induction, so the kernel drops back to the parent round implementation
(draining its columns into real inboxes) whenever latency models,
partial activation, or drop-filter changes appear, and re-enters one
round after the last out-of-band flow event.  Full-scan
(``activity_tracking=False``) and the parent tracked kernel remain the
executable references.
"""

from __future__ import annotations

from bisect import insort
from collections import Counter
from time import perf_counter as _perf
from typing import Callable, Dict, Hashable, List, Optional, Set, Tuple

from repro.netsim.messages import (
    HASH_MASK as _MASK,
    Envelope,
    envelope_fingerprint as _envelope_hash,
)
from repro.netsim.scheduler import RoundContext, SynchronousScheduler
from repro.netsim.timemodel import TimeModel, make_delivery_model
from repro.netsim.trace import TraceRecorder


#: sub-flow map: sender -> that sender's envelopes to one target
SubFlows = Dict[Hashable, List[Envelope]]


class ColumnarScheduler(SynchronousScheduler):
    """Activity-tracked scheduler with a columnar steady-flow store."""

    def __init__(
        self,
        trace: Optional[TraceRecorder] = None,
        activity_tracking: bool = True,
        time_model: Optional[TimeModel] = None,
    ) -> None:
        super().__init__(trace, activity_tracking=activity_tracking, time_model=time_model)
        #: whether the columnar fast path is currently driving rounds
        self._cols_active = False
        #: steady delivered sub-flows per live target
        self._flow_in: Dict[Hashable, SubFlows] = {}
        #: one-shot remnants of removed senders per live target
        self._ghost: Dict[Hashable, SubFlows] = {}
        #: posts ordered before the flows at the next boundary
        self._pre_buffer: Dict[Hashable, List[Envelope]] = {}
        #: frozen sub-flows to removed targets (revived on re-join)
        self._dead_in: Dict[Hashable, SubFlows] = {}
        #: re-added targets whose frozen flows resume at the next
        #: delivery point
        self._revive: Set[Hashable] = set()
        #: per-sender steady drops per round (dead targets + filtered)
        self._drop_by: Dict[Hashable, int] = {}
        #: running totals kept consistent with the structures above
        self._flow_dropped = 0  # = sum(_drop_by.values())
        self._flow_sent = 0  # = sum(len(_out[k]) for live k)
        self._flow_pending = 0  # envelopes held in _flow_in + _ghost
        #: reverse index: referenced owner -> {target: pending count}
        self._ref_watch: Dict[Hashable, Dict[Hashable, int]] = {}
        #: rule-counter settlement: last round each actor's counters cover
        self._settled: Dict[Hashable, int] = {}
        # ---- per-round working state (fast rounds only) ------------------
        self._col_pos: Optional[Hashable] = None
        self._work: List[Hashable] = []
        self._queued: Set[Hashable] = set()
        self._added_mid_round: Set[Hashable] = set()
        #: [key, contributed, final_out, committed_out] per mid-round removal
        self._removed_mid: List[list] = []
        #: sender -> (prev_out, new_out) outbox patches of this round
        self._patched: Dict[Hashable, tuple] = {}
        #: telemetry mirror of ``_flow_sent``, broken out by payload type
        #: name; maintained only while a recorder is attached (every
        #: ``_flow_sent`` adjustment has a matching typed adjustment, so
        #: the per-round envelope census equals the parent kernel's)
        self._tel_flow_types: Optional[Counter] = None

    # ------------------------------------------------------------------
    # envelope accounting (pending hash + ref index + pending count)
    # ------------------------------------------------------------------
    def _watch_env(self, env: Envelope) -> None:
        refs_fn = getattr(env.payload, "refs", None)
        if refs_fn is None:
            return
        for owner in {ref.owner for ref in refs_fn()}:
            targets = self._ref_watch.setdefault(owner, {})
            targets[env.target] = targets.get(env.target, 0) + 1

    def _unwatch_env(self, env: Envelope) -> None:
        refs_fn = getattr(env.payload, "refs", None)
        if refs_fn is None:
            return
        watch = self._ref_watch
        for owner in {ref.owner for ref in refs_fn()}:
            targets = watch.get(owner)
            if targets is None:
                continue
            count = targets.get(env.target, 0)
            if count <= 1:
                targets.pop(env.target, None)
                if not targets:
                    watch.pop(owner, None)
            else:
                targets[env.target] = count - 1

    def _account_flow_env(self, env: Envelope) -> None:
        """A steady/ghost envelope enters the pending set."""
        self._pending_hash = (self._pending_hash + _envelope_hash(env)) & _MASK
        self._flow_pending += 1
        self._watch_env(env)

    def _unaccount_flow_env(self, env: Envelope) -> None:
        """A steady/ghost envelope leaves the pending set."""
        self._pending_hash = (self._pending_hash - _envelope_hash(env)) & _MASK
        self._flow_pending -= 1
        self._unwatch_env(env)

    # ------------------------------------------------------------------
    # sender flow surgery
    # ------------------------------------------------------------------
    def _install_sender_flows(self, sender: Hashable, envs) -> int:
        """Index ``sender``'s outbox as steady flows; returns its
        per-round drop count (dead targets + filtered envelopes)."""
        drops = 0
        flt = self._drop_filter
        by_target: Dict[Hashable, List[Envelope]] = {}
        for env in envs:
            by_target.setdefault(env.target, []).append(env)
        for target, sub in by_target.items():
            deliverable = sub if flt is None else [e for e in sub if not flt(e)]
            if target in self._actors:
                drops += len(sub) - len(deliverable)
                if deliverable:
                    self._flow_in.setdefault(target, {})[sender] = deliverable
                    for env in deliverable:
                        self._account_flow_env(env)
            else:
                # every envelope to a dead target drops, filtered or not;
                # the deliverable part is frozen for a possible re-join
                drops += len(sub)
                if deliverable:
                    self._dead_in.setdefault(target, {})[sender] = deliverable
        return drops

    # ------------------------------------------------------------------
    # mode transitions
    # ------------------------------------------------------------------
    def _enter_columnar(self) -> None:
        """Derive the columns from the steady-emission cache.

        Only called at a boundary with no pending flow events
        (``_flow_flag`` clear), where the parent's inboxes provably equal
        the filtered steady deliveries — so the physical inboxes can be
        dropped and regenerated from ``_out`` on exit.
        """
        round_no = self._round
        self._flow_in = {}
        self._ghost = {}
        self._pre_buffer = {}
        self._dead_in = {}
        self._revive = set()
        self._drop_by = {}
        self._ref_watch = {}
        self._flow_dropped = 0
        self._flow_sent = 0
        self._flow_pending = 0
        derived_hash = 0
        self._settled = {key: round_no - 1 for key in self._actors}
        saved_hash = self._pending_hash
        self._pending_hash = 0
        tel_types = Counter() if self._telemetry is not None else None
        self._tel_flow_types = tel_types
        for key in self._actors:
            out = self._out.get(key, [])
            self._flow_sent += len(out)
            if tel_types is not None:
                for env in out:
                    tel_types[type(env.payload).__name__] += 1
            drops = self._install_sender_flows(key, out)
            self._drop_by[key] = drops
            self._flow_dropped += drops
        derived_hash = self._pending_hash
        assert derived_hash == saved_hash, (
            "columnar entry: derived pending hash diverges from the "
            "parent's rolling hash — flow bookkeeping bug"
        )
        for box in self._inboxes.values():
            box.clear()
        self._cols_active = True

    def _exit_columnar(self) -> None:
        """Materialize every inbox and fall back to the parent kernel."""
        self.settle_replays()
        for target in self._actors:
            inbox: List[Envelope] = []
            pre = self._pre_buffer.get(target)
            if pre:
                inbox.extend(pre)
            flows = self._flow_in.get(target)
            ghosts = self._ghost.get(target)
            senders: Set[Hashable] = set()
            if flows:
                senders.update(flows)
            if ghosts:
                senders.update(ghosts)
            for sender in sorted(senders):
                if flows is not None:
                    inbox.extend(flows.get(sender, ()))
                if ghosts is not None:
                    inbox.extend(ghosts.get(sender, ()))
            inbox.extend(self._inboxes.get(target, ()))
            self._inboxes[target] = inbox
        self._flow_in = {}
        self._ghost = {}
        self._pre_buffer = {}
        self._dead_in = {}
        self._revive = set()
        self._drop_by = {}
        self._ref_watch = {}
        self._flow_dropped = 0
        self._flow_sent = 0
        self._flow_pending = 0
        self._settled = {}
        self._tel_flow_types = None
        self._cols_active = False

    # ------------------------------------------------------------------
    # counter settlement
    # ------------------------------------------------------------------
    def _settle_actor(self, key: Hashable, upto: int) -> None:
        last = self._settled.get(key)
        if last is None:
            self._settled[key] = upto
            return
        if last >= upto:
            return
        owed = upto - last
        self._settled[key] = upto
        actor = self._actors.get(key)
        if actor is None:
            return
        batch = getattr(actor, "replay_steps", None)
        if batch is not None:
            batch(owed)
            return
        replay_fn = self._probes.get(key, (None, None, None))[2]
        if replay_fn is not None:
            for _ in range(owed):
                replay_fn()

    def settle_replays(self) -> None:
        """Apply every owed quiescent-round counter delta now.

        Called at boundaries by observers of rule counters (the network
        facade) and on every fall-back to the parent kernel; afterwards
        all counters equal what the parent's eager per-round replay
        would have produced.
        """
        if not self._cols_active:
            return
        upto = self._round - 1
        for key in self._actors:
            self._settle_actor(key, upto)

    # ------------------------------------------------------------------
    # indexed liveness wake (replaces the network's O(pending) scan)
    # ------------------------------------------------------------------
    def wake_ref_receivers(self, owners: Set) -> bool:
        if not self._cols_active:
            return False
        for owner in owners:
            targets = self._ref_watch.get(owner)
            if not targets:
                continue
            for target in targets:
                self._dirty.add(target)
                self._dirty_carry.add(target)
        return True

    # ------------------------------------------------------------------
    # membership / posts / faults under columnar mode
    # ------------------------------------------------------------------
    def add_actor(self, key: Hashable, actor) -> None:
        super().add_actor(key, actor)
        if not self._cols_active:
            return
        # counters owe nothing before the first scheduled execution
        self._settled[key] = self._round if self._in_round else self._round - 1
        if key in self._dead_in:
            # a re-joining id: the steady flows still addressed to it
            # resume at the next delivery point, like the parent's
            # delivery loop would
            self._revive.add(key)
        if self._in_round:
            self._added_mid_round.add(key)

    def remove_actor(self, key: Hashable):
        if self._cols_active:
            self._remove_columnar(key)
        return super().remove_actor(key)

    def _remove_columnar(self, key: Hashable) -> None:
        in_round = self._in_round
        # -- settle its counters to what the parent would have applied --
        contributed = bool(
            in_round and self._col_pos is not None and key <= self._col_pos
        )
        if in_round:
            self._settle_actor(key, self._round if contributed else self._round - 1)
        else:
            self._settle_actor(key, self._round - 1)
        self._settled.pop(key, None)
        # -- as a target: its pending messages die with it ---------------
        flows = self._flow_in.pop(key, None)
        if key in self._revive:
            # re-added and removed again before its frozen flows resumed:
            # keep the original _dead_in entry untouched
            self._revive.discard(key)
        elif flows is not None:
            for sender, sub in flows.items():
                for env in sub:
                    self._unaccount_flow_env(env)
                self._drop_by[sender] = self._drop_by.get(sender, 0) + len(sub)
                self._flow_dropped += len(sub)
            self._dead_in[key] = flows
        ghosts = self._ghost.pop(key, None)
        if ghosts:
            for sub in ghosts.values():
                for env in sub:
                    self._unaccount_flow_env(env)
        pre = self._pre_buffer.pop(key, None)
        if pre:
            for env in pre:
                self._pending_hash = (self._pending_hash - _envelope_hash(env)) & _MASK
                self._unwatch_env(env)
        for env in self._inboxes.get(key, ()):
            # the parent's remove_actor subtracts the buffer hashes;
            # only the ref index is ours to maintain
            self._unwatch_env(env)
        # -- as a sender: its steady flow stops --------------------------
        committed = self._patched[key][0] if key in self._patched else self._out.get(key, [])
        self._flow_sent -= len(committed or ())
        if self._tel_flow_types is not None:
            for env in committed or ():
                self._tel_flow_types[type(env.payload).__name__] -= 1
        self._flow_dropped -= self._drop_by.pop(key, 0)
        for subs in self._dead_in.values():
            subs.pop(key, None)
        if in_round:
            # defer the flow surgery to the delivery point: actors that
            # materialize later this round must still see this sender's
            # boundary sub-flows, exactly like the parent's snapshot
            # inboxes do
            self._removed_mid.append(
                [key, contributed, list(self._out.get(key, ())), list(committed or ())]
            )
        else:
            # between rounds: the flows delivered at the last boundary
            # are still pending; they become one-shot ghosts
            out = self._out.get(key, ())
            for target in {env.target for env in out}:
                subs = self._flow_in.get(target)
                if subs is None:
                    continue
                sub = subs.pop(key, None)
                if sub:
                    self._ghost.setdefault(target, {})[key] = sub

    def post(self, envelope: Envelope) -> bool:
        ok = super().post(envelope)
        if not ok or not self._cols_active:
            return ok
        target = envelope.target
        box = self._inboxes.get(target)
        if box is None or not box or box[-1] is not envelope:
            return ok  # parked in the future queue (not possible while unit)
        self._watch_env(envelope)
        if self._in_round:
            if (
                target in self._added_mid_round
                or (self._col_pos is not None and target <= self._col_pos)
            ):
                # the target's step already passed this round (or it was
                # added mid-round and will not run): the post sits in its
                # inbox and the end-of-round deliveries append AFTER it
                box.pop()
                self._pre_buffer.setdefault(target, []).append(envelope)
            elif target not in self._queued:
                # not yet reached: it must execute (not replay) this
                # round, consuming [flows][post] like the parent
                insort(self._work, target)
                self._queued.add(target)
        return ok

    def set_drop_filter(self, drop: Optional[Callable[[Envelope], bool]]) -> None:
        if self._cols_active and not (drop is None and self._drop_filter is None):
            # filter changes redefine every steady delivery; fall back to
            # the parent kernel (which marks everyone dirty) and re-enter
            # once the flow flag clears
            self._exit_columnar()
        super().set_drop_filter(drop)

    def set_delivery_model(self, model) -> None:
        if self._cols_active:
            new = make_delivery_model(model)
            old = self._delivery
            if not (new.is_unit and old.is_unit) and new.to_dict() != old.to_dict():
                self._exit_columnar()
        super().set_delivery_model(model)

    def set_telemetry(self, recorder) -> None:
        if self._cols_active:
            # the typed flow mirror is derived at columnar entry; exit so
            # the next fast round rebuilds it consistently (observably
            # neutral — exit/enter is a behavior-preserving transition)
            self._exit_columnar()
        super().set_telemetry(recorder)

    # ------------------------------------------------------------------
    # pending-set observers
    # ------------------------------------------------------------------
    def pending_messages(self) -> int:
        if not self._cols_active:
            return super().pending_messages()
        count = self._flow_pending
        for box in self._pre_buffer.values():
            count += len(box)
        for box in self._inboxes.values():
            count += len(box)
        return count

    def all_pending(self) -> List[Envelope]:
        if not self._cols_active:
            return super().all_pending()
        out: List[Envelope] = []
        for target in sorted(self._inboxes):
            pre = self._pre_buffer.get(target)
            if pre:
                out.extend(pre)
            flows = self._flow_in.get(target)
            ghosts = self._ghost.get(target)
            senders: Set[Hashable] = set()
            if flows:
                senders.update(flows)
            if ghosts:
                senders.update(ghosts)
            for sender in sorted(senders):
                if flows is not None:
                    out.extend(flows.get(sender, ()))
                if ghosts is not None:
                    out.extend(ghosts.get(sender, ()))
            out.extend(self._inboxes[target])
        return out

    # ------------------------------------------------------------------
    # round dispatch
    # ------------------------------------------------------------------
    def run_round(self, active: Optional[set] = None) -> None:
        if active is None and not self._daemon.is_full:
            active = self._daemon.select(self._round, sorted(self._actors))
        self.active_last_round = frozenset(active) if active is not None else None
        if not self.activity_tracking:
            self._run_round_full(active)
            return
        fast_ok = (
            active is None
            and self._delivery.is_unit
            and not self._future
            and self._prev_pending is None
        )
        if not fast_ok:
            if self._cols_active:
                self._exit_columnar()
            if active is not None:
                self._run_round_partial_tracked(set(active))
            else:
                self._run_round_tracked()
            return
        if not self._cols_active:
            if self._flow_flag:
                # out-of-band flow events since the last boundary: let the
                # parent kernel absorb them, enter once the flag clears
                self._run_round_tracked()
                return
            self._enter_columnar()
        self._run_round_columnar()

    # ------------------------------------------------------------------
    # the fast round
    # ------------------------------------------------------------------
    def _materialize_inbox(self, key: Hashable) -> List[Envelope]:
        """Assemble and consume the actor's boundary inbox.

        Ghosts, pre-buffered and buffered posts are one-shot: they leave
        the pending set here.  Steady flows stay indexed — they are
        conceptually re-delivered at the end of the round.
        """
        inbox: List[Envelope] = []
        pre = self._pre_buffer.pop(key, None)
        if pre:
            for env in pre:
                self._pending_hash = (self._pending_hash - _envelope_hash(env)) & _MASK
                self._unwatch_env(env)
            inbox.extend(pre)
        flows = self._flow_in.get(key)
        ghosts = self._ghost.pop(key, None)
        if ghosts:
            for sub in ghosts.values():
                for env in sub:
                    self._unaccount_flow_env(env)
            senders: Set[Hashable] = set(ghosts)
            if flows:
                senders.update(flows)
            for sender in sorted(senders):
                if flows is not None:
                    inbox.extend(flows.get(sender, ()))
                inbox.extend(ghosts.get(sender, ()))
        elif flows:
            for sender in sorted(flows):
                inbox.extend(flows[sender])
        box = self._inboxes.get(key)
        if box:
            for env in box:
                self._pending_hash = (self._pending_hash - _envelope_hash(env)) & _MASK
                self._unwatch_env(env)
            inbox.extend(box)
            self._inboxes[key] = []
        return inbox

    def _columnar_post_step(
        self,
        key: Hashable,
        out: List[Envelope],
        changed_keys: Set[Hashable],
        newly_dirty: Set[Hashable],
    ) -> Tuple[bool, bool]:
        """Probe + outbox-diff bookkeeping after one actor's step.

        Factored out of pass 1 so the batched backend can defer it until
        after ``run_batch``; returns ``(state_changed, flow_changed)``.
        """
        probes = self._probes.get(key)
        if probes is None or probes[0] is None:
            state_changed = True
            newly_dirty.add(key)
        else:
            state_changed = self._probe_refresh(key, probes)
        if state_changed:
            changed_keys.add(key)
            newly_dirty.add(key)
        flow_changed = False
        prev_out = self._out.get(key)
        if prev_out != out:
            flow_changed = True
            prev_by: Dict[Hashable, List[Envelope]] = {}
            for env in prev_out or ():
                prev_by.setdefault(env.target, []).append(env)
            new_by: Dict[Hashable, List[Envelope]] = {}
            for env in out:
                new_by.setdefault(env.target, []).append(env)
            # the per-target diff: only these sub-flows need surgery
            # at the delivery point — unchanged targets keep their
            # (value-equal) indexed envelopes untouched
            changed: List[Hashable] = []
            for target, sub in new_by.items():
                if prev_by.get(target) != sub:
                    newly_dirty.add(target)
                    changed.append(target)
            for target in prev_by:
                if target not in new_by:
                    newly_dirty.add(target)
                    changed.append(target)
            h = self._out_hash.get(key, 0)
            for target in changed:
                for env in new_by.get(target, ()):
                    h = (h + _envelope_hash(env)) & _MASK
                for env in prev_by.get(target, ()):
                    h = (h - _envelope_hash(env)) & _MASK
            if key not in self._patched:
                self._patched[key] = (prev_out, out, changed, prev_by, new_by)
            self._out[key] = out
            self._out_hash[key] = h
        if key not in self._actors:
            # it removed itself during its own step; the parent still
            # delivers THIS step's emissions, so fix the removal
            # record captured mid-step
            for record in reversed(self._removed_mid):
                if record[0] == key:
                    record[2] = list(out)
                    break
        return state_changed, flow_changed

    def _run_round_columnar(self) -> None:
        round_no = self._round
        tel = self._telemetry
        n_start = len(self._actors)
        state_changed_any = False
        flow_changed = self._flow_flag
        self._flow_flag = False
        changed_keys: Set[Hashable] = set()
        newly_dirty: Set[Hashable] = set()
        executed = 0
        dirty = self._dirty
        self._dirty = set()
        carry_due = self._dirty_carry
        self._dirty_carry = set()
        self._posted_mid_round = set()
        self._patched = {}
        self._removed_mid = []
        self._added_mid_round = set()
        self._work = sorted(k for k in dirty if k in self._actors)
        self._queued = set(self._work)
        self._in_round = True

        # ---- pass 1: materialize + execute the dirty set ---------------
        stepper = self._batch_stepper
        batch: Optional[List[tuple]] = [] if stepper is not None else None
        index = 0
        while index < len(self._work):
            key = self._work[index]
            index += 1
            actor = self._actors.get(key)
            if actor is None:  # removed by an earlier actor this round
                continue
            self._col_pos = key
            executed += 1
            if tel is None:
                inbox = self._materialize_inbox(key)
                self._settle_actor(key, round_no - 1)
                self._settled[key] = round_no
                ctx = RoundContext(round_no, key, self)
                if batch is None:
                    actor.step(inbox, ctx)
                else:
                    # probe/diff bookkeeping deferred past run_batch;
                    # materializations commute (no mid-round posts under
                    # the batched-backend contract)
                    batch.append((key, actor, inbox, ctx))
                    continue
            else:
                _t0 = _perf()
                inbox = self._materialize_inbox(key)
                tel.add_time("kernel.materialize", _perf() - _t0)
                self._settle_actor(key, round_no - 1)
                self._settled[key] = round_no
                ctx = RoundContext(round_no, key, self)
                if batch is not None:
                    batch.append((key, actor, inbox, ctx))
                    continue
                _t0 = _perf()
                actor.step(inbox, ctx)
                tel.add_time("kernel.execute", _perf() - _t0)
            sc, fc = self._columnar_post_step(key, ctx._outbox, changed_keys, newly_dirty)
            state_changed_any |= sc
            flow_changed |= fc
        if batch:
            stepper.run_batch(batch)
            for key, _actor, _inbox, ctx in batch:
                sc, fc = self._columnar_post_step(key, ctx._outbox, changed_keys, newly_dirty)
                state_changed_any |= sc
                flow_changed |= fc

        # ---- pass 2: the delivery point ---------------------------------
        _t0 = _perf() if tel is not None else 0.0
        tel_types = self._tel_flow_types
        tel_extra: Optional[Counter] = Counter() if tel is not None else None
        sent_extra = 0
        dropped_extra = 0
        flt = self._drop_filter
        # (a) steady-flow patches of still-live senders: surgery touches
        # only the targets whose sub-flow actually changed
        for sender, (prev, new, changed, prev_by, new_by) in self._patched.items():
            if sender not in self._actors:
                continue
            self._flow_sent += len(new) - len(prev or ())
            if tel_types is not None:
                for env in new:
                    tel_types[type(env.payload).__name__] += 1
                for env in prev or ():
                    tel_types[type(env.payload).__name__] -= 1
            drop_delta = 0
            for target in changed:
                old_sub = prev_by.get(target)
                new_sub = new_by.get(target)
                # a frozen sub from before the target's death (or from a
                # pre-revival window) must not resurface on top of the
                # fresh sub-flow installed below
                dead = self._dead_in.get(target)
                if dead is not None:
                    dead.pop(sender, None)
                if target in self._actors:
                    subs = self._flow_in.get(target)
                    cur = subs.pop(sender, None) if subs is not None else None
                    if cur:
                        for env in cur:
                            self._unaccount_flow_env(env)
                    drop_delta -= len(old_sub or ()) - len(cur or ())
                    if new_sub:
                        deliverable = (
                            new_sub if flt is None
                            else [e for e in new_sub if not flt(e)]
                        )
                        drop_delta += len(new_sub) - len(deliverable)
                        if deliverable:
                            self._flow_in.setdefault(target, {})[sender] = deliverable
                            for env in deliverable:
                                self._account_flow_env(env)
                else:
                    # every envelope to a dead target drops; the
                    # deliverable part is frozen for a possible re-join
                    drop_delta -= len(old_sub or ())
                    if new_sub:
                        drop_delta += len(new_sub)
                        deliverable = (
                            new_sub if flt is None
                            else [e for e in new_sub if not flt(e)]
                        )
                        if deliverable:
                            self._dead_in.setdefault(target, {})[sender] = deliverable
            self._drop_by[sender] = self._drop_by.get(sender, 0) + drop_delta
            self._flow_dropped += drop_delta
        # (b) mid-round removals: ghost the contributions, expire the rest
        expired = 0
        for key, contributed, final_out, committed_out in self._removed_mid:
            for target in {env.target for env in committed_out}:
                subs = self._flow_in.get(target)
                if subs is None:
                    continue
                sub = subs.pop(key, None)
                if sub:
                    for env in sub:
                        self._unaccount_flow_env(env)
            if not contributed:
                expired += 1
                continue
            sent_extra += len(final_out)
            if tel_extra is not None:
                for env in final_out:
                    tel_extra[type(env.payload).__name__] += 1
            by_target: Dict[Hashable, List[Envelope]] = {}
            for env in final_out:
                by_target.setdefault(env.target, []).append(env)
            for target, sub in by_target.items():
                if target not in self._actors:
                    dropped_extra += len(sub)
                    continue
                deliverable = sub if flt is None else [e for e in sub if not flt(e)]
                dropped_extra += len(sub) - len(deliverable)
                if deliverable:
                    self._ghost.setdefault(target, {})[key] = deliverable
                    for env in deliverable:
                        self._account_flow_env(env)
        # (c) revivals: frozen flows to re-joined ids resume
        for target in sorted(self._revive):
            if target not in self._actors:
                continue
            subs = self._dead_in.pop(target, None)
            if subs is None:
                continue
            for sender in sorted(subs):
                if sender not in self._actors:
                    continue
                sub = subs[sender]
                self._flow_in.setdefault(target, {})[sender] = sub
                for env in sub:
                    self._account_flow_env(env)
                self._drop_by[sender] = self._drop_by.get(sender, 0) - len(sub)
                self._flow_dropped -= len(sub)
        self._revive.clear()

        # (d) boundary bookkeeping — identical observables to the parent
        self.dropped_last_round = self._flow_dropped + dropped_extra
        sent = self._flow_sent + sent_extra
        if tel is not None:
            tel.add_time("kernel.patch", _perf() - _t0)
            msg = tel.messages
            if tel_types:
                for name, count in tel_types.items():
                    if count:
                        msg[name] += count
            if tel_extra:
                msg.update(tel_extra)
            tel.on_round(
                sent=sent, dropped=self.dropped_last_round,
                executed=executed, replayed=n_start - executed - expired,
            )
        self.changed_last_round = state_changed_any or flow_changed
        self.state_changed_keys = changed_keys
        self.executed_last_round = executed
        self.replayed_last_round = n_start - executed - expired
        self._in_round = False
        self._posted_mid_round = set()
        newly_dirty |= carry_due
        newly_dirty |= self._dirty  # marks added mid-round
        self._dirty = newly_dirty
        self._col_pos = None
        self._work = []
        self._queued = set()
        self._added_mid_round = set()
        self._removed_mid = []
        self._patched = {}
        if self._trace is not None:
            self._trace.record_round(
                round_no, actors=n_start, sent=sent, dropped=self.dropped_last_round,
                executed=executed,
            )
        self._round += 1
