"""Batched rule kernels over the interned-id columns.

The scalar pipeline in :mod:`repro.core.protocol` steps one peer at a
time: apply inbox, purge, rules 1–6, traffic.  This module executes the
same pipeline **phase-major** across every peer the scheduler decided to
run in a round: one pass applies all inboxes, one pass purges all
peers, one pass runs rule 3 everywhere, and so on.  The reordering is
behaviorally invisible because within a round

* a peer's rules read and mutate *only its own* ``PeerState`` (direct
  assignments are peer-local; delayed assignments travel as messages),
* every send is buffered in the peer's round outbox and delivered only
  at the round boundary, and
* the liveness oracle answers from the network's frozen round-start
  snapshot, so purge verdicts cannot observe another peer's progress.

So per-peer phase results are identical to the scalar interleaving, and
per-peer outbox *order* is preserved too (each phase appends to the same
peer outbox in the same relative order the scalar pipeline would).

What the batching buys
----------------------

* **One rank index per round** — :class:`RankIndex` lexsorts the intern
  table's flat ``(ids, owners, levels)`` columns (numpy ``lexsort`` when
  available, a pure-Python argsort otherwise) into a global rank per
  interned ref.  Ranks are a strict-total-order isomorphism of
  ``NodeRef._key`` (the key is a bijection of the interned triple), so
  every neighbor-set sort in rules 3/4/5/6 becomes an integer sort
  instead of a tuple-key sort.  Ranks are used for *ordering only*;
  equality guards (``y == rl`` etc.) stay real ``NodeRef`` comparisons,
  which deliberately ignore the id component.
* **A shared purge-verdict memo** — liveness verdicts are pure in the
  ref given the frozen snapshot, so one memo serves the whole batch
  instead of one per peer.
* **An integer-keyed envelope cache** — the stable state re-emits the
  same small set of envelopes every round; the batched send path looks
  them up by flat ``(owner, level)`` integers without constructing the
  payload at all.  Misses are routed through the scheduler's canonical
  envelope cache so instances (and their fingerprint memos) coincide
  with the scalar path's.
* **Bulk-set delivery** — the apply-inbox phase groups a peer's
  ``EdgeAdd`` envelopes by ``(level, kind)`` and lands each group with
  one C-level ``set.update`` (self-edges removed by one ``discard``)
  instead of dispatching per envelope.  Set *content* is all any
  downstream consumer observes (every order-sensitive reader sorts
  first), and the ``version`` counter is only ever compared for
  equality, so coalesced bumping is invisible.  Candidate messages
  keep their relative order; they commute with edge-adds (adoption
  reads pointer slots, edge-adds write only the neighbor sets).  A
  peer whose apply was a proven no-op (identical canonical state +
  element-equal inbox, cached from a mutation-free, bump-free run)
  skips the phase entirely.
* **C-speed purge screening** — a per-batch ``ok`` set of refs already
  judged alive turns the common per-set scan into one hash-based
  ``issuperset`` call, and a single ``nref in refs`` containment check
  replaces the per-ref self-edge comparison; only sets that might
  actually purge fall back to the scalar loop.
* **Predecessor scans in rule 6** — with the typical one or two
  connection edges per level, the closest-known-predecessor is found
  by a linear key scan over ``nu`` and the sibling chain instead of
  materializing and sorting the full candidate list.

Contract
--------

Observationally identical to the scalar backend: fingerprints, emitted
envelope sequences, rule counters, replay deltas and telemetry censuses
match bit for bit (``tests/test_rules_batched.py`` and the equivalence
matrix enforce this).  The scalar pipeline remains the executable spec;
when in doubt, this module mirrors :mod:`repro.core.protocol` line by
line.  Refs that were never interned (``iid == -1``, hand-built
adversarial states) demote the affected sort to the scalar key sort —
never to a wrong answer.
"""

from __future__ import annotations

from bisect import bisect_left
from operator import attrgetter
from time import perf_counter as _perf
from typing import Dict, List, Optional, Sequence

from repro.core.events import (
    KIND_CONNECTION,
    KIND_RING,
    KIND_UNMARKED,
    EdgeAdd,
    RealCandidate,
    SIDE_LEFT,
    SIDE_RIGHT,
)
from repro.core.noderef import INTERN, NodeRef
from repro.core.protocol import REF_OK, REF_PHANTOM, ReChordPeer
from repro.netsim.messages import AppPayload, Envelope

try:  # optional accelerator; the pure-array path below is the fallback
    import numpy as _np
except Exception:  # pragma: no cover - numpy absent in minimal installs
    _np = None

_KEY = attrgetter("_key")

#: clear-on-overflow bound, mirroring the scheduler's envelope cache
_FAST_CACHE_MAX = 4_000_000

#: below this interned-table size the numpy lexsort loses to the
#: pure-Python argsort (crossover measured around a few thousand rows)
_NUMPY_MIN_ROWS = 2048


class RankIndex:
    """Global linear rank of every interned ref, by ``NodeRef._key``.

    Built from the intern table's flat columns: ``lexsort`` orders rows
    by ``(id, is_virtual, owner, level)`` — exactly the scalar sort key
    — and the inverse permutation is the rank.  The table is
    append-only, but appending *changes existing ranks* (a new row can
    land anywhere in the order), so consumers refresh at phase
    boundaries and treat a row id at or beyond the indexed size as
    unranked.
    """

    __slots__ = ("ranks", "size", "_use_numpy")

    def __init__(self, use_numpy: Optional[bool] = None) -> None:
        self.ranks: List[int] = []
        self.size = 0
        self._use_numpy = _np is not None if use_numpy is None else (
            bool(use_numpy) and _np is not None
        )

    def refresh(self) -> None:
        """Re-rank if the intern table grew since the last build."""
        n = len(INTERN)
        if n == self.size:
            return
        if self._use_numpy and n >= _NUMPY_MIN_ROWS:
            ids_col, owners_col, levels_col = INTERN.columns()
            ids = _np.frombuffer(ids_col, dtype=_np.uint64, count=n)
            owners = _np.frombuffer(owners_col, dtype=_np.uint64, count=n)
            levels = _np.frombuffer(levels_col, dtype=_np.intc, count=n)
            # last lexsort key is the primary one: (id, isv, owner, level)
            perm = _np.lexsort((levels, owners, levels != 0, ids))
            ranks = _np.empty(n, dtype=_np.int64)
            ranks[perm] = _np.arange(n, dtype=_np.int64)
            # a plain list keeps the per-ref lookups in the rule loops at
            # native list-index speed (ndarray item access boxes per hit)
            self.ranks = ranks.tolist()
        else:
            refs = INTERN.all_refs()
            order = sorted(range(n), key=lambda i: refs[i]._key)
            ranks = [0] * n
            for pos, iid in enumerate(order):
                ranks[iid] = pos
            self.ranks = ranks
        self.size = n


class BatchedRuleEngine:
    """Phase-major executor for a round's batch of dirty ReChord peers.

    Installed on a scheduler via ``set_batch_stepper``; the kernels hand
    it the full list of ``(key, actor, inbox, ctx)`` step items (in key
    order) instead of calling ``actor.step`` one by one.  Non-ReChord
    actors in the batch fall back to their own ``step``.
    """

    __slots__ = ("rank_index", "_fast")

    def __init__(self, use_numpy: Optional[bool] = None) -> None:
        self.rank_index = RankIndex(use_numpy)
        #: envelope cache keyed by flat ints; values are the same
        #: instances the scheduler's canonical cache holds
        self._fast: Dict[tuple, Envelope] = {}

    # ------------------------------------------------------------------
    # entry point
    # ------------------------------------------------------------------
    def run_batch(self, items: Sequence[tuple]) -> None:
        """Execute one round's steps phase-major.

        ``items`` is ``[(key, actor, inbox, ctx), ...]`` in scheduler
        key order; every actor's observable effects (state, outbox,
        counters, replay delta) end up exactly as if ``actor.step(inbox,
        ctx)`` had been called in that order.
        """
        peers: List[list] = []
        tel = None
        for key, actor, inbox, ctx in items:
            if not isinstance(actor, ReChordPeer):
                actor.step(inbox, ctx)
                continue
            if actor.telemetry is not None:
                tel = actor.telemetry
            fires_before = dict(actor.counters.fires)
            app: Optional[List] = None
            if actor.traffic is not None:
                app = [e.payload for e in inbox if isinstance(e.payload, AppPayload)]
                if app:
                    inbox = [e for e in inbox if not isinstance(e.payload, AppPayload)]
            peers.append([actor, inbox, ctx, app, fires_before])
        if not peers:
            return
        self.rank_index.refresh()
        if tel is None:
            self._pipeline(peers)
        else:
            self._pipeline_timed(peers, tel)
        for actor, _inbox, _ctx, _app, fires_before in peers:
            fires = actor.counters.fires
            actor._replay_delta = {
                rule: count - fires_before.get(rule, 0)
                for rule, count in fires.items()
                if count != fires_before.get(rule, 0)
            }

    def _pipeline(self, peers: List[list]) -> None:
        self._phase_apply_inbox(peers)
        self._phase_purge(peers)
        for actor, _i, _c, _a, _f in peers:
            if actor.config.virtual_nodes:
                actor._rule1_virtual_nodes()
        for actor, _i, _c, _a, _f in peers:
            if actor.config.overlap:
                actor._rule2_overlap()
        # rule 1 mints refs for freshly created levels: re-rank once so
        # the sort phases below see them (cheap no-op when nothing grew)
        self.rank_index.refresh()
        self._phase_rule3(peers)
        self._phase_rule4(peers)
        self._phase_rule5(peers)
        self._phase_rule6(peers)
        for actor, _inbox, ctx, app, _f in peers:
            if app:
                ctx.reexecute_next_round()
                actor.traffic.handle(actor, app, ctx)

    def _pipeline_timed(self, peers: List[list], tel) -> None:
        """The pipeline with per-phase wall-clock spans.

        Phase labels match the scalar ``_step_timed`` ones so telemetry
        reports stay comparable; spans cover the whole batch (one call
        per phase) rather than one per peer.
        """
        add = tel.add_time
        t = _perf()
        self._phase_apply_inbox(peers)
        t2 = _perf(); add("peer.apply_inbox", t2 - t); t = t2
        self._phase_purge(peers)
        t2 = _perf(); add("rule.purge", t2 - t); t = t2
        for actor, _i, _c, _a, _f in peers:
            if actor.config.virtual_nodes:
                actor._rule1_virtual_nodes()
        t2 = _perf(); add("rule.1_virtual_nodes", t2 - t); t = t2
        for actor, _i, _c, _a, _f in peers:
            if actor.config.overlap:
                actor._rule2_overlap()
        t2 = _perf(); add("rule.2_overlap", t2 - t); t = t2
        self.rank_index.refresh()
        self._phase_rule3(peers)
        t2 = _perf(); add("rule.3_closest_real", t2 - t); t = t2
        self._phase_rule4(peers)
        t2 = _perf(); add("rule.4_linearize", t2 - t); t = t2
        self._phase_rule5(peers)
        t2 = _perf(); add("rule.5_ring", t2 - t); t = t2
        self._phase_rule6(peers)
        t2 = _perf(); add("rule.6_connection", t2 - t); t = t2
        traffic_ran = False
        for actor, _inbox, ctx, app, _f in peers:
            if app:
                ctx.reexecute_next_round()
                actor.traffic.handle(actor, app, ctx)
                traffic_ran = True
        if traffic_ran:
            add("peer.traffic", _perf() - t)

    # ------------------------------------------------------------------
    # sorting over the rank column
    # ------------------------------------------------------------------
    def _sorted_refs(self, refs) -> List[NodeRef]:
        """``sorted(refs, key=_KEY)`` via the global rank column.

        Ranks order exactly like keys for interned refs; a never-interned
        ref (or one minted after the last refresh) demotes the call to
        the scalar key sort.
        """
        n = len(refs)
        if n < 2:
            return list(refs)
        if n == 2:
            a, b = refs
            return [a, b] if a._key <= b._key else [b, a]
        ranks = self.rank_index.ranks
        size = self.rank_index.size
        pairs = []
        for r in refs:
            iid = r.iid
            if 0 <= iid < size:
                pairs.append((ranks[iid], r))
            else:
                return sorted(refs, key=_KEY)
        pairs.sort()
        return [r for _rank, r in pairs]

    # ------------------------------------------------------------------
    # fast envelope construction
    # ------------------------------------------------------------------
    def _send_edge(self, ctx, outbox, target: NodeRef, endpoint: NodeRef, kind: str) -> None:
        """``ctx.send(target.owner, EdgeAdd(target, endpoint, kind))``.

        The cache key is the interned row ids of both refs — a short
        int tuple that hashes far cheaper than the refs themselves — so
        repeated stable-flow emissions skip both payload construction
        and the scheduler cache's tuple hashing.  Misses go through
        ``ctx.send`` so the instance is the canonical one; never-interned
        refs (``iid == -1`` is not unique) always take that path.
        """
        ti = target.iid
        ei = endpoint.iid
        if ti < 0 or ei < 0:
            ctx.send(target.owner, EdgeAdd(target, endpoint, kind))
            return
        fast = self._fast
        key = (ctx.self_key, ti, ei, kind)
        env = fast.get(key)
        if env is None:
            ctx.send(target.owner, EdgeAdd(target, endpoint, kind))
            if len(fast) >= _FAST_CACHE_MAX:
                fast.clear()
            fast[key] = ctx._outbox[-1]
        else:
            outbox.append(env)

    def _send_cand(
        self, ctx, outbox, target: NodeRef, cand: NodeRef, side: str, wrap: bool = False
    ) -> None:
        """``ctx.send(target.owner, RealCandidate(target, cand, side, wrap))``."""
        ti = target.iid
        ci = cand.iid
        if ti < 0 or ci < 0:
            ctx.send(target.owner, RealCandidate(target, cand, side, wrap))
            return
        fast = self._fast
        key = (ctx.self_key, ti, ci, side, wrap)
        env = fast.get(key)
        if env is None:
            ctx.send(target.owner, RealCandidate(target, cand, side, wrap))
            if len(fast) >= _FAST_CACHE_MAX:
                fast.clear()
            fast[key] = ctx._outbox[-1]
        else:
            outbox.append(env)

    # ------------------------------------------------------------------
    # phase: delayed-assignment delivery
    # ------------------------------------------------------------------
    def _phase_apply_inbox(self, peers: List[list]) -> None:
        # the scalar _apply_inbox with delivery coalesced: EdgeAdds are
        # grouped per (level, kind) and landed with one bulk set.update
        # (edge-adds write only the neighbor sets, candidate adoption
        # reads only the pointer slots, so the two commute; candidates
        # keep their relative order among themselves)
        for it in peers:
            actor, inbox = it[0], it[1]
            state = actor.state
            skip = actor._inbox_skip
            if skip is not None and skip[1] == inbox:
                canon = state.canonical()
                canon0 = skip[0]
                if canon0 is canon or canon0 == canon:
                    # proven no-op: the cached apply of this exact inbox
                    # on this exact state mutated nothing, bumped nothing
                    actor._inbox_skip = (canon, inbox)
                    continue
            ver0 = state.version
            nodes = state.nodes
            peer_id = state.peer_id
            deliver_candidate = actor._deliver_candidate
            groups: Dict[tuple, list] = {}
            setdefault = groups.setdefault
            for env in inbox:
                payload = env.payload
                cls = type(payload)
                if cls is EdgeAdd:
                    target = payload.target
                    if target.owner != peer_id:
                        raise LookupError(
                            f"message for {target!r} delivered to peer {peer_id}"
                        )
                    setdefault((target.level, payload.kind), []).append(
                        payload.endpoint
                    )
                elif cls is RealCandidate:
                    deliver_candidate(payload)
                else:
                    # NeighborIntro / no-plane AppPayload / unknown: rare
                    # paths — defer to the scalar handler (same errors)
                    actor._apply_inbox([env])
            for (level, kind), endpoints in groups.items():
                node = nodes.get(level)
                if node is None:
                    node = nodes[max(nodes)]
                if kind == KIND_UNMARKED:
                    refs = node._nu
                elif kind == KIND_RING:
                    refs = node._nr
                elif kind == KIND_CONNECTION:
                    refs = node._nc
                else:  # pragma: no cover - protocol violation
                    raise ValueError(f"unknown edge kind {kind!r}")
                add = set(endpoints)
                add.discard(node.ref)  # self-edge sanitation [D10]
                if add:
                    refs.update(add)
            if state.version == ver0 and actor.counters.fires == it[4]:
                actor._inbox_skip = (state.canonical(), inbox)
            else:
                actor._inbox_skip = None

    # ------------------------------------------------------------------
    # phase: purge [D7]/[D11]
    # ------------------------------------------------------------------
    def _phase_purge(self, peers: List[list]) -> None:
        # one verdict memo for the whole batch: all peers of a network
        # share the same oracle, and a verdict is a pure function of the
        # ref given the frozen round-start snapshot.  ``ok`` holds every
        # ref already judged alive; a set whose members are all in it
        # (and which does not contain a self-ref) provably purges
        # nothing, and both checks run at C speed.
        verdicts: Dict[NodeRef, str] = {}
        ok: set = set()
        for it in peers:
            actor = it[0]
            alive = actor._ref_alive
            counters = actor.counters
            state = actor.state
            for level in sorted(state.nodes):
                node = state.nodes[level]
                nref = node.ref
                for refs in (node._nu, node._nr, node._nc):
                    if nref not in refs and ok.issuperset(refs):
                        continue
                    bad: Optional[List[NodeRef]] = None
                    for r in refs:
                        if r == nref:
                            if bad is None:
                                bad = []
                            bad.append(r)
                            continue
                        v = verdicts.get(r)
                        if v is None:
                            v = verdicts[r] = alive(r)
                            if v == REF_OK:
                                ok.add(r)
                        if v != REF_OK:
                            if bad is None:
                                bad = []
                            bad.append(r)
                    if bad is None:
                        continue
                    for ref in bad:
                        refs.discard(ref)
                        if ref == nref:
                            continue
                        if verdicts[ref] == REF_PHANTOM:
                            real = NodeRef.real(ref.owner)
                            if real != nref:
                                refs.add(real)
                            counters.bump("purge_phantom")
                        else:
                            counters.bump("purge_dead")
                for attr, ref in (
                    ("rl", node._rl),
                    ("rr", node._rr),
                    ("wrap_rl", node._wrap_rl),
                    ("wrap_rr", node._wrap_rr),
                ):
                    if ref is None:
                        continue
                    if ref.level != 0 or ref == nref:
                        setattr(node, attr, None)
                        counters.bump("purge_slot")
                        continue
                    v = verdicts.get(ref)
                    if v is None:
                        v = verdicts[ref] = alive(ref)
                    if v != REF_OK:
                        setattr(node, attr, None)
                        counters.bump("purge_slot")
                nk = nref._key
                rl = node._rl
                if rl is not None and rl._key >= nk:
                    node.rl = None
                rr = node._rr
                if rr is not None and rr._key <= nk:
                    node.rr = None

    # ------------------------------------------------------------------
    # phase: rule 3 — closest real neighbor
    # ------------------------------------------------------------------
    def _phase_rule3(self, peers: List[list]) -> None:
        for it in peers:
            actor, ctx = it[0], it[2]
            cfg = actor.config
            if not cfg.closest_real:
                continue
            state = actor.state
            outbox = ctx._outbox
            wrap = cfg.wrap_pointers
            eco = cfg.economical_broadcast
            reals = self._sorted_refs(
                [r for r in state.knowledge() if r.level == 0]
            )
            real_keys = [r._key for r in reals]
            nreals = len(reals)
            for level in sorted(state.nodes):
                node = state.nodes[level]
                ui = node.ref
                uik = ui._key
                idx = bisect_left(real_keys, uik)
                rl = reals[idx - 1] if idx > 0 else None
                if idx < nreals and reals[idx] == ui:
                    rr = reals[idx + 1] if idx + 1 < nreals else None
                else:
                    rr = reals[idx] if idx < nreals else None
                node.rl, node.rr = rl, rr
                if rl is not None:
                    node._nu.add(rl)
                if rr is not None:
                    node._nu.add(rr)
                if wrap:
                    actor._maintain_wrap_slots(node)
                nu_sorted = self._sorted_refs(node._nu)
                if rl is not None:
                    rlk = rl._key
                    recipients = []
                    for y in nu_sorted:
                        if y == rl:
                            continue
                        yk = y._key
                        if yk > uik or rlk < yk < uik:
                            recipients.append(y)
                    for y in recipients:
                        if eco and rl == node.bcast_rl and (
                            node.bcast_rl_targets is not None
                            and y in node.bcast_rl_targets
                        ):
                            continue
                        self._send_cand(ctx, outbox, y, rl, SIDE_LEFT)
                    if eco:
                        node.bcast_rl = rl
                        node.bcast_rl_targets = frozenset(recipients)
                elif eco:
                    node.bcast_rl = None
                    node.bcast_rl_targets = None
                if rr is not None:
                    rrk = rr._key
                    recipients = []
                    for y in nu_sorted:
                        if y == rr:
                            continue
                        yk = y._key
                        if yk < uik or uik < yk < rrk:
                            recipients.append(y)
                    for y in recipients:
                        if eco and rr == node.bcast_rr and (
                            node.bcast_rr_targets is not None
                            and y in node.bcast_rr_targets
                        ):
                            continue
                        self._send_cand(ctx, outbox, y, rr, SIDE_RIGHT)
                    if eco:
                        node.bcast_rr = rr
                        node.bcast_rr_targets = frozenset(recipients)
                elif eco:
                    node.bcast_rr = None
                    node.bcast_rr_targets = None
                if wrap:
                    self._relay_wrap(node, ctx, outbox)

    def _relay_wrap(self, node, ctx, outbox) -> None:
        """Scalar ``_relay_wrap`` on the fast send path."""
        ui = node.ref
        if node.rr is None and node.wrap_rr is not None:
            lefts = [w for w in node.nu if w < ui]
            targets = set()
            if lefts:
                targets.add(max(lefts))
            if node.rl is not None:
                targets.add(node.rl)
            for t in sorted(targets):
                self._send_cand(ctx, outbox, t, node.wrap_rr, SIDE_RIGHT, wrap=True)
        if node.rl is None and node.wrap_rl is not None:
            rights = [w for w in node.nu if w > ui]
            targets = set()
            if rights:
                targets.add(min(rights))
            if node.rr is not None:
                targets.add(node.rr)
            for t in sorted(targets):
                self._send_cand(ctx, outbox, t, node.wrap_rl, SIDE_LEFT, wrap=True)

    # ------------------------------------------------------------------
    # phase: rule 4 — linearization + mirroring
    # ------------------------------------------------------------------
    def _phase_rule4(self, peers: List[list]) -> None:
        send_edge = self._send_edge
        for it in peers:
            actor, ctx = it[0], it[2]
            if not actor.config.linearize:
                continue
            state = actor.state
            outbox = ctx._outbox
            forwards = 0
            for level in sorted(state.nodes):
                node = state.nodes[level]
                ui = node.ref
                uik = ui._key
                nu = node._nu
                # one sort, split at ui — the scalar code sorts the left
                # and right halves separately
                snu = self._sorted_refs(nu)
                lefts: List[NodeRef] = []
                rights: List[NodeRef] = []
                for w in snu:
                    wk = w._key
                    if wk < uik:
                        lefts.append(w)
                    elif wk > uik:
                        rights.append(w)
                # forward pairs, closest-first (scalar iterates lefts in
                # descending order)
                for j in range(len(lefts) - 1, 0, -1):
                    a = lefts[j]
                    b = lefts[j - 1]
                    send_edge(ctx, outbox, a, b, KIND_UNMARKED)
                    nu.discard(b)
                    forwards += 1
                for j in range(len(rights) - 1):
                    a = rights[j]
                    b = rights[j + 1]
                    send_edge(ctx, outbox, a, b, KIND_UNMARKED)
                    nu.discard(b)
                    forwards += 1
                # mirroring over whatever remains in nu (the two closest
                # neighbors, plus pathological equal-to-ui refs — match
                # the scalar re-scan exactly rather than assuming)
                for v in self._sorted_refs(nu):
                    send_edge(ctx, outbox, v, ui, KIND_UNMARKED)
                if node._rl is not None:
                    nu.add(node._rl)
                if node._rr is not None:
                    nu.add(node._rr)
            if forwards:
                actor.counters.bump("rule4_forward", forwards)

    # ------------------------------------------------------------------
    # phase: rule 5 — ring edges
    # ------------------------------------------------------------------
    def _phase_rule5(self, peers: List[list]) -> None:
        send_edge = self._send_edge
        for it in peers:
            actor, ctx = it[0], it[2]
            cfg = actor.config
            if not cfg.ring:
                continue
            state = actor.state
            outbox = ctx._outbox
            counters = actor.counters
            wrap = cfg.wrap_pointers
            knowledge = state.knowledge()
            kmin = min(knowledge, key=_KEY)
            kmax = max(knowledge, key=_KEY)
            reals = state.known_reals(knowledge)
            for level in sorted(state.nodes):
                node = state.nodes[level]
                ui = node.ref
                uik = ui._key
                has_left = has_right = False
                for w in node._nu:
                    wk = w._key
                    if wk < uik:
                        has_left = True
                    elif wk > uik:
                        has_right = True
                if not has_left and kmax != ui:
                    send_edge(ctx, outbox, kmax, ui, KIND_RING)
                    counters.bump("rule5_create")
                if not has_right and kmin != ui:
                    send_edge(ctx, outbox, kmin, ui, KIND_RING)
                    counters.bump("rule5_create")
                nr = node._nr
                if not nr:
                    continue
                for w in self._sorted_refs(nr):
                    if w == ui:
                        nr.discard(w)
                        continue
                    wk = w._key
                    if wk > uik:
                        x = kmax
                        xk = x._key
                        for y in nr:
                            yk = y._key
                            if yk > xk:
                                x = y
                                xk = yk
                        if xk > wk:
                            send_edge(ctx, outbox, x, w, KIND_UNMARKED)
                            nr.discard(w)
                            counters.bump("rule5_convert")
                        elif kmin != ui:
                            send_edge(ctx, outbox, kmin, w, KIND_RING)
                            nr.discard(w)
                            counters.bump("rule5_forward")
                        else:
                            if wrap and reals:
                                self._send_cand(
                                    ctx, outbox, w, reals[0], SIDE_RIGHT, wrap=True
                                )
                    else:
                        x = kmin
                        xk = x._key
                        for y in nr:
                            yk = y._key
                            if yk < xk:
                                x = y
                                xk = yk
                        if xk < wk:
                            send_edge(ctx, outbox, x, w, KIND_UNMARKED)
                            nr.discard(w)
                            counters.bump("rule5_convert")
                        elif kmax != ui:
                            send_edge(ctx, outbox, kmax, w, KIND_RING)
                            nr.discard(w)
                            counters.bump("rule5_forward")
                        else:
                            if wrap and reals:
                                self._send_cand(
                                    ctx, outbox, w, reals[-1], SIDE_LEFT, wrap=True
                                )

    # ------------------------------------------------------------------
    # phase: rule 6 — connection edges
    # ------------------------------------------------------------------
    def _phase_rule6(self, peers: List[list]) -> None:
        send_edge = self._send_edge
        for it in peers:
            actor, ctx = it[0], it[2]
            if not actor.config.connection:
                continue
            state = actor.state
            outbox = ctx._outbox
            nodes = state.nodes
            # the sibling chain only depends on the level set (virtual
            # ids are deterministic per level), so the sorted chain is
            # memoized per peer against the level-key tuple
            levels_key = tuple(nodes)
            cached = actor._batched_sibs
            if cached is not None and cached[0] == levels_key:
                sibs = cached[1]
            else:
                sibs = self._sorted_refs([n.ref for n in nodes.values()])
                actor._batched_sibs = (levels_key, sibs)
            for a, b in zip(sibs, sibs[1:]):
                nodes[a.level].nc.add(b)
            forward = backward = 0
            for level in sorted(nodes):
                node = nodes[level]
                nc = node._nc
                if not nc:
                    continue
                ui = node.ref
                if len(nc) <= 4:
                    # few connection edges (typically just the sibling
                    # chain): find each closest known predecessor by a
                    # linear key scan instead of sorting nu + sibs
                    for v in self._sorted_refs(nc):
                        if v == ui:
                            nc.discard(v)
                            continue
                        vk = v._key
                        w = None
                        wk = None
                        for c in node._nu:
                            ck = c._key
                            if ck < vk and (wk is None or ck > wk):
                                w = c
                                wk = ck
                        for c in sibs:
                            ck = c._key
                            if ck < vk and (wk is None or ck > wk):
                                w = c
                                wk = ck
                        if w is None or w == ui:
                            send_edge(ctx, outbox, v, ui, KIND_UNMARKED)
                            nc.discard(v)
                            backward += 1
                        else:
                            send_edge(ctx, outbox, w, v, KIND_CONNECTION)
                            nc.discard(v)
                            forward += 1
                    continue
                cands = self._sorted_refs([*node._nu, *sibs])
                cand_keys = [c._key for c in cands]
                for v in self._sorted_refs(nc):
                    if v == ui:
                        nc.discard(v)
                        continue
                    idx = bisect_left(cand_keys, v._key)
                    w = cands[idx - 1] if idx > 0 else None
                    if w is None or w == ui:
                        send_edge(ctx, outbox, v, ui, KIND_UNMARKED)
                        nc.discard(v)
                        backward += 1
                    else:
                        send_edge(ctx, outbox, w, v, KIND_CONNECTION)
                        nc.discard(v)
                        forward += 1
            if forward:
                actor.counters.bump("rule6_forward", forward)
            if backward:
                actor.counters.bump("rule6_backward", backward)
