"""Re-Chord: the paper's primary contribution.

* :mod:`repro.core.noderef` — identities of real and virtual nodes;
* :mod:`repro.core.state` — per-peer protocol state (sibling set and the
  typed neighborhoods ``Nu``/``Nr``/``Nc`` plus real-pointer slots);
* :mod:`repro.core.events` — the delayed-assignment messages;
* :mod:`repro.core.rules` — rule configuration and firing counters;
* :mod:`repro.core.protocol` — the six self-stabilization rules (the
  per-peer actor);
* :mod:`repro.core.network` — the top-level facade: build a network from
  any initial topology, run rounds, join/leave/crash, detect stability;
* :mod:`repro.core.ideal` — the unique target topology for a live peer
  set, used as the correctness oracle;
* :mod:`repro.core.checker` — the local-checkability predicate;
* :mod:`repro.core.metrics` — edge/node/message accounting for the
  experiments.
"""

from repro.core.noderef import NodeRef
from repro.core.rules import RuleConfig, RuleCounters
from repro.core.network import ReChordNetwork
from repro.core.ideal import IdealTopology, compute_ideal
from repro.core.checker import local_check_peer, locally_checkable_stable
from repro.core.metrics import NetworkMetrics

__all__ = [
    "NodeRef",
    "RuleConfig",
    "RuleCounters",
    "ReChordNetwork",
    "IdealTopology",
    "compute_ideal",
    "local_check_peer",
    "locally_checkable_stable",
    "NetworkMetrics",
]
