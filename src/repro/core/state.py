"""Per-peer protocol state.

A peer simulates its real node ``u_0`` plus virtual nodes ``u_1..u_m``
(the *siblings*).  Every simulated node keeps the outgoing neighborhoods
of Section 2.2:

* ``nu`` — unmarked edges ``E_u`` (includes the closest-real pointers
  ``rl``/``rr`` exactly as in the paper's rule 3);
* ``nr`` — ring edges ``E_r``;
* ``nc`` — connection edges ``E_c``;
* ``wrap_rl``/``wrap_rr`` — the wrap-around closest-real pointers of the
  seam extension (DESIGN.md [D6]); these live outside ``nu`` so the
  linearization never tries to "sort" an intentionally far edge;
* ``rl``/``rr`` — cached results of rule 3's closest-real computation,
  re-derived every round; they parameterize the receiver-side guards of
  rule 3's candidate messages.

All mutation happens through the owning peer's rule pipeline; this module
only provides the containers plus the derived *knowledge* queries
(``N``/``K`` in DESIGN.md [D5]).

Activity tracking
-----------------

Every :class:`PeerState` carries a cheap monotonic ``version`` counter
that is bumped by **every state-changing operation** — set membership
changes (through :class:`TrackedSet`), pointer-slot writes (through the
property setters of :class:`LocalNode`), and level creation/deletion.
No-op writes (adding a present element, re-assigning an equal pointer)
do *not* bump, so a peer whose round left its state identical keeps its
version.  The activity-tracked scheduler uses the counter as a cheap
"possibly changed" probe: only when the version moved does it pay for an
exact :meth:`PeerState.canonical` comparison.  Note that a steady-state
round may bump the version transiently (e.g. connection edges are
delivered into ``nc`` and re-forwarded out of it within one step), which
is why the counter alone is a *conservative* signal, never a proof of
change.
"""

from __future__ import annotations

import copy as _copy
from operator import attrgetter
from typing import Dict, Iterable, List, Optional, Set

from repro.core.noderef import NodeRef, make_ref
from repro.idspace.ring import IdSpace

#: sort-key accessor (C-level tuple compare beats NodeRef.__lt__ dispatch)
_KEY = attrgetter("_key")


class TrackedSet(set):
    """A ``set`` that bumps its owner's state version on real mutations.

    Only *effective* mutations bump (adding an element already present or
    discarding a missing one is a no-op).  Results of binary operators
    (``|``, ``&``, …) on CPython are plain ``set`` objects, so derived
    collections never alias the tracking; the ``_owner = None`` class
    default keeps any stray untracked instance safe to mutate.
    """

    _owner: Optional["PeerState"] = None

    def __init__(self, owner: Optional["PeerState"] = None, iterable: Iterable = ()) -> None:
        super().__init__(iterable)
        self._owner = owner

    # -- effective-mutation wrappers -----------------------------------
    def add(self, element) -> None:
        if element not in self:
            set.add(self, element)
            owner = self._owner
            if owner is not None:
                owner.version += 1

    def discard(self, element) -> None:
        if element in self:
            set.discard(self, element)
            owner = self._owner
            if owner is not None:
                owner.version += 1

    def remove(self, element) -> None:
        set.remove(self, element)  # raises KeyError on a miss, like set
        owner = self._owner
        if owner is not None:
            owner.version += 1

    def pop(self):
        element = set.pop(self)
        owner = self._owner
        if owner is not None:
            owner.version += 1
        return element

    def clear(self) -> None:
        if self:
            set.clear(self)
            owner = self._owner
            if owner is not None:
                owner.version += 1

    def update(self, *others) -> None:
        before = len(self)
        set.update(self, *others)
        if len(self) != before:
            owner = self._owner
            if owner is not None:
                owner.version += 1

    __ior__ = None  # replaced below; set.__ior__ would bypass tracking

    def difference_update(self, *others) -> None:
        before = len(self)
        set.difference_update(self, *others)
        if len(self) != before:
            owner = self._owner
            if owner is not None:
                owner.version += 1

    def intersection_update(self, *others) -> None:
        before = len(self)
        set.intersection_update(self, *others)
        if len(self) != before:
            owner = self._owner
            if owner is not None:
                owner.version += 1

    def symmetric_difference_update(self, other) -> None:
        # materialize once: `other` may be a one-shot iterator, and the
        # length may be preserved while content changes
        other = set(other)
        changed = bool(other - self) or bool(self & other)
        set.symmetric_difference_update(self, other)
        if changed:
            owner = self._owner
            if owner is not None:
                owner.version += 1

    def __deepcopy__(self, memo: dict) -> "TrackedSet":
        new = TrackedSet(_copy.deepcopy(self._owner, memo))
        for element in self:
            set.add(new, _copy.deepcopy(element, memo))
        return new

    def __reduce__(self):
        # the default set reduction would rebuild via TrackedSet(items),
        # binding the element list to the ``owner`` parameter and
        # silently producing an EMPTY set under pickle / copy.copy
        return (_rebuild_tracked_set, (list(self), self._owner))


def _rebuild_tracked_set(items: list, owner: Optional["PeerState"]) -> "TrackedSet":
    """Pickle/copy reconstructor for :class:`TrackedSet`."""
    return TrackedSet(owner, items)


def _ior(self: TrackedSet, other) -> TrackedSet:
    self.update(other)
    return self


def _isub(self: TrackedSet, other) -> TrackedSet:
    self.difference_update(other)
    return self


def _iand(self: TrackedSet, other) -> TrackedSet:
    self.intersection_update(other)
    return self


def _ixor(self: TrackedSet, other) -> TrackedSet:
    self.symmetric_difference_update(other)
    return self


TrackedSet.__ior__ = _ior
TrackedSet.__isub__ = _isub
TrackedSet.__iand__ = _iand
TrackedSet.__ixor__ = _ixor


def _tracked_set_slot(slot: str) -> property:
    """Neighborhood-set property: assignment rewraps into a TrackedSet."""

    def fget(self: "LocalNode") -> TrackedSet:
        return getattr(self, slot)

    def fset(self: "LocalNode", value: Iterable) -> None:
        old = getattr(self, slot, None)
        if value is old:
            return  # in-place operators (|=) re-assign the same object
        new = TrackedSet(self._state, value)
        setattr(self, slot, new)
        owner = self._state
        if owner is not None and (old is None or set.__ne__(old, new)):
            owner.version += 1

    return property(fget, fset)


def _tracked_scalar_slot(slot: str) -> property:
    """Pointer-slot property: assignment bumps only on a real change."""

    def fget(self: "LocalNode"):
        return getattr(self, slot)

    def fset(self: "LocalNode", value) -> None:
        if getattr(self, slot) != value:
            setattr(self, slot, value)
            owner = self._state
            if owner is not None:
                owner.version += 1

    return property(fget, fset)


class LocalNode:
    """State of one simulated node (real or virtual).

    The ``bcast_*`` fields are only used by the *economical broadcast*
    extension (``RuleConfig.economical_broadcast``): they memoize the
    last announced closest-real values and recipients so rule 3 can
    suppress redundant re-announcements.  They are protocol state (they
    influence the dynamics when the extension is on) and therefore part
    of the canonical fingerprint.

    All mutable fields route through tracking wrappers (see the module
    docstring): the neighborhoods are :class:`TrackedSet` instances and
    the pointer slots are properties that bump the owning peer's version
    only on effective changes.
    """

    __slots__ = (
        "ref",
        "_state",
        "_nu",
        "_nr",
        "_nc",
        "_rl",
        "_rr",
        "_wrap_rl",
        "_wrap_rr",
        "_bcast_rl",
        "_bcast_rl_targets",
        "_bcast_rr",
        "_bcast_rr_targets",
    )

    def __init__(self, ref: NodeRef, state: Optional["PeerState"] = None) -> None:
        self.ref = ref
        self._state = state
        self._nu = TrackedSet(state)
        self._nr = TrackedSet(state)
        self._nc = TrackedSet(state)
        self._rl: Optional[NodeRef] = None
        self._rr: Optional[NodeRef] = None
        self._wrap_rl: Optional[NodeRef] = None
        self._wrap_rr: Optional[NodeRef] = None
        self._bcast_rl: Optional[NodeRef] = None
        self._bcast_rl_targets: Optional[frozenset] = None
        self._bcast_rr: Optional[NodeRef] = None
        self._bcast_rr_targets: Optional[frozenset] = None

    nu = _tracked_set_slot("_nu")
    nr = _tracked_set_slot("_nr")
    nc = _tracked_set_slot("_nc")
    rl = _tracked_scalar_slot("_rl")
    rr = _tracked_scalar_slot("_rr")
    wrap_rl = _tracked_scalar_slot("_wrap_rl")
    wrap_rr = _tracked_scalar_slot("_wrap_rr")
    bcast_rl = _tracked_scalar_slot("_bcast_rl")
    bcast_rl_targets = _tracked_scalar_slot("_bcast_rl_targets")
    bcast_rr = _tracked_scalar_slot("_bcast_rr")
    bcast_rr_targets = _tracked_scalar_slot("_bcast_rr_targets")

    def wrap_refs(self) -> List[NodeRef]:
        """The wrap pointers that are set, as a list."""
        out = []
        if self._wrap_rl is not None:
            out.append(self._wrap_rl)
        if self._wrap_rr is not None:
            out.append(self._wrap_rr)
        return out

    def all_out_refs(self) -> Set[NodeRef]:
        """Every outgoing reference of this node (all kinds + wraps)."""
        out = set(self._nu)
        out |= self._nr
        out |= self._nc
        out.update(self.wrap_refs())
        return out

    def canonical(self) -> tuple:
        """Deterministic state tuple for fingerprints."""
        def k(ref: Optional[NodeRef]) -> tuple | None:
            return None if ref is None else ref.key

        def ks(refs: Optional[frozenset]) -> tuple | None:
            return None if refs is None else tuple(sorted(r.key for r in refs))

        return (
            self.ref.key,
            tuple(sorted(r.key for r in self._nu)),
            tuple(sorted(r.key for r in self._nr)),
            tuple(sorted(r.key for r in self._nc)),
            k(self._rl),
            k(self._rr),
            k(self._wrap_rl),
            k(self._wrap_rr),
            k(self._bcast_rl),
            ks(self._bcast_rl_targets),
            k(self._bcast_rr),
            ks(self._bcast_rr_targets),
        )


class PeerState:
    """All simulated nodes of one peer, plus derived knowledge queries."""

    __slots__ = ("peer_id", "space", "nodes", "version", "_canon")

    def __init__(self, peer_id: int, space: IdSpace) -> None:
        space.check_id(peer_id)
        self.peer_id = peer_id
        self.space = space
        #: monotonic mutation counter (see module docstring); bumped by
        #: every effective state change, compared cheaply by the
        #: activity-tracked scheduler
        self.version = 0
        #: (version, tuple) memo of :meth:`canonical` — valid exactly
        #: while the version has not moved, because every effective
        #: mutation bumps it (the same invariant the incremental engine
        #: already relies on)
        self._canon = (-1, None)
        self.nodes: Dict[int, LocalNode] = {
            0: LocalNode(make_ref(space, peer_id, 0), self)
        }

    # ------------------------------------------------------------------
    # sibling management
    # ------------------------------------------------------------------
    @property
    def real_ref(self) -> NodeRef:
        """The ref of the real node ``u_0``."""
        return self.nodes[0].ref

    def levels(self) -> List[int]:
        """Existing levels, sorted ascending."""
        return sorted(self.nodes)

    def max_level(self) -> int:
        """The highest existing level (``u_m``'s level; 0 only pre-step)."""
        return max(self.nodes)

    def ensure_level(self, level: int) -> LocalNode:
        """Create the node at ``level`` (empty neighborhoods) if missing."""
        node = self.nodes.get(level)
        if node is None:
            node = LocalNode(make_ref(self.space, self.peer_id, level), self)
            self.nodes[level] = node
            self.version += 1
        return node

    def drop_level(self, level: int) -> LocalNode:
        """Remove and return the node at ``level`` (never level 0)."""
        if level == 0:
            raise ValueError("the real node cannot be dropped")
        node = self.nodes.pop(level)
        self.version += 1
        return node

    def sibling_refs(self) -> List[NodeRef]:
        """Refs of all existing siblings, in linear (key) order."""
        return sorted((n.ref for n in self.nodes.values()), key=_KEY)

    def resolve(self, ref: NodeRef) -> Optional[LocalNode]:
        """The local node a message to ``ref`` lands on.

        Exact level if it exists; otherwise the current highest level
        ``u_m``, which inherited deleted nodes' neighborhoods (DESIGN.md
        [D8]).  Returns ``None`` only if the ref names another peer.
        """
        if ref.owner != self.peer_id:
            return None
        node = self.nodes.get(ref.level)
        if node is not None:
            return node
        return self.nodes[self.max_level()]

    # ------------------------------------------------------------------
    # knowledge (the paper's N / DESIGN.md's K)
    # ------------------------------------------------------------------
    def knowledge(self) -> Set[NodeRef]:
        """Every node ref this peer can name: siblings + all out-refs."""
        known: Set[NodeRef] = {n.ref for n in self.nodes.values()}
        for node in self.nodes.values():
            known |= node._nu
            known |= node._nr
            known |= node._nc
            known.update(node.wrap_refs())
        return known

    def referenced_owners(self) -> Set[int]:
        """Owner ids of every ref whose liveness this peer's step consults.

        The reverse-dependency index of the incremental engine: a change
        to one of these owners (crash, graceful leave, or a level-set
        change that flips an ``ok``/``phantom`` verdict) can alter this
        peer's purge behavior, so the peer must be re-activated.
        """
        owners: Set[int] = set()
        for node in self.nodes.values():
            for ref in node._nu:
                owners.add(ref.owner)
            for ref in node._nr:
                owners.add(ref.owner)
            for ref in node._nc:
                owners.add(ref.owner)
            for ref in (node._rl, node._rr, node._wrap_rl, node._wrap_rr):
                if ref is not None:
                    owners.add(ref.owner)
        return owners

    def known_reals(self, knowledge: Optional[Iterable[NodeRef]] = None) -> List[NodeRef]:
        """All *real* refs in the peer's knowledge, sorted linearly."""
        source = self.knowledge() if knowledge is None else knowledge
        return sorted((r for r in source if r.level == 0), key=_KEY)

    def closest_real_gap(self) -> int:
        """Clockwise distance to the nearest known real node (≠ self).

        Returns the full ring size when no other real node is known —
        the ``m = 1`` case of rule 1.
        """
        best = self.space.size
        me = self.peer_id
        for ref in self.known_reals():
            if ref.owner == me:
                continue
            d = self.space.distance_cw(me, ref.id)
            if 0 < d < best:
                best = d
        return best

    # ------------------------------------------------------------------
    # snapshots
    # ------------------------------------------------------------------
    def canonical(self) -> tuple:
        """Deterministic peer-state tuple for fingerprints.

        Cached keyed on :attr:`version`: quiescence probes and global
        fingerprints of unchanged peers return the memoized tuple
        instead of rebuilding it — the scan cost of a full fingerprint
        then scales with the peers that actually changed.
        """
        cached_version, cached = self._canon
        if cached_version == self.version:
            return cached
        value = (
            self.peer_id,
            tuple(self.nodes[level].canonical() for level in sorted(self.nodes)),
        )
        self._canon = (self.version, value)
        return value

    def edge_count(self) -> int:
        """Total outgoing edges of this peer (all kinds + wrap pointers)."""
        return sum(
            len(n._nu) + len(n._nr) + len(n._nc) + len(n.wrap_refs())
            for n in self.nodes.values()
        )
