"""Per-peer protocol state.

A peer simulates its real node ``u_0`` plus virtual nodes ``u_1..u_m``
(the *siblings*).  Every simulated node keeps the outgoing neighborhoods
of Section 2.2:

* ``nu`` — unmarked edges ``E_u`` (includes the closest-real pointers
  ``rl``/``rr`` exactly as in the paper's rule 3);
* ``nr`` — ring edges ``E_r``;
* ``nc`` — connection edges ``E_c``;
* ``wrap_rl``/``wrap_rr`` — the wrap-around closest-real pointers of the
  seam extension (DESIGN.md [D6]); these live outside ``nu`` so the
  linearization never tries to "sort" an intentionally far edge;
* ``rl``/``rr`` — cached results of rule 3's closest-real computation,
  re-derived every round; they parameterize the receiver-side guards of
  rule 3's candidate messages.

All mutation happens through the owning peer's rule pipeline; this module
only provides the containers plus the derived *knowledge* queries
(``N``/``K`` in DESIGN.md [D5]).
"""

from __future__ import annotations

from operator import attrgetter
from typing import Dict, Iterable, List, Optional, Set

from repro.core.noderef import NodeRef, make_ref
from repro.idspace.ring import IdSpace

#: sort-key accessor (C-level tuple compare beats NodeRef.__lt__ dispatch)
_KEY = attrgetter("_key")


class LocalNode:
    """State of one simulated node (real or virtual).

    The ``bcast_*`` fields are only used by the *economical broadcast*
    extension (``RuleConfig.economical_broadcast``): they memoize the
    last announced closest-real values and recipients so rule 3 can
    suppress redundant re-announcements.  They are protocol state (they
    influence the dynamics when the extension is on) and therefore part
    of the canonical fingerprint.
    """

    __slots__ = (
        "ref",
        "nu",
        "nr",
        "nc",
        "rl",
        "rr",
        "wrap_rl",
        "wrap_rr",
        "bcast_rl",
        "bcast_rl_targets",
        "bcast_rr",
        "bcast_rr_targets",
    )

    def __init__(self, ref: NodeRef) -> None:
        self.ref = ref
        self.nu: Set[NodeRef] = set()
        self.nr: Set[NodeRef] = set()
        self.nc: Set[NodeRef] = set()
        self.rl: Optional[NodeRef] = None
        self.rr: Optional[NodeRef] = None
        self.wrap_rl: Optional[NodeRef] = None
        self.wrap_rr: Optional[NodeRef] = None
        self.bcast_rl: Optional[NodeRef] = None
        self.bcast_rl_targets: Optional[frozenset] = None
        self.bcast_rr: Optional[NodeRef] = None
        self.bcast_rr_targets: Optional[frozenset] = None

    def wrap_refs(self) -> List[NodeRef]:
        """The wrap pointers that are set, as a list."""
        out = []
        if self.wrap_rl is not None:
            out.append(self.wrap_rl)
        if self.wrap_rr is not None:
            out.append(self.wrap_rr)
        return out

    def all_out_refs(self) -> Set[NodeRef]:
        """Every outgoing reference of this node (all kinds + wraps)."""
        out = set(self.nu)
        out |= self.nr
        out |= self.nc
        out.update(self.wrap_refs())
        return out

    def canonical(self) -> tuple:
        """Deterministic state tuple for fingerprints."""
        def k(ref: Optional[NodeRef]) -> tuple | None:
            return None if ref is None else ref.key

        def ks(refs: Optional[frozenset]) -> tuple | None:
            return None if refs is None else tuple(sorted(r.key for r in refs))

        return (
            self.ref.key,
            tuple(sorted(r.key for r in self.nu)),
            tuple(sorted(r.key for r in self.nr)),
            tuple(sorted(r.key for r in self.nc)),
            k(self.rl),
            k(self.rr),
            k(self.wrap_rl),
            k(self.wrap_rr),
            k(self.bcast_rl),
            ks(self.bcast_rl_targets),
            k(self.bcast_rr),
            ks(self.bcast_rr_targets),
        )


class PeerState:
    """All simulated nodes of one peer, plus derived knowledge queries."""

    __slots__ = ("peer_id", "space", "nodes")

    def __init__(self, peer_id: int, space: IdSpace) -> None:
        space.check_id(peer_id)
        self.peer_id = peer_id
        self.space = space
        self.nodes: Dict[int, LocalNode] = {0: LocalNode(make_ref(space, peer_id, 0))}

    # ------------------------------------------------------------------
    # sibling management
    # ------------------------------------------------------------------
    @property
    def real_ref(self) -> NodeRef:
        """The ref of the real node ``u_0``."""
        return self.nodes[0].ref

    def levels(self) -> List[int]:
        """Existing levels, sorted ascending."""
        return sorted(self.nodes)

    def max_level(self) -> int:
        """The highest existing level (``u_m``'s level; 0 only pre-step)."""
        return max(self.nodes)

    def ensure_level(self, level: int) -> LocalNode:
        """Create the node at ``level`` (empty neighborhoods) if missing."""
        node = self.nodes.get(level)
        if node is None:
            node = LocalNode(make_ref(self.space, self.peer_id, level))
            self.nodes[level] = node
        return node

    def drop_level(self, level: int) -> LocalNode:
        """Remove and return the node at ``level`` (never level 0)."""
        if level == 0:
            raise ValueError("the real node cannot be dropped")
        return self.nodes.pop(level)

    def sibling_refs(self) -> List[NodeRef]:
        """Refs of all existing siblings, in linear (key) order."""
        return sorted((n.ref for n in self.nodes.values()), key=_KEY)

    def resolve(self, ref: NodeRef) -> Optional[LocalNode]:
        """The local node a message to ``ref`` lands on.

        Exact level if it exists; otherwise the current highest level
        ``u_m``, which inherited deleted nodes' neighborhoods (DESIGN.md
        [D8]).  Returns ``None`` only if the ref names another peer.
        """
        if ref.owner != self.peer_id:
            return None
        node = self.nodes.get(ref.level)
        if node is not None:
            return node
        return self.nodes[self.max_level()]

    # ------------------------------------------------------------------
    # knowledge (the paper's N / DESIGN.md's K)
    # ------------------------------------------------------------------
    def knowledge(self) -> Set[NodeRef]:
        """Every node ref this peer can name: siblings + all out-refs."""
        known: Set[NodeRef] = {n.ref for n in self.nodes.values()}
        for node in self.nodes.values():
            known |= node.nu
            known |= node.nr
            known |= node.nc
            known.update(node.wrap_refs())
        return known

    def known_reals(self, knowledge: Optional[Iterable[NodeRef]] = None) -> List[NodeRef]:
        """All *real* refs in the peer's knowledge, sorted linearly."""
        source = self.knowledge() if knowledge is None else knowledge
        return sorted((r for r in source if r.level == 0), key=_KEY)

    def closest_real_gap(self) -> int:
        """Clockwise distance to the nearest known real node (≠ self).

        Returns the full ring size when no other real node is known —
        the ``m = 1`` case of rule 1.
        """
        best = self.space.size
        me = self.peer_id
        for ref in self.known_reals():
            if ref.owner == me:
                continue
            d = self.space.distance_cw(me, ref.id)
            if 0 < d < best:
                best = d
        return best

    # ------------------------------------------------------------------
    # snapshots
    # ------------------------------------------------------------------
    def canonical(self) -> tuple:
        """Deterministic peer-state tuple for fingerprints."""
        return (
            self.peer_id,
            tuple(self.nodes[level].canonical() for level in sorted(self.nodes)),
        )

    def edge_count(self) -> int:
        """Total outgoing edges of this peer (all kinds + wrap pointers)."""
        return sum(
            len(n.nu) + len(n.nr) + len(n.nc) + len(n.wrap_refs())
            for n in self.nodes.values()
        )
