"""Top-level Re-Chord network facade.

Builds a network from any initial topology, drives the synchronous rounds,
detects stabilization, and exposes the dynamic-membership operations
(join / graceful leave / crash) analyzed in Section 4 of the paper.

Stability detection: the rule dynamics are deterministic, so the network
is stable exactly when the global configuration — all peer states *plus*
the in-flight messages — repeats between consecutive round boundaries.
The stable state is a constant flow (connection edges keep streaming,
ring-edge requests keep re-issuing), so peer states alone would not be a
sound criterion; the fingerprint therefore includes pending messages.

Engines
-------

Two kernels drive the rounds:

* ``incremental=True`` (default) — the **activity-tracked** kernel: the
  scheduler only executes peers that can behave differently from their
  last executed step (dirty set + steady-emission replay, see
  :mod:`repro.netsim.scheduler`), and ``run_until_stable`` detects the
  configuration fixpoint from the scheduler's O(active-work) change flag
  and rolling hash instead of recomputing the full O(n) fingerprint
  every round.  Post-churn re-stabilization then costs time proportional
  to the *touched neighborhood* (paper Theorems 4.1/4.2), not to ``n``.
* ``incremental=False`` — the legacy full-scan kernel: every peer steps
  every round and stability compares complete fingerprints.  Kept as the
  executable reference; the differential test suite asserts the two are
  round-for-round equivalent (identical reports, fingerprints and rule
  counters) on random topologies, corrupt starts and churn schedules.

The network layer owns the two pieces of tracking the scheduler cannot
see:

* **out-of-band mutations** — tests and membership events mutate peer
  state directly between rounds; every ``PeerState`` carries a version
  counter bumped by all mutating operations, and ``run_round`` sweeps it
  against the scheduler's last-noted versions to re-activate (and
  re-baseline) silently edited peers;
* **liveness-oracle dependencies** — a peer's purge step consults
  ``_ref_alive`` about *other* peers, so a membership event or a remote
  level-set change must re-activate exactly the peers holding references
  to the changed owner.  A reverse index (``owner -> watchers``) is
  maintained from each peer's ``referenced_owners()`` whenever its state
  changes at a boundary.
"""

from __future__ import annotations

import copy
from dataclasses import dataclass
from typing import Dict, List, Optional, Set, Tuple

from repro.core.events import NeighborIntro
from repro.core.ideal import IdealTopology, compute_ideal
from repro.core.noderef import NodeRef, make_ref
from repro.core.protocol import REF_DEAD, REF_OK, REF_PHANTOM, ReChordPeer
from repro.core.rules import RuleConfig, RuleCounters
from repro.core.state import PeerState
from repro.graphs.digraph import EdgeKind, TypedDigraph
from repro.idspace.ring import IdSpace
from repro.netsim.columnar import ColumnarScheduler
from repro.netsim.messages import Envelope
from repro.netsim.scheduler import SynchronousScheduler
from repro.netsim.timemodel import TimeModel
from repro.netsim.trace import TraceRecorder


@dataclass(frozen=True)
class StabilizationReport:
    """Outcome of :meth:`ReChordNetwork.run_until_stable`.

    ``rounds_to_stable`` is the paper's Fig. 6 metric: the index of the
    first round boundary whose configuration never changes again.
    ``rounds_to_almost`` is the first boundary at which all *desired*
    edges of the ideal topology exist (extra edges permitted); ``None``
    if almost-stability tracking was disabled.
    """

    rounds_to_stable: int
    rounds_to_almost: Optional[int]
    rounds_executed: int


class ReChordNetwork:
    """A set of Re-Chord peers driven by the synchronous kernel.

    The facade owns construction (peers, initial edges), round
    execution, stability detection, membership dynamics and the
    liveness oracle.  Minimal end-to-end use — two peers, one initial
    edge, run to the configuration fixpoint:

    >>> from repro.core.network import ReChordNetwork
    >>> net = ReChordNetwork()
    >>> a, b = net.add_peer(100), net.add_peer(9000)
    >>> net.add_initial_edge(net.ref(100), net.ref(9000))
    >>> report = net.run_until_stable()
    >>> net.matches_ideal()
    True
    >>> report.rounds_to_stable == report.rounds_executed - 1
    True

    Random weakly connected starts come from
    :func:`repro.workloads.initial.build_random_network`, adversity
    campaigns from :mod:`repro.scenarios`.
    """

    def __init__(
        self,
        space: Optional[IdSpace] = None,
        config: Optional[RuleConfig] = None,
        record_trace: bool = False,
        incremental: bool = True,
        time_model: Optional[TimeModel] = None,
        engine: Optional[str] = None,
        rule_backend: str = "scalar",
    ) -> None:
        self.space = space if space is not None else IdSpace()
        self.config = config if config is not None else RuleConfig()
        self.trace: Optional[TraceRecorder] = TraceRecorder() if record_trace else None
        if engine is None:
            engine = "incremental" if incremental else "full"
        if engine not in ("full", "incremental", "columnar"):
            raise ValueError(f"unknown engine {engine!r}")
        #: selected kernel: "full" (legacy full-scan reference),
        #: "incremental" (dirty set + steady-emission replay), or
        #: "columnar" (flow-indexed dirty set, the n >= 10k kernel).
        #: The columnar engine is a superset of the incremental one, so
        #: every incremental code path in this facade applies to it.
        self.engine = engine
        self.incremental = engine != "full"
        if engine == "columnar":
            self.scheduler: SynchronousScheduler = ColumnarScheduler(
                self.trace, activity_tracking=True, time_model=time_model
            )
        else:
            self.scheduler = SynchronousScheduler(
                self.trace, activity_tracking=self.incremental, time_model=time_model
            )
        if rule_backend not in ("scalar", "batched"):
            raise ValueError(f"unknown rule backend {rule_backend!r}")
        #: selected rule backend: "scalar" (the per-peer reference
        #: pipeline in :mod:`repro.core.protocol`, the spec) or
        #: "batched" (phase-major sweeps over all dirty peers via
        #: :mod:`repro.core.rules_batched`, observationally identical).
        self.rule_backend = rule_backend
        if rule_backend == "batched":
            from repro.core.rules_batched import BatchedRuleEngine

            self.scheduler.set_batch_stepper(BatchedRuleEngine())
        self.peers: Dict[int, ReChordPeer] = {}
        self._level_snapshot: Dict[int, frozenset] = {}
        #: incremental engine: owner ids referenced by each peer ...
        self._refs_out: Dict[int, frozenset] = {}
        #: ... and its inverse: peers whose purge consults each owner
        self._watchers: Dict[int, Set[int]] = {}
        #: peers whose boundary maintenance is due at the next round start
        #: (deferred so the oracle snapshot keeps the legacy round-start
        #: timing: changes made during round r become visible in round r+1)
        self._pending_refresh: Set[int] = set()
        #: owners whose liveness/phantom verdicts flipped since the last
        #: in-flight scan (level-set changes, membership); drained into
        #: one _wake_flow_refs pass per round / membership event
        self._level_flips: Set[int] = set()
        #: application-plane handler installed on every peer (repro.traffic)
        self._traffic_handler = None
        #: telemetry recorder wired into the scheduler and every peer
        #: (repro.telemetry); None = disabled, the bit-for-bit default
        self.telemetry = None
        #: bumped on every join/leave/crash — cheap staleness probe for
        #: snapshot consumers (ReChordRouter caches key on view_version())
        self._membership_version = 0
        #: bumped on out-of-band topology edits (initial edges, pre-made
        #: virtual levels) that change the projection without a round
        self._mutation_version = 0

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    def add_peer(self, peer_id: int) -> ReChordPeer:
        """Register a fresh peer (real node only, empty neighborhoods)."""
        self.space.check_id(peer_id)
        if peer_id in self.peers:
            raise ValueError(f"duplicate peer id {peer_id}")
        state = PeerState(peer_id, self.space)
        peer = ReChordPeer(state, self.config, self._ref_alive)
        self.peers[peer_id] = peer
        if self.incremental:
            # defensive: stale references to this (formerly dead) id flip
            # their liveness verdict, so their holders must re-run.  The
            # in-flight scan runs now AND again at the next round start
            # (peer_id stays queued in _level_flips): a mid-round event
            # misses envelopes still sitting in outboxes at scan time.
            self._flush_pending_refresh()
            self._dirty_watchers(peer_id)
            self._wake_flow_refs({peer_id})
            self._level_flips.add(peer_id)
            self._refs_out[peer_id] = frozenset()
        peer.traffic = self._traffic_handler
        peer.telemetry = self.telemetry
        self.scheduler.add_actor(peer_id, peer)
        self._level_snapshot[peer_id] = frozenset(state.nodes)
        self._membership_version += 1
        return peer

    def ensure_virtual(self, peer_id: int, level: int) -> NodeRef:
        """Pre-create a virtual node (for corrupt initial states)."""
        self._mutation_version += 1
        node = self.peers[peer_id].state.ensure_level(level)
        if not self.incremental:
            self._level_snapshot[peer_id] = frozenset(self.peers[peer_id].state.nodes)
        # incremental mode: the version sweep in run_round refreshes the
        # snapshot AND re-activates peers watching this owner
        return node.ref

    def ref(self, peer_id: int, level: int = 0) -> NodeRef:
        """The ref of node ``level`` of ``peer_id`` (id derived)."""
        return make_ref(self.space, peer_id, level)

    def add_initial_edge(
        self,
        src: NodeRef,
        dst: NodeRef,
        kind: EdgeKind = EdgeKind.UNMARKED,
    ) -> None:
        """Inject an edge into the initial state (before any round).

        Creates the source node if it does not exist yet; the target may
        be any ref (including refs the protocol will later sanitize).
        """
        peer = self.peers.get(src.owner)
        if peer is None:
            raise KeyError(f"unknown peer {src.owner}")
        self._mutation_version += 1
        node = peer.state.ensure_level(src.level)
        if not self.incremental:
            self._level_snapshot[src.owner] = frozenset(peer.state.nodes)
        if dst == node.ref:
            return
        if kind is EdgeKind.UNMARKED:
            node.nu.add(dst)
        elif kind is EdgeKind.RING:
            node.nr.add(dst)
        elif kind is EdgeKind.CONNECTION:
            node.nc.add(dst)
        else:
            raise ValueError(f"initial edges cannot be of kind {kind}")

    # ------------------------------------------------------------------
    # application plane (repro.traffic)
    # ------------------------------------------------------------------
    class _NullTrafficHandler:
        """Installed by :meth:`detach_traffic`: swallows in-flight
        traffic payloads so outstanding operations time out quietly
        instead of hitting the no-plane-attached error path."""

        def handle(self, peer, payloads, ctx) -> None:
            """Drop the payloads (the one-shot re-execution discipline
            is already applied by the caller)."""

    def attach_traffic(self, handler) -> None:
        """Install an application-plane handler on every peer.

        ``handler`` must provide ``handle(peer, payloads, ctx)`` (see
        :class:`repro.traffic.plane.TrafficPlane`); it receives the
        :class:`repro.netsim.messages.AppPayload` messages delivered to
        each peer, after the peer's stabilization rules ran, and may emit
        follow-up messages through ``ctx``.  Current and future peers are
        wired; use :meth:`detach_traffic` to unhook.
        """
        self._traffic_handler = handler
        for peer in self.peers.values():
            peer.traffic = handler

    def detach_traffic(self) -> None:
        """Unhook the application plane from every peer.

        Traffic still in flight is dropped at delivery (a null handler
        replaces the plane), so outstanding operations simply time out.
        """
        handler = ReChordNetwork._NullTrafficHandler()
        self._traffic_handler = handler
        for peer in self.peers.values():
            peer.traffic = handler

    # ------------------------------------------------------------------
    # telemetry plane (repro.telemetry)
    # ------------------------------------------------------------------
    def enable_telemetry(self, recorder=None):
        """Attach a telemetry recorder to the kernel and every peer.

        Purely observational (counters, wall-clock phase spans, sampled
        op traces): a run with telemetry enabled is bit-for-bit
        identical to the same run without — fingerprints, reports and
        baselines do not move.  Pass an existing
        :class:`repro.telemetry.TelemetryRecorder` to share one sink
        across networks, or let this create a fresh one.  Returns the
        attached recorder.
        """
        if recorder is None:
            from repro.telemetry import TelemetryRecorder

            recorder = TelemetryRecorder()
        self.telemetry = recorder
        self.scheduler.set_telemetry(recorder)
        for peer in self.peers.values():
            peer.telemetry = recorder
        return recorder

    def disable_telemetry(self) -> None:
        """Detach the telemetry recorder from the kernel and all peers."""
        self.telemetry = None
        self.scheduler.set_telemetry(None)
        for peer in self.peers.values():
            peer.telemetry = None

    def telemetry_census(self) -> dict:
        """The deterministic counter census, rule firings included.

        Merges the engine-invariant telemetry counters with a snapshot
        of the per-rule firing counters (which the protocol layer counts
        whether or not telemetry is enabled).  Raises if no recorder is
        attached.
        """
        if self.telemetry is None:
            raise RuntimeError("telemetry is not enabled on this network")
        self.telemetry.rule_fires = dict(self.counters().fires)
        return self.telemetry.census()

    @property
    def membership_version(self) -> int:
        """Monotonic counter of membership events (join/leave/crash)."""
        return self._membership_version

    def view_version(self) -> Tuple[int, int, int]:
        """Cheap staleness token for snapshot views of this network.

        Changes whenever membership changes, an out-of-band topology
        edit lands (:meth:`add_initial_edge` / :meth:`ensure_virtual`),
        or a round executes — the events that can invalidate a
        materialized routing view.  Snapshot consumers
        (:class:`repro.dht.lookup.ReChordRouter`) compare it against
        the version they were built at.  (Direct mutation of peer state
        in tests is outside the token's contract until the next round.)
        """
        return (self._membership_version, self._mutation_version, self.scheduler.round_no)

    # ------------------------------------------------------------------
    # liveness oracle ([D7]/[D11])
    # ------------------------------------------------------------------
    def _ref_alive(self, ref: NodeRef) -> str:
        levels = self._level_snapshot.get(ref.owner)
        if levels is None:
            return REF_DEAD
        return REF_OK if ref.level in levels else REF_PHANTOM

    # ------------------------------------------------------------------
    # activity bookkeeping (incremental engine)
    # ------------------------------------------------------------------
    def _flush_pending_refresh(self) -> None:
        """Apply deferred boundary maintenance immediately.

        Membership events consult the watcher index between rounds; the
        index (and the oracle snapshot) must reflect the *last* boundary
        first, or peers that acquired a reference to the affected owner
        in the most recent round would be missed.
        """
        if self._pending_refresh:
            for pid in self._pending_refresh:
                if pid in self.peers:
                    self._refresh_peer(pid)
            self._pending_refresh.clear()

    def _dirty_watchers(self, owner: int) -> None:
        """Re-activate every peer whose purge consults ``owner``."""
        watchers = self._watchers.get(owner)
        if not watchers:
            return
        mark = self.scheduler.mark_dirty
        for pid in watchers:
            if pid in self.peers:
                mark(pid)

    def _wake_flow_refs(self, owners) -> None:
        """Re-activate receivers of in-flight messages that reference
        any owner in ``owners``.

        A liveness/phantom flip is visible not only to peers *holding*
        a reference (the watcher index) but also to peers about to
        *receive* one inside a circulating message (e.g. a streamed
        connection edge whose endpoint just crashed or whose virtual
        level was just dropped: the full-scan engine purges/rewrites it
        after delivery, so a replayed receiver must be woken to do the
        same).  One O(pending) scan per batch of changed owners.
        """
        if not isinstance(owners, (set, frozenset)):
            owners = {owners}
        if self.scheduler.wake_ref_receivers(owners):
            # the columnar kernel maintains a reverse owner -> receiver
            # index over pending payload refs; no scan needed
            return
        mark = self.scheduler.mark_dirty
        for env in self.scheduler.all_pending():
            # every protocol payload enumerates its refs (events.refs());
            # a payload type without refs() would be a protocol bug, so
            # fail loudly rather than silently skip it
            for ref in env.payload.refs():
                if ref.owner in owners:
                    # carry: the message leaves the receiver's inbox one
                    # round after it is consumed
                    mark(env.target, carry=True)
                    break

    def _update_refs_out(self, pid: int) -> None:
        """Maintain the reverse (owner -> watchers) dependency index."""
        owners = frozenset(self.peers[pid].state.referenced_owners())
        old = self._refs_out.get(pid, frozenset())
        if owners == old:
            return
        watchers = self._watchers
        for o in old - owners:
            entry = watchers.get(o)
            if entry is not None:
                entry.discard(pid)
                if not entry:
                    del watchers[o]
        for o in owners - old:
            watchers.setdefault(o, set()).add(pid)
        self._refs_out[pid] = owners

    def _refresh_peer(self, pid: int) -> None:
        """Boundary maintenance after a peer's state changed.

        Updates the liveness-oracle snapshot (re-activating watchers on a
        level-set change, which can flip ``ok``/``phantom`` verdicts) and
        the reverse-dependency index.
        """
        levels = frozenset(self.peers[pid].state.nodes)
        if levels != self._level_snapshot.get(pid):
            self._level_snapshot[pid] = levels
            self._dirty_watchers(pid)
            # ok/phantom verdicts for this owner flipped: receivers of
            # in-flight refs to it must re-run too (drained in one scan)
            self._level_flips.add(pid)
        self._update_refs_out(pid)

    def _drain_level_flips(self) -> None:
        """One in-flight scan for all owners whose verdicts flipped."""
        if self._level_flips:
            self._wake_flow_refs(self._level_flips)
            self._level_flips.clear()

    def activity_stats(self) -> Tuple[int, int]:
        """``(executed, replayed)`` split of the last round."""
        return (
            self.scheduler.executed_last_round,
            self.scheduler.replayed_last_round,
        )

    # ------------------------------------------------------------------
    # execution
    # ------------------------------------------------------------------
    @property
    def round_no(self) -> int:
        """Completed rounds."""
        return self.scheduler.round_no

    @property
    def peer_ids(self) -> List[int]:
        """Sorted live peer ids."""
        return sorted(self.peers)

    def set_delivery_model(self, model) -> None:
        """Install a delivery model mid-run (instance, kind name, or
        spec dict — see :mod:`repro.netsim.timemodel`).  Unit delivery
        is the default and reproduces the paper's semantics exactly."""
        self.scheduler.set_delivery_model(model)

    def set_daemon(self, daemon) -> None:
        """Install an activation daemon mid-run (instance, kind name,
        or spec dict); ``run_round()`` consults it when no explicit
        active set is passed."""
        self.scheduler.set_daemon(daemon)

    @property
    def time_model(self) -> TimeModel:
        """The scheduler's current notion of time (delivery + daemon)."""
        return self.scheduler.time_model

    def run_round(self, active: Optional[set] = None) -> None:
        """Execute one synchronous round (optionally partial activation).

        ``active`` limits which peers step — the fair-scheduling bridge
        toward asynchrony studied by the asynchrony experiment; peers
        left out keep their state and accumulate their inbox.  With no
        explicit set the scheduler consults the activation daemon of
        the installed :class:`repro.netsim.timemodel.TimeModel` (full
        activation by default).
        """
        if not self.incremental:
            # freeze the level map so the oracle answers with round-start
            # state regardless of peer iteration order (order-independence)
            self._level_snapshot = {
                pid: frozenset(peer.state.nodes) for pid, peer in self.peers.items()
            }
            self.scheduler.run_round(active)
            return
        sched = self.scheduler
        # boundary maintenance deferred from the previous round: the
        # snapshot now advances to the last boundary, re-activating
        # watchers of level-set changes (same visibility round as the
        # legacy engine's full round-start rebuild)
        self._flush_pending_refresh()
        # sweep for out-of-band mutations since the last boundary (tests,
        # join seeds, perturbations): cheap integer compare per peer —
        # read the scheduler's noted-version map directly, this loop is
        # the facade's only O(n) per-round cost under the columnar kernel
        noted = sched._ver
        for pid, peer in self.peers.items():
            if peer.state.version != noted.get(pid):
                sched.resync_actor(pid)
                sched.mark_dirty(pid)
                self._refresh_peer(pid)
        # one in-flight scan for all verdict flips the refreshes surfaced
        self._drain_level_flips()
        sched.run_round(active)
        # schedule boundary maintenance for peers this round changed
        # (the activation daemon may have chosen the set: ask the
        # scheduler what actually ran rather than trusting `active`)
        chosen = sched.active_last_round
        if chosen is None:
            self._pending_refresh.update(sched.state_changed_keys)
        else:
            self._pending_refresh.update(set(chosen) & set(self.peers))

    def run(self, rounds: int) -> None:
        """Execute ``rounds`` rounds."""
        for _ in range(rounds):
            self.run_round()

    def run_until_stable(
        self,
        max_rounds: int = 10_000,
        track_almost: bool = False,
    ) -> StabilizationReport:
        """Run until the global configuration repeats.

        Raises ``RuntimeError`` if not stable within ``max_rounds`` (a
        non-converging protocol must fail loudly).  With ``track_almost``
        the report also carries the first round at which all desired
        edges of the ideal topology existed.

        The incremental engine detects the repeat from the scheduler's
        change flag (exact state tokens + the rolling pending-hash), an
        O(active work) check; the legacy engine compares full O(n)
        fingerprints.  The differential tests assert both produce the
        same report on the same input.
        """
        ideal = compute_ideal(self.space, self.peer_ids) if track_almost else None
        almost: Optional[int] = None
        if ideal is not None and self._almost_stable(ideal):
            almost = 0
        if self.incremental:
            for executed in range(1, max_rounds + 1):
                self.run_round()
                if ideal is not None and almost is None and self._almost_stable(ideal):
                    almost = executed
                if not self.scheduler.changed_last_round:
                    return StabilizationReport(
                        rounds_to_stable=executed - 1,
                        rounds_to_almost=almost,
                        rounds_executed=executed,
                    )
            raise RuntimeError(f"network not stable within {max_rounds} rounds")
        prev = self.fingerprint()
        for executed in range(1, max_rounds + 1):
            self.run_round()
            cur = self.fingerprint()
            if ideal is not None and almost is None and self._almost_stable(ideal):
                almost = executed
            if cur == prev:
                # the configuration reached at round `executed - 1` is final
                return StabilizationReport(
                    rounds_to_stable=executed - 1,
                    rounds_to_almost=almost,
                    rounds_executed=executed,
                )
            prev = cur
        raise RuntimeError(f"network not stable within {max_rounds} rounds")

    # ------------------------------------------------------------------
    # stability / correctness predicates
    # ------------------------------------------------------------------
    def fingerprint(self) -> tuple:
        """Canonical global configuration (peer states + in-flight).

        In-flight covers next round's inboxes *and* delayed deliveries
        still parked in the scheduler's future queue; the latter carry
        their remaining delay, because the same envelope at different
        maturities is a different configuration.  Under unit delivery
        the future queue is empty and the fingerprint is byte-identical
        to the historical form.
        """
        peers = tuple(
            self.peers[pid].state.canonical() for pid in sorted(self.peers)
        )
        entries = [
            (env.target, env.payload.canonical()) for env in self.scheduler.all_pending()
        ]
        for remaining, env in self.scheduler.future_pending():
            entries.append((env.target, env.payload.canonical(), remaining))
        return (peers, tuple(sorted(entries)))

    def incremental_fingerprint(self) -> tuple:
        """The rolling 64-bit configuration hash ``(states, pending)``.

        Maintained by the activity-tracked scheduler from dirty peers and
        delivered/expired envelopes only — O(active work) per round, no
        global scan.  Valid at round boundaries of the incremental
        engine; equal configurations always hash equal, distinct ones
        collide with probability ~2^-64.
        """
        if not self.incremental:
            raise RuntimeError("incremental fingerprint requires the incremental engine")
        return self.scheduler.config_hash()

    def is_fixed_point(self, peek: bool = False) -> bool:
        """Whether one more round leaves the configuration unchanged.

        With ``peek=False`` (historical behavior) this *runs a round on
        the live network* and compares: observationally non-destructive
        on a stable network — the stable state is invariant — but it
        advances :attr:`round_no` as a side effect and mutates state if
        the network was *not* stable.  With ``peek=True`` the probe round
        runs on a deep copy, leaving the network (round counter
        included) completely untouched in both outcomes.
        """
        probe = copy.deepcopy(self) if peek else self
        before = probe.fingerprint()
        probe.run_round()
        return probe.fingerprint() == before

    def matches_ideal(self, ideal: Optional[IdealTopology] = None) -> bool:
        """Whether every peer's state equals the ideal stable topology."""
        return not self.ideal_mismatches(ideal, limit=1)

    def ideal_mismatches(
        self,
        ideal: Optional[IdealTopology] = None,
        limit: int = 50,
    ) -> List[str]:
        """Human-readable differences from the ideal topology (<= limit)."""
        if ideal is None:
            ideal = compute_ideal(self.space, self.peer_ids)
        problems: List[str] = []

        def note(msg: str) -> None:
            if len(problems) < limit:
                problems.append(msg)

        for pid in sorted(self.peers):
            state = self.peers[pid].state
            want_levels = set(range(0, ideal.m_star[pid] + 1))
            have_levels = set(state.nodes)
            if want_levels != have_levels:
                note(f"peer {pid}: levels {sorted(have_levels)} != {sorted(want_levels)}")
                continue
            for level in sorted(state.nodes):
                node = state.nodes[level]
                ref = node.ref
                if node.nu != set(ideal.nu[ref]):
                    note(
                        f"{ref!r}: nu {sorted(node.nu)} != {sorted(ideal.nu[ref])}"
                    )
                if node.nr != set(ideal.nr[ref]):
                    note(f"{ref!r}: nr {sorted(node.nr)} != {sorted(ideal.nr[ref])}")
                if node.rl != ideal.rl[ref]:
                    note(f"{ref!r}: rl {node.rl!r} != {ideal.rl[ref]!r}")
                if node.rr != ideal.rr[ref]:
                    note(f"{ref!r}: rr {node.rr!r} != {ideal.rr[ref]!r}")
                if node.wrap_rl != ideal.wrap_rl[ref]:
                    note(f"{ref!r}: wrap_rl {node.wrap_rl!r} != {ideal.wrap_rl[ref]!r}")
                if node.wrap_rr != ideal.wrap_rr[ref]:
                    note(f"{ref!r}: wrap_rr {node.wrap_rr!r} != {ideal.wrap_rr[ref]!r}")
            if len(problems) >= limit:
                break
        return problems

    def _almost_stable(self, ideal: IdealTopology) -> bool:
        """All desired edges exist (extra edges allowed) — Fig. 6's
        "almost stable" state."""
        for pid in sorted(self.peers):
            state = self.peers[pid].state
            if set(state.nodes) != set(range(0, ideal.m_star[pid] + 1)):
                return False
            for level, node in state.nodes.items():
                ref = node.ref
                if not set(ideal.nu[ref]) <= node.nu:
                    return False
                if not set(ideal.nr[ref]) <= node.nr:
                    return False
        return True

    # ------------------------------------------------------------------
    # membership dynamics (Section 4)
    # ------------------------------------------------------------------
    def join(self, new_id: int, gateway_id: int) -> ReChordPeer:
        """A new peer joins, knowing one existing peer (Section 4.1)."""
        if gateway_id not in self.peers:
            raise KeyError(f"gateway {gateway_id} is not a live peer")
        peer = self.add_peer(new_id)
        peer.state.nodes[0].nu.add(make_ref(self.space, gateway_id, 0))
        return peer

    def leave(self, peer_id: int) -> None:
        """Graceful departure: introduce neighbors, then vanish."""
        peer = self.peers.get(peer_id)
        if peer is None:
            raise KeyError(f"unknown peer {peer_id}")
        for intro in peer.leave_introductions():
            if intro.target.owner == peer_id:
                continue
            self.scheduler.post(Envelope(peer_id, intro.target.owner, intro))
        self._remove_peer(peer_id)

    def crash(self, peer_id: int) -> None:
        """Abrupt failure: the peer and all its edges disappear."""
        if peer_id not in self.peers:
            raise KeyError(f"unknown peer {peer_id}")
        self._remove_peer(peer_id)

    def _remove_peer(self, peer_id: int) -> None:
        del self.peers[peer_id]
        self.scheduler.remove_actor(peer_id)
        self._level_snapshot.pop(peer_id, None)
        self._membership_version += 1
        if self.incremental:
            self._pending_refresh.discard(peer_id)
            # holders of references to the departed peer purge them at
            # their next step — wake them (on a *current* watcher index),
            # as must receivers of in-flight messages carrying its refs.
            # Scan now AND at the next round start (peer_id stays queued
            # in _level_flips): a mid-round removal misses envelopes
            # still sitting in outboxes at scan time.
            self._flush_pending_refresh()
            self._dirty_watchers(peer_id)
            self._wake_flow_refs({peer_id})
            self._level_flips.add(peer_id)
            old = self._refs_out.pop(peer_id, frozenset())
            for o in old:
                entry = self._watchers.get(o)
                if entry is not None:
                    entry.discard(peer_id)
                    if not entry:
                        del self._watchers[o]
            self._watchers.pop(peer_id, None)

    # ------------------------------------------------------------------
    # snapshots & accounting
    # ------------------------------------------------------------------
    def snapshot(self, include_pending: bool = True) -> TypedDigraph:
        """The overlay as a :class:`TypedDigraph` over :class:`NodeRef`.

        ``include_pending`` merges in-flight edge inserts (the stable
        state keeps some edges permanently in transit); candidate
        messages are guarded and therefore not edges.
        """
        g = TypedDigraph()
        for pid in sorted(self.peers):
            state = self.peers[pid].state
            for level in sorted(state.nodes):
                node = state.nodes[level]
                g.add_node(node.ref)
                for t in node.nu:
                    g.add_edge(node.ref, t, EdgeKind.UNMARKED)
                for t in node.nr:
                    g.add_edge(node.ref, t, EdgeKind.RING)
                for t in node.nc:
                    g.add_edge(node.ref, t, EdgeKind.CONNECTION)
                for t in node.wrap_refs():
                    g.add_edge(node.ref, t, EdgeKind.REAL_POINTER)
        if include_pending:
            from repro.core.events import EdgeAdd  # local import to avoid cycle

            # scheduled-but-not-matured deliveries count too: an edge on
            # a slow wire is still circulating, and weak-connectivity
            # accounting must see it
            in_flight = list(self.scheduler.all_pending())
            in_flight.extend(env for _, env in self.scheduler.future_pending())
            for env in in_flight:
                payload = env.payload
                if isinstance(payload, EdgeAdd) and payload.endpoint != payload.target:
                    kind = {
                        "u": EdgeKind.UNMARKED,
                        "r": EdgeKind.RING,
                        "c": EdgeKind.CONNECTION,
                    }[payload.kind]
                    g.add_edge(payload.target, payload.endpoint, kind)
                elif isinstance(payload, NeighborIntro) and payload.endpoint != payload.target:
                    g.add_edge(payload.target, payload.endpoint, EdgeKind.UNMARKED)
        return g

    def rechord_projection(self) -> set:
        """``E_ReChord``: real-peer pairs ``(u, v)`` with an edge
        ``(u_i, v_0)`` in ``E_u ∪ E_r`` (wrap pointers included [D6])."""
        edges = set()
        for pid in sorted(self.peers):
            state = self.peers[pid].state
            for node in state.nodes.values():
                targets = set(node.nu) | set(node.nr)
                targets.update(node.wrap_refs())
                for t in targets:
                    if t.is_real and t.owner != pid:
                        edges.add((pid, t.owner))
        return edges

    def counters(self) -> RuleCounters:
        """Merged rule-firing counters across all live peers."""
        settle = getattr(self.scheduler, "settle_replays", None)
        if settle is not None:
            # the columnar kernel defers quiescent-round counter replays;
            # observation points settle them to the parent-exact values
            settle()
        merged = RuleCounters()
        for pid in sorted(self.peers):
            merged = merged.merged(self.peers[pid].counters)
        return merged
