"""Top-level Re-Chord network facade.

Builds a network from any initial topology, drives the synchronous rounds,
detects stabilization, and exposes the dynamic-membership operations
(join / graceful leave / crash) analyzed in Section 4 of the paper.

Stability detection: the rule dynamics are deterministic, so the network
is stable exactly when the global configuration — all peer states *plus*
the in-flight messages — repeats between consecutive round boundaries.
The stable state is a constant flow (connection edges keep streaming,
ring-edge requests keep re-issuing), so peer states alone would not be a
sound criterion; the fingerprint therefore includes pending messages.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Tuple

from repro.core.events import NeighborIntro
from repro.core.ideal import IdealTopology, compute_ideal
from repro.core.noderef import NodeRef, make_ref
from repro.core.protocol import REF_DEAD, REF_OK, REF_PHANTOM, ReChordPeer
from repro.core.rules import RuleConfig, RuleCounters
from repro.core.state import PeerState
from repro.graphs.digraph import EdgeKind, TypedDigraph
from repro.idspace.ring import IdSpace
from repro.netsim.messages import Envelope
from repro.netsim.scheduler import SynchronousScheduler
from repro.netsim.trace import TraceRecorder


@dataclass(frozen=True)
class StabilizationReport:
    """Outcome of :meth:`ReChordNetwork.run_until_stable`.

    ``rounds_to_stable`` is the paper's Fig. 6 metric: the index of the
    first round boundary whose configuration never changes again.
    ``rounds_to_almost`` is the first boundary at which all *desired*
    edges of the ideal topology exist (extra edges permitted); ``None``
    if almost-stability tracking was disabled.
    """

    rounds_to_stable: int
    rounds_to_almost: Optional[int]
    rounds_executed: int


class ReChordNetwork:
    """A set of Re-Chord peers driven by the synchronous kernel."""

    def __init__(
        self,
        space: Optional[IdSpace] = None,
        config: Optional[RuleConfig] = None,
        record_trace: bool = False,
    ) -> None:
        self.space = space if space is not None else IdSpace()
        self.config = config if config is not None else RuleConfig()
        self.trace: Optional[TraceRecorder] = TraceRecorder() if record_trace else None
        self.scheduler = SynchronousScheduler(self.trace)
        self.peers: Dict[int, ReChordPeer] = {}
        self._level_snapshot: Dict[int, frozenset] = {}

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    def add_peer(self, peer_id: int) -> ReChordPeer:
        """Register a fresh peer (real node only, empty neighborhoods)."""
        self.space.check_id(peer_id)
        if peer_id in self.peers:
            raise ValueError(f"duplicate peer id {peer_id}")
        state = PeerState(peer_id, self.space)
        peer = ReChordPeer(state, self.config, self._ref_alive)
        self.peers[peer_id] = peer
        self.scheduler.add_actor(peer_id, peer)
        self._level_snapshot[peer_id] = frozenset(state.nodes)
        return peer

    def ensure_virtual(self, peer_id: int, level: int) -> NodeRef:
        """Pre-create a virtual node (for corrupt initial states)."""
        node = self.peers[peer_id].state.ensure_level(level)
        self._level_snapshot[peer_id] = frozenset(self.peers[peer_id].state.nodes)
        return node.ref

    def ref(self, peer_id: int, level: int = 0) -> NodeRef:
        """The ref of node ``level`` of ``peer_id`` (id derived)."""
        return make_ref(self.space, peer_id, level)

    def add_initial_edge(
        self,
        src: NodeRef,
        dst: NodeRef,
        kind: EdgeKind = EdgeKind.UNMARKED,
    ) -> None:
        """Inject an edge into the initial state (before any round).

        Creates the source node if it does not exist yet; the target may
        be any ref (including refs the protocol will later sanitize).
        """
        peer = self.peers.get(src.owner)
        if peer is None:
            raise KeyError(f"unknown peer {src.owner}")
        node = peer.state.ensure_level(src.level)
        self._level_snapshot[src.owner] = frozenset(peer.state.nodes)
        if dst == node.ref:
            return
        if kind is EdgeKind.UNMARKED:
            node.nu.add(dst)
        elif kind is EdgeKind.RING:
            node.nr.add(dst)
        elif kind is EdgeKind.CONNECTION:
            node.nc.add(dst)
        else:
            raise ValueError(f"initial edges cannot be of kind {kind}")

    # ------------------------------------------------------------------
    # liveness oracle ([D7]/[D11])
    # ------------------------------------------------------------------
    def _ref_alive(self, ref: NodeRef) -> str:
        levels = self._level_snapshot.get(ref.owner)
        if levels is None:
            return REF_DEAD
        return REF_OK if ref.level in levels else REF_PHANTOM

    # ------------------------------------------------------------------
    # execution
    # ------------------------------------------------------------------
    @property
    def round_no(self) -> int:
        """Completed rounds."""
        return self.scheduler.round_no

    @property
    def peer_ids(self) -> List[int]:
        """Sorted live peer ids."""
        return sorted(self.peers)

    def run_round(self, active: Optional[set] = None) -> None:
        """Execute one synchronous round (optionally partial activation).

        ``active`` limits which peers step — the fair-scheduling bridge
        toward asynchrony studied by the asynchrony experiment; peers
        left out keep their state and accumulate their inbox.
        """
        # freeze the level map so the oracle answers with round-start
        # state regardless of peer iteration order (order-independence)
        self._level_snapshot = {
            pid: frozenset(peer.state.nodes) for pid, peer in self.peers.items()
        }
        self.scheduler.run_round(active)

    def run(self, rounds: int) -> None:
        """Execute ``rounds`` rounds."""
        for _ in range(rounds):
            self.run_round()

    def run_until_stable(
        self,
        max_rounds: int = 10_000,
        track_almost: bool = False,
    ) -> StabilizationReport:
        """Run until the global configuration repeats.

        Raises ``RuntimeError`` if not stable within ``max_rounds`` (a
        non-converging protocol must fail loudly).  With ``track_almost``
        the report also carries the first round at which all desired
        edges of the ideal topology existed.
        """
        ideal = compute_ideal(self.space, self.peer_ids) if track_almost else None
        almost: Optional[int] = None
        if ideal is not None and self._almost_stable(ideal):
            almost = 0
        prev = self.fingerprint()
        for executed in range(1, max_rounds + 1):
            self.run_round()
            cur = self.fingerprint()
            if ideal is not None and almost is None and self._almost_stable(ideal):
                almost = executed
            if cur == prev:
                # the configuration reached at round `executed - 1` is final
                return StabilizationReport(
                    rounds_to_stable=executed - 1,
                    rounds_to_almost=almost,
                    rounds_executed=executed,
                )
            prev = cur
        raise RuntimeError(f"network not stable within {max_rounds} rounds")

    # ------------------------------------------------------------------
    # stability / correctness predicates
    # ------------------------------------------------------------------
    def fingerprint(self) -> tuple:
        """Canonical global configuration (peer states + in-flight)."""
        peers = tuple(
            self.peers[pid].state.canonical() for pid in sorted(self.peers)
        )
        pending = tuple(
            sorted((env.target, env.payload.canonical()) for env in self.scheduler.all_pending())
        )
        return (peers, pending)

    def is_fixed_point(self) -> bool:
        """Whether one more round leaves the configuration unchanged.

        Non-destructive in the observational sense used by tests: it runs
        a round and compares (the stable state is invariant, so running a
        round on a stable network is a no-op by definition).
        """
        before = self.fingerprint()
        self.run_round()
        return self.fingerprint() == before

    def matches_ideal(self, ideal: Optional[IdealTopology] = None) -> bool:
        """Whether every peer's state equals the ideal stable topology."""
        return not self.ideal_mismatches(ideal, limit=1)

    def ideal_mismatches(
        self,
        ideal: Optional[IdealTopology] = None,
        limit: int = 50,
    ) -> List[str]:
        """Human-readable differences from the ideal topology (<= limit)."""
        if ideal is None:
            ideal = compute_ideal(self.space, self.peer_ids)
        problems: List[str] = []

        def note(msg: str) -> None:
            if len(problems) < limit:
                problems.append(msg)

        for pid in sorted(self.peers):
            state = self.peers[pid].state
            want_levels = set(range(0, ideal.m_star[pid] + 1))
            have_levels = set(state.nodes)
            if want_levels != have_levels:
                note(f"peer {pid}: levels {sorted(have_levels)} != {sorted(want_levels)}")
                continue
            for level in sorted(state.nodes):
                node = state.nodes[level]
                ref = node.ref
                if node.nu != set(ideal.nu[ref]):
                    note(
                        f"{ref!r}: nu {sorted(node.nu)} != {sorted(ideal.nu[ref])}"
                    )
                if node.nr != set(ideal.nr[ref]):
                    note(f"{ref!r}: nr {sorted(node.nr)} != {sorted(ideal.nr[ref])}")
                if node.rl != ideal.rl[ref]:
                    note(f"{ref!r}: rl {node.rl!r} != {ideal.rl[ref]!r}")
                if node.rr != ideal.rr[ref]:
                    note(f"{ref!r}: rr {node.rr!r} != {ideal.rr[ref]!r}")
                if node.wrap_rl != ideal.wrap_rl[ref]:
                    note(f"{ref!r}: wrap_rl {node.wrap_rl!r} != {ideal.wrap_rl[ref]!r}")
                if node.wrap_rr != ideal.wrap_rr[ref]:
                    note(f"{ref!r}: wrap_rr {node.wrap_rr!r} != {ideal.wrap_rr[ref]!r}")
            if len(problems) >= limit:
                break
        return problems

    def _almost_stable(self, ideal: IdealTopology) -> bool:
        """All desired edges exist (extra edges allowed) — Fig. 6's
        "almost stable" state."""
        for pid in sorted(self.peers):
            state = self.peers[pid].state
            if set(state.nodes) != set(range(0, ideal.m_star[pid] + 1)):
                return False
            for level, node in state.nodes.items():
                ref = node.ref
                if not set(ideal.nu[ref]) <= node.nu:
                    return False
                if not set(ideal.nr[ref]) <= node.nr:
                    return False
        return True

    # ------------------------------------------------------------------
    # membership dynamics (Section 4)
    # ------------------------------------------------------------------
    def join(self, new_id: int, gateway_id: int) -> ReChordPeer:
        """A new peer joins, knowing one existing peer (Section 4.1)."""
        if gateway_id not in self.peers:
            raise KeyError(f"gateway {gateway_id} is not a live peer")
        peer = self.add_peer(new_id)
        peer.state.nodes[0].nu.add(make_ref(self.space, gateway_id, 0))
        return peer

    def leave(self, peer_id: int) -> None:
        """Graceful departure: introduce neighbors, then vanish."""
        peer = self.peers.get(peer_id)
        if peer is None:
            raise KeyError(f"unknown peer {peer_id}")
        for intro in peer.leave_introductions():
            if intro.target.owner == peer_id:
                continue
            self.scheduler.post(Envelope(peer_id, intro.target.owner, intro))
        self._remove_peer(peer_id)

    def crash(self, peer_id: int) -> None:
        """Abrupt failure: the peer and all its edges disappear."""
        if peer_id not in self.peers:
            raise KeyError(f"unknown peer {peer_id}")
        self._remove_peer(peer_id)

    def _remove_peer(self, peer_id: int) -> None:
        del self.peers[peer_id]
        self.scheduler.remove_actor(peer_id)
        self._level_snapshot.pop(peer_id, None)

    # ------------------------------------------------------------------
    # snapshots & accounting
    # ------------------------------------------------------------------
    def snapshot(self, include_pending: bool = True) -> TypedDigraph:
        """The overlay as a :class:`TypedDigraph` over :class:`NodeRef`.

        ``include_pending`` merges in-flight edge inserts (the stable
        state keeps some edges permanently in transit); candidate
        messages are guarded and therefore not edges.
        """
        g = TypedDigraph()
        for pid in sorted(self.peers):
            state = self.peers[pid].state
            for level in sorted(state.nodes):
                node = state.nodes[level]
                g.add_node(node.ref)
                for t in node.nu:
                    g.add_edge(node.ref, t, EdgeKind.UNMARKED)
                for t in node.nr:
                    g.add_edge(node.ref, t, EdgeKind.RING)
                for t in node.nc:
                    g.add_edge(node.ref, t, EdgeKind.CONNECTION)
                for t in node.wrap_refs():
                    g.add_edge(node.ref, t, EdgeKind.REAL_POINTER)
        if include_pending:
            from repro.core.events import EdgeAdd  # local import to avoid cycle

            for env in self.scheduler.all_pending():
                payload = env.payload
                if isinstance(payload, EdgeAdd) and payload.endpoint != payload.target:
                    kind = {
                        "u": EdgeKind.UNMARKED,
                        "r": EdgeKind.RING,
                        "c": EdgeKind.CONNECTION,
                    }[payload.kind]
                    g.add_edge(payload.target, payload.endpoint, kind)
                elif isinstance(payload, NeighborIntro) and payload.endpoint != payload.target:
                    g.add_edge(payload.target, payload.endpoint, EdgeKind.UNMARKED)
        return g

    def rechord_projection(self) -> set:
        """``E_ReChord``: real-peer pairs ``(u, v)`` with an edge
        ``(u_i, v_0)`` in ``E_u ∪ E_r`` (wrap pointers included [D6])."""
        edges = set()
        for pid in sorted(self.peers):
            state = self.peers[pid].state
            for node in state.nodes.values():
                targets = set(node.nu) | set(node.nr)
                targets.update(node.wrap_refs())
                for t in targets:
                    if t.is_real and t.owner != pid:
                        edges.add((pid, t.owner))
        return edges

    def counters(self) -> RuleCounters:
        """Merged rule-firing counters across all live peers."""
        merged = RuleCounters()
        for pid in sorted(self.peers):
            merged = merged.merged(self.peers[pid].counters)
        return merged
