"""Rule configuration and firing counters.

The six rules of Section 2.3 can be individually disabled for the
ablation experiments (DESIGN.md E10): e.g. without the ring rule the
protocol degenerates to plain linearization (a sorted list, no ring and no
wrap fingers); without the connection rule, virtual siblings created into
empty neighborhoods may never re-attach from adversarial initial states.

``RuleCounters`` tallies how often each rule *changed state* — used by the
message-complexity experiment and by tests asserting that the stable state
fires no state-changing rules.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict


@dataclass(frozen=True)
class RuleConfig:
    """Feature flags for the rule pipeline (all on = the full protocol)."""

    virtual_nodes: bool = True     #: rule 1 — create/delete virtual siblings
    overlap: bool = True           #: rule 2 — overlapping neighborhood
    closest_real: bool = True      #: rule 3 — closest real neighbor
    linearize: bool = True         #: rule 4 — linearization + mirroring
    ring: bool = True              #: rule 5 — ring edges
    connection: bool = True        #: rule 6 — connection edges
    wrap_pointers: bool = True     #: seam extension [D6] (wrap fingers)
    #: extension (paper §6 asks for "more efficient rules"): rule 3
    #: announces a closest-real candidate only when the pointer changed
    #: or the recipient is newly met, instead of re-broadcasting every
    #: round.  Off by default — the default pipeline is paper-faithful.
    economical_broadcast: bool = False

    def ablated(self, **changes: bool) -> "RuleConfig":
        """A copy with some flags flipped, e.g. ``cfg.ablated(ring=False)``."""
        data = {
            "virtual_nodes": self.virtual_nodes,
            "overlap": self.overlap,
            "closest_real": self.closest_real,
            "linearize": self.linearize,
            "ring": self.ring,
            "connection": self.connection,
            "wrap_pointers": self.wrap_pointers,
            "economical_broadcast": self.economical_broadcast,
        }
        for key, value in changes.items():
            if key not in data:
                raise KeyError(f"unknown rule flag {key!r}")
            data[key] = value
        return RuleConfig(**data)


@dataclass
class RuleCounters:
    """State-changing rule firings, by rule name."""

    fires: Dict[str, int] = field(default_factory=dict)

    def bump(self, rule: str, amount: int = 1) -> None:
        """Record ``amount`` state-changing firings of ``rule``."""
        if amount:
            self.fires[rule] = self.fires.get(rule, 0) + amount

    def total(self) -> int:
        """Total state-changing firings recorded."""
        return sum(self.fires.values())

    def get(self, rule: str) -> int:
        """Firings of one rule (0 if never fired)."""
        return self.fires.get(rule, 0)

    def merged(self, other: "RuleCounters") -> "RuleCounters":
        """Counter union (for aggregating across peers)."""
        out = RuleCounters(dict(self.fires))
        for rule, amount in other.fires.items():
            out.bump(rule, amount)
        return out
