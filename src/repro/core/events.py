"""Delayed-assignment messages of the Re-Chord protocol.

The paper writes delayed assignments ``A <- B`` that take effect "right
before the next round"; in the synchronous kernel they are messages
delivered at the round boundary.  Two payload families exist:

* :class:`EdgeAdd` — the unconditional neighborhood inserts used by the
  linearization, mirroring, ring and connection rules;
* :class:`RealCandidate` — rule 3's closest-real-neighbor announcements.
  Their guard (``v > rl(y)`` / ``v < rr(y)``) reads the *receiver's*
  pointer, so it is evaluated at delivery (DESIGN.md [D9]); wrap
  candidates implement the seam exchange of [D6].

Every payload provides ``canonical()`` — a sortable, hashable tuple used
by the global state fingerprint (stability detection requires comparing
in-flight messages, because the stable state is a constant *flow*).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

from repro.core.noderef import NodeRef

#: edge-kind tags carried by EdgeAdd messages
KIND_UNMARKED = "u"
KIND_RING = "r"
KIND_CONNECTION = "c"

#: sides for RealCandidate
SIDE_LEFT = "left"
SIDE_RIGHT = "right"


def _ref_key(ref: NodeRef) -> Tuple[int, int, int, int]:
    return ref.key


@dataclass(frozen=True, slots=True, eq=False)
class EdgeAdd:
    """Ask ``target`` to add the outgoing edge ``(target -> endpoint)``.

    ``kind`` is one of ``u``/``r``/``c``.  Self-edges are discarded at
    delivery (sanitation [D10]).

    Equality/hash are hand-rolled (same field-wise semantics the
    dataclass would generate, minus the tuple allocations): payload
    comparison is the innermost loop of the round-boundary outbox diffs
    and of the envelope intern cache.
    """

    target: NodeRef
    endpoint: NodeRef
    kind: str

    def __eq__(self, other: object) -> bool:
        if self is other:
            return True
        if other.__class__ is not EdgeAdd:
            return NotImplemented
        return (
            self.target == other.target
            and self.endpoint == other.endpoint
            and self.kind == other.kind
        )

    def __hash__(self) -> int:
        return hash((self.target, self.endpoint, self.kind))

    def canonical(self) -> tuple:
        """Sortable identity tuple for fingerprints."""
        return ("edge", self.kind, _ref_key(self.target), _ref_key(self.endpoint))

    def refs(self) -> Tuple[NodeRef, ...]:
        """Every node reference this message carries (liveness scans)."""
        return (self.target, self.endpoint)


@dataclass(frozen=True, slots=True, eq=False)
class RealCandidate:
    """Announce a closest-real-neighbor candidate to ``target``.

    ``side`` says on which side of the receiver the candidate lies;
    ``wrap`` marks seam-exchange candidates (candidates for the
    wrap-around pointers of the top/bottom identifier gaps).  Receiver
    semantics live in ``ReChordPeer._deliver_candidate``.
    """

    target: NodeRef
    candidate: NodeRef
    side: str
    wrap: bool = False

    def __eq__(self, other: object) -> bool:
        if self is other:
            return True
        if other.__class__ is not RealCandidate:
            return NotImplemented
        return (
            self.target == other.target
            and self.candidate == other.candidate
            and self.side == other.side
            and self.wrap == other.wrap
        )

    def __hash__(self) -> int:
        return hash((self.target, self.candidate, self.side, self.wrap))

    def canonical(self) -> tuple:
        """Sortable identity tuple for fingerprints."""
        return ("cand", self.side, self.wrap, _ref_key(self.target), _ref_key(self.candidate))

    def refs(self) -> Tuple[NodeRef, ...]:
        """Every node reference this message carries (liveness scans)."""
        return (self.target, self.candidate)


@dataclass(frozen=True, slots=True, eq=False)
class NeighborIntro:
    """Graceful-leave introduction: ``target`` should meet ``endpoint``.

    Behaviorally identical to an unmarked :class:`EdgeAdd`; kept distinct
    so traces can attribute leave-repair traffic (Theorem 4.2 experiment).
    """

    target: NodeRef
    endpoint: NodeRef

    def __eq__(self, other: object) -> bool:
        if self is other:
            return True
        if other.__class__ is not NeighborIntro:
            return NotImplemented
        return self.target == other.target and self.endpoint == other.endpoint

    def __hash__(self) -> int:
        return hash((self.target, self.endpoint))

    def canonical(self) -> tuple:
        """Sortable identity tuple for fingerprints."""
        return ("intro", _ref_key(self.target), _ref_key(self.endpoint))

    def refs(self) -> Tuple[NodeRef, ...]:
        """Every node reference this message carries (liveness scans)."""
        return (self.target, self.endpoint)


Payload = EdgeAdd | RealCandidate | NeighborIntro
