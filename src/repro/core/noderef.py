"""Identities of real and virtual nodes.

A peer with identifier ``u`` simulates virtual nodes ``u_i`` at positions
``(u + 2**(bits-i)) mod 2**bits``.  A :class:`NodeRef` names one such node:
``(id, owner, level)`` with ``level == 0`` for the real node itself.  Refs
are what travels in messages and populates neighborhoods — they carry
enough information to reach the owner (the peer) and to address the
specific simulated node.

Ordering: the protocol's rules 2–6 need a *strict total order* on nodes
(unique "closest" nodes).  Identifiers alone are not enough in small test
id-spaces where a virtual position can collide with another node, so refs
order by ``(id, is_virtual, owner, level)`` — real nodes sort before
virtual nodes at equal ids (DESIGN.md [D2]).  With 64-bit random ids the
tie-break never fires in practice.
"""

from __future__ import annotations

from array import array
from typing import Dict, List, Tuple

from repro.idspace.ring import IdSpace


class NodeRef:
    """Immutable reference to a (real or virtual) node.

    Construct via :func:`make_ref` (or :meth:`NodeRef.real`) so that the
    ``id`` is always consistent with ``(owner, level)`` — the protocol and
    its proofs assume this consistency, and the factory makes corrupt
    ids unrepresentable.
    """

    __slots__ = ("id", "owner", "level", "iid", "_key", "_hash")

    def __init__(self, ident: int, owner: int, level: int) -> None:
        object.__setattr__(self, "id", ident)
        object.__setattr__(self, "owner", owner)
        object.__setattr__(self, "level", level)
        # dense intern id; -1 until the registry adopts this ref
        object.__setattr__(self, "iid", -1)
        object.__setattr__(self, "_key", (ident, 0 if level == 0 else 1, owner, level))
        object.__setattr__(self, "_hash", hash((owner, level)))

    # refs are conceptually frozen
    def __setattr__(self, name: str, value: object) -> None:  # pragma: no cover
        raise AttributeError("NodeRef is immutable")

    # immutability makes copying the identity function (and keeps
    # ``copy.deepcopy`` away from the raising ``__setattr__``)
    def __copy__(self) -> "NodeRef":
        return self

    def __deepcopy__(self, memo: dict) -> "NodeRef":
        return self

    def __reduce__(self):
        return (_reconstruct, (self.id, self.owner, self.level))

    @staticmethod
    def real(owner: int) -> "NodeRef":
        """The real node (level 0) of peer ``owner``."""
        return INTERN.intern(owner, owner, 0)

    @property
    def is_real(self) -> bool:
        """Whether this names a real node (level 0)."""
        return self.level == 0

    @property
    def key(self) -> Tuple[int, int, int, int]:
        """The strict-total-order sort key."""
        return self._key

    def __eq__(self, other: object) -> bool:
        if self is other:
            return True
        if not isinstance(other, NodeRef):
            return NotImplemented
        return self.owner == other.owner and self.level == other.level

    def __hash__(self) -> int:
        return self._hash

    def __lt__(self, other: "NodeRef") -> bool:
        return self._key < other._key

    def __le__(self, other: "NodeRef") -> bool:
        return self._key <= other._key

    def __gt__(self, other: "NodeRef") -> bool:
        return self._key > other._key

    def __ge__(self, other: "NodeRef") -> bool:
        return self._key >= other._key

    def __repr__(self) -> str:
        kind = "R" if self.level == 0 else f"V{self.level}"
        return f"<{kind} id={self.id} owner={self.owner}>"


class InternTable:
    """Process-global registry mapping each node identity to one ref.

    Every ref minted through :func:`make_ref` / :meth:`NodeRef.real` is a
    singleton per ``(id, owner, level)`` triple and carries a dense
    integer ``iid`` (its row in the columnar arrays below).  The columns
    — ``ids``/``owners`` as unsigned 64-bit, ``levels`` as native ints —
    are flat :mod:`array` storage that the columnar engine and the
    scale analyses index by ``iid`` instead of chasing objects.

    Direct ``NodeRef(...)`` construction remains legal (``iid == -1``,
    equality and hashing unchanged); interning is an acceleration layer,
    not a semantic one.
    """

    __slots__ = ("_by_key", "_refs", "ids", "owners", "levels")

    def __init__(self) -> None:
        self._by_key: Dict[Tuple[int, int, int], NodeRef] = {}
        self._refs: List[NodeRef] = []
        self.ids = array("Q")
        self.owners = array("Q")
        self.levels = array("i")

    def __len__(self) -> int:
        return len(self._refs)

    def intern(self, ident: int, owner: int, level: int) -> NodeRef:
        """The singleton ref for ``(ident, owner, level)`` (minted once)."""
        key = (ident, owner, level)
        ref = self._by_key.get(key)
        if ref is None:
            ref = NodeRef(ident, owner, level)
            object.__setattr__(ref, "iid", len(self._refs))
            self._by_key[key] = ref
            self._refs.append(ref)
            self.ids.append(ident)
            self.owners.append(owner)
            self.levels.append(level)
        return ref

    def ref(self, iid: int) -> NodeRef:
        """The ref holding dense id ``iid``.

        Only non-negative dense ids name rows; ``-1`` is the sentinel
        carried by direct-constructed (never-interned) refs, and Python's
        negative indexing would silently alias it to whatever ref was
        interned *last* — after a mass leave that is some unrelated live
        peer.  Batched kernels read the flat columns by ``iid``, so the
        aliasing must be an error, not a wrong answer.
        """
        if iid < 0:
            raise IndexError(f"iid {iid} does not name an interned ref")
        return self._refs[iid]

    def all_refs(self) -> List[NodeRef]:
        """The live ref column in dense-id order (do not mutate).

        Rows are append-only: a peer leaving the network never frees its
        rows, so an ``iid`` observed once names the same identity
        forever — the property the batched kernels' rank index relies
        on.  The list object itself is the live backing store; callers
        must treat it as read-only.
        """
        return self._refs

    def columns(self) -> Tuple[array, array, array]:
        """The flat ``(ids, owners, levels)`` columns (do not mutate).

        Aligned with :meth:`all_refs`: row ``iid`` of each column holds
        that ref's identifier, owner and level.  These are the arrays
        the batched rule kernels (and numpy, via zero-copy
        ``frombuffer``) sort and scan instead of chasing ref objects.
        """
        return (self.ids, self.owners, self.levels)


#: the process-wide intern table (grows monotonically, never evicts —
#: evicting would let two live objects claim the same identity)
INTERN = InternTable()


def _reconstruct(ident: int, owner: int, level: int) -> NodeRef:
    """Unpickle hook: route through the registry to keep refs singleton."""
    return INTERN.intern(ident, owner, level)


def make_ref(space: IdSpace, owner: int, level: int) -> NodeRef:
    """Build the ref of node ``u_level`` of peer ``owner`` (id derived)."""
    if level < 0 or level > space.max_level():
        raise ValueError(f"level must be in [0, {space.max_level()}], got {level}")
    return INTERN.intern(space.virtual_id(owner, level), owner, level)
