"""Identities of real and virtual nodes.

A peer with identifier ``u`` simulates virtual nodes ``u_i`` at positions
``(u + 2**(bits-i)) mod 2**bits``.  A :class:`NodeRef` names one such node:
``(id, owner, level)`` with ``level == 0`` for the real node itself.  Refs
are what travels in messages and populates neighborhoods — they carry
enough information to reach the owner (the peer) and to address the
specific simulated node.

Ordering: the protocol's rules 2–6 need a *strict total order* on nodes
(unique "closest" nodes).  Identifiers alone are not enough in small test
id-spaces where a virtual position can collide with another node, so refs
order by ``(id, is_virtual, owner, level)`` — real nodes sort before
virtual nodes at equal ids (DESIGN.md [D2]).  With 64-bit random ids the
tie-break never fires in practice.
"""

from __future__ import annotations

from typing import Tuple

from repro.idspace.ring import IdSpace


class NodeRef:
    """Immutable reference to a (real or virtual) node.

    Construct via :func:`make_ref` (or :meth:`NodeRef.real`) so that the
    ``id`` is always consistent with ``(owner, level)`` — the protocol and
    its proofs assume this consistency, and the factory makes corrupt
    ids unrepresentable.
    """

    __slots__ = ("id", "owner", "level", "_key", "_hash")

    def __init__(self, ident: int, owner: int, level: int) -> None:
        object.__setattr__(self, "id", ident)
        object.__setattr__(self, "owner", owner)
        object.__setattr__(self, "level", level)
        object.__setattr__(self, "_key", (ident, 0 if level == 0 else 1, owner, level))
        object.__setattr__(self, "_hash", hash((owner, level)))

    # refs are conceptually frozen
    def __setattr__(self, name: str, value: object) -> None:  # pragma: no cover
        raise AttributeError("NodeRef is immutable")

    # immutability makes copying the identity function (and keeps
    # ``copy.deepcopy`` away from the raising ``__setattr__``)
    def __copy__(self) -> "NodeRef":
        return self

    def __deepcopy__(self, memo: dict) -> "NodeRef":
        return self

    def __reduce__(self):
        return (NodeRef, (self.id, self.owner, self.level))

    @staticmethod
    def real(owner: int) -> "NodeRef":
        """The real node (level 0) of peer ``owner``."""
        return NodeRef(owner, owner, 0)

    @property
    def is_real(self) -> bool:
        """Whether this names a real node (level 0)."""
        return self.level == 0

    @property
    def key(self) -> Tuple[int, int, int, int]:
        """The strict-total-order sort key."""
        return self._key

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, NodeRef):
            return NotImplemented
        return self.owner == other.owner and self.level == other.level

    def __hash__(self) -> int:
        return self._hash

    def __lt__(self, other: "NodeRef") -> bool:
        return self._key < other._key

    def __le__(self, other: "NodeRef") -> bool:
        return self._key <= other._key

    def __gt__(self, other: "NodeRef") -> bool:
        return self._key > other._key

    def __ge__(self, other: "NodeRef") -> bool:
        return self._key >= other._key

    def __repr__(self) -> str:
        kind = "R" if self.level == 0 else f"V{self.level}"
        return f"<{kind} id={self.id} owner={self.owner}>"


def make_ref(space: IdSpace, owner: int, level: int) -> NodeRef:
    """Build the ref of node ``u_level`` of peer ``owner`` (id derived)."""
    if level < 0 or level > space.max_level():
        raise ValueError(f"level must be in [0, {space.max_level()}], got {level}")
    return NodeRef(space.virtual_id(owner, level), owner, level)
