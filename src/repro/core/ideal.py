"""The unique stable Re-Chord topology for a given live peer set.

Section 3.1.6 of the paper argues the stable state is unique and change-
free; this module computes it directly from the peer identifiers:

* every peer's virtual-node count ``m*`` (from the clockwise gap to its
  real successor);
* every node's sorted-order neighbors (``prev``/``next`` in linear order);
* every node's closest real neighbors ``rl``/``rr`` (linear) and the
  wrap-around pointers of the seam extension [D6];
* the two ring edges ``(min -> max)`` and ``(max -> min)``.

It also derives the classical Chord graph over the same peers, which the
tests use to verify Fact 2.1 (Chord ⊆ stable Re-Chord) and which the DHT
layer routes on.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Optional, Sequence, Set, Tuple

from repro.core.noderef import NodeRef, make_ref
from repro.idspace.ring import IdSpace


@dataclass(frozen=True)
class IdealTopology:
    """The target stable topology for a fixed live peer set."""

    space: IdSpace
    peer_ids: Tuple[int, ...]
    m_star: Dict[int, int] = field(hash=False)
    refs: Tuple[NodeRef, ...] = field(hash=False)
    nu: Dict[NodeRef, FrozenSet[NodeRef]] = field(hash=False)
    nr: Dict[NodeRef, FrozenSet[NodeRef]] = field(hash=False)
    rl: Dict[NodeRef, Optional[NodeRef]] = field(hash=False)
    rr: Dict[NodeRef, Optional[NodeRef]] = field(hash=False)
    wrap_rl: Dict[NodeRef, Optional[NodeRef]] = field(hash=False)
    wrap_rr: Dict[NodeRef, Optional[NodeRef]] = field(hash=False)

    @property
    def total_nodes(self) -> int:
        """Real + virtual node count of the stable network."""
        return len(self.refs)

    @property
    def virtual_nodes(self) -> int:
        """Virtual node count of the stable network."""
        return len(self.refs) - len(self.peer_ids)

    def desired_edges(self) -> Set[Tuple[NodeRef, NodeRef, str]]:
        """All edges of the ideal Re-Chord network (``E_u ∪ E_r`` + wraps).

        Used by the "almost stable" detector: a state is almost stable
        once every desired edge exists (extra edges permitted).
        """
        out: Set[Tuple[NodeRef, NodeRef, str]] = set()
        for x, targets in self.nu.items():
            for t in targets:
                out.add((x, t, "u"))
        for x, targets in self.nr.items():
            for t in targets:
                out.add((x, t, "r"))
        return out


def gap_to_successor(space: IdSpace, peer_ids: Sequence[int], u: int) -> int:
    """Clockwise distance from ``u`` to the nearest other peer id.

    Full ring size when ``u`` is the only peer.
    """
    best = space.size
    for v in peer_ids:
        if v == u:
            continue
        d = space.distance_cw(u, v)
        if 0 < d < best:
            best = d
    return best


def compute_ideal(space: IdSpace, peer_ids: Sequence[int]) -> IdealTopology:
    """Compute the unique stable topology for ``peer_ids``."""
    ids = sorted(set(peer_ids))
    if len(ids) != len(list(peer_ids)):
        raise ValueError("peer ids must be unique")
    if not ids:
        return IdealTopology(space, (), {}, (), {}, {}, {}, {}, {}, {})

    m_star: Dict[int, int] = {}
    refs: List[NodeRef] = []
    n = len(ids)
    for i, u in enumerate(ids):
        # ids are sorted, so the clockwise successor of ids[i] is
        # ids[i+1] (wrapping) — same value as gap_to_successor() without
        # the per-peer linear scan, which is what keeps 100k-peer ideal
        # construction feasible
        gap = space.size if n == 1 else (ids[(i + 1) % n] - u) % space.size
        m = space.level_count(gap)
        m_star[u] = m
        for level in range(0, m + 1):
            refs.append(make_ref(space, u, level))
    refs.sort()

    reals = [r for r in refs if r.is_real]
    r_min, r_max = reals[0], reals[-1]

    # nearest real to the left/right of each position (linear scans)
    rl: Dict[NodeRef, Optional[NodeRef]] = {}
    rr: Dict[NodeRef, Optional[NodeRef]] = {}
    last_real: Optional[NodeRef] = None
    for ref in refs:
        rl[ref] = last_real
        if ref.is_real:
            last_real = ref
    next_real: Optional[NodeRef] = None
    for ref in reversed(refs):
        rr[ref] = next_real
        if ref.is_real:
            next_real = ref

    nu: Dict[NodeRef, FrozenSet[NodeRef]] = {}
    nr: Dict[NodeRef, FrozenSet[NodeRef]] = {}
    wrap_rl: Dict[NodeRef, Optional[NodeRef]] = {}
    wrap_rr: Dict[NodeRef, Optional[NodeRef]] = {}
    for idx, ref in enumerate(refs):
        targets: Set[NodeRef] = set()
        if idx > 0:
            targets.add(refs[idx - 1])
        if idx + 1 < len(refs):
            targets.add(refs[idx + 1])
        if rl[ref] is not None:
            targets.add(rl[ref])
        if rr[ref] is not None:
            targets.add(rr[ref])
        targets.discard(ref)
        nu[ref] = frozenset(targets)
        nr[ref] = frozenset()
        wrap_rl[ref] = r_max if (rl[ref] is None and r_max != ref) else None
        wrap_rr[ref] = r_min if (rr[ref] is None and r_min != ref) else None

    # the two seam-closing ring edges (held by the global extremes)
    if len(refs) >= 2:
        nr[refs[0]] = frozenset({refs[-1]})
        nr[refs[-1]] = frozenset({refs[0]})

    return IdealTopology(
        space=space,
        peer_ids=tuple(ids),
        m_star=m_star,
        refs=tuple(refs),
        nu=nu,
        nr=nr,
        rl=rl,
        rr=rr,
        wrap_rl=wrap_rl,
        wrap_rr=wrap_rr,
    )


# ----------------------------------------------------------------------
# classical Chord graph (for Fact 2.1 and the DHT layer)
# ----------------------------------------------------------------------
def chord_successor(space: IdSpace, peer_ids: Sequence[int], position: int) -> int:
    """The peer responsible for ``position``: first peer at-or-after it.

    Chord's consistent-hashing successor with wrap-around; a peer exactly
    at ``position`` is its own successor.
    """
    ids = sorted(peer_ids)
    if not ids:
        raise ValueError("no peers")
    best = None
    best_d = None
    for v in ids:
        d = space.distance_cw(position, v)
        if best_d is None or d < best_d:
            best, best_d = v, d
    return best  # type: ignore[return-value]


def chord_edges(space: IdSpace, peer_ids: Sequence[int]) -> Set[Tuple[int, int]]:
    """The classical Chord edge set over ``peer_ids`` (Section 1.1).

    Successor edges plus finger edges ``p_i(u)`` for ``1 <= i <= m*(u)``,
    each finger pointing at the first peer at-or-after ``u + 2**(B-i)``
    (wrapping to the smallest peer when needed).  Self-edges (only
    possible for n = 1) are omitted.
    """
    ids = sorted(set(peer_ids))
    edges: Set[Tuple[int, int]] = set()
    if len(ids) < 2:
        return edges
    for u in ids:
        gap = gap_to_successor(space, ids, u)
        succ = chord_successor(space, ids, (u + 1) % space.size)
        if succ != u:
            edges.add((u, succ))
        m = space.level_count(gap)
        for i in range(1, m + 1):
            target = chord_successor(space, ids, space.virtual_id(u, i))
            if target != u:
                edges.add((u, target))
    return edges
