"""Local checkability of the Re-Chord topology.

The paper's motivation: plain Chord is *not* locally checkable (a node
cannot tell from its own state whether the global topology is correct),
but Re-Chord is — the virtual nodes make every required edge locally
recognizable.  This module implements the per-peer predicate: it reads
*only* the peer's own state (its simulated nodes and their neighborhood
sets).  The conjunction over all peers holds in the stable topology, and
— given the weak-connectivity precondition — any deviation from the ideal
topology trips at least one peer's check (demonstrated empirically by
``tests/test_checker.py``).
"""

from __future__ import annotations

from typing import List

from repro.core.network import ReChordNetwork
from repro.core.protocol import ReChordPeer


def local_check_peer(peer: ReChordPeer) -> List[str]:
    """Violations of the local stability invariants (empty == pass).

    Invariants (each computable from the peer's own state alone):

    1. the sibling levels are exactly ``0..m`` for the ``m`` induced by
       the peer's current knowledge;
    2. each node's cached ``rl``/``rr`` equal the closest known reals and
       reside in ``nu``;
    3. each node's ``nu`` contains nothing besides its closest known
       left/right neighbor and ``rl``/``rr`` — and no known node is
       closer than the stored neighbor (no "sortedness violation");
    4. ring edges exist only at a node that is the extreme of the peer's
       knowledge, and point at the opposite extreme;
    5. wrap pointers exist only where the linear real neighbor is
       missing.
    """
    state = peer.state
    problems: List[str] = []
    knowledge = state.knowledge()
    reals = state.known_reals(knowledge)
    kmin = min(knowledge)
    kmax = max(knowledge)

    gap = state.closest_real_gap()
    m = state.space.level_count(gap)
    if set(state.nodes) != set(range(0, m + 1)):
        problems.append(f"levels {sorted(state.nodes)} != 0..{m}")

    for level in sorted(state.nodes):
        node = state.nodes[level]
        ui = node.ref
        want_rl = None
        want_rr = None
        for ref in reals:
            if ref == ui:
                continue
            if ref < ui:
                want_rl = ref
            elif want_rr is None:
                want_rr = ref
                break
        if node.rl != want_rl:
            problems.append(f"{ui!r}: rl cache {node.rl!r} != {want_rl!r}")
        if node.rr != want_rr:
            problems.append(f"{ui!r}: rr cache {node.rr!r} != {want_rr!r}")

        lefts = sorted(w for w in knowledge if w < ui)
        rights = sorted(w for w in knowledge if w > ui)
        closest_left = lefts[-1] if lefts else None
        closest_right = rights[0] if rights else None
        allowed = {x for x in (closest_left, closest_right, want_rl, want_rr) if x is not None}
        extras = node.nu - allowed
        if extras:
            problems.append(f"{ui!r}: extra nu members {sorted(extras)}")
        required = {x for x in (closest_left, closest_right) if x is not None}
        missing = required - node.nu
        if missing:
            problems.append(f"{ui!r}: missing neighbors {sorted(missing)}")
        if want_rl is not None and want_rl not in node.nu:
            problems.append(f"{ui!r}: rl not in nu")
        if want_rr is not None and want_rr not in node.nu:
            problems.append(f"{ui!r}: rr not in nu")

        for w in node.nr:
            if w > ui and not (ui == kmin and w == kmax):
                problems.append(f"{ui!r}: illegitimate ring edge to {w!r}")
            if w < ui and not (ui == kmax and w == kmin):
                problems.append(f"{ui!r}: illegitimate ring edge to {w!r}")
        if closest_left is None and ui != kmin:
            problems.append(f"{ui!r}: no left neighbor but not the known minimum")
        if closest_right is None and ui != kmax:
            problems.append(f"{ui!r}: no right neighbor but not the known maximum")

        if node.wrap_rr is not None and node.rr is not None:
            problems.append(f"{ui!r}: wrap_rr set despite linear rr")
        if node.wrap_rl is not None and node.rl is not None:
            problems.append(f"{ui!r}: wrap_rl set despite linear rl")

    return problems


def locally_checkable_stable(network: ReChordNetwork) -> bool:
    """Conjunction of all peers' local checks."""
    return all(not local_check_peer(peer) for peer in network.peers.values())
