"""Edge/node accounting for the paper's figures.

Fig. 5 plots "normal edges" (all non-connection edges), "connection
edges" and "virtual nodes" against the number of real nodes; Fig. 7 plots
total edges against total nodes.  :func:`collect` produces all of these
from a network snapshot (in-flight edge inserts included, since the
stable state keeps part of the connection-edge population permanently in
transit).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.network import ReChordNetwork
from repro.graphs.digraph import EdgeKind


@dataclass(frozen=True)
class NetworkMetrics:
    """Structural counts of one network state."""

    real_nodes: int
    virtual_nodes: int
    unmarked_edges: int
    ring_edges: int
    connection_edges: int
    real_pointer_edges: int
    pending_messages: int

    @property
    def total_nodes(self) -> int:
        """Real + virtual nodes (the paper's "total number of nodes")."""
        return self.real_nodes + self.virtual_nodes

    @property
    def normal_edges(self) -> int:
        """All non-connection edges (the paper's "normal edges")."""
        return self.unmarked_edges + self.ring_edges + self.real_pointer_edges

    @property
    def total_edges(self) -> int:
        """Normal + connection edges (the paper's "total edges")."""
        return self.normal_edges + self.connection_edges


def collect(network: ReChordNetwork, include_pending: bool = True) -> NetworkMetrics:
    """Measure the current network state."""
    graph = network.snapshot(include_pending=include_pending)
    real = sum(1 for ref in graph.nodes() if ref.is_real)
    # count only nodes actually simulated by live peers (snapshot also
    # contains refs that appear solely as edge targets)
    simulated = sum(len(peer.state.nodes) for peer in network.peers.values())
    return NetworkMetrics(
        real_nodes=len(network.peers),
        virtual_nodes=simulated - len(network.peers),
        unmarked_edges=graph.edge_count(EdgeKind.UNMARKED),
        ring_edges=graph.edge_count(EdgeKind.RING),
        connection_edges=graph.edge_count(EdgeKind.CONNECTION),
        real_pointer_edges=graph.edge_count(EdgeKind.REAL_POINTER),
        pending_messages=network.scheduler.pending_messages(),
    )
