"""The Re-Chord self-stabilization rules (Section 2.3 of the paper).

One :class:`ReChordPeer` is a scheduler actor simulating the peer's real
node and all its virtual siblings.  Every round it:

1. applies the delayed assignments delivered at the last round boundary
   (the paper's ``A <- B`` semantics);
2. purges references to crashed peers / nonexistent virtual nodes
   (DESIGN.md [D7]/[D11]);
3. runs rules 1–6 in the paper's order.  Direct assignments (``:=``)
   mutate the peer's own state immediately and are visible to later rules
   in the same round; delayed assignments are sent as messages.

Rule-to-method map:

========================  ======================================
paper rule                method
========================  ======================================
1  Virtual Nodes          :meth:`ReChordPeer._rule1_virtual_nodes`
2  Overlapping Neighbor.  :meth:`ReChordPeer._rule2_overlap`
3  Closest Real Neighbor  :meth:`ReChordPeer._rule3_closest_real`
4  Linearization          :meth:`ReChordPeer._rule4_linearize`
5  Ring Edge              :meth:`ReChordPeer._rule5_ring`
6  Connection Edges       :meth:`ReChordPeer._rule6_connection`
========================  ======================================

The module docstrings of :mod:`repro.core.events` and DESIGN.md Section 3
explain the deviations; inline comments below only flag the subtle spots.
"""

from __future__ import annotations

from bisect import bisect_left, bisect_right
from operator import attrgetter
from time import perf_counter as _perf
from typing import Callable, Dict, List, Optional, Sequence

from repro.core.events import (
    KIND_CONNECTION,
    KIND_RING,
    KIND_UNMARKED,
    EdgeAdd,
    NeighborIntro,
    RealCandidate,
    SIDE_LEFT,
    SIDE_RIGHT,
)
from repro.core.noderef import NodeRef
from repro.core.rules import RuleConfig, RuleCounters
from repro.core.state import LocalNode, PeerState
from repro.netsim.messages import AppPayload, Envelope
from repro.netsim.scheduler import RoundContext

#: liveness verdicts returned by the network's reference oracle
REF_OK = "ok"
REF_DEAD = "dead"
REF_PHANTOM = "phantom"

RefOracle = Callable[[NodeRef], str]

#: sort key accessor — sorting by the precomputed tuple is measurably
#: faster than dispatching NodeRef.__lt__ per comparison (hot path)
_KEY = attrgetter("_key")


class ReChordPeer:
    """Actor running the Re-Chord rules for one peer."""

    __slots__ = (
        "state", "config", "counters", "_ref_alive", "_replay_delta",
        "traffic", "telemetry", "_batched_sibs", "_inbox_skip",
    )

    def __init__(
        self,
        state: PeerState,
        config: RuleConfig,
        ref_alive: RefOracle,
        counters: Optional[RuleCounters] = None,
    ) -> None:
        self.state = state
        self.config = config
        self.counters = counters if counters is not None else RuleCounters()
        self._ref_alive = ref_alive
        #: per-rule counter increments of the last executed step; replayed
        #: by the activity-tracked scheduler so quiescent rounds keep the
        #: exact same rule-firing accounting as fully executed ones
        self._replay_delta: dict = {}
        #: application-plane handler (see repro.traffic); installed by
        #: ReChordNetwork.attach_traffic, None when no plane is attached
        self.traffic = None
        #: TelemetryRecorder receiving per-rule wall-clock spans; installed
        #: by ReChordNetwork.enable_telemetry, None (disabled) by default —
        #: the only cost then is this one attribute check per step
        self.telemetry = None
        #: memos owned by the *batched* rule backend (see
        #: repro.core.rules_batched): the peer's sorted sibling chain
        #: keyed by its level tuple, and the no-op inbox skip keyed on
        #: the canonical state tuple — the same completeness oracle the
        #: incremental kernel's steady-replay relies on.  The scalar
        #: pipeline never reads or writes them; they die with the actor.
        self._batched_sibs = None
        self._inbox_skip = None

    # ------------------------------------------------------------------
    # actor entry point
    # ------------------------------------------------------------------
    def step(self, inbox: Sequence[Envelope], ctx: RoundContext) -> None:
        """One synchronous round: apply inbox, purge, rules 1-6, traffic."""
        if self.telemetry is not None:
            return self._step_timed(inbox, ctx)
        fires_before = dict(self.counters.fires)
        app: Optional[List] = None
        if self.traffic is not None:
            app = [env.payload for env in inbox if isinstance(env.payload, AppPayload)]
            if app:
                inbox = [env for env in inbox if not isinstance(env.payload, AppPayload)]
        self._apply_inbox(inbox)
        self._purge()
        cfg = self.config
        if cfg.virtual_nodes:
            self._rule1_virtual_nodes()
        if cfg.overlap:
            self._rule2_overlap()
        if cfg.closest_real:
            self._rule3_closest_real(ctx)
        if cfg.linearize:
            self._rule4_linearize(ctx)
        if cfg.ring:
            self._rule5_ring(ctx)
        if cfg.connection:
            self._rule6_connection(ctx)
        if app:
            # one-shot inbox: this step's outbox and counter delta must
            # not become a replay template (see AppPayload contract)
            ctx.reexecute_next_round()
            self.traffic.handle(self, app, ctx)
        fires = self.counters.fires
        self._replay_delta = {
            rule: count - fires_before.get(rule, 0)
            for rule, count in fires.items()
            if count != fires_before.get(rule, 0)
        }

    def _step_timed(self, inbox: Sequence[Envelope], ctx: RoundContext) -> None:
        """:meth:`step` with per-rule ``perf_counter`` spans.

        A verbatim copy of the pipeline (same order, same semantics —
        the differential suites run with telemetry on to prove it) that
        accumulates each phase's wall time under a ``rule.*`` /
        ``peer.*`` label, naming the vectorization targets for the
        ROADMAP's rule-batching work.  Kept as a separate method so the
        disabled path pays nothing but the attribute check above.
        """
        add = self.telemetry.add_time
        fires_before = dict(self.counters.fires)
        app: Optional[List] = None
        if self.traffic is not None:
            app = [env.payload for env in inbox if isinstance(env.payload, AppPayload)]
            if app:
                inbox = [env for env in inbox if not isinstance(env.payload, AppPayload)]
        t = _perf()
        self._apply_inbox(inbox)
        t2 = _perf(); add("peer.apply_inbox", t2 - t); t = t2
        self._purge()
        t2 = _perf(); add("rule.purge", t2 - t); t = t2
        cfg = self.config
        if cfg.virtual_nodes:
            self._rule1_virtual_nodes()
            t2 = _perf(); add("rule.1_virtual_nodes", t2 - t); t = t2
        if cfg.overlap:
            self._rule2_overlap()
            t2 = _perf(); add("rule.2_overlap", t2 - t); t = t2
        if cfg.closest_real:
            self._rule3_closest_real(ctx)
            t2 = _perf(); add("rule.3_closest_real", t2 - t); t = t2
        if cfg.linearize:
            self._rule4_linearize(ctx)
            t2 = _perf(); add("rule.4_linearize", t2 - t); t = t2
        if cfg.ring:
            self._rule5_ring(ctx)
            t2 = _perf(); add("rule.5_ring", t2 - t); t = t2
        if cfg.connection:
            self._rule6_connection(ctx)
            t2 = _perf(); add("rule.6_connection", t2 - t); t = t2
        if app:
            ctx.reexecute_next_round()
            self.traffic.handle(self, app, ctx)
            add("peer.traffic", _perf() - t)
        fires = self.counters.fires
        self._replay_delta = {
            rule: count - fires_before.get(rule, 0)
            for rule, count in fires.items()
            if count != fires_before.get(rule, 0)
        }

    # ------------------------------------------------------------------
    # activity-tracking probes (see repro.netsim.scheduler)
    # ------------------------------------------------------------------
    def state_version(self) -> int:
        """Cheap monotonic possibly-changed counter of the peer state."""
        return self.state.version

    def state_token(self) -> tuple:
        """Exact boundary state (the peer's canonical fingerprint part)."""
        return self.state.canonical()

    def replay_step(self) -> None:
        """Re-apply the side effects of the last executed step.

        Called instead of :meth:`step` when the scheduler replays a
        quiescent round: state and emissions are known to repeat, and the
        rule counters advance by the cached delta so accounting stays
        identical to a full execution.
        """
        for rule, amount in self._replay_delta.items():
            self.counters.bump(rule, amount)

    def replay_steps(self, count: int) -> None:
        """Re-apply ``count`` quiescent rounds of counter deltas at once.

        The columnar engine settles accounting lazily: a peer that sat
        quiescent for ``count`` rounds owes ``count`` copies of its last
        step's delta, applied in one batch when the counters are next
        observed (or when the peer wakes).
        """
        if count <= 0:
            return
        for rule, amount in self._replay_delta.items():
            self.counters.bump(rule, amount * count)

    # ------------------------------------------------------------------
    # message delivery (delayed assignments)
    # ------------------------------------------------------------------
    def _apply_inbox(self, inbox: Sequence[Envelope]) -> None:
        # exact-type dispatch ordered by frequency (the payload classes
        # are final; see repro.core.events), with the EdgeAdd delivery
        # body inlined — this loop handles every message of every round
        resolve = self.state.resolve
        peer_id = self.state.peer_id
        for env in inbox:
            payload = env.payload
            cls = type(payload)
            if cls is EdgeAdd:
                node = resolve(payload.target)
                if node is None:  # misrouted — network bug, not protocol state
                    raise LookupError(
                        f"message for {payload.target!r} delivered to peer {peer_id}"
                    )
                endpoint = payload.endpoint
                if endpoint == node.ref:
                    continue  # self-edge sanitation [D10]
                kind = payload.kind
                if kind == KIND_UNMARKED:
                    node._nu.add(endpoint)
                elif kind == KIND_RING:
                    node._nr.add(endpoint)
                elif kind == KIND_CONNECTION:
                    node._nc.add(endpoint)
                else:  # pragma: no cover - protocol violation
                    raise ValueError(f"unknown edge kind {kind!r}")
            elif cls is RealCandidate:
                self._deliver_candidate(payload)
            elif cls is NeighborIntro:
                self._deliver_edge(payload.target, payload.endpoint, KIND_UNMARKED)
            elif isinstance(payload, AppPayload):
                raise TypeError(
                    f"traffic payload {payload!r} delivered to peer "
                    f"{self.state.peer_id} with no traffic plane attached "
                    "(call ReChordNetwork.attach_traffic first)"
                )
            else:  # pragma: no cover - protocol violation
                raise TypeError(f"unknown payload {payload!r}")

    def _deliver_edge(self, target: NodeRef, endpoint: NodeRef, kind: str) -> None:
        node = self.state.resolve(target)
        if node is None:  # misrouted — network bug, not protocol state
            raise LookupError(f"message for {target!r} delivered to peer {self.state.peer_id}")
        if endpoint == node.ref:
            return  # self-edge sanitation [D10]
        if kind == KIND_UNMARKED:
            node._nu.add(endpoint)
        elif kind == KIND_RING:
            node._nr.add(endpoint)
        elif kind == KIND_CONNECTION:
            node._nc.add(endpoint)
        else:  # pragma: no cover - protocol violation
            raise ValueError(f"unknown edge kind {kind!r}")

    def _deliver_candidate(self, msg: RealCandidate) -> None:
        node = self.state.resolve(msg.target)
        if node is None:  # pragma: no cover - misrouted
            raise LookupError(f"candidate for {msg.target!r} at peer {self.state.peer_id}")
        cand = msg.candidate
        if not cand.is_real or cand == node.ref:
            return
        if msg.wrap:
            self._adopt_wrap_candidate(node, cand, msg.side)
        else:
            self._adopt_linear_candidate(node, cand, msg.side)

    def _adopt_linear_candidate(self, node: LocalNode, cand: NodeRef, side: str) -> None:
        """Rule 3's receiver-side guard: adopt only strict improvements.

        The paper's guard ``v > rl(y)`` (resp. ``v < rr(y)``) reads the
        receiver's pointer, so it must run here [D9].  An adopted
        candidate goes into ``nu`` exactly as the paper's
        ``Nu(y) <- Nu(y) ∪ {v}`` writes it; rule 3 will recompute the
        cached pointer from knowledge next round.
        """
        ck = cand._key
        if side == SIDE_LEFT:
            if ck >= node.ref._key:
                return  # wrong side — stale or corrupt sender state
            rl = node._rl
            if rl is None or ck > rl._key:
                node._nu.add(cand)
                self.counters.bump("rule3_adopt")
        else:
            if ck <= node.ref._key:
                return
            rr = node._rr
            if rr is None or ck < rr._key:
                node._nu.add(cand)
                self.counters.bump("rule3_adopt")

    def _adopt_wrap_candidate(self, node: LocalNode, cand: NodeRef, side: str) -> None:
        """Seam-exchange adoption [D6].

        A wrap pointer is only meaningful while the node has no *linear*
        real neighbor on that side; improvements move toward the global
        extreme real node (smaller for ``wrap_rr``, larger for
        ``wrap_rl``).  Replaced values are demoted into ``nu`` so no
        reference (and hence no connectivity) is ever lost.
        """
        if not self.config.wrap_pointers:
            return
        if side == SIDE_RIGHT:
            if node.rr is not None:
                return  # has a linear successor-side real; no wrap needed
            if node.wrap_rr is None or cand < node.wrap_rr:
                if node.wrap_rr is not None and node.wrap_rr != node.ref:
                    node.nu.add(node.wrap_rr)
                node.wrap_rr = cand
                self.counters.bump("wrap_adopt")
        else:
            if node.rl is not None:
                return
            if node.wrap_rl is None or cand > node.wrap_rl:
                if node.wrap_rl is not None and node.wrap_rl != node.ref:
                    node.nu.add(node.wrap_rl)
                node.wrap_rl = cand
                self.counters.bump("wrap_adopt")

    # ------------------------------------------------------------------
    # reference purging [D7]/[D11]
    # ------------------------------------------------------------------
    def _purge(self) -> None:
        """Drop references to dead peers; re-point phantom virtual refs.

        A reference to a virtual node its owner no longer simulates is
        rewritten to the owner's *real* node (whose address the ref
        carries), so a corrupt initial state cannot lose its only link to
        a component — the paper's weak-connectivity precondition survives
        sanitation.
        """
        alive = self._ref_alive
        # most refs recur across the ~log(n) levels of a peer (the same
        # neighbor appears in many neighborhoods), so liveness verdicts
        # are memoized per step — a verdict depends only on the ref
        verdicts: Dict[NodeRef, str] = {}
        for level in sorted(self.state.nodes):
            node = self.state.nodes[level]
            nref = node.ref
            for refs in (node._nu, node._nr, node._nc):
                bad: Optional[List[NodeRef]] = None
                for r in refs:
                    if r == nref:
                        if bad is None:
                            bad = []
                        bad.append(r)
                        continue
                    v = verdicts.get(r)
                    if v is None:
                        v = verdicts[r] = alive(r)
                    if v != REF_OK:
                        if bad is None:
                            bad = []
                        bad.append(r)
                if bad is None:
                    continue
                for ref in bad:
                    refs.discard(ref)
                    if ref == nref:
                        continue
                    if verdicts[ref] == REF_PHANTOM:
                        real = NodeRef.real(ref.owner)
                        if real != nref:
                            refs.add(real)
                        self.counters.bump("purge_phantom")
                    else:
                        self.counters.bump("purge_dead")
            for attr, ref in (
                ("rl", node._rl),
                ("rr", node._rr),
                ("wrap_rl", node._wrap_rl),
                ("wrap_rr", node._wrap_rr),
            ):
                if ref is None:
                    continue
                if ref.level != 0 or ref == nref:
                    setattr(node, attr, None)
                    self.counters.bump("purge_slot")
                    continue
                v = verdicts.get(ref)
                if v is None:
                    v = verdicts[ref] = alive(ref)
                if v != REF_OK:
                    setattr(node, attr, None)
                    self.counters.bump("purge_slot")
            # corrupt cached pointers on the wrong side are cleared (the
            # ref stays reachable through nu if it was ever real state)
            nk = nref._key
            rl = node._rl
            if rl is not None and rl._key >= nk:
                node.rl = None
            rr = node._rr
            if rr is not None and rr._key <= nk:
                node.rr = None

    # ------------------------------------------------------------------
    # rule 1 — virtual nodes
    # ------------------------------------------------------------------
    def _rule1_virtual_nodes(self) -> None:
        state = self.state
        gap = state.closest_real_gap()
        m = state.space.level_count(gap)
        for level in range(1, m + 1):
            if level not in state.nodes:
                state.ensure_level(level)
                self.counters.bump("rule1_create")
        doomed = [lvl for lvl in state.nodes if lvl > m]
        if doomed:
            target = state.nodes[m]
            for level in sorted(doomed):
                dead = state.drop_level(level)
                inherited = dead.all_out_refs()
                inherited.discard(target.ref)
                inherited.discard(dead.ref)
                # the paper: "the virtual node u_m is informed about
                # u_i's neighborhood" — everything arrives unmarked
                target.nu |= inherited
                self.counters.bump("rule1_delete")

    # ------------------------------------------------------------------
    # rule 2 — overlapping neighborhood
    # ------------------------------------------------------------------
    def _rule2_overlap(self) -> None:
        state = self.state
        sibs = state.sibling_refs()
        if len(sibs) < 2:
            return
        # sibs is sorted, so "the closest sibling strictly between w and
        # ui" is a bisect on the key column, not a scan of all siblings
        sib_keys = [s._key for s in sibs]
        nsibs = len(sibs)
        for level in sorted(state.nodes):
            node = state.nodes[level]
            ui = node.ref
            uik = ui._key
            for w in sorted(node._nu, key=_KEY):
                wk = w._key
                if wk < uik:
                    # siblings strictly between w and ui; closest to w wins
                    idx = bisect_right(sib_keys, wk)
                    target = (
                        sibs[idx] if idx < nsibs and sib_keys[idx] < uik else None
                    )
                else:
                    idx = bisect_left(sib_keys, wk)
                    target = (
                        sibs[idx - 1] if idx > 0 and sib_keys[idx - 1] > uik else None
                    )
                if target is None:
                    continue
                node._nu.discard(w)
                peer_node = state.nodes[target.level]
                if w != peer_node.ref:
                    peer_node._nu.add(w)
                self.counters.bump("rule2_move")

    # ------------------------------------------------------------------
    # rule 3 — closest real neighbor
    # ------------------------------------------------------------------
    def _rule3_closest_real(self, ctx: RoundContext) -> None:
        state = self.state
        reals = state.known_reals()
        real_keys = [r._key for r in reals]
        for level in sorted(state.nodes):
            node = state.nodes[level]
            ui = node.ref
            idx = bisect_left(real_keys, ui._key)
            rl = reals[idx - 1] if idx > 0 else None
            if idx < len(reals) and reals[idx] == ui:
                rr = reals[idx + 1] if idx + 1 < len(reals) else None
            else:
                rr = reals[idx] if idx < len(reals) else None
            node.rl, node.rr = rl, rr
            if rl is not None:
                node._nu.add(rl)  # the paper's Nu(ui) := Nu(ui) ∪ {v}
            if rr is not None:
                node._nu.add(rr)
            if self.config.wrap_pointers:
                self._maintain_wrap_slots(node)
            # announce to neighbors per the paper's y-conditions
            eco = self.config.economical_broadcast
            nu_sorted = sorted(node._nu, key=_KEY)
            uik = ui._key
            if rl is not None:
                rlk = rl._key
                recipients = []
                for y in nu_sorted:
                    if y == rl:
                        continue
                    yk = y._key
                    if yk > uik or rlk < yk < uik:
                        recipients.append(y)
                for y in recipients:
                    if eco and rl == node.bcast_rl and (
                        node.bcast_rl_targets is not None and y in node.bcast_rl_targets
                    ):
                        continue  # already announced this value to y
                    ctx.send(y.owner, RealCandidate(y, rl, SIDE_LEFT))
                if eco:
                    node.bcast_rl = rl
                    node.bcast_rl_targets = frozenset(recipients)
            elif eco:
                node.bcast_rl = None
                node.bcast_rl_targets = None
            if rr is not None:
                rrk = rr._key
                recipients = []
                for y in nu_sorted:
                    if y == rr:
                        continue
                    yk = y._key
                    if yk < uik or uik < yk < rrk:
                        recipients.append(y)
                for y in recipients:
                    if eco and rr == node.bcast_rr and (
                        node.bcast_rr_targets is not None and y in node.bcast_rr_targets
                    ):
                        continue
                    ctx.send(y.owner, RealCandidate(y, rr, SIDE_RIGHT))
                if eco:
                    node.bcast_rr = rr
                    node.bcast_rr_targets = frozenset(recipients)
            elif eco:
                node.bcast_rr = None
                node.bcast_rr_targets = None
            if self.config.wrap_pointers:
                self._relay_wrap(node, ctx)

    def _maintain_wrap_slots(self, node: LocalNode) -> None:
        """Clear wrap pointers made obsolete by a linear real neighbor.

        The cleared target is demoted into ``nu`` so the reference (and
        any connectivity riding on it) survives.
        """
        if node.rr is not None and node.wrap_rr is not None:
            if node.wrap_rr != node.ref:
                node.nu.add(node.wrap_rr)
            node.wrap_rr = None
        if node.rl is not None and node.wrap_rl is not None:
            if node.wrap_rl != node.ref:
                node.nu.add(node.wrap_rl)
            node.wrap_rl = None

    def _relay_wrap(self, node: LocalNode, ctx: RoundContext) -> None:
        """Propagate wrap pointers through the top/bottom identifier gaps.

        A node still lacking a linear real neighbor relays its wrap
        pointer to its closest neighbor on that side (and to its linear
        real neighbor on the *other* side, which shortcuts the gap) —
        the flow stays confined to the gaps and is constant in the
        stable state.
        """
        ui = node.ref
        if node.rr is None and node.wrap_rr is not None:
            lefts = [w for w in node.nu if w < ui]
            targets = set()
            if lefts:
                targets.add(max(lefts))
            if node.rl is not None:
                targets.add(node.rl)
            for t in sorted(targets):
                ctx.send(t.owner, RealCandidate(t, node.wrap_rr, SIDE_RIGHT, wrap=True))
        if node.rl is None and node.wrap_rl is not None:
            rights = [w for w in node.nu if w > ui]
            targets = set()
            if rights:
                targets.add(min(rights))
            if node.rr is not None:
                targets.add(node.rr)
            for t in sorted(targets):
                ctx.send(t.owner, RealCandidate(t, node.wrap_rl, SIDE_LEFT, wrap=True))

    # ------------------------------------------------------------------
    # rule 4 — linearization + mirroring
    # ------------------------------------------------------------------
    def _rule4_linearize(self, ctx: RoundContext) -> None:
        state = self.state
        forwards = 0
        for level in sorted(state.nodes):
            node = state.nodes[level]
            ui = node.ref
            uik = ui._key
            nu = node._nu
            lefts = sorted((w for w in nu if w._key < uik), key=_KEY, reverse=True)
            for a, b in zip(lefts, lefts[1:]):
                # forward: starting point moves closer to the endpoint
                ctx.send(a.owner, EdgeAdd(a, b, KIND_UNMARKED))
                nu.discard(b)
                forwards += 1
            rights = sorted((w for w in nu if w._key > uik), key=_KEY)
            for a, b in zip(rights, rights[1:]):
                ctx.send(a.owner, EdgeAdd(a, b, KIND_UNMARKED))
                nu.discard(b)
                forwards += 1
            # mirroring: at this point nu holds only the two closest
            # neighbors (paper's note on rule 4)
            for v in sorted(nu, key=_KEY):
                ctx.send(v.owner, EdgeAdd(v, ui, KIND_UNMARKED))
            # re-add the closest real neighbors (paper: Nu(ui) := Nu(ui)
            # ∪ {rl(ui)} ∪ {rr(ui)})
            if node._rl is not None:
                nu.add(node._rl)
            if node._rr is not None:
                nu.add(node._rr)
        if forwards:
            self.counters.bump("rule4_forward", forwards)

    # ------------------------------------------------------------------
    # rule 5 — ring edges
    # ------------------------------------------------------------------
    def _rule5_ring(self, ctx: RoundContext) -> None:
        state = self.state
        knowledge = state.knowledge()
        kmin = min(knowledge, key=_KEY)
        kmax = max(knowledge, key=_KEY)
        reals = state.known_reals(knowledge)
        for level in sorted(state.nodes):
            node = state.nodes[level]
            ui = node.ref
            uik = ui._key
            has_left = has_right = False
            for w in node._nu:
                wk = w._key
                if wk < uik:
                    has_left = True
                elif wk > uik:
                    has_right = True
            if not has_left and kmax != ui:
                # believe to be the minimum: ask the largest known node to
                # hold a ring edge toward us
                ctx.send(kmax.owner, EdgeAdd(kmax, ui, KIND_RING))
                self.counters.bump("rule5_create")
            if not has_right and kmin != ui:
                ctx.send(kmin.owner, EdgeAdd(kmin, ui, KIND_RING))
                self.counters.bump("rule5_create")
            nr = node._nr
            for w in sorted(nr, key=_KEY):
                if w == ui:
                    nr.discard(w)  # self-edge sanitation [D10]
                    continue
                # scope max/min over (knowledge ∪ node.nr): the extreme of
                # the union is the extreme of the two extremes
                wk = w._key
                if wk > uik:
                    # w believes itself the maximum; this edge must reach
                    # the global minimum
                    x = kmax
                    xk = x._key
                    for y in nr:
                        yk = y._key
                        if yk > xk:
                            x = y
                            xk = yk
                    if xk > wk:
                        # w is not the maximum: hand it to a larger node
                        ctx.send(x.owner, EdgeAdd(x, w, KIND_UNMARKED))
                        nr.discard(w)
                        self.counters.bump("rule5_convert")
                    elif kmin != ui:
                        ctx.send(kmin.owner, EdgeAdd(kmin, w, KIND_RING))
                        nr.discard(w)
                        self.counters.bump("rule5_forward")
                    else:
                        # we are the smallest known node: hold the edge.
                        # Seam exchange [D6]: tell the other side the
                        # smallest real node we know.
                        if self.config.wrap_pointers and reals:
                            ctx.send(w.owner, RealCandidate(w, reals[0], SIDE_RIGHT, wrap=True))
                else:
                    x = kmin
                    xk = x._key
                    for y in nr:
                        yk = y._key
                        if yk < xk:
                            x = y
                            xk = yk
                    if xk < wk:
                        ctx.send(x.owner, EdgeAdd(x, w, KIND_UNMARKED))
                        nr.discard(w)
                        self.counters.bump("rule5_convert")
                    elif kmax != ui:
                        ctx.send(kmax.owner, EdgeAdd(kmax, w, KIND_RING))
                        nr.discard(w)
                        self.counters.bump("rule5_forward")
                    else:
                        if self.config.wrap_pointers and reals:
                            ctx.send(w.owner, RealCandidate(w, reals[-1], SIDE_LEFT, wrap=True))

    # ------------------------------------------------------------------
    # rule 6 — connection edges
    # ------------------------------------------------------------------
    def _rule6_connection(self, ctx: RoundContext) -> None:
        state = self.state
        sibs = state.sibling_refs()
        for a, b in zip(sibs, sibs[1:]):
            # contiguous virtual siblings are chained with connection edges
            state.nodes[a.level].nc.add(b)
        forward = backward = 0
        for level in sorted(state.nodes):
            node = state.nodes[level]
            nc = node._nc
            if not nc:
                continue
            ui = node.ref
            # predecessor of v in (nu ∪ siblings): one bisect over the
            # merged sorted column, built once per level (nc routinely
            # holds several connection edges per round in the stable
            # flow, so the merge amortizes)
            cands = sorted([*node._nu, *sibs], key=_KEY)
            cand_keys = [c._key for c in cands]
            for v in sorted(nc, key=_KEY):
                if v == ui:
                    nc.discard(v)
                    continue
                idx = bisect_left(cand_keys, v._key)
                w = cands[idx - 1] if idx > 0 else None
                if w is None or w == ui:
                    # we are the largest known node below v: close the
                    # chain with a backward unmarked edge (v -> ui)
                    ctx.send(v.owner, EdgeAdd(v, ui, KIND_UNMARKED))
                    nc.discard(v)
                    backward += 1
                else:
                    ctx.send(w.owner, EdgeAdd(w, v, KIND_CONNECTION))
                    nc.discard(v)
                    forward += 1
        if forward:
            self.counters.bump("rule6_forward", forward)
        if backward:
            self.counters.bump("rule6_backward", backward)

    # ------------------------------------------------------------------
    # graceful leave support
    # ------------------------------------------------------------------
    def leave_introductions(self) -> List[NeighborIntro]:
        """Introductions to send before departing (Section 4.2).

        For every simulated node, its foreign neighbors (all kinds) are
        chained pairwise in sorted order, which keeps the remaining graph
        weakly connected and locally ordered; the normal rules absorb the
        introductions within O(log n) rounds.
        """
        me = self.state.peer_id
        intros: List[NeighborIntro] = []
        for level in sorted(self.state.nodes):
            node = self.state.nodes[level]
            others = sorted(r for r in node.all_out_refs() if r.owner != me)
            for a, b in zip(others, others[1:]):
                intros.append(NeighborIntro(a, b))
                intros.append(NeighborIntro(b, a))
        return intros
