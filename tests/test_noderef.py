"""NodeRef identity, ordering and factory invariants."""

from __future__ import annotations

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.noderef import NodeRef, make_ref
from repro.idspace.ring import IdSpace

SPACE = IdSpace(16)


class TestIdentity:
    def test_equality_by_owner_level(self):
        assert make_ref(SPACE, 100, 2) == make_ref(SPACE, 100, 2)

    def test_inequality_different_level(self):
        assert make_ref(SPACE, 100, 1) != make_ref(SPACE, 100, 2)

    def test_inequality_different_owner(self):
        assert make_ref(SPACE, 100, 0) != make_ref(SPACE, 101, 0)

    def test_hash_consistency(self):
        a, b = make_ref(SPACE, 7, 3), make_ref(SPACE, 7, 3)
        assert hash(a) == hash(b)
        assert len({a, b}) == 1

    def test_real_constructor(self):
        r = NodeRef.real(42)
        assert r.id == 42 and r.owner == 42 and r.level == 0 and r.is_real

    def test_immutability(self):
        r = NodeRef.real(1)
        with pytest.raises(AttributeError):
            r.id = 2

    def test_repr_mentions_kind(self):
        assert "R" in repr(NodeRef.real(3))
        assert "V2" in repr(make_ref(SPACE, 3, 2))


class TestFactory:
    def test_derives_id(self):
        ref = make_ref(SPACE, 1000, 1)
        assert ref.id == SPACE.virtual_id(1000, 1)

    def test_level_zero(self):
        assert make_ref(SPACE, 1000, 0).id == 1000

    def test_rejects_negative_level(self):
        with pytest.raises(ValueError):
            make_ref(SPACE, 0, -1)

    def test_rejects_excessive_level(self):
        with pytest.raises(ValueError):
            make_ref(SPACE, 0, SPACE.bits + 1)


class TestOrdering:
    def test_orders_by_id(self):
        assert NodeRef.real(5) < NodeRef.real(9)

    def test_real_before_virtual_at_equal_id(self):
        """Tie-break [D2]: a real node sorts before a virtual node with
        the same identifier, so 'closest' is always unique."""
        virt = NodeRef(500, 400, 3)  # virtual node whose id collides
        real = NodeRef.real(500)
        assert real < virt

    def test_total_order_on_collisions(self):
        a = NodeRef(500, 100, 2)
        b = NodeRef(500, 200, 2)
        assert (a < b) != (b < a)

    def test_comparison_operators(self):
        a, b = NodeRef.real(1), NodeRef.real(2)
        assert a < b and a <= b and b > a and b >= a

    @given(
        ids=st.lists(
            st.tuples(
                st.integers(0, SPACE.size - 1),
                st.integers(0, SPACE.size - 1),
                st.integers(0, SPACE.bits),
            ),
            min_size=2,
            max_size=20,
        )
    )
    def test_sorting_is_stable_total_order(self, ids):
        refs = [NodeRef(i, o, l) for i, o, l in ids]
        ordered = sorted(refs)
        for x, y in zip(ordered, ordered[1:]):
            assert x.key <= y.key

    def test_key_shape(self):
        r = make_ref(SPACE, 9, 1)
        assert r.key == (r.id, 1, 9, 1)
        assert NodeRef.real(9).key == (9, 0, 9, 0)


class TestInternTableColumns:
    """The intern table's flat columns feed the batched rule kernels —
    lock down dense-id stability (no slot reuse, ever) and the -1
    sentinel's aliasing hazard."""

    def test_negative_iid_rejected(self):
        """``ref(-1)`` must raise, not negative-index to the last row.

        A direct-constructed (never-interned) ref carries ``iid == -1``;
        a batched kernel accidentally resolving that through the table
        would silently read whatever identity was interned *last* —
        after a mass leave, some unrelated live peer.
        """
        from repro.core.noderef import INTERN

        NodeRef.real(7)  # the table is certainly non-empty
        with pytest.raises(IndexError):
            INTERN.ref(-1)
        assert NodeRef(12345, 12345, 0).iid == -1  # sentinel unchanged

    def test_mass_leave_never_reuses_slots(self):
        """Rows are append-only: churning peers in and out of a network
        never frees or re-assigns a dense id."""
        from repro.core.network import ReChordNetwork
        from repro.core.noderef import INTERN

        net = ReChordNetwork()
        ids = [1000 + 17 * k for k in range(12)]
        for pid in ids:
            net.add_peer(pid)
        for a, b in zip(ids, ids[1:]):
            net.add_initial_edge(net.ref(a), net.ref(b))
        net.run_until_stable(max_rounds=4000)
        before = {pid: net.ref(pid).iid for pid in ids}
        rows_before = len(INTERN)
        for pid in ids[: len(ids) - 2]:  # mass leave, keep it connected
            net.crash(pid)
        net.run_until_stable(max_rounds=4000)
        # dead peers' rows still name the same identities
        for pid, iid in before.items():
            ref = INTERN.ref(iid)
            assert (ref.owner, ref.level) == (pid, 0)
            assert ref is NodeRef.real(pid)
        assert len(INTERN) >= rows_before  # monotone growth, no eviction

    def test_columns_aligned_with_refs(self):
        from repro.core.noderef import INTERN

        refs = INTERN.all_refs()
        ids, owners, levels = INTERN.columns()
        assert len(refs) == len(ids) == len(owners) == len(levels) == len(INTERN)
        # spot-check full alignment on a stride plus the boundary rows
        rows = set(range(0, len(refs), max(1, len(refs) // 64)))
        rows.update((0, len(refs) - 1))
        for i in rows:
            ref = refs[i]
            assert ref.iid == i
            assert INTERN.ref(i) is ref
            assert (ids[i], owners[i], levels[i]) == (ref.id, ref.owner, ref.level)

    def test_intern_is_idempotent_under_rejoin(self):
        """Re-interning after a leave returns the original row."""
        from repro.core.noderef import INTERN

        ref = make_ref(SPACE, 321, 1)
        iid = ref.iid
        again = make_ref(SPACE, 321, 1)
        assert again is ref and again.iid == iid
        assert INTERN.ref(iid) is ref
