"""Integration: Theorem 1.1 — self-stabilization from any weakly
connected initial state.

Every test stabilizes a network and asserts the four correctness layers:

1. a fixed point is reached (the fingerprint repeats);
2. the fixed point equals the unique ideal topology;
3. the overlay (snapshot) is weakly connected throughout;
4. the stable state contains the classical Chord graph (Fact 2.1).
"""

from __future__ import annotations

import pytest

from repro.core.ideal import chord_edges
from repro.graphs.connectivity import is_weakly_connected
from repro.workloads.initial import (
    SHAPES,
    build_random_network,
    build_shaped_network,
    corrupt_network,
)

MAX_ROUNDS = 5000


def assert_fully_stable(net) -> None:
    assert net.matches_ideal(), net.ideal_mismatches(limit=5)
    want = chord_edges(net.space, net.peer_ids)
    have = net.rechord_projection()
    missing = [e for e in want if e not in have]
    assert not missing, f"Fact 2.1 violated: {missing[:3]}"
    assert is_weakly_connected(net.snapshot())


class TestRandomStarts:
    @pytest.mark.parametrize("n", [1, 2, 3, 4, 7, 12, 20])
    @pytest.mark.parametrize("seed", [0, 1])
    def test_converges_to_ideal(self, n, seed):
        net = build_random_network(n=n, seed=seed)
        net.run_until_stable(max_rounds=MAX_ROUNDS)
        assert_fully_stable(net)

    @pytest.mark.parametrize("seed", [0, 1, 2, 3, 4])
    def test_medium_network(self, seed):
        net = build_random_network(n=30, seed=seed)
        report = net.run_until_stable(max_rounds=MAX_ROUNDS, track_almost=True)
        assert_fully_stable(net)
        assert report.rounds_to_almost is not None
        assert report.rounds_to_almost <= report.rounds_to_stable

    def test_dense_extra_edges(self):
        net = build_random_network(n=15, seed=9, extra_edge_prob=0.6)
        net.run_until_stable(max_rounds=MAX_ROUNDS)
        assert_fully_stable(net)

    def test_tree_only(self):
        net = build_random_network(n=15, seed=9, extra_edge_prob=0.0)
        net.run_until_stable(max_rounds=MAX_ROUNDS)
        assert_fully_stable(net)


class TestShapedStarts:
    @pytest.mark.parametrize("shape", sorted(SHAPES))
    @pytest.mark.parametrize("n", [8, 17])
    def test_degenerate_shapes(self, shape, n):
        net = build_shaped_network(shape, n, seed=5)
        net.run_until_stable(max_rounds=MAX_ROUNDS)
        assert_fully_stable(net)


class TestCorruptStarts:
    """'Any initial state in which the peers are weakly connected'."""

    @pytest.mark.parametrize("seed", [0, 1, 2, 3])
    def test_garbage_edges_and_phantoms(self, seed):
        net = build_random_network(n=10, seed=seed)
        corrupt_network(net, seed=seed + 77)
        net.run_until_stable(max_rounds=MAX_ROUNDS)
        assert_fully_stable(net)

    def test_heavy_corruption(self):
        net = build_random_network(n=12, seed=11)
        corrupt_network(net, seed=42, virtual_fraction=1.0, garbage_edges=8)
        net.run_until_stable(max_rounds=MAX_ROUNDS)
        assert_fully_stable(net)

    def test_preexisting_ring_edges_everywhere(self):
        from repro.graphs.digraph import EdgeKind

        net = build_random_network(n=8, seed=3)
        ids = net.peer_ids
        for i, u in enumerate(ids):
            net.add_initial_edge(
                net.ref(u), net.ref(ids[(i + 3) % len(ids)]), EdgeKind.RING
            )
        net.run_until_stable(max_rounds=MAX_ROUNDS)
        assert_fully_stable(net)

    def test_preexisting_connection_edges_everywhere(self):
        from repro.graphs.digraph import EdgeKind

        net = build_random_network(n=8, seed=4)
        ids = net.peer_ids
        for i, u in enumerate(ids):
            net.add_initial_edge(
                net.ref(u), net.ref(ids[(i + 1) % len(ids)]), EdgeKind.CONNECTION
            )
        net.run_until_stable(max_rounds=MAX_ROUNDS)
        assert_fully_stable(net)


class TestRoundCounts:
    """The paper's empirical observation: stabilization takes tens of
    rounds at these sizes, far below the O(n log n) bound."""

    def test_small_network_fast(self):
        net = build_random_network(n=15, seed=1)
        report = net.run_until_stable(max_rounds=MAX_ROUNDS)
        assert report.rounds_to_stable < 60

    def test_almost_stable_precedes_stable(self):
        net = build_random_network(n=25, seed=2)
        report = net.run_until_stable(max_rounds=MAX_ROUNDS, track_almost=True)
        assert report.rounds_to_almost < report.rounds_to_stable

    def test_rounds_scale_gently(self):
        """Doubling n must not blow up rounds (paper: at most linear)."""
        r15 = build_random_network(n=15, seed=3)
        rep15 = r15.run_until_stable(max_rounds=MAX_ROUNDS)
        r30 = build_random_network(n=30, seed=3)
        rep30 = r30.run_until_stable(max_rounds=MAX_ROUNDS)
        assert rep30.rounds_to_stable <= 4 * max(1, rep15.rounds_to_stable)


class TestDeterminism:
    def test_same_seed_same_run(self):
        a = build_random_network(n=10, seed=5)
        b = build_random_network(n=10, seed=5)
        ra = a.run_until_stable(max_rounds=MAX_ROUNDS)
        rb = b.run_until_stable(max_rounds=MAX_ROUNDS)
        assert ra == rb
        assert a.fingerprint() == b.fingerprint()

    def test_different_seed_different_ids(self):
        a = build_random_network(n=10, seed=5)
        b = build_random_network(n=10, seed=6)
        assert a.peer_ids != b.peer_ids
