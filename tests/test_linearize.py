"""Linearization baseline: convergence to the sorted doubly linked list."""

from __future__ import annotations

import random

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.graphs.generators import gnp_connected_graph, line_graph, random_orientation, star_graph
from repro.idspace.ring import IdSpace
from repro.linearize.protocol import LinearizeNetwork
from repro.workloads.initial import random_peer_ids

SPACE = IdSpace(16)


def wire(net: LinearizeNetwork, ids, undirected, rng) -> None:
    ordered = sorted(ids)
    for u in ordered:
        net.add_peer(u)
    for a, b in random_orientation(undirected, rng):
        net.add_initial_edge(ordered[a], ordered[b])


class TestConvergence:
    @pytest.mark.parametrize("n,seed", [(2, 0), (5, 1), (12, 2), (25, 3)])
    def test_random_graph_sorts(self, n, seed):
        rng = random.Random(seed)
        ids = random_peer_ids(n, rng, SPACE)
        net = LinearizeNetwork(SPACE)
        wire(net, ids, gnp_connected_graph(n, 0.2, rng), rng)
        net.run_until_stable(max_rounds=5000)
        assert net.is_sorted_list(), net.sorted_list_errors()[:3]

    def test_line_start(self):
        rng = random.Random(4)
        ids = random_peer_ids(10, rng, SPACE)
        net = LinearizeNetwork(SPACE)
        wire(net, ids, line_graph(10), rng)
        net.run_until_stable(max_rounds=5000)
        assert net.is_sorted_list()

    def test_star_start(self):
        rng = random.Random(5)
        ids = random_peer_ids(10, rng, SPACE)
        net = LinearizeNetwork(SPACE)
        wire(net, ids, star_graph(10), rng)
        net.run_until_stable(max_rounds=5000)
        assert net.is_sorted_list()

    def test_singleton(self):
        net = LinearizeNetwork(SPACE)
        net.add_peer(7)
        assert net.run_until_stable(max_rounds=10) == 0
        assert net.is_sorted_list()

    def test_stable_is_fixed_point(self):
        rng = random.Random(6)
        ids = random_peer_ids(8, rng, SPACE)
        net = LinearizeNetwork(SPACE)
        wire(net, ids, gnp_connected_graph(8, 0.3, rng), rng)
        net.run_until_stable(max_rounds=5000)
        fp = net.fingerprint()
        net.run_round()
        assert net.fingerprint() == fp

    def test_crash_splits_converged_list(self):
        """Plain linearization is *not* churn-tolerant: once converged,
        an interior node's neighbors know nothing beyond it, so its
        crash splits the list permanently.  (Re-Chord repairs the same
        event via real pointers and ring/connection edges — see
        tests/test_join_leave.py.)"""
        rng = random.Random(7)
        ids = random_peer_ids(8, rng, SPACE)
        net = LinearizeNetwork(SPACE)
        wire(net, ids, gnp_connected_graph(8, 0.5, rng), rng)
        net.run_until_stable(max_rounds=5000)
        victim = net.peer_ids[3]
        net.peers.pop(victim)
        net.scheduler.remove_actor(victim)
        net.run_until_stable(max_rounds=5000)
        assert not net.is_sorted_list()
        # ... but each fragment is internally sorted: every node's
        # neighbors are a subset of its true sorted-list neighbors
        remaining = net.peer_ids
        for i, u in enumerate(remaining):
            want = set()
            if i > 0:
                want.add(remaining[i - 1])
            if i + 1 < len(remaining):
                want.add(remaining[i + 1])
            assert net.peers[u].neighbors <= want

    @given(st.integers(2, 9), st.integers(0, 500))
    def test_property_random_graphs_sort(self, n, seed):
        rng = random.Random(seed)
        ids = random_peer_ids(n, rng, SPACE)
        net = LinearizeNetwork(SPACE)
        wire(net, ids, gnp_connected_graph(n, 0.2, rng), rng)
        net.run_until_stable(max_rounds=3000)
        assert net.is_sorted_list()


class TestApi:
    def test_duplicate_peer_rejected(self):
        net = LinearizeNetwork(SPACE)
        net.add_peer(1)
        with pytest.raises(ValueError):
            net.add_peer(1)

    def test_self_edge_ignored(self):
        net = LinearizeNetwork(SPACE)
        net.add_peer(1)
        net.add_initial_edge(1, 1)
        assert net.peers[1].neighbors == set()

    def test_unstable_raises_on_budget(self):
        rng = random.Random(8)
        ids = random_peer_ids(20, rng, SPACE)
        net = LinearizeNetwork(SPACE)
        wire(net, ids, line_graph(20), rng)
        with pytest.raises(RuntimeError):
            net.run_until_stable(max_rounds=1)
