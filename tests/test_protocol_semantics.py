"""Execution-semantics subtleties of Section 2.3.

The paper's rules rely on precise intra-round semantics: direct
assignments are visible to later rules in the same round, delayed
assignments only at the next boundary, and the stable state performs an
exact add/remove dance that leaves round-boundary state constant.
These tests pin those mechanics at the network level.
"""

from __future__ import annotations

from repro.core.network import ReChordNetwork
from repro.graphs.digraph import EdgeKind
from repro.idspace.ring import IdSpace
from tests.conftest import stabilized

SPACE = IdSpace(16)


class TestDelayedVisibility:
    def test_mirror_edge_appears_next_round(self):
        """u knows v; v learns about u only at the next boundary."""
        net = ReChordNetwork(SPACE)
        net.add_peer(100)
        net.add_peer(200)
        net.add_initial_edge(net.ref(100), net.ref(200), EdgeKind.UNMARKED)
        v_node = net.peers[200].state.nodes[0]
        assert len(v_node.nu) == 0
        net.run_round()
        # the mirror message is in flight at the end of round 0 ...
        assert net.ref(100) not in v_node.nu
        net.run_round()
        # ... and delivered before round 1's rules
        assert net.ref(100) in v_node.nu

    def test_round_boundary_state_well_defined(self):
        """Running the same initial state twice gives identical
        boundary fingerprints at every round (global determinism)."""
        def build():
            n = ReChordNetwork(SPACE)
            for pid in (100, 9000, 30000, 61000):
                n.add_peer(pid)
            n.add_initial_edge(n.ref(100), n.ref(9000))
            n.add_initial_edge(n.ref(30000), n.ref(9000))
            n.add_initial_edge(n.ref(61000), n.ref(30000))
            return n

        a, b = build(), build()
        for _ in range(12):
            a.run_round()
            b.run_round()
            assert a.fingerprint() == b.fingerprint()


class TestStableStateDance:
    """Section 3.1.6: the stable state re-fires rules whose effects
    cancel exactly within a round."""

    def test_boundary_nu_contains_real_pointers(self):
        """rl/rr are stripped by linearization and re-added by rule 3 /
        mirroring within the same round: at every boundary they are
        present in nu."""
        net = stabilized(12, seed=300)
        for _ in range(3):
            net.run_round()
            for peer in net.peers.values():
                for node in peer.state.nodes.values():
                    if node.rl is not None:
                        assert node.rl in node.nu
                    if node.rr is not None:
                        assert node.rr in node.nu

    def test_connection_stream_is_pipelined(self):
        """The sibling connection edges stream every round: total nc
        content plus in-flight c-messages is constant and nonzero."""
        from repro.core.events import EdgeAdd

        net = stabilized(12, seed=301)
        volumes = []
        for _ in range(4):
            net.run_round()
            in_state = sum(
                len(node.nc)
                for peer in net.peers.values()
                for node in peer.state.nodes.values()
            )
            in_flight = sum(
                1
                for env in net.scheduler.all_pending()
                if isinstance(env.payload, EdgeAdd) and env.payload.kind == "c"
            )
            volumes.append((in_state, in_flight))
        assert len(set(volumes)) == 1
        assert volumes[0][0] + volumes[0][1] > 0

    def test_ring_requests_reissued_every_round(self):
        """The extremes re-request their ring edges each round; the
        requests are idempotent at the receivers."""
        from repro.core.events import EdgeAdd

        net = stabilized(10, seed=302)
        net.run_round()
        ring_adds = [
            env.payload
            for env in net.scheduler.all_pending()
            if isinstance(env.payload, EdgeAdd) and env.payload.kind == "r"
        ]
        assert len(ring_adds) == 2
        targets = {p.target for p in ring_adds}
        endpoints = {p.endpoint for p in ring_adds}
        # the two requests connect the global extremes to each other
        refs = sorted(
            (node.ref for peer in net.peers.values() for node in peer.state.nodes.values()),
            key=lambda r: r.key,
        )
        assert targets == {refs[0], refs[-1]}
        assert endpoints == {refs[0], refs[-1]}


class TestKnowledgeLocality:
    def test_peers_never_read_foreign_state(self):
        """Soundness of the locality claim: replacing every other
        peer's state mid-run with a poisoned object that raises on
        attribute access must not affect a peer's step (it only touches
        its own state plus its inbox)."""
        net = ReChordNetwork(SPACE)
        net.add_peer(100)
        net.add_peer(40000)
        net.add_initial_edge(net.ref(100), net.ref(40000))
        net.run(3)

        class Poison:
            def __getattr__(self, name):  # pragma: no cover - must not fire
                raise AssertionError("foreign peer state was read")

        victim = net.peers[100]
        saved = net.peers[40000]
        # poison only the *state* access path used by rules; the
        # scheduler still owns the actor object itself
        net.peers[40000] = saved  # peers map is only used by the oracle
        inbox = []
        from repro.netsim.scheduler import RoundContext

        ctx = RoundContext(net.round_no, 100, net.scheduler)
        victim.step(inbox, ctx)  # must not raise
