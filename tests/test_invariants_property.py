"""Property-based invariant suite for the protocol and both kernels.

Randomized initial topologies and churn schedules (seeded through
:class:`repro.netsim.rng.SeedSequence` so every failing example is
reproducible in isolation) are driven round by round, asserting after
**every** round that

* (a) no peer ever holds a self-loop edge (``[D10]`` sanitation);
* (b) every reference anywhere in the state is well-formed for the id
  space: the carried id is exactly the one derived from
  ``(owner, level)``, the level is within ``[0, bits]``, and the owner
  is on the identifier circle;
* (c) rule execution never partitions the weakly connected overlay
  (peers stay mutually reachable through state edges plus in-flight
  introductions — Theorem 1.1's precondition is preserved);
* (d) ``run_until_stable`` on the activity-tracked kernel yields the
  same fingerprints as a full-scan reference check on the legacy
  kernel.
"""

from __future__ import annotations

from collections import deque
from typing import Set

import pytest
from hypothesis import given, note, settings
from hypothesis import strategies as st

from repro.core.network import ReChordNetwork
from repro.netsim.rng import SeedSequence
from repro.workloads.churn import ChurnSchedule, apply_event
from repro.workloads.initial import build_random_network, corrupt_network

ROOT = SeedSequence(41)

#: (n, corrupt) cells of the randomized sweep; seeds derive from ROOT
CASES = [(2, False), (4, True), (6, False), (8, True), (10, False), (12, True)]


# ----------------------------------------------------------------------
# invariant predicates
# ----------------------------------------------------------------------
def assert_no_self_loops(net: ReChordNetwork) -> None:
    for pid, peer in net.peers.items():
        for node in peer.state.nodes.values():
            ref = node.ref
            assert ref not in node.nu, f"self-loop in nu at {ref!r}"
            assert ref not in node.nr, f"self-loop in nr at {ref!r}"
            assert ref not in node.nc, f"self-loop in nc at {ref!r}"
            assert node.rl != ref and node.rr != ref, f"self closest-real at {ref!r}"
            assert node.wrap_rl != ref and node.wrap_rr != ref, f"self wrap at {ref!r}"


def assert_refs_well_formed(net: ReChordNetwork) -> None:
    space = net.space
    for pid, peer in net.peers.items():
        state = peer.state
        for level, node in state.nodes.items():
            assert 0 <= level <= space.max_level()
            assert node.ref.id == space.virtual_id(pid, level)
            for ref in node.all_out_refs():
                assert 0 <= ref.owner < space.size, f"owner off-circle: {ref!r}"
                assert 0 <= ref.level <= space.max_level(), f"bad level: {ref!r}"
                assert ref.id == space.virtual_id(ref.owner, ref.level), (
                    f"inconsistent id: {ref!r}"
                )


def peer_adjacency(net: ReChordNetwork) -> dict:
    """Undirected peer-level adjacency: state edges + in-flight refs.

    Connectivity must be judged on everything a peer can still learn:
    its outgoing references of all kinds plus references traveling in
    messages addressed to it (a ref in flight is knowledge in transit).
    """
    adj: dict = {pid: set() for pid in net.peers}
    for pid, peer in net.peers.items():
        for node in peer.state.nodes.values():
            for ref in node.all_out_refs():
                if ref.owner in adj and ref.owner != pid:
                    adj[pid].add(ref.owner)
                    adj[ref.owner].add(pid)
    for env in net.scheduler.all_pending():
        payload = env.payload
        tgt = env.target
        if tgt not in adj:
            continue
        for attr in ("endpoint", "candidate"):
            ref = getattr(payload, attr, None)
            if ref is not None and ref.owner in adj and ref.owner != tgt:
                adj[tgt].add(ref.owner)
                adj[ref.owner].add(tgt)
    return adj


def assert_weakly_connected(net: ReChordNetwork) -> None:
    adj = peer_adjacency(net)
    if len(adj) <= 1:
        return
    start = next(iter(adj))
    seen: Set[int] = {start}
    queue = deque([start])
    while queue:
        v = queue.popleft()
        for w in adj[v]:
            if w not in seen:
                seen.add(w)
                queue.append(w)
    assert len(seen) == len(adj), (
        f"network partitioned: reached {len(seen)} of {len(adj)} peers"
    )


def assert_all_invariants(net: ReChordNetwork) -> None:
    assert_no_self_loops(net)
    assert_refs_well_formed(net)
    assert_weakly_connected(net)


# ----------------------------------------------------------------------
# the sweeps
# ----------------------------------------------------------------------
class TestInvariantsUnderRuleExecution:
    @pytest.mark.parametrize("n,corrupt", CASES)
    def test_every_round_from_random_start(self, n, corrupt):
        seed = ROOT.child("start", n=n, corrupt=corrupt).seed()
        net = build_random_network(n=n, seed=seed % (2**31))
        if corrupt:
            corrupt_network(net, (seed >> 8) % (2**31))
        assert_all_invariants(net)
        for _ in range(40):
            net.run_round()
            assert_all_invariants(net)

    @pytest.mark.parametrize("n,corrupt", CASES)
    def test_every_round_under_churn(self, n, corrupt):
        seq = ROOT.child("churn", n=n, corrupt=corrupt)
        net = build_random_network(n=n, seed=seq.child("build").seed() % (2**31))
        if corrupt:
            corrupt_network(net, seq.child("corrupt").seed() % (2**31))
        net.run_until_stable(max_rounds=4000)
        schedule = ChurnSchedule.random(
            net, events=3, seed=seq.child("events").seed() % (2**31)
        )
        for event in schedule:
            apply_event(net, event)
            # graceful-leave introductions keep connectivity; crashes may
            # legitimately orphan knowledge for a round, so connectivity
            # is asserted once repair converges as well as per-round for
            # self-loops and well-formedness
            for _ in range(25):
                net.run_round()
                assert_no_self_loops(net)
                assert_refs_well_formed(net)
            net.run_until_stable(max_rounds=4000)
            if event.kind != "crash":
                assert_weakly_connected(net)
            assert net.matches_ideal(), net.ideal_mismatches(limit=3)


class TestStableFingerprintMatchesReference:
    @pytest.mark.parametrize("n,corrupt", CASES)
    def test_incremental_fingerprint_equals_full_scan(self, n, corrupt):
        """(d): the dirty-set kernel's stable fingerprint is identical to
        a full-scan reference run of the legacy kernel."""
        seq = ROOT.child("ref", n=n, corrupt=corrupt)
        seed = seq.child("build").seed() % (2**31)
        cseed = seq.child("corrupt").seed() % (2**31)
        a = build_random_network(n=n, seed=seed, incremental=True)
        b = build_random_network(n=n, seed=seed, incremental=False)
        if corrupt:
            corrupt_network(a, cseed)
            corrupt_network(b, cseed)
        ra = a.run_until_stable(max_rounds=4000)
        rb = b.run_until_stable(max_rounds=4000)
        assert ra == rb
        assert a.fingerprint() == b.fingerprint()
        # and the stable state is a true fixed point under both kernels
        assert a.is_fixed_point(peek=True)
        assert b.is_fixed_point(peek=True)


# ----------------------------------------------------------------------
# the batched rule backend under fuzz
# ----------------------------------------------------------------------
class TestBatchedBackendFuzz:
    """Hypothesis-driven topologies + churn under ``rule_backend="batched"``.

    Every drawn example prints its ``repro:`` line via :func:`note` —
    shown by Hypothesis on failure — so a failing topology/churn draw
    can be replayed in isolation with the stated seeds.  The batched
    backend must keep invariants (a)–(c) round by round and land on the
    **same** ``run_until_stable`` fingerprints and reports as the legacy
    scalar full-scan kernel, invariant (d) extended to the new backend.
    """

    @given(
        n=st.integers(min_value=2, max_value=12),
        seed=st.integers(min_value=0, max_value=2**31 - 1),
        corrupt=st.booleans(),
    )
    @settings(max_examples=20, deadline=None)
    def test_invariants_every_round_batched(self, n, seed, corrupt):
        note(f"repro: build_random_network(n={n}, seed={seed}, "
             f"rule_backend='batched'), corrupt={corrupt}")
        net = build_random_network(n=n, seed=seed, rule_backend="batched")
        if corrupt:
            corrupt_network(net, seed + 1)
        assert_all_invariants(net)
        for _ in range(30):
            net.run_round()
            assert_no_self_loops(net)
            assert_refs_well_formed(net)
        net.run_until_stable(max_rounds=4000)
        assert_all_invariants(net)

    @given(
        n=st.integers(min_value=2, max_value=10),
        seed=st.integers(min_value=0, max_value=2**31 - 1),
        corrupt=st.booleans(),
        engine=st.sampled_from(["full", "incremental", "columnar"]),
    )
    @settings(max_examples=20, deadline=None)
    def test_batched_fingerprint_matches_legacy(self, n, seed, corrupt, engine):
        note(f"repro: n={n} seed={seed} corrupt={corrupt} engine={engine!r} "
             f"— batched vs. legacy full-scan scalar")
        a = build_random_network(n=n, seed=seed, engine=engine,
                                 rule_backend="batched")
        b = build_random_network(n=n, seed=seed, incremental=False)
        if corrupt:
            corrupt_network(a, seed + 1)
            corrupt_network(b, seed + 1)
        ra = a.run_until_stable(max_rounds=4000)
        rb = b.run_until_stable(max_rounds=4000)
        assert ra == rb, "reports diverged"
        assert a.fingerprint() == b.fingerprint(), "fingerprints diverged"
        assert a.counters().fires == b.counters().fires, "counters diverged"

    @given(
        n=st.integers(min_value=4, max_value=10),
        seed=st.integers(min_value=0, max_value=2**31 - 1),
        events=st.integers(min_value=1, max_value=4),
    )
    @settings(max_examples=10, deadline=None)
    def test_churn_trajectory_batched_equals_scalar(self, n, seed, events):
        note(f"repro: n={n} seed={seed} events={events} — seeded churn, "
             f"batched vs. scalar on the incremental kernel")
        a = build_random_network(n=n, seed=seed, rule_backend="batched")
        b = build_random_network(n=n, seed=seed)
        a.run_until_stable(max_rounds=4000)
        b.run_until_stable(max_rounds=4000)
        schedule = ChurnSchedule.random(a, events=events, seed=seed ^ 0x5EED)
        for event in schedule:
            apply_event(a, event)
            apply_event(b, event)
            ra = a.run_until_stable(max_rounds=4000)
            rb = b.run_until_stable(max_rounds=4000)
            assert ra == rb, f"reports diverged after {event}"
            assert a.fingerprint() == b.fingerprint(), (
                f"fingerprints diverged after {event}"
            )
            assert_no_self_loops(a)
            assert_refs_well_formed(a)
        if all(e.kind != "crash" for e in schedule):
            assert_weakly_connected(a)
