"""Graph substrate: union-find, typed digraph, connectivity, generators."""

from __future__ import annotations

import random

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.graphs.connectivity import is_weakly_connected, weakly_connected_components
from repro.graphs.digraph import EdgeKind, TypedDigraph
from repro.graphs.generators import (
    build_typed_digraph,
    gnp_connected_graph,
    line_graph,
    lollipop_graph,
    random_orientation,
    random_spanning_tree,
    star_graph,
    two_cliques_bridge,
)
from repro.graphs.unionfind import UnionFind


class TestUnionFind:
    def test_singletons(self):
        uf = UnionFind(range(5))
        assert uf.component_count == 5

    def test_union_reduces_components(self):
        uf = UnionFind(range(4))
        assert uf.union(0, 1)
        assert uf.component_count == 3

    def test_union_idempotent(self):
        uf = UnionFind(range(3))
        uf.union(0, 1)
        assert not uf.union(1, 0)

    def test_connected_transitivity(self):
        uf = UnionFind()
        uf.union(1, 2)
        uf.union(2, 3)
        assert uf.connected(1, 3)
        assert not uf.connected(1, 4)

    def test_lazy_registration(self):
        uf = UnionFind()
        assert uf.find("x") == "x"
        assert "x" in uf

    def test_component_sizes(self):
        uf = UnionFind(range(5))
        uf.union(0, 1)
        uf.union(1, 2)
        sizes = sorted(uf.component_sizes().values())
        assert sizes == [1, 1, 3]

    def test_len_and_iter(self):
        uf = UnionFind("abc")
        assert len(uf) == 3 and set(uf) == {"a", "b", "c"}

    @given(st.lists(st.tuples(st.integers(0, 20), st.integers(0, 20)), max_size=50))
    def test_matches_naive_reachability(self, pairs):
        uf = UnionFind(range(21))
        adj = {i: {i} for i in range(21)}
        for a, b in pairs:
            uf.union(a, b)
            # naive merge
            merged = adj[a] | adj[b]
            for v in merged:
                adj[v] = merged
        for a in range(0, 21, 5):
            for b in range(0, 21, 3):
                assert uf.connected(a, b) == (b in adj[a])


class TestTypedDigraph:
    def test_add_edge_creates_nodes(self):
        g = TypedDigraph()
        g.add_edge(1, 2)
        assert 1 in g and 2 in g and g.has_edge(1, 2)

    def test_parallel_kinds(self):
        g = TypedDigraph()
        g.add_edge(1, 2, EdgeKind.UNMARKED)
        g.add_edge(1, 2, EdgeKind.RING)
        assert g.edge_count() == 2
        assert g.has_edge(1, 2, EdgeKind.RING)
        assert not g.has_edge(1, 2, EdgeKind.CONNECTION)

    def test_duplicate_edge_rejected(self):
        g = TypedDigraph()
        assert g.add_edge(1, 2)
        assert not g.add_edge(1, 2)
        assert g.edge_count() == 1

    def test_remove_edge(self):
        g = TypedDigraph()
        g.add_edge(1, 2)
        g.remove_edge(1, 2)
        assert not g.has_edge(1, 2)
        assert g.edge_count() == 0

    def test_remove_missing_edge_raises(self):
        g = TypedDigraph()
        g.add_node(1)
        with pytest.raises(KeyError):
            g.remove_edge(1, 2)

    def test_remove_node_clears_incident(self):
        g = TypedDigraph()
        g.add_edge(1, 2)
        g.add_edge(3, 1, EdgeKind.RING)
        g.remove_node(1)
        assert 1 not in g
        assert g.edge_count() == 0

    def test_successors_by_kind(self):
        g = TypedDigraph()
        g.add_edge(1, 2, EdgeKind.UNMARKED)
        g.add_edge(1, 3, EdgeKind.CONNECTION)
        assert g.successors(1) == {2, 3}
        assert g.successors(1, EdgeKind.CONNECTION) == {3}

    def test_predecessors(self):
        g = TypedDigraph()
        g.add_edge(1, 2)
        g.add_edge(3, 2, EdgeKind.RING)
        assert g.predecessors(2) == {1, 3}
        assert g.predecessors(2, EdgeKind.RING) == {3}

    def test_degrees(self):
        g = TypedDigraph()
        g.add_edge(1, 2)
        g.add_edge(1, 3, EdgeKind.RING)
        assert g.out_degree(1) == 2
        assert g.out_degree(1, EdgeKind.RING) == 1
        assert g.in_degree(2) == 1

    def test_unknown_node_raises(self):
        g = TypedDigraph()
        with pytest.raises(KeyError):
            g.successors(99)

    def test_edges_iteration(self):
        g = TypedDigraph()
        g.add_edge(1, 2)
        g.add_edge(2, 3, EdgeKind.RING)
        assert set(g.edges()) == {(1, 2, EdgeKind.UNMARKED), (2, 3, EdgeKind.RING)}
        assert set(g.edges(EdgeKind.RING)) == {(2, 3, EdgeKind.RING)}

    def test_copy_independent(self):
        g = TypedDigraph()
        g.add_edge(1, 2)
        h = g.copy()
        h.add_edge(2, 3)
        assert not g.has_edge(2, 3)
        assert h.has_edge(1, 2)

    def test_subgraph_kinds(self):
        g = TypedDigraph()
        g.add_edge(1, 2, EdgeKind.UNMARKED)
        g.add_edge(1, 3, EdgeKind.CONNECTION)
        sub = g.subgraph_kinds([EdgeKind.UNMARKED])
        assert sub.has_edge(1, 2) and not sub.has_edge(1, 3)
        assert 3 in sub  # node set preserved

    def test_equality(self):
        g, h = TypedDigraph(), TypedDigraph()
        g.add_edge(1, 2)
        h.add_edge(1, 2)
        assert g == h
        h.add_edge(2, 1)
        assert g != h

    def test_unhashable(self):
        with pytest.raises(TypeError):
            hash(TypedDigraph())

    def test_undirected_neighbors(self):
        g = TypedDigraph()
        g.add_edge(1, 2)
        g.add_edge(3, 1)
        assert g.undirected_neighbors(1) == {2, 3}


class TestConnectivity:
    def test_empty_graph_connected(self):
        assert is_weakly_connected(TypedDigraph())

    def test_single_node(self):
        g = TypedDigraph()
        g.add_node(1)
        assert is_weakly_connected(g)

    def test_direction_ignored(self):
        g = build_typed_digraph([0, 1, 2], [(1, 0), (1, 2)])
        assert is_weakly_connected(g)

    def test_disconnected(self):
        g = build_typed_digraph([0, 1, 2, 3], [(0, 1), (2, 3)])
        assert not is_weakly_connected(g)
        comps = weakly_connected_components(g)
        assert sorted(len(c) for c in comps) == [2, 2]

    def test_components_sorted_by_size(self):
        g = build_typed_digraph(range(6), [(0, 1), (1, 2), (3, 4)])
        comps = weakly_connected_components(g)
        assert [len(c) for c in comps] == [3, 2, 1]

    def test_all_kinds_count(self):
        g = TypedDigraph()
        g.add_edge(0, 1, EdgeKind.CONNECTION)
        g.add_edge(1, 2, EdgeKind.RING)
        assert is_weakly_connected(g)


class TestGenerators:
    def test_spanning_tree_edge_count(self):
        rng = random.Random(0)
        assert len(random_spanning_tree(10, rng)) == 9

    def test_spanning_tree_connected(self):
        rng = random.Random(1)
        for n in (2, 5, 17):
            edges = random_spanning_tree(n, rng)
            g = build_typed_digraph(range(n), edges)
            assert is_weakly_connected(g)

    def test_spanning_tree_single_node(self):
        assert random_spanning_tree(1, random.Random(0)) == []

    def test_spanning_tree_rejects_zero(self):
        with pytest.raises(ValueError):
            random_spanning_tree(0, random.Random(0))

    def test_gnp_contains_tree(self):
        rng = random.Random(2)
        edges = gnp_connected_graph(12, 0.3, rng)
        assert len(edges) >= 11
        g = build_typed_digraph(range(12), edges)
        assert is_weakly_connected(g)

    def test_gnp_no_duplicates_or_loops(self):
        rng = random.Random(3)
        edges = gnp_connected_graph(15, 0.5, rng)
        seen = {frozenset(e) for e in edges}
        assert len(seen) == len(edges)
        assert all(a != b for a, b in edges)

    def test_gnp_probability_bounds(self):
        with pytest.raises(ValueError):
            gnp_connected_graph(5, 1.5, random.Random(0))

    def test_gnp_p1_is_complete(self):
        edges = gnp_connected_graph(6, 1.0, random.Random(0))
        assert len(edges) == 15

    def test_line(self):
        assert line_graph(4) == [(0, 1), (1, 2), (2, 3)]

    def test_star(self):
        assert star_graph(4) == [(0, 1), (0, 2), (0, 3)]

    def test_two_cliques_connected(self):
        g = build_typed_digraph(range(8), two_cliques_bridge(8))
        assert is_weakly_connected(g)

    def test_lollipop_connected(self):
        g = build_typed_digraph(range(9), lollipop_graph(9))
        assert is_weakly_connected(g)

    def test_shapes_reject_tiny(self):
        with pytest.raises(ValueError):
            two_cliques_bridge(1)
        with pytest.raises(ValueError):
            lollipop_graph(1)

    def test_orientation_preserves_weak_connectivity(self):
        rng = random.Random(4)
        for n in (3, 8, 20):
            und = gnp_connected_graph(n, 0.2, rng)
            directed = random_orientation(und, rng)
            g = build_typed_digraph(range(n), directed)
            assert is_weakly_connected(g)

    @given(st.integers(2, 30), st.integers(0, 10_000))
    def test_random_generators_always_connected(self, n, seed):
        rng = random.Random(seed)
        edges = random_orientation(gnp_connected_graph(n, 0.1, rng), rng)
        g = build_typed_digraph(range(n), edges)
        assert is_weakly_connected(g)
