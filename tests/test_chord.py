"""Classic Chord baseline: maintenance, lookups, churn, non-self-stabilization."""

from __future__ import annotations

import random

import pytest

from repro.chord.network import ChordNetwork
from repro.chord.node import FingerTable
from repro.core.ideal import chord_successor
from repro.idspace.ring import IdSpace
from repro.workloads.initial import random_peer_ids

SPACE = IdSpace(16)


def some_ids(n: int, seed: int = 0):
    return random_peer_ids(n, random.Random(seed), SPACE)


class TestFingerTable:
    def test_initially_empty(self):
        ft = FingerTable(SPACE)
        assert ft.known() == []
        assert ft.get(1) is None

    def test_set_get(self):
        ft = FingerTable(SPACE)
        ft.set(3, 99)
        assert ft.get(3) == 99
        assert ft.known() == [99]

    def test_out_of_range(self):
        ft = FingerTable(SPACE)
        with pytest.raises(IndexError):
            ft.set(0, 1)
        with pytest.raises(IndexError):
            ft.set(SPACE.bits + 1, 1)

    def test_drop_value(self):
        ft = FingerTable(SPACE)
        ft.set(1, 5)
        ft.set(2, 5)
        ft.set(3, 7)
        ft.drop_value(5)
        assert ft.known() == [7]


class TestPerfectRing:
    def test_ring_stays_correct(self):
        net = ChordNetwork.perfect_ring(some_ids(10), SPACE, fingers_per_round=2)
        net.run(50)
        assert net.ring_correct()
        assert net.ring_errors() == []

    def test_fingers_converge(self):
        net = ChordNetwork.perfect_ring(some_ids(8), SPACE, fingers_per_round=4)
        net.run(80)
        assert all(net.fingers_correct(u) for u in net.peer_ids)

    def test_predecessors_correct(self):
        ids = some_ids(6)
        net = ChordNetwork.perfect_ring(ids, SPACE)
        net.run(30)
        ordered = sorted(ids)
        for i, u in enumerate(ordered):
            assert net.peers[u].predecessor == ordered[(i - 1) % len(ordered)]

    def test_duplicate_peer_rejected(self):
        net = ChordNetwork(SPACE)
        net.add_peer(5)
        with pytest.raises(ValueError):
            net.add_peer(5)


class TestLookups:
    def test_lookup_finds_responsible_peer(self):
        ids = some_ids(10, seed=1)
        net = ChordNetwork.perfect_ring(ids, SPACE, fingers_per_round=4)
        net.run(80)
        rng = random.Random(2)
        for _ in range(10):
            key = rng.randrange(SPACE.size)
            owner, hops, rounds = net.lookup(rng.choice(ids), key)
            assert owner == chord_successor(SPACE, ids, key)
            assert rounds >= 1

    def test_lookup_hops_logarithmic(self):
        ids = some_ids(24, seed=3)
        net = ChordNetwork.perfect_ring(ids, SPACE, fingers_per_round=8)
        net.run(60)
        rng = random.Random(4)
        hops = [
            net.lookup(rng.choice(ids), rng.randrange(SPACE.size))[1]
            for _ in range(15)
        ]
        assert max(hops) <= 12  # ~2*log2(24) with slack

    def test_lookup_from_singleton(self):
        net = ChordNetwork.perfect_ring([1000], SPACE)
        owner, hops, _ = net.lookup(1000, 5)
        assert owner == 1000 and hops == 0


class TestChurn:
    def test_join_integrates(self):
        ids = some_ids(8, seed=5)
        net = ChordNetwork.perfect_ring(ids, SPACE, fingers_per_round=4)
        net.run(20)
        new_id = next(i for i in range(SPACE.size) if i not in net.peers)
        net.join(new_id, ids[0])
        net.run(60)
        assert net.ring_correct()

    def test_join_requires_gateway(self):
        net = ChordNetwork.perfect_ring(some_ids(4), SPACE)
        with pytest.raises(KeyError):
            net.join(1, gateway_id=999999)

    def test_graceful_leave(self):
        ids = some_ids(8, seed=6)
        net = ChordNetwork.perfect_ring(ids, SPACE, fingers_per_round=4)
        net.run(20)
        net.leave(ids[3])
        net.run(40)
        assert net.ring_correct()

    def test_crash_recovery_via_successor_lists(self):
        ids = some_ids(10, seed=7)
        net = ChordNetwork.perfect_ring(ids, SPACE, fingers_per_round=4)
        net.run(30)  # successor lists populated
        net.crash(ids[4])
        net.run(60)
        assert net.ring_correct()

    def test_crash_unknown_raises(self):
        net = ChordNetwork.perfect_ring(some_ids(4), SPACE)
        with pytest.raises(KeyError):
            net.crash(999999)


class TestNotSelfStabilizing:
    """The paper's motivation (Section 1): classic Chord cannot recover
    from arbitrary states."""

    def test_two_rings_is_a_fixed_point(self):
        ids = some_ids(12, seed=8)
        net = ChordNetwork.two_rings(ids, SPACE, fingers_per_round=2)
        net.run(300)
        assert not net.ring_correct()
        # both parity rings are still separate: successors stay in-ring
        ordered = sorted(ids)
        evens = set(ordered[0::2])
        for u in evens:
            assert net.peers[u].successor in evens

    def test_two_rings_needs_four_peers(self):
        with pytest.raises(ValueError):
            ChordNetwork.two_rings(some_ids(3), SPACE)

    def test_from_successor_map_validates(self):
        with pytest.raises(ValueError):
            ChordNetwork.from_successor_map({1: 2}, SPACE)

    def test_rechord_recovers_the_same_split(self):
        """Contrast: Re-Chord stabilizes from the interleaved split."""
        from repro.workloads.initial import build_two_rings_network as _rechord_two_rings

        ids = some_ids(12, seed=8)
        net = _rechord_two_rings(ids, SPACE)
        net.run_until_stable(max_rounds=5000)
        assert net.matches_ideal()


class TestSuccessorListHelpers:
    """The shared maintenance pattern (`chord/routing.py`) the baseline
    node delegates to: dedup-and-truncate merge + dead-entry pruning."""

    def test_merge_prepends_successor_and_truncates(self):
        from repro.chord.routing import merge_successor_list

        assert merge_successor_list(20, (30, 40, 50, 60), me=10, length=3) == [20, 30, 40]

    def test_merge_drops_duplicates_keeping_first_occurrence(self):
        from repro.chord.routing import merge_successor_list

        # 20 advertised again, 30 advertised twice: first position wins
        assert merge_successor_list(20, (20, 30, 30, 40, 30), me=10, length=8) == [20, 30, 40]

    def test_merge_never_includes_self(self):
        from repro.chord.routing import merge_successor_list

        assert merge_successor_list(20, (10, 30, 10, 40), me=10, length=8) == [20, 30, 40]

    def test_merge_empty_advertisement_keeps_successor(self):
        from repro.chord.routing import merge_successor_list

        assert merge_successor_list(20, (), me=10, length=4) == [20]

    def test_prune_drops_dead_entries_preserving_order(self):
        from repro.chord.routing import prune_successor_list

        alive = {20, 40, 50}
        assert prune_successor_list([20, 30, 40, 50], alive.__contains__) == [20, 40, 50]

    def test_prune_all_dead_yields_empty(self):
        from repro.chord.routing import prune_successor_list

        assert prune_successor_list([30, 60], lambda _p: False) == []

    def test_node_successor_list_survives_duplicates_and_deaths(self):
        """End to end: the baseline ring converges to pruned, deduped,
        truncated successor lists even after a crash."""
        ids = some_ids(10, seed=3)
        net = ChordNetwork.perfect_ring(ids, SPACE)
        net.run(30)
        victim = sorted(ids)[1]
        net.crash(victim)
        net.run(30)
        for pid, peer in net.peers.items():
            lst = peer.successor_list
            assert victim not in lst
            assert pid not in lst
            assert len(lst) == len(set(lst)) <= peer.successor_list_len
