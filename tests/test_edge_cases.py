"""Boundary and degeneracy stress tests.

These exercise the corners the analysis hand-waves over: dense id
spaces where virtual positions collide (the [D2] total order must keep
"closest" unique), peers at the seam positions 0 and 2^B - 1, adjacent
identifiers (maximal virtual-level counts), and extreme network sizes.
"""

from __future__ import annotations

import pytest

from repro.core.network import ReChordNetwork
from repro.graphs.digraph import EdgeKind
from repro.idspace.ring import IdSpace
from repro.workloads.initial import build_random_network


class TestDenseIdSpaces:
    """8-bit space, 20 peers: virtual-id collisions are unavoidable."""

    @pytest.mark.parametrize("seed", [0, 1, 2, 3])
    def test_collisions_still_stabilize(self, seed):
        net = build_random_network(n=20, seed=seed, space=IdSpace(8))
        net.run_until_stable(max_rounds=3000)
        assert net.matches_ideal(), net.ideal_mismatches(limit=4)

    def test_collisions_have_unique_order(self, ):
        """At least one virtual id collides in these runs, and the
        total order still sorts every node uniquely."""
        net = build_random_network(n=20, seed=0, space=IdSpace(8))
        net.run_until_stable(max_rounds=3000)
        refs = [
            node.ref
            for peer in net.peers.values()
            for node in peer.state.nodes.values()
        ]
        ids = [r.id for r in refs]
        keys = [r.key for r in refs]
        assert len(set(ids)) < len(ids)  # collisions present
        assert len(set(keys)) == len(keys)  # strict total order

    def test_tiny_space_tiny_network(self):
        net = build_random_network(n=3, seed=1, space=IdSpace(4))
        net.run_until_stable(max_rounds=1000)
        assert net.matches_ideal()


class TestSeamPositions:
    def test_peer_at_zero(self):
        space = IdSpace(16)
        net = ReChordNetwork(space)
        net.add_peer(0)
        net.add_peer(40000)
        net.add_initial_edge(net.ref(0), net.ref(40000), EdgeKind.UNMARKED)
        net.run_until_stable(max_rounds=1000)
        assert net.matches_ideal()

    def test_peer_at_max_id(self):
        space = IdSpace(16)
        net = ReChordNetwork(space)
        net.add_peer(space.size - 1)
        net.add_peer(7)
        net.add_initial_edge(net.ref(space.size - 1), net.ref(7), EdgeKind.UNMARKED)
        net.run_until_stable(max_rounds=1000)
        assert net.matches_ideal()

    def test_both_extremes_and_middle(self):
        space = IdSpace(16)
        net = ReChordNetwork(space)
        for pid in (0, space.size // 2, space.size - 1):
            net.add_peer(pid)
        net.add_initial_edge(net.ref(0), net.ref(space.size // 2))
        net.add_initial_edge(net.ref(space.size - 1), net.ref(space.size // 2))
        net.run_until_stable(max_rounds=1000)
        assert net.matches_ideal()


class TestAdjacentIdentifiers:
    def test_adjacent_peers_cap_levels(self):
        """Distance-1 neighbors force the maximal level count (= bits);
        the virtual node at distance 1 collides with the successor and
        the [D2] order must resolve it."""
        space = IdSpace(8)
        net = ReChordNetwork(space)
        net.add_peer(100)
        net.add_peer(101)
        net.add_initial_edge(net.ref(100), net.ref(101))
        net.run_until_stable(max_rounds=1000)
        assert net.matches_ideal()
        assert net.peers[100].state.max_level() == space.bits

    def test_cluster_of_adjacent_ids(self):
        space = IdSpace(10)
        net = ReChordNetwork(space)
        ids = [500, 501, 502, 503, 504]
        for pid in ids:
            net.add_peer(pid)
        for a, b in zip(ids, ids[1:]):
            net.add_initial_edge(net.ref(a), net.ref(b))
        net.run_until_stable(max_rounds=2000)
        assert net.matches_ideal()


class TestExtremeSizes:
    def test_n1_fixed_point(self):
        net = build_random_network(n=1, seed=0)
        report = net.run_until_stable(max_rounds=100)
        assert net.matches_ideal()
        # a lone peer stabilizes almost immediately
        assert report.rounds_to_stable <= 5

    def test_n2_mutual_everything(self):
        net = build_random_network(n=2, seed=0)
        net.run_until_stable(max_rounds=200)
        assert net.matches_ideal()
        a, b = net.peer_ids
        # each real node must know the other as a real pointer
        for pid, other in ((a, b), (b, a)):
            node = net.peers[pid].state.nodes[0]
            pointers = {node.rl, node.rr, node.wrap_rl, node.wrap_rr}
            assert any(p is not None and p.owner == other for p in pointers)

    def test_isolated_then_discovered(self):
        """A peer with no outgoing edges (but reachable from others —
        weak connectivity) is pulled in via mirroring."""
        space = IdSpace(16)
        net = ReChordNetwork(space)
        net.add_peer(100)
        net.add_peer(30000)
        net.add_peer(60000)
        # 30000 has NO outgoing edges; others point at it
        net.add_initial_edge(net.ref(100), net.ref(30000))
        net.add_initial_edge(net.ref(60000), net.ref(30000))
        net.run_until_stable(max_rounds=1000)
        assert net.matches_ideal()
