"""Differential tests for the batched rule backend, rule by rule.

The batched backend (:mod:`repro.core.rules_batched`) runs each phase of
the rule pipeline across *all* peers of a round before the next phase
starts, sorting by precomputed global ranks over the intern table's flat
columns instead of per-peer key sorts.  Its contract is **observational
identity** with the scalar pipeline in :mod:`repro.core.protocol` — the
executable spec: identical fingerprints (states *and* in-flight
messages), identical delivered envelopes in identical per-sender order,
identical rule-firing counters.

Each test here isolates one rule via :meth:`RuleConfig.ablated`, builds
the same adversarial start twice — self-loops, duplicate identifiers in
a tiny id space, empty virtual levels, refs wrapping the id-space origin
— and compares one round (and then the full run) scalar vs. batched.
"""

from __future__ import annotations

import pytest

from repro.core.network import ReChordNetwork
from repro.core.noderef import make_ref
from repro.core.rules import RuleConfig
from repro.idspace.ring import IdSpace
from repro.workloads.initial import build_random_network, corrupt_network

#: a config with every rule off — tests switch individual rules back on
ALL_OFF = RuleConfig(
    virtual_nodes=False,
    overlap=False,
    closest_real=False,
    linearize=False,
    ring=False,
    connection=False,
)

#: one entry per pipeline stage: the flags that isolate it
RULE_FLAGS = {
    "purge": {},  # sanitation always runs; no rule flag needed
    "rule1": {"virtual_nodes": True},
    "rule2": {"virtual_nodes": True, "overlap": True},
    "rule3": {"closest_real": True},
    "rule4": {"linearize": True},
    "rule5": {"ring": True},
    "rule6": {"connection": True},
}


def _pair(config: RuleConfig, builder, bits: int = 8):
    """The same hand-built start under the scalar and batched backends.

    ``builder(net)`` populates peers and plants the adversarial state;
    it runs identically on both networks.  The full-scan engine steps
    every peer every round, so one round exercises every batched phase
    on every peer.
    """
    nets = []
    for backend in ("scalar", "batched"):
        net = ReChordNetwork(
            space=IdSpace(bits), config=config, engine="full", rule_backend=backend
        )
        builder(net)
        nets.append(net)
    return nets


def _delivered(net: ReChordNetwork):
    """The post-round inbox contents, keyed by receiver."""
    return {k: list(box) for k, box in net.scheduler._inboxes.items() if box}


def assert_one_round_identical(a: ReChordNetwork, b: ReChordNetwork, context: str):
    """One round under each backend: states, envelopes, counters equal."""
    a.run_round()
    b.run_round()
    assert a.fingerprint() == b.fingerprint(), f"fingerprint diverged {context}"
    assert _delivered(a) == _delivered(b), f"delivered envelopes diverged {context}"
    assert a.counters().fires == b.counters().fires, f"counters diverged {context}"


def assert_run_identical(a: ReChordNetwork, b: ReChordNetwork, context: str):
    """Run both to the fixpoint round by round, comparing at every boundary."""
    for r in range(600):
        ra = a.is_fixed_point(peek=True)
        rb = b.is_fixed_point(peek=True)
        assert ra == rb, f"fixpoint flags diverged at round {r} {context}"
        if ra:
            break
        assert_one_round_identical(a, b, f"at round {r} {context}")
    else:  # pragma: no cover - defends the test against non-termination
        pytest.fail(f"no fixpoint within 600 rounds {context}")


# ----------------------------------------------------------------------
# adversarial starts
# ----------------------------------------------------------------------

def plant_self_loops(net: ReChordNetwork) -> None:
    """Every neighbor set contains the node's own ref (and a live peer)."""
    ids = [5, 60, 130, 201]
    for pid in ids:
        net.add_peer(pid)
    for pid in ids:
        state = net.peers[pid].state
        other = net.ref(ids[(ids.index(pid) + 1) % len(ids)])
        for level in (0, 1):
            node = state.ensure_level(level)
            node.nu = {node.ref, other}
            node.nr = {node.ref}
            node.nc = {node.ref, other}


def plant_duplicate_ids(net: ReChordNetwork) -> None:
    """Tiny id space: virtual positions collide with real identifiers.

    With 4 bits, level-1 of peer ``u`` sits at ``u + 8`` — choosing
    peers 8 apart makes one peer's virtual node share its identifier
    with another peer's *real* node, the duplicate-id torture case for
    rank-based ordering (real sorts before virtual at equal ids).
    """
    ids = [1, 9, 4, 12]
    for pid in ids:
        net.add_peer(pid)
    for pid in ids:
        state = net.peers[pid].state
        node = state.ensure_level(1)  # the colliding virtual node
        node.nu = {net.ref(other) for other in ids if other != pid}
        state.nodes[0].nu = {make_ref(net.space, other, 1) for other in ids}


def plant_empty_levels(net: ReChordNetwork) -> None:
    """Virtual levels with empty neighborhoods between populated ones."""
    ids = [20, 77, 140, 230]
    for pid in ids:
        net.add_peer(pid)
    for pid in ids:
        state = net.peers[pid].state
        for level in (1, 2, 3):
            state.ensure_level(level)  # all sets empty
        state.nodes[0].nu = {net.ref(o) for o in ids if o != pid}


def plant_wraparound(net: ReChordNetwork) -> None:
    """Peers hugging the id-space origin, refs crossing the seam."""
    size = net.space.size
    ids = [0, 2, size - 1, size - 3, size // 2]
    for pid in ids:
        net.add_peer(pid)
    for pid in ids:
        state = net.peers[pid].state
        node = state.nodes[0]
        node.nu = {net.ref(o) for o in ids if o != pid}
        # wrap pointers planted across the seam, some of them wrong side
        node.wrap_rl = net.ref(ids[0]) if pid != ids[0] else net.ref(ids[2])
        node.wrap_rr = net.ref(ids[2]) if pid != ids[2] else net.ref(ids[0])


def plant_phantoms(net: ReChordNetwork) -> None:
    """Refs to dead owners and to levels the owner never created."""
    ids = [10, 50, 90, 170]
    for pid in ids:
        net.add_peer(pid)
    dead = make_ref(net.space, 33, 0)       # owner 33 is not a peer
    dead_v = make_ref(net.space, 33, 2)
    phantom = make_ref(net.space, 50, 5)    # live owner, absent level
    for pid in ids:
        state = net.peers[pid].state
        node = state.nodes[0]
        node.nu = {net.ref(o) for o in ids if o != pid} | {dead, phantom}
        node.nr = {dead_v}
        node.nc = {phantom}
        node.rl = dead
        node.rr = phantom


BUILDERS = {
    "self_loops": plant_self_loops,
    "duplicate_ids": plant_duplicate_ids,
    "empty_levels": plant_empty_levels,
    "wraparound": plant_wraparound,
    "phantoms": plant_phantoms,
}


# ----------------------------------------------------------------------
# the per-rule differential matrix
# ----------------------------------------------------------------------

class TestPerRuleDifferential:
    """rule × adversarial start: one round must be bit-for-bit equal."""

    @pytest.mark.parametrize("rule", sorted(RULE_FLAGS))
    @pytest.mark.parametrize("start", sorted(BUILDERS))
    def test_one_round(self, rule, start):
        config = ALL_OFF.ablated(**RULE_FLAGS[rule])
        bits = 4 if start == "duplicate_ids" else 8
        a, b = _pair(config, BUILDERS[start], bits=bits)
        assert_one_round_identical(a, b, f"({rule} on {start})")

    @pytest.mark.parametrize("rule", sorted(RULE_FLAGS))
    def test_isolated_rule_full_run(self, rule):
        """The isolated rule iterated to its own fixpoint."""
        config = ALL_OFF.ablated(**RULE_FLAGS[rule])
        a, b = _pair(config, plant_phantoms)
        assert_run_identical(a, b, f"({rule} to fixpoint)")


class TestFullPipelineDifferential:
    """All rules on, lockstep comparison round by round."""

    @pytest.mark.parametrize("start", sorted(BUILDERS))
    def test_adversarial_start_lockstep(self, start):
        bits = 4 if start == "duplicate_ids" else 8
        a, b = _pair(RuleConfig(), BUILDERS[start], bits=bits)
        assert_run_identical(a, b, f"(full pipeline on {start})")

    def test_economical_broadcast_lockstep(self):
        """The eco-broadcast memo bookkeeping is backend-invariant."""
        config = RuleConfig(economical_broadcast=True)
        a, b = _pair(config, plant_wraparound)
        assert_run_identical(a, b, "(economical broadcast)")

    @pytest.mark.parametrize("seed", [3, 17])
    def test_corrupt_random_start_lockstep(self, seed):
        nets = []
        for backend in ("scalar", "batched"):
            net = build_random_network(
                n=14, seed=seed, engine="full", rule_backend=backend
            )
            corrupt_network(net, seed + 1)
            nets.append(net)
        assert_run_identical(*nets, f"(corrupt seed={seed})")


class TestBackendSurface:
    def test_unknown_backend_rejected(self):
        with pytest.raises(ValueError, match="rule backend"):
            ReChordNetwork(rule_backend="warp")

    def test_backend_recorded(self):
        assert ReChordNetwork().rule_backend == "scalar"
        assert ReChordNetwork(rule_backend="batched").rule_backend == "batched"

    def test_batched_pure_fallback_matches(self):
        """Forcing the pure-``array`` path (no numpy) changes nothing."""
        from repro.core.rules_batched import BatchedRuleEngine

        a = ReChordNetwork(space=IdSpace(8), engine="full")
        b = ReChordNetwork(space=IdSpace(8), engine="full")
        b.scheduler.set_batch_stepper(BatchedRuleEngine(use_numpy=False))
        plant_phantoms(a)
        plant_phantoms(b)
        assert_run_identical(a, b, "(pure fallback)")
