"""Stability of the stable state (Section 3.1.6) and local checkability."""

from __future__ import annotations

import pytest

from repro.core.checker import local_check_peer, locally_checkable_stable
from repro.core.noderef import NodeRef
from tests.conftest import stabilized


class TestStableStateInvariance:
    def test_configuration_constant_over_many_rounds(self):
        net = stabilized(12, seed=0)
        fp = net.fingerprint()
        for _ in range(10):
            net.run_round()
            assert net.fingerprint() == fp

    def test_is_fixed_point_predicate(self):
        net = stabilized(10, seed=1)
        assert net.is_fixed_point()

    def test_unstable_network_is_not_fixed_point(self):
        from repro.workloads.initial import build_random_network

        net = build_random_network(n=10, seed=1)
        assert not net.is_fixed_point()

    def test_stable_state_still_ideal_after_extra_rounds(self):
        net = stabilized(15, seed=2)
        net.run(5)
        assert net.matches_ideal()

    def test_steady_message_flow_is_constant(self):
        """The stable state is a constant flow: the same number of
        messages is in flight at every boundary."""
        net = stabilized(12, seed=3)
        counts = []
        for _ in range(5):
            net.run_round()
            counts.append(net.scheduler.pending_messages())
        assert len(set(counts)) == 1


class TestIsFixedPointSideEffects:
    """Regression for the historical mutation footgun: is_fixed_point()
    ran a probe round on the live network, silently advancing round_no
    (and mutating state when the network was unstable).  peek=True runs
    the probe on a deep copy and must leave everything untouched."""

    def test_default_still_advances_round_no(self):
        net = stabilized(8, seed=30)
        before = net.round_no
        assert net.is_fixed_point()
        assert net.round_no == before + 1  # documented historical behavior

    def test_peek_leaves_stable_network_untouched(self):
        net = stabilized(8, seed=31)
        before_round = net.round_no
        before_fp = net.fingerprint()
        assert net.is_fixed_point(peek=True)
        assert net.round_no == before_round
        assert net.fingerprint() == before_fp

    def test_peek_leaves_unstable_network_untouched(self):
        from repro.workloads.initial import build_random_network

        net = build_random_network(n=8, seed=32)
        net.run(2)
        before_round = net.round_no
        before_fp = net.fingerprint()
        assert not net.is_fixed_point(peek=True)
        # the probe ran on a copy: nothing moved, state identical
        assert net.round_no == before_round
        assert net.fingerprint() == before_fp

    def test_peek_probe_does_not_corrupt_future_rounds(self):
        """After a peek the network evolves exactly as if the peek never
        happened (both engines)."""
        from repro.workloads.initial import build_random_network

        for incremental in (True, False):
            a = build_random_network(n=8, seed=33, incremental=incremental)
            b = build_random_network(n=8, seed=33, incremental=incremental)
            a.run(3)
            b.run(3)
            a.is_fixed_point(peek=True)  # probe on copy
            ra = a.run_until_stable(max_rounds=4000)
            rb = b.run_until_stable(max_rounds=4000)
            assert ra == rb
            assert a.fingerprint() == b.fingerprint()


class TestLocalChecker:
    def test_stable_network_passes_all_local_checks(self):
        net = stabilized(14, seed=4)
        assert locally_checkable_stable(net)
        for peer in net.peers.values():
            assert local_check_peer(peer) == []

    def test_unstable_network_fails_some_check(self):
        from repro.workloads.initial import build_random_network

        net = build_random_network(n=14, seed=4)
        net.run(2)  # far from stable
        assert not locally_checkable_stable(net)

    def test_extra_edge_trips_exactly_locally(self):
        """Perturb one peer: that peer's local check must fail — local
        checkability means deviations are locally visible."""
        net = stabilized(12, seed=5)
        victim = net.peers[net.peer_ids[3]]
        # inject a spurious far edge
        foreign = NodeRef.real(net.peer_ids[0])
        node = victim.state.nodes[victim.state.max_level()]
        if foreign not in node.nu:
            node.nu.add(foreign)
        problems = local_check_peer(victim)
        assert problems, "perturbation must be locally visible"

    def test_wrong_ring_edge_detected(self):
        net = stabilized(12, seed=6)
        mid_pid = net.peer_ids[len(net.peer_ids) // 2]
        peer = net.peers[mid_pid]
        node = peer.state.nodes[0]
        node.nr.add(NodeRef.real(net.peer_ids[0]))
        assert any("ring" in p for p in local_check_peer(peer))

    def test_wrap_inconsistency_detected(self):
        net = stabilized(12, seed=7)
        # find a node with a linear rr and force a wrap pointer on it
        for peer in net.peers.values():
            for node in peer.state.nodes.values():
                if node.rr is not None:
                    node.wrap_rr = NodeRef.real(net.peer_ids[0])
                    assert any("wrap" in p for p in local_check_peer(peer))
                    return
        pytest.fail("no node with a linear rr found")

    def test_perturbed_network_restabilizes(self):
        net = stabilized(12, seed=8)
        victim = net.peers[net.peer_ids[2]]
        node = victim.state.nodes[0]
        node.nu.add(NodeRef.real(net.peer_ids[-1]))
        net.run_until_stable(max_rounds=2000)
        assert net.matches_ideal()
        assert locally_checkable_stable(net)
