"""Workload generators: initial states and churn schedules."""

from __future__ import annotations

import random

import pytest

from repro.graphs.connectivity import is_weakly_connected
from repro.idspace.ring import IdSpace
from repro.workloads.churn import ChurnSchedule
from repro.workloads.initial import (
    SHAPES,
    build_random_network,
    build_shaped_network,
    corrupt_network,
    random_peer_ids,
)


class TestRandomPeerIds:
    def test_unique_and_in_range(self):
        space = IdSpace(10)
        ids = random_peer_ids(50, random.Random(0), space)
        assert len(set(ids)) == 50
        assert all(0 <= i < space.size for i in ids)

    def test_rejects_oversubscription(self):
        space = IdSpace(3)
        with pytest.raises(ValueError):
            random_peer_ids(9, random.Random(0), space)

    def test_deterministic(self):
        space = IdSpace(16)
        a = random_peer_ids(10, random.Random(7), space)
        b = random_peer_ids(10, random.Random(7), space)
        assert a == b


class TestBuilders:
    def test_random_network_weakly_connected(self):
        for seed in range(4):
            net = build_random_network(n=12, seed=seed)
            assert is_weakly_connected(net.snapshot())

    def test_random_network_real_nodes_only(self):
        net = build_random_network(n=9, seed=0)
        for peer in net.peers.values():
            assert peer.state.levels() == [0]

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            build_random_network(n=0, seed=0)

    def test_singleton_has_no_edges(self):
        net = build_random_network(n=1, seed=0)
        assert net.snapshot().edge_count() == 0

    @pytest.mark.parametrize("shape", sorted(SHAPES))
    def test_shapes_weakly_connected(self, shape):
        net = build_shaped_network(shape, 10, seed=1)
        assert is_weakly_connected(net.snapshot())

    def test_unknown_shape(self):
        with pytest.raises(ValueError):
            build_shaped_network("moebius", 10, seed=1)

    def test_corruption_preserves_connectivity(self):
        for seed in range(3):
            net = build_random_network(n=10, seed=seed)
            corrupt_network(net, seed=seed)
            assert is_weakly_connected(net.snapshot())

    def test_corruption_adds_virtuals(self):
        net = build_random_network(n=10, seed=0)
        corrupt_network(net, seed=0, virtual_fraction=1.0)
        assert any(len(p.state.nodes) > 1 for p in net.peers.values())


class TestChurnSchedule:
    def test_deterministic(self):
        net = build_random_network(n=6, seed=0)
        a = ChurnSchedule.random(net, 10, seed=3)
        b = ChurnSchedule.random(net, 10, seed=3)
        assert a.events == b.events

    def test_join_events_have_gateways(self):
        net = build_random_network(n=6, seed=0)
        for ev in ChurnSchedule.random(net, 15, seed=4):
            if ev.kind == "join":
                assert ev.gateway_id is not None

    def test_victims_are_alive_at_event_time(self):
        net = build_random_network(n=6, seed=0)
        alive = set(net.peer_ids)
        for ev in ChurnSchedule.random(net, 25, seed=5):
            if ev.kind == "join":
                assert ev.peer_id not in alive
                assert ev.gateway_id in alive
                alive.add(ev.peer_id)
            else:
                assert ev.peer_id in alive
                alive.discard(ev.peer_id)
