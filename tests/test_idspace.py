"""Identifier-space arithmetic: intervals, distances, virtual positions."""

from __future__ import annotations

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.idspace.keys import hash_to_id, key_id
from repro.idspace.ring import (
    IdSpace,
    ring_between_open,
    ring_distance_cw,
)

SPACE = IdSpace(16)
IDS = st.integers(min_value=0, max_value=SPACE.size - 1)


class TestRingDistance:
    def test_zero_distance_to_self(self):
        assert ring_distance_cw(5, 5, 256) == 0

    def test_simple_forward(self):
        assert ring_distance_cw(10, 20, 256) == 10

    def test_wraps(self):
        assert ring_distance_cw(250, 5, 256) == 11

    def test_full_loop_minus_one(self):
        assert ring_distance_cw(5, 4, 256) == 255

    @given(a=IDS, b=IDS)
    def test_antisymmetric_sum(self, a, b):
        d1 = ring_distance_cw(a, b, SPACE.size)
        d2 = ring_distance_cw(b, a, SPACE.size)
        if a == b:
            assert d1 == d2 == 0
        else:
            assert d1 + d2 == SPACE.size

    @given(a=IDS, b=IDS, c=IDS)
    def test_triangle_modular(self, a, b, c):
        lhs = ring_distance_cw(a, c, SPACE.size)
        rhs = (ring_distance_cw(a, b, SPACE.size) + ring_distance_cw(b, c, SPACE.size)) % SPACE.size
        assert lhs == rhs


class TestIntervals:
    """The paper's exclusive bracket notation, Section 2.2."""

    def test_paper_example_wrapping(self):
        # "0, 0.2 in [0.8, 0.3]" scaled onto a 16-bit circle
        a = SPACE.from_unit(0.8)
        b = SPACE.from_unit(0.3)
        assert SPACE.between_open(a, SPACE.from_unit(0.0), b)
        assert SPACE.between_open(a, SPACE.from_unit(0.2), b)

    def test_paper_example_non_member(self):
        # "0.2 not in [0.3, 0.8]"
        a = SPACE.from_unit(0.3)
        b = SPACE.from_unit(0.8)
        assert not SPACE.between_open(a, SPACE.from_unit(0.2), b)

    def test_endpoints_excluded(self):
        assert not ring_between_open(10, 10, 20, 256)
        assert not ring_between_open(10, 20, 20, 256)

    def test_interior(self):
        assert ring_between_open(10, 15, 20, 256)

    def test_degenerate_interval_is_rest_of_circle(self):
        assert ring_between_open(7, 8, 7, 256)
        assert not ring_between_open(7, 7, 7, 256)

    def test_open_closed_includes_right_end(self):
        assert SPACE.between_open_closed(10, 20, 20)
        assert not SPACE.between_open_closed(10, 10, 20)

    def test_open_closed_singleton_ring(self):
        # a == b: single-node ring owns everything
        assert SPACE.between_open_closed(9, 123, 9)

    @given(a=IDS, x=IDS, b=IDS)
    def test_open_interval_partition(self, a, x, b):
        """x != a,b lies in exactly one of (a,b) and (b,a)."""
        if x in (a, b) or a == b:
            return
        assert ring_between_open(a, x, b, SPACE.size) != ring_between_open(
            b, x, a, SPACE.size
        )

    @given(a=IDS, x=IDS, b=IDS)
    def test_open_matches_distance_definition(self, a, x, b):
        want = 0 < ring_distance_cw(a, x, SPACE.size) < ring_distance_cw(a, b, SPACE.size) if a != b else x != a
        assert ring_between_open(a, x, b, SPACE.size) == want


class TestIdSpace:
    def test_size(self):
        assert IdSpace(8).size == 256

    def test_rejects_zero_bits(self):
        with pytest.raises(ValueError):
            IdSpace(0)

    def test_check_id_bounds(self):
        space = IdSpace(8)
        assert space.check_id(255) == 255
        with pytest.raises(ValueError):
            space.check_id(256)
        with pytest.raises(ValueError):
            space.check_id(-1)

    def test_check_id_type(self):
        with pytest.raises(TypeError):
            IdSpace(8).check_id(1.5)
        with pytest.raises(TypeError):
            IdSpace(8).check_id(True)

    def test_virtual_offsets_halve(self):
        space = IdSpace(8)
        assert space.virtual_offset(1) == 128
        assert space.virtual_offset(2) == 64
        assert space.virtual_offset(8) == 1

    def test_virtual_offset_bounds(self):
        space = IdSpace(8)
        with pytest.raises(ValueError):
            space.virtual_offset(0)
        with pytest.raises(ValueError):
            space.virtual_offset(9)

    def test_virtual_id_wraps_exactly(self):
        space = IdSpace(8)
        assert space.virtual_id(200, 1) == (200 + 128) % 256
        assert space.virtual_id(200, 8) == 201

    def test_virtual_id_level_zero_is_self(self):
        assert IdSpace(8).virtual_id(77, 0) == 77

    def test_finger_target_alias(self):
        space = IdSpace(12)
        assert space.finger_target(100, 3) == space.virtual_id(100, 3)

    def test_unit_round_trip(self):
        space = IdSpace(16)
        assert space.to_unit(0) == 0.0
        assert space.from_unit(0.5) == space.size // 2

    def test_from_unit_rejects_out_of_range(self):
        with pytest.raises(ValueError):
            IdSpace(8).from_unit(1.0)


class TestLevelCount:
    """m is minimal i >= 1 with 2**(B-i) < gap (DESIGN.md [D3])."""

    def test_lone_peer(self):
        space = IdSpace(8)
        assert space.level_count(space.size) == 1

    def test_half_ring_gap(self):
        space = IdSpace(8)
        # gap 128: need 2**(8-m) < 128 -> m = 2
        assert space.level_count(128) == 2

    def test_just_above_half(self):
        assert IdSpace(8).level_count(129) == 1

    def test_small_gaps_cap_at_bits(self):
        space = IdSpace(8)
        assert space.level_count(1) == 8
        assert space.level_count(2) == 8

    def test_gap_three(self):
        # 2**(8-m) < 3 -> 2**(8-m) <= 2 -> m >= 7
        assert IdSpace(8).level_count(3) == 7

    def test_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            IdSpace(8).level_count(0)

    def test_rejects_oversized(self):
        with pytest.raises(ValueError):
            IdSpace(8).level_count(257)

    @given(gap=st.integers(min_value=2, max_value=SPACE.size))
    def test_um_strictly_inside_gap(self, gap):
        """u_m lies strictly between u and its successor (stable-state
        requirement from Section 3.1.6)."""
        m = SPACE.level_count(gap)
        assert SPACE.virtual_offset(m) < gap or gap == 1

    @given(gap=st.integers(min_value=1, max_value=SPACE.size))
    def test_minimality(self, gap):
        m = SPACE.level_count(gap)
        if m > 1:
            # m-1 would put the virtual node at or beyond the successor
            assert SPACE.virtual_offset(m - 1) >= gap


class TestKeys:
    def test_deterministic(self):
        space = IdSpace(32)
        assert hash_to_id("peer-1", space) == hash_to_id("peer-1", space)

    def test_distinct_names_differ(self):
        space = IdSpace(64)
        assert hash_to_id("a", space) != hash_to_id("b", space)

    def test_in_range(self):
        space = IdSpace(8)
        for i in range(100):
            assert 0 <= hash_to_id(f"k{i}", space) < 256

    def test_bytes_and_str_agree(self):
        space = IdSpace(16)
        assert hash_to_id("x", space) == hash_to_id(b"x", space)

    def test_key_id_alias(self):
        space = IdSpace(16)
        assert key_id("k", space) == hash_to_id("k", space)

    def test_spread(self):
        """SHA-1 ids should cover the space roughly uniformly."""
        space = IdSpace(8)
        buckets = {hash_to_id(f"key-{i}", space) // 64 for i in range(200)}
        assert buckets == {0, 1, 2, 3}
