"""Section 2.2's structural accounting, verified on stable networks.

The paper bounds the stable structure: every node has at most 4
outgoing unmarked edges (two closest neighbors + two closest reals), so
``|E_u ∪ E_r| <= 4 |E_Chord|``; the node count is Θ(n log n); each
virtual node generates Θ(log n) connection edges in expectation, giving
O(n log² n) connection edges overall.
"""

from __future__ import annotations

import math

import pytest

from repro.core.ideal import chord_edges, compute_ideal
from repro.core.metrics import collect
from tests.conftest import stabilized


@pytest.fixture(scope="module", params=[(12, 200), (24, 201), (40, 202)])
def stable_net(request):
    n, seed = request.param
    return stabilized(n, seed=seed)


class TestDegreeBounds:
    def test_unmarked_out_degree_at_most_four(self, stable_net):
        for peer in stable_net.peers.values():
            for node in peer.state.nodes.values():
                assert len(node.nu) <= 4

    def test_ring_out_degree_at_most_one(self, stable_net):
        for peer in stable_net.peers.values():
            for node in peer.state.nodes.values():
                assert len(node.nr) <= 1

    def test_wrap_pointers_at_most_two(self, stable_net):
        for peer in stable_net.peers.values():
            for node in peer.state.nodes.values():
                assert len(node.wrap_refs()) <= 2


class TestEdgeAccounting:
    def test_eu_er_bounded_by_four_chord(self, stable_net):
        """|E_u ∪ E_r| <= 4 |E_Chord| (Section 2.2).

        The paper counts Chord edges per finger *slot* (one per virtual
        node plus the successor edge, i.e. one per Re-Chord node), not
        as a deduplicated pair set — distinct fingers of one peer often
        share a target.
        """
        m = collect(stable_net, include_pending=False)
        ideal = compute_ideal(stable_net.space, stable_net.peer_ids)
        chord_slots = ideal.total_nodes  # n successor edges + sum(m*) fingers
        assert m.unmarked_edges + m.ring_edges <= 4 * chord_slots
        # the deduplicated pair set is a lower bound sanity check
        assert len(chord_edges(stable_net.space, stable_net.peer_ids)) <= chord_slots

    def test_node_count_theta_n_log_n(self, stable_net):
        """Lemma 3.1: total nodes are Θ(n log n) — sanity band check."""
        n = len(stable_net.peers)
        total = collect(stable_net).total_nodes
        log2n = math.log2(n)
        assert n * max(1.0, 0.3 * log2n) <= total <= n * (3 * log2n + 4)

    def test_connection_edges_within_n_log2_band(self, stable_net):
        """Expected O(n log² n) connection edges (incl. in-flight)."""
        n = len(stable_net.peers)
        m = collect(stable_net, include_pending=True)
        bound = 6 * n * (math.log2(n) ** 2) + 8 * n
        assert m.connection_edges <= bound

    def test_virtual_levels_bounded_by_log_gap(self, stable_net):
        """m*(u) per peer stays within the bits of the id space and is
        consistent with the ideal oracle."""
        ideal = compute_ideal(stable_net.space, stable_net.peer_ids)
        for pid, peer in stable_net.peers.items():
            assert peer.state.max_level() == ideal.m_star[pid]
            assert peer.state.max_level() <= stable_net.space.bits


class TestProjectionProperties:
    def test_projection_out_degree_logarithmic(self, stable_net):
        """Each peer's Chord view has O(log n) distinct targets."""
        n = len(stable_net.peers)
        views = {}
        for u, v in stable_net.rechord_projection():
            views.setdefault(u, set()).add(v)
        bound = 4 * math.log2(n) + 8
        for u, targets in views.items():
            assert len(targets) <= bound

    def test_every_peer_reaches_its_successor(self, stable_net):
        ids = sorted(stable_net.peer_ids)
        have = stable_net.rechord_projection()
        for i, u in enumerate(ids):
            succ = ids[(i + 1) % len(ids)]
            if succ != u:
                assert (u, succ) in have
