"""The scenario engine: specs, events, executor, and the two-kernel
equivalence of every named campaign.

Three layers of guarantees:

* **spec layer** — specs are values: JSON round-trips are lossless and
  invalid specs fail loudly at construction;
* **determinism** — the same ``(spec, kernel)`` pair produces the
  byte-identical :class:`ScenarioReport`, including the configuration
  digest, on repeated runs;
* **engine equivalence** — every named scenario produces the *same*
  report on the incremental and the full-scan kernel (the
  ``tests/test_engine_equivalence.py`` discipline extended to the whole
  adversity vocabulary, partitions and corruption included).
"""

from __future__ import annotations

import json
import random

import pytest

from repro.core.network import ReChordNetwork
from repro.scenarios import (
    EVENT_KINDS,
    EventContext,
    EventSpec,
    ScenarioSpec,
    TrafficSpec,
    apply_event_spec,
    make_scenario,
    run_scenario,
    scenario_names,
)
from repro.scenarios.executor import _build_start
from repro.netsim.rng import SeedSequence
from repro.workloads.initial import build_random_network

#: small campaign size used throughout (keeps the suite fast)
N = 12


def tiny(name: str, n: int = N, seed: int = 5) -> ScenarioSpec:
    return make_scenario(name, n=n, seed=seed)


class TestSpec:
    @pytest.mark.parametrize("name", scenario_names())
    def test_json_round_trip_is_lossless(self, name):
        spec = tiny(name)
        assert ScenarioSpec.from_json(spec.to_json()) == spec

    def test_library_has_at_least_eight_scenarios(self):
        assert len(scenario_names()) >= 8

    def test_unknown_start_rejected(self):
        with pytest.raises(ValueError, match="unknown start"):
            ScenarioSpec(name="x", n=8, seed=1, rounds=4, start="moebius")

    def test_event_outside_window_rejected(self):
        with pytest.raises(ValueError, match="outside"):
            ScenarioSpec(
                name="x", n=8, seed=1, rounds=4,
                events=(EventSpec(at=9, kind="crash_wave", params={"count": 1}),),
            )

    def test_event_at_window_end_rejected(self):
        """Offsets run 0..rounds-1; an event at `rounds` would silently
        never fire (regression: validation used to admit it)."""
        with pytest.raises(ValueError, match="outside"):
            ScenarioSpec(
                name="x", n=8, seed=1, rounds=4,
                events=(EventSpec(at=4, kind="crash_wave", params={"count": 1}),),
            )

    def test_overrides_produce_new_spec(self):
        spec = tiny("flash-crowd")
        bigger = spec.with_overrides(n=2 * spec.n)
        assert bigger.n == 2 * spec.n and spec.n == N

    def test_traffic_spec_detects_kv_mix(self):
        assert not TrafficSpec().needs_store()
        assert TrafficSpec(op_mix=(("lookup", 0.5), ("put", 0.5))).needs_store()


class TestDeterminism:
    @pytest.mark.parametrize("name", ["flash-crowd", "partition-sever", "ring-split"])
    def test_same_seed_same_report(self, name):
        spec = tiny(name)
        assert run_scenario(spec) == run_scenario(spec)

    def test_different_seed_different_digest(self):
        a = run_scenario(tiny("churn-storm", seed=5))
        b = run_scenario(tiny("churn-storm", seed=6))
        assert a.config_digest != b.config_digest

    def test_report_is_json_serializable(self):
        report = run_scenario(tiny("seam-crash"))
        parsed = json.loads(json.dumps(report.to_dict(), sort_keys=True))
        assert parsed["name"] == "seam-crash"
        assert parsed["stable"] is True


class TestEngineEquivalence:
    """Incremental-vs-full-scan equality for the whole adversity
    vocabulary (the tests/test_engine_equivalence.py discipline)."""

    @pytest.mark.parametrize("name", scenario_names())
    def test_named_scenario_equivalent_across_kernels(self, name):
        spec = tiny(name)
        a = run_scenario(spec, incremental=True)
        b = run_scenario(spec, incremental=False)
        # dataclass equality covers recovery metrics, repair curve,
        # SLO ledger, rule firings and the configuration digest
        assert a == b, f"kernels diverged under scenario {name!r}"

    def test_partition_lockstep_fingerprints(self):
        """Round-for-round equality while a drop filter is installed,
        not only at campaign end."""

        def build(incremental):
            net = build_random_network(n=10, seed=9, incremental=incremental)
            net.run_until_stable(max_rounds=4000)
            ids = net.peer_ids
            side = frozenset(ids[: len(ids) // 2])
            net.scheduler.set_drop_filter(
                lambda env: (env.sender in side) != (env.target in side)
            )
            return net

        a, b = build(True), build(False)
        for r in range(30):
            a.run_round()
            b.run_round()
            assert a.fingerprint() == b.fingerprint(), f"diverged at round {r}"
        a.scheduler.set_drop_filter(None)
        b.scheduler.set_drop_filter(None)
        ra = a.run_until_stable(max_rounds=4000)
        rb = b.run_until_stable(max_rounds=4000)
        assert ra == rb
        assert a.fingerprint() == b.fingerprint()


class TestEvents:
    def make_net(self, n=10, seed=3) -> ReChordNetwork:
        net = build_random_network(n=n, seed=seed)
        net.run_until_stable(max_rounds=4000)
        return net

    def test_unknown_event_kind_raises(self):
        ctx = EventContext(self.make_net())
        with pytest.raises(ValueError, match="unknown event kind"):
            apply_event_spec(ctx, random.Random(0), "meteor", {})

    def test_event_registry_covers_spec_vocabulary(self):
        assert {
            "crash_wave", "leave_wave", "flash_crowd", "churn_burst",
            "partition", "heal", "poison_fingers", "phantom_refs",
            "ring_split", "set_rate",
        } <= set(EVENT_KINDS)

    def test_crash_wave_clustered_picks_consecutive_ids(self):
        net = self.make_net()
        before = net.peer_ids
        ctx = EventContext(net)
        apply_event_spec(ctx, random.Random(1), "crash_wave",
                         {"count": 3, "targeting": "clustered"})
        gone = sorted(set(before) - set(net.peer_ids))
        positions = sorted(before.index(v) for v in gone)
        span = [(positions[0] + i) % len(before) for i in range(3)]
        assert positions == sorted(span)
        assert ctx.census == {"crash": 3}

    def test_waves_never_empty_the_network(self):
        net = self.make_net(n=4)
        ctx = EventContext(net)
        apply_event_spec(ctx, random.Random(1), "crash_wave", {"count": 10})
        assert len(net.peers) >= 2

    def test_flash_crowd_single_gateway_grows_network(self):
        net = self.make_net()
        before = set(net.peer_ids)
        ctx = EventContext(net)
        apply_event_spec(ctx, random.Random(2), "flash_crowd",
                         {"count": 3, "gateway": "single"})
        assert len(net.peers) == len(before) + 3
        net.run_until_stable(max_rounds=4000)
        assert net.matches_ideal()

    def test_partition_drops_cross_traffic_and_heal_restores(self):
        net = self.make_net()
        ctx = EventContext(net)
        apply_event_spec(ctx, random.Random(3), "partition",
                         {"mode": "id_split", "fraction": 0.5})
        assert net.scheduler.has_drop_filter()
        net.run(3)
        assert net.scheduler.dropped_last_round > 0  # steady flows cut
        apply_event_spec(ctx, random.Random(4), "heal", {})
        assert not net.scheduler.has_drop_filter()
        net.run_until_stable(max_rounds=4000)
        assert net.matches_ideal()

    def test_severed_partition_needs_heal_bridge_to_merge(self):
        net = self.make_net()
        ctx = EventContext(net)
        apply_event_spec(ctx, random.Random(5), "partition",
                         {"mode": "id_split", "fraction": 0.5, "sever": True})
        assert ctx.census.get("sever", 0) > 0
        net.run(20)
        apply_event_spec(ctx, random.Random(6), "heal", {"bridges": 2})
        assert ctx.census.get("bridge") == 2
        net.run_until_stable(max_rounds=4000)
        assert net.matches_ideal()

    def test_ring_split_mid_run_recovers_to_ideal(self):
        net = self.make_net()
        ctx = EventContext(net)
        apply_event_spec(ctx, random.Random(7), "ring_split", {})
        # the reset leaves only the two interleaved cycles + bridge
        for pid in net.peer_ids:
            assert list(net.peers[pid].state.nodes) == [0]
        net.run_until_stable(max_rounds=4000)
        assert net.matches_ideal()

    def test_poison_and_phantom_recover_to_ideal(self):
        net = self.make_net()
        ctx = EventContext(net)
        apply_event_spec(ctx, random.Random(8), "poison_fingers",
                         {"fraction": 1.0, "edges_per_peer": 4})
        apply_event_spec(ctx, random.Random(9), "phantom_refs",
                         {"fraction": 1.0, "levels_per_peer": 2})
        assert ctx.census.get("poison_edge", 0) > 0
        assert ctx.census.get("virtual_level", 0) > 0
        net.run_until_stable(max_rounds=4000)
        assert net.matches_ideal()

    def test_set_rate_requires_traffic(self):
        ctx = EventContext(self.make_net())
        with pytest.raises(ValueError, match="traffic"):
            apply_event_spec(ctx, random.Random(0), "set_rate", {"rate": 1.0})


class TestExecutor:
    def test_two_rings_start_builds_split(self):
        spec = ScenarioSpec(name="x", n=10, seed=4, rounds=0,
                            start="two_rings", traffic=None)
        net = _build_start(spec, SeedSequence(4).child("t"), incremental=True)
        assert len(net.peers) == 10

    def test_repair_curve_shows_damage_and_healing(self):
        report = run_scenario(tiny("finger-poison"))
        peak = max(s.check_violations for s in report.samples)
        assert peak > 0, "corruption never registered on the local checker"
        assert report.samples[-1].check_violations == 0
        assert report.samples[-1].outstanding_ops == 0
        assert report.stable and report.ideal

    def test_partition_scenario_degrades_then_recovers_slo(self):
        report = run_scenario(tiny("partition-heal", n=16))
        assert report.slo is not None
        assert report.slo["outcomes"].get("timeout", 0) > 0, (
            "a half/half partition should strand cross-cut operations"
        )
        assert report.stable and report.ideal

    def test_no_traffic_scenario_runs(self):
        spec = tiny("crash-wave").with_overrides(traffic=None)
        report = run_scenario(spec)
        assert report.slo is None
        assert report.stable and report.ideal

    def test_rounds_total_consistent_with_samples(self):
        report = run_scenario(tiny("seam-crash"))
        assert report.samples[-1].round == report.rounds_total
        assert report.rounds_adversity <= report.rounds_total

    def test_sample_rounds_strictly_increase_in_recovery(self):
        """Regression: the final sample must not duplicate a periodic
        recovery sample taken at the same boundary."""
        for name in ("seam-crash", "flash-crowd"):
            report = run_scenario(tiny(name))
            recovery = [s.round for s in report.samples
                        if s.round > report.rounds_adversity]
            assert recovery == sorted(set(recovery))

    def test_event_streams_survive_unrelated_insertions(self):
        """Regression: an event's RNG stream is keyed on (round, kind,
        occurrence) — not its position in spec.events — so *prepending*
        an unrelated event must not re-roll the victims of existing
        events."""
        base = tiny("crash-wave")
        # a no-op workload event before the crash: shifts every event's
        # position, changes nothing else (the rate is already 2.0)
        noop = EventSpec(at=2, kind="set_rate", params={"rate": base.traffic.rate})
        extended = base.with_overrides(events=(noop,) + base.events)
        a = run_scenario(base)
        b = run_scenario(extended)
        assert b.event_census["crash"] == a.event_census["crash"]
        # same victims -> same final membership -> identical final
        # configuration digest (position-keyed seeding would re-roll
        # the crash wave and diverge here)
        assert b.config_digest == a.config_digest
