"""The telemetry plane: counters, timers, sketches, traces.

Contract under test (see docs/ARCHITECTURE.md, "Observability"):

* **zero interference** — a run with telemetry enabled is bit-for-bit
  identical to the same run without (fingerprints, reports, completed
  ops), and message traces never leak into payload identity;
* **engine invariance** — the counter census (rounds / sent / dropped /
  envelope types / rule firings) is identical across the full,
  incremental and columnar kernels; the kernel-plane split
  (executed / replayed / dirty peak) is identical between the two
  dirty-set kernels;
* **determinism** — censuses, sampled-trace hop paths and per-window
  drop totals are pure functions of the seeded run.
"""

from __future__ import annotations

import json
import random

import pytest

from repro.experiments.scaling import build_ideal_network
from repro.scenarios import make_scenario, run_scenario
from repro.telemetry import P2Quantile, TelemetryRecorder, render_telemetry
from repro.telemetry.tracing import TraceContext
from repro.traffic.messages import LookupRequest
from repro.traffic.plane import TrafficPlane
from repro.traffic.slo import SLOCollector, percentile
from repro.workloads.initial import build_random_network, corrupt_network

ENGINES = ("full", "incremental", "columnar")


def _run_instrumented(engine: str, n: int = 10, seed: int = 7, rounds: int = 30):
    net = build_random_network(n=n, seed=seed, engine=engine)
    corrupt_network(net, seed + 1)
    rec = net.enable_telemetry()
    net.run(rounds)
    return net, rec


# ----------------------------------------------------------------------
# recorder unit behavior
# ----------------------------------------------------------------------
class TestRecorder:
    def test_on_round_accumulates(self):
        rec = TelemetryRecorder()
        rec.on_round(sent=5, dropped=1, executed=3, replayed=2)
        rec.on_round(sent=7, dropped=0, executed=6, replayed=0)
        census = rec.census()
        assert census["rounds"] == 2
        assert census["sent"] == 12
        assert census["dropped"] == 1
        assert rec.kernel_stats() == {
            "executed": 9,
            "replayed": 2,
            "dirty_peak": 6,
        }

    def test_sampling_interval(self):
        rec = TelemetryRecorder(trace_sample_interval=3)
        assert [op for op in range(10) if rec.sampled(op)] == [0, 3, 6, 9]
        with pytest.raises(ValueError):
            TelemetryRecorder(trace_sample_interval=0)

    def test_trace_cap(self):
        rec = TelemetryRecorder(max_traces=2)
        for op in range(5):
            rec.add_trace(op, "lookup", "ok", ((1, 0, "issue"),))
        assert len(rec.traces) == 2

    def test_dump_jsonl_roundtrip(self, tmp_path):
        rec = TelemetryRecorder()
        rec.messages["Introduce"] += 4
        rec.on_round(sent=4, dropped=0, executed=2, replayed=1)
        rec.add_time("kernel.step", 0.25, calls=2)
        rec.add_trace(8, "lookup", "ok", ((1, 0, "issue"), (2, 1, "ok")))
        path = tmp_path / "telemetry.jsonl"
        rec.dump(path)
        records = [json.loads(line) for line in path.read_text().splitlines()]
        kinds = [r["kind"] for r in records]
        assert kinds.count("census") == 1
        assert kinds.count("kernel") == 1
        assert "timer" in kinds and "trace" in kinds
        census = next(r for r in records if r["kind"] == "census")
        assert census["messages"] == {"Introduce": 4}

    def test_clear(self):
        rec = TelemetryRecorder()
        rec.on_round(sent=1, dropped=0, executed=1, replayed=0)
        rec.add_time("kernel.step", 0.1)
        rec.add_trace(0, "lookup", "ok", ())
        rec.clear()
        assert rec.census()["rounds"] == 0
        assert not rec.timers and not rec.traces


# ----------------------------------------------------------------------
# engine invariance + zero interference
# ----------------------------------------------------------------------
class TestEngineInvariance:
    def test_census_identical_across_all_three_kernels(self):
        censuses = {}
        kernels = {}
        for engine in ENGINES:
            net, rec = _run_instrumented(engine)
            censuses[engine] = net.telemetry_census()
            kernels[engine] = rec.kernel_stats()
        assert censuses["full"] == censuses["incremental"] == censuses["columnar"]
        # the execute/replay split is a dirty-set concept: identical
        # between the two dirty-set kernels, different for full-scan
        # (which executes every peer every round)
        assert kernels["incremental"] == kernels["columnar"]
        assert kernels["full"]["replayed"] == 0

    def test_enabled_run_bit_for_bit_identical_to_disabled(self):
        for engine in ENGINES:
            with_tel, _ = _run_instrumented(engine)
            without = build_random_network(n=10, seed=7, engine=engine)
            corrupt_network(without, 8)
            without.run(30)
            assert with_tel.fingerprint() == without.fingerprint(), engine

    def test_census_deterministic_across_reruns(self):
        _, a = _run_instrumented("columnar")
        _, b = _run_instrumented("columnar")
        assert a.census() == b.census()
        assert a.kernel_stats() == b.kernel_stats()

    def test_phase_timers_populated(self):
        _, rec = _run_instrumented("columnar")
        phases = set(rec.timers)
        assert {"kernel.materialize", "kernel.execute", "kernel.patch"} <= phases
        assert any(p.startswith("rule.") for p in phases)
        hotspots = rec.rule_hotspots(3)
        assert len(hotspots) == 3
        assert all(name.startswith("rule.") for name, _, _ in hotspots)

    def test_disable_telemetry_detaches(self):
        net, rec = _run_instrumented("incremental", rounds=5)
        net.disable_telemetry()
        before = rec.census()["rounds"]
        net.run(5)
        assert rec.census()["rounds"] == before
        with pytest.raises(RuntimeError):
            net.telemetry_census()


# ----------------------------------------------------------------------
# P² streaming percentile sketch
# ----------------------------------------------------------------------
class TestP2Quantile:
    def test_small_samples_exact_nearest_rank(self):
        for q in (0.5, 0.9, 0.95):
            sketch = P2Quantile(q)
            values = [9.0, 1.0, 5.0, 3.0]
            for v in values:
                sketch.add(v)
            assert sketch.value() == percentile(values, q * 100)

    def test_large_sample_accuracy(self):
        rng = random.Random(42)
        values = [rng.lognormvariate(0.0, 1.0) for _ in range(5000)]
        for q in (0.5, 0.95, 0.99):
            sketch = P2Quantile(q)
            for v in values:
                sketch.add(v)
            exact = percentile(values, q * 100)
            assert abs(sketch.value() - exact) / exact < 0.05, q

    def test_empty_returns_none(self):
        assert P2Quantile(0.5).value() is None
        assert len(P2Quantile(0.5)) == 0

    def test_slo_sketch_keys_are_opt_in(self):
        default = SLOCollector(lambda kid: 0)
        assert default.sketches is None
        assert not any("sketch" in k for k in default.summary())
        withs = SLOCollector(lambda kid: 0, sketch_quantiles=(0.5, 0.95))
        assert set(withs.sketches) == {0.5, 0.95}


# ----------------------------------------------------------------------
# causal op tracing
# ----------------------------------------------------------------------
class TestTracing:
    def test_trace_context_extension(self):
        t = TraceContext(op_id=4)
        t2 = t.extended(11, 3, "greedy").extended(12, 4, "ok")
        assert len(t2) == 2
        assert t2.hops == ((11, 3, "greedy"), (12, 4, "ok"))
        assert len(t) == 0  # immutable: extension never mutates

    def test_trace_excluded_from_payload_identity(self):
        base = dict(op="lookup", op_id=1, origin=10, kid=20, ttl=8)
        bare = LookupRequest(**base)
        traced = LookupRequest(**base, trace=TraceContext(op_id=1))
        assert bare == traced
        assert hash(bare) == hash(traced)
        assert bare.canonical() == traced.canonical()

    def test_end_to_end_hop_trace(self):
        net = build_ideal_network(16, seed=3, engine="columnar")
        rec = net.enable_telemetry()
        plane = TrafficPlane(net)
        op_id = plane.lookup("some-key", origin=net.peer_ids[0])
        plane.drain()
        traced = plane.collector.traced()
        assert len(traced) == 1
        comp = traced[0]
        assert comp.op_id == op_id
        hops = comp.trace.hops
        # issue marker + one hop per forward + the terminal verdict
        assert len(hops) == comp.hops + 2
        assert hops[0][2] == "issue"
        assert hops[-1][2] == comp.outcome
        assert all(hops[i][1] <= hops[i + 1][1] for i in range(len(hops) - 1))
        # an identical run without telemetry completes the same op
        twin = build_ideal_network(16, seed=3, engine="columnar")
        tplane = TrafficPlane(twin)
        tplane.lookup("some-key", origin=twin.peer_ids[0])
        tplane.drain()
        assert tplane.collector.completed == plane.collector.completed
        assert twin.fingerprint() == net.fingerprint()
        assert rec is net.telemetry

    def test_sampling_skips_unsampled_ops(self):
        net = build_ideal_network(16, seed=3, engine="incremental")
        net.enable_telemetry(TelemetryRecorder(trace_sample_interval=2))
        plane = TrafficPlane(net)
        for _ in range(4):  # op ids 0..3: only 0 and 2 sampled
            plane.lookup("k", origin=net.peer_ids[0])
        plane.drain()
        assert sorted(c.op_id for c in plane.collector.traced()) == [0, 2]


# ----------------------------------------------------------------------
# scenario integration: drop windows + telemetry segments
# ----------------------------------------------------------------------
class TestScenarioTelemetry:
    def test_dropped_by_window_engine_invariant(self):
        spec = make_scenario("partition-heal", n=16, seed=5)
        reports = [run_scenario(spec, engine=e) for e in ENGINES]
        windows = reports[0].dropped_by_window
        assert all(r.dropped_by_window == windows for r in reports)
        by_label = dict(windows)
        partition = [w for w in by_label if "partition" in w]
        assert partition and by_label[partition[0]] > 0
        assert by_label.get("recovery", 0) == 0

    def test_telemetry_field_excluded_from_comparison(self):
        spec = make_scenario("flash-crowd", n=16, seed=9)
        rec = TelemetryRecorder()
        with_tel = run_scenario(spec, engine="columnar", telemetry=rec)
        without = run_scenario(spec, engine="columnar")
        assert with_tel == without
        assert without.telemetry is None
        assert with_tel.telemetry is not None
        segments = with_tel.telemetry["segments"]
        assert sum(s["rounds"] for s in segments) == with_tel.telemetry["census"]["rounds"]
        assert [s["window"] for s in segments][0] == "start"
        assert rec.traces  # sampled lookups harvested at campaign end
        d = with_tel.to_dict()
        assert d["dropped_by_window"] and d["telemetry"]["census"]["rules"]

    def test_render_telemetry_smoke(self):
        spec = make_scenario("flash-crowd", n=16, seed=9)
        rec = TelemetryRecorder()
        run_scenario(spec, engine="columnar", telemetry=rec)
        text = render_telemetry(rec)
        for needle in ("message census", "rule firings", "phase timers", "hop traces"):
            assert needle in text, needle


# ----------------------------------------------------------------------
# executed-series surface (full-scan engine reports n/a, never -1)
# ----------------------------------------------------------------------
class TestExecutedSeries:
    def test_full_scan_reports_none_not_minus_one(self):
        from repro.experiments.messages import format_messages, run_messages

        full = run_messages(n=8, engine="full")
        inc = run_messages(n=8, engine="incremental")
        assert full.series == inc.series  # message series is invariant
        assert all(e is None for e in full.executed)
        assert full.executed_mean is None
        assert "n/a" in format_messages(full)
        assert all(e is not None and e >= 0 for e in inc.executed)
        assert inc.executed_mean is not None
        assert "-1" not in format_messages(inc)
