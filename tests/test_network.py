"""ReChordNetwork facade: construction, oracle, snapshots, edge cases."""

from __future__ import annotations

import pytest

from repro.core.network import ReChordNetwork, StabilizationReport
from repro.core.noderef import NodeRef
from repro.core.protocol import REF_DEAD, REF_OK, REF_PHANTOM
from repro.graphs.digraph import EdgeKind
from repro.idspace.ring import IdSpace
from tests.conftest import stabilized

SPACE = IdSpace(16)


class TestConstruction:
    def test_add_peer_registers_actor(self):
        net = ReChordNetwork(SPACE)
        net.add_peer(100)
        assert net.scheduler.has_actor(100)
        assert net.peer_ids == [100]

    def test_duplicate_peer(self):
        net = ReChordNetwork(SPACE)
        net.add_peer(100)
        with pytest.raises(ValueError):
            net.add_peer(100)

    def test_invalid_id(self):
        net = ReChordNetwork(SPACE)
        with pytest.raises(ValueError):
            net.add_peer(SPACE.size)

    def test_initial_edge_kinds(self):
        net = ReChordNetwork(SPACE)
        net.add_peer(100)
        net.add_peer(200)
        net.add_initial_edge(net.ref(100), net.ref(200), EdgeKind.UNMARKED)
        net.add_initial_edge(net.ref(100), net.ref(200), EdgeKind.RING)
        net.add_initial_edge(net.ref(100), net.ref(200), EdgeKind.CONNECTION)
        node = net.peers[100].state.nodes[0]
        target = net.ref(200)
        assert target in node.nu and target in node.nr and target in node.nc

    def test_initial_edge_rejects_pointer_kind(self):
        net = ReChordNetwork(SPACE)
        net.add_peer(100)
        net.add_peer(200)
        with pytest.raises(ValueError):
            net.add_initial_edge(net.ref(100), net.ref(200), EdgeKind.REAL_POINTER)

    def test_initial_edge_unknown_peer(self):
        net = ReChordNetwork(SPACE)
        with pytest.raises(KeyError):
            net.add_initial_edge(net.ref(1), net.ref(2))

    def test_initial_self_edge_ignored(self):
        net = ReChordNetwork(SPACE)
        net.add_peer(100)
        net.add_initial_edge(net.ref(100), net.ref(100))
        assert len(net.peers[100].state.nodes[0].nu) == 0

    def test_ensure_virtual_creates_level(self):
        net = ReChordNetwork(SPACE)
        net.add_peer(100)
        ref = net.ensure_virtual(100, 3)
        assert ref.level == 3
        assert 3 in net.peers[100].state.nodes


class TestOracle:
    def test_verdicts(self):
        net = ReChordNetwork(SPACE)
        net.add_peer(100)
        net.ensure_virtual(100, 2)
        net.run_round()  # snapshot taken
        assert net._ref_alive(net.ref(100)) == REF_OK
        assert net._ref_alive(net.ref(100, 2)) == REF_OK
        assert net._ref_alive(net.ref(200)) == REF_DEAD

    def test_phantom_verdict(self):
        net = ReChordNetwork(SPACE)
        net.add_peer(100)
        net.run_round()
        # level 9 is not simulated in the snapshot
        assert net._ref_alive(net.ref(100, 9)) == REF_PHANTOM

    def test_oracle_uses_round_start_snapshot(self):
        """Levels created mid-round are invisible to the oracle until
        the next round: peer-order independence."""
        net = ReChordNetwork(SPACE)
        net.add_peer(100)
        net.run_round()
        net.peers[100].state.ensure_level(7)  # simulate mid-round creation
        assert net._ref_alive(net.ref(100, 7)) == REF_PHANTOM
        net.run_round()
        assert net._ref_alive(net.ref(100, 7)) == REF_OK


class TestSnapshotsAndReports:
    def test_snapshot_contains_all_kinds(self):
        net = stabilized(8, seed=0)
        g = net.snapshot()
        kinds = {k for _, _, k in g.edges()}
        assert EdgeKind.UNMARKED in kinds and EdgeKind.RING in kinds

    def test_projection_endpoints_are_live_real_peers(self):
        net = stabilized(8, seed=1)
        for u, v in net.rechord_projection():
            assert u in net.peers and v in net.peers and u != v

    def test_report_fields(self):
        net = stabilized(6, seed=2)
        report = net.run_until_stable(max_rounds=10)
        assert isinstance(report, StabilizationReport)
        assert report.rounds_to_stable == 0  # already stable
        assert report.rounds_executed == 1

    def test_unstable_raises(self):
        from repro.workloads.initial import build_random_network

        net = build_random_network(n=10, seed=3)
        with pytest.raises(RuntimeError):
            net.run_until_stable(max_rounds=1)

    def test_counters_accumulate(self):
        net = stabilized(6, seed=4)
        counters = net.counters()
        assert counters.total() > 0
        assert counters.get("rule4_forward") >= 0

    def test_fingerprint_sensitive_to_pending(self):
        net = stabilized(6, seed=5)
        fp = net.fingerprint()
        # inject a message: the configuration differs
        from repro.core.events import EdgeAdd, KIND_UNMARKED
        from repro.netsim.messages import Envelope

        target = net.peers[net.peer_ids[0]].state.real_ref
        endpoint = NodeRef.real(net.peer_ids[-1])
        net.scheduler.post(Envelope(0, target.owner, EdgeAdd(target, endpoint, KIND_UNMARKED)))
        assert net.fingerprint() != fp


class TestActorOrderIndependence:
    """Peers read only their own state, so scheduler iteration order is
    unobservable — a core soundness property of the implementation."""

    def test_insertion_order_does_not_change_outcome(self):
        from repro.workloads.initial import build_random_network

        a = build_random_network(n=9, seed=6)
        ra = a.run_until_stable(max_rounds=5000)

        # rebuild the same initial state but register peers in reverse
        b = build_random_network(n=9, seed=6)
        rebuilt = ReChordNetwork(b.space)
        for pid in reversed(b.peer_ids):
            rebuilt.add_peer(pid)
        for pid in b.peer_ids:
            src_state = b.peers[pid].state
            for level, node in src_state.nodes.items():
                for t in node.nu:
                    rebuilt.add_initial_edge(rebuilt.ref(pid, level), t)
        rb = rebuilt.run_until_stable(max_rounds=5000)
        assert ra.rounds_to_stable == rb.rounds_to_stable
        assert rebuilt.fingerprint() == a.fingerprint()
