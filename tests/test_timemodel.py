"""The pluggable time model: delivery models, activation daemons, and
the exactness of the simulation kernels under non-unit latency.

Four layers of guarantees:

* **model layer** — delivery models and daemons are deterministic pure
  functions of their seeds and inputs, round-trip through spec dicts,
  and respect their bounds;
* **semantics** — a delay-``k`` send is consumed exactly ``k`` rounds
  later, matured deliveries respect the drop filter, and scheduled
  envelopes are part of the configuration (fingerprints differ by
  maturity);
* **engine equivalence** — the dirty-set kernel stays round-for-round
  equivalent to the full-scan kernel under latency models, daemons, and
  the combined adversity of latency + partition + traffic + churn in
  one seeded run;
* **exact change flag** — ``changed_last_round`` equals a genuine
  full-fingerprint comparison at every boundary while non-unit delivery
  is in effect (the token-mode pending comparison).
"""

from __future__ import annotations

import random

import pytest

from repro.dht.lookup import ReChordRouter
from repro.dht.storage import KeyValueStore
from repro.netsim.messages import Envelope
from repro.netsim.scheduler import SynchronousScheduler
from repro.netsim.timemodel import (
    DAEMON_KINDS,
    DELIVERY_KINDS,
    TimeModel,
    make_daemon,
    make_delivery_model,
    stable_u64,
)
from repro.traffic import TrafficPlane, WorkloadGenerator
from repro.traffic.messages import OP_GET, OP_LOOKUP, OP_PUT
from repro.workloads.initial import build_random_network, random_peer_ids

#: non-unit delivery specs exercised throughout
LATENCY_MODELS = (
    {"kind": "constant", "delay": 3},
    {"kind": "slow_links", "fraction": 0.4, "delay": 3, "seed": 11},
    {"kind": "lognormal", "sigma": 0.9, "cap": 5, "seed": 3},
    {"kind": "regions", "regions": 2, "delay": 4, "seed": 5},
    {"kind": "reorder", "bound": 4, "seed": 7},
)


class Recorder:
    """Generic actor: records per-round inboxes, emits nothing."""

    def __init__(self):
        self.seen = []

    def step(self, inbox, ctx):
        self.seen.append([env.payload for env in inbox])


class TestModels:
    @pytest.mark.parametrize("spec", [{"kind": k} for k in sorted(DELIVERY_KINDS)])
    def test_delivery_spec_round_trip(self, spec):
        model = make_delivery_model(spec)
        again = make_delivery_model(model.to_dict())
        assert again.to_dict() == model.to_dict()

    @pytest.mark.parametrize("spec", [{"kind": k} for k in sorted(DAEMON_KINDS)])
    def test_daemon_spec_round_trip(self, spec):
        daemon = make_daemon(spec)
        assert make_daemon(daemon.to_dict()).to_dict() == daemon.to_dict()

    def test_unknown_kinds_rejected(self):
        with pytest.raises(ValueError, match="unknown delivery model"):
            make_delivery_model("warp")
        with pytest.raises(ValueError, match="unknown daemon"):
            make_daemon("warp")

    @pytest.mark.parametrize("spec", LATENCY_MODELS)
    def test_delays_deterministic_within_bound_and_self_links_unit(self, spec):
        model = make_delivery_model(spec)
        fresh = make_delivery_model(spec)
        bound = model.delay_bound()
        assert bound >= 2 and not model.is_unit
        for s in range(6):
            for t in range(6):
                env = Envelope(s, t, ("payload", s, t))
                d = model.delay(env)
                assert 1 <= d <= bound
                assert d == model.delay(env), "delay not deterministic"
                assert d == fresh.delay(env), "delay depends on instance state"
                if s == t:
                    assert d == 1, "self-links must never be wire-delayed"

    def test_reorder_actually_reorders_within_bound(self):
        model = make_delivery_model({"kind": "reorder", "bound": 4, "seed": 1})
        delays = {
            model.delay(Envelope(1, 2, ("payload", i))) for i in range(32)
        }
        assert len(delays) > 1, "per-envelope jitter never varied"
        assert max(delays) <= 4

    def test_stable_u64_is_process_stable(self):
        # frozen value: a change here breaks every seeded baseline
        assert stable_u64("probe", 1) == stable_u64("probe", 1)
        assert stable_u64("probe", 1) != stable_u64("probe", 2)

    def test_constant_delay_one_counts_as_unit(self):
        assert make_delivery_model({"kind": "constant", "delay": 1}).is_unit
        assert make_daemon({"kind": "partial", "p": 1.0}).is_full
        assert make_daemon({"kind": "round_robin", "groups": 1}).is_full

    def test_time_model_dict_round_trip(self):
        model = TimeModel({"kind": "constant", "delay": 2}, {"kind": "partial", "p": 0.5})
        again = TimeModel.from_dict(model.to_dict())
        assert again.to_dict() == model.to_dict()
        assert not model.is_unit and TimeModel.unit().is_unit


class TestDaemons:
    KEYS = list(range(10))

    def test_round_robin_is_exactly_fair(self):
        daemon = make_daemon({"kind": "round_robin", "groups": 3})
        counts = {k: 0 for k in self.KEYS}
        for r in range(9):
            for k in daemon.select(r, self.KEYS):
                counts[k] += 1
        assert all(c == 3 for c in counts.values())

    def test_unfair_bounded_activates_everyone_once_per_window(self):
        daemon = make_daemon({"kind": "unfair", "bound": 4, "seed": 2})
        for window in range(3):
            seen = set()
            for r in range(4 * window, 4 * window + 4):
                seen |= daemon.select(r, self.KEYS)
            assert seen == set(self.KEYS)

    def test_partial_selection_deterministic(self):
        daemon = make_daemon({"kind": "partial", "p": 0.5, "seed": 9})
        again = make_daemon({"kind": "partial", "p": 0.5, "seed": 9})
        for r in range(8):
            assert daemon.select(r, self.KEYS) == again.select(r, self.KEYS)

    def test_scheduler_consults_daemon(self):
        sched = SynchronousScheduler(activity_tracking=True)
        actors = {k: Recorder() for k in range(4)}
        for k, actor in actors.items():
            sched.add_actor(k, actor)
        sched.set_daemon({"kind": "round_robin", "groups": 2})
        sched.run_round()
        sched.run_round()
        assert sched.active_last_round is not None
        stepped = {k for k, a in actors.items() if a.seen}
        assert stepped == set(actors), "round robin must reach everyone in a cycle"
        assert all(len(a.seen) == 1 for a in actors.values())


class TestDeliverySemantics:
    def build(self, model):
        sched = SynchronousScheduler(activity_tracking=True)
        sink = Recorder()
        sched.add_actor("sink", sink)
        sched.add_actor("src", Recorder())
        sched.set_delivery_model(model)
        return sched, sink

    @pytest.mark.parametrize("delay", [2, 4])
    def test_post_consumed_exactly_delay_rounds_later(self, delay):
        sched, sink = self.build({"kind": "constant", "delay": delay})
        assert sched.post(Envelope("src", "sink", "late"))
        assert sched.pending_messages() == 1
        for r in range(delay - 1):
            sched.run_round()
            assert sink.seen[r] == [], f"arrived early at round {r}"
        sched.run_round()
        assert sink.seen[delay - 1] == ["late"]

    def test_matured_delivery_respects_drop_filter(self):
        sched, sink = self.build({"kind": "constant", "delay": 3})
        sched.post(Envelope("src", "sink", "doomed"))
        # the partition arrives while the message is on the wire
        sched.run_round()
        sched.set_drop_filter(lambda env: env.target == "sink")
        sched.run_round()
        sched.run_round()
        assert all(not seen for seen in sink.seen)
        assert sched.pending_messages() == 0

    def test_matured_delivery_to_removed_actor_dropped(self):
        sched, sink = self.build({"kind": "constant", "delay": 3})
        sched.post(Envelope("src", "sink", "late"))
        sched.run_round()
        sched.remove_actor("sink")
        before = sched.dropped_last_round
        sched.run_round()
        sched.run_round()
        assert sched.pending_messages() == 0

    def test_scheduled_envelopes_are_configuration(self):
        """Two networks differing only in message maturity must
        fingerprint different (the remaining-delay component)."""
        a = build_random_network(n=6, seed=2)
        b = build_random_network(n=6, seed=2)
        for net in (a, b):
            net.set_delivery_model({"kind": "constant", "delay": 4})
        a.run_round()
        assert a.fingerprint() != b.fingerprint()
        assert a.scheduler.future_pending(), "no delayed envelope in flight"
        b.run_round()
        assert a.fingerprint() == b.fingerprint()

    def test_unit_time_model_is_bit_identical_to_default(self):
        a = build_random_network(n=8, seed=3)
        b = build_random_network(n=8, seed=3)
        b.set_delivery_model("unit")
        b.set_daemon("full")
        for _ in range(12):
            a.run_round()
            b.run_round()
            assert a.fingerprint() == b.fingerprint()
            assert a.incremental_fingerprint() == b.incremental_fingerprint()


class TestEngineEquivalenceUnderLatency:
    """tests/test_engine_equivalence.py extended to non-unit time."""

    @pytest.mark.parametrize("spec", LATENCY_MODELS, ids=lambda s: s["kind"])
    def test_lockstep_fingerprints_and_reports(self, spec):
        a = build_random_network(n=9, seed=6, incremental=True)
        b = build_random_network(n=9, seed=6, incremental=False)
        a.set_delivery_model(spec)
        b.set_delivery_model(spec)
        for r in range(40):
            a.run_round()
            b.run_round()
            assert a.fingerprint() == b.fingerprint(), f"diverged at round {r}"
            assert a.counters().fires == b.counters().fires, f"counters at {r}"
        ra = a.run_until_stable(max_rounds=6000)
        rb = b.run_until_stable(max_rounds=6000)
        assert ra == rb
        assert a.matches_ideal() and b.matches_ideal()

    @pytest.mark.parametrize(
        "daemon",
        [
            {"kind": "partial", "p": 0.6, "seed": 3},
            {"kind": "round_robin", "groups": 3},
            {"kind": "unfair", "bound": 3, "seed": 1},
        ],
        ids=lambda d: d["kind"],
    )
    def test_daemon_lockstep_and_recovery(self, daemon):
        a = build_random_network(n=9, seed=8, incremental=True)
        b = build_random_network(n=9, seed=8, incremental=False)
        a.set_daemon(daemon)
        b.set_daemon(daemon)
        for r in range(50):
            a.run_round()
            b.run_round()
            assert a.fingerprint() == b.fingerprint(), f"diverged at round {r}"
        a.set_daemon("full")
        b.set_daemon("full")
        ra = a.run_until_stable(max_rounds=6000)
        rb = b.run_until_stable(max_rounds=6000)
        assert ra == rb
        assert a.matches_ideal()

    def test_change_flag_exact_under_latency(self):
        """The O(active)+O(pending) change flag equals a genuine full
        fingerprint comparison at every boundary in token mode."""
        net = build_random_network(n=8, seed=4, incremental=True)
        net.set_delivery_model({"kind": "reorder", "bound": 3, "seed": 5})
        prev = net.fingerprint()
        for r in range(80):
            net.run_round()
            cur = net.fingerprint()
            assert net.scheduler.changed_last_round == (cur != prev), f"round {r}"
            prev = cur

    def test_change_flag_exact_through_model_switches(self):
        """Entering and leaving token mode (non-unit -> unit) keeps the
        flag exact while the delivery queue drains."""
        net = build_random_network(n=8, seed=14, incremental=True)
        net.run_until_stable(max_rounds=4000)
        prev = net.fingerprint()
        net.set_delivery_model({"kind": "constant", "delay": 4})
        for r in range(30):
            if r == 15:
                net.set_delivery_model("unit")
            net.run_round()
            cur = net.fingerprint()
            assert net.scheduler.changed_last_round == (cur != prev), f"round {r}"
            prev = cur
        assert not net.scheduler.future_pending()

    def test_combined_adversity_one_seeded_run(self):
        """The satellite: incremental-vs-full equivalence with a random
        latency model + drop-filter partition + live KV traffic + churn
        flowing in one seeded run."""

        def build(incremental):
            net = build_random_network(n=12, seed=9, incremental=incremental)
            net.run_until_stable(max_rounds=5000)
            net.set_delivery_model({"kind": "reorder", "bound": 3, "seed": 21})
            kv = KeyValueStore(ReChordRouter(net))
            plane = TrafficPlane(net, store=kv)
            WorkloadGenerator(
                plane,
                rate=1.5,
                op_mix=((OP_LOOKUP, 0.5), (OP_PUT, 0.3), (OP_GET, 0.2)),
                seed=9,
            )
            return net, plane

        a_net, a_plane = build(True)
        b_net, b_plane = build(False)
        join_rng = random.Random(77)
        for r in range(48):
            if r == 8:
                victim = a_net.peer_ids[4]
                a_net.crash(victim)
                b_net.crash(victim)
            if r == 14:
                ids = a_net.peer_ids
                side = frozenset(ids[: len(ids) // 2])
                flt = lambda env, _s=side: (env.sender in _s) != (env.target in _s)
                a_net.scheduler.set_drop_filter(flt)
                b_net.scheduler.set_drop_filter(flt)
            if r == 26:
                a_net.scheduler.set_drop_filter(None)
                b_net.scheduler.set_drop_filter(None)
            if r == 30:
                new_id = random_peer_ids(1, join_rng, a_net.space)[0]
                while new_id in a_net.peers:
                    new_id = random_peer_ids(1, join_rng, a_net.space)[0]
                a_net.join(new_id, a_net.peer_ids[0])
                b_net.join(new_id, b_net.peer_ids[0])
            a_plane.run_round()
            b_plane.run_round()
            assert a_net.fingerprint() == b_net.fingerprint(), f"diverged at round {r}"
            assert a_net.counters().fires == b_net.counters().fires, f"counters at {r}"
        assert a_plane.collector.summary() == b_plane.collector.summary()
        assert a_plane.collector.summary()["wire_delay_mean"] > 0


class TestTrafficUnderLatency:
    def test_deadline_scales_with_delay_bound(self):
        from repro.experiments.scaling import build_ideal_network

        net = build_ideal_network(8, 1)
        plane = TrafficPlane(net, default_deadline=16)
        assert plane.deadline_for() == 16
        net.set_delivery_model({"kind": "constant", "delay": 3})
        assert plane.deadline_for() == 48

    def test_lookups_complete_late_but_complete(self):
        from repro.experiments.scaling import build_ideal_network

        net = build_ideal_network(16, 2)
        net.set_delivery_model({"kind": "constant", "delay": 3})
        plane = TrafficPlane(net)
        for i in range(6):
            plane.lookup(f"slow{i}", origin=net.peer_ids[i % len(net.peer_ids)])
        plane.drain(max_rounds=512)
        summary = plane.collector.summary()
        assert summary["outcomes"].get("ok", 0) == 6
        forwarded = [c for c in plane.collector.completed if c.hops]
        if forwarded:
            assert summary["wire_delay_max"] > 0


class TestScenarioIntegration:
    def test_spec_level_time_model_round_trips_and_runs(self):
        from repro.scenarios import ScenarioSpec, run_scenario

        spec = ScenarioSpec(
            name="wan",
            n=10,
            seed=4,
            rounds=8,
            latency={"kind": "regions", "regions": 2, "delay": 3, "seed": 1},
            daemon={"kind": "partial", "p": 0.9, "seed": 2},
            max_recovery_rounds=60,
        )
        assert ScenarioSpec.from_json(spec.to_json()) == spec
        a = run_scenario(spec, incremental=True)
        b = run_scenario(spec, incremental=False)
        assert a == b

    def test_invalid_spec_models_fail_loudly(self):
        from repro.scenarios import ScenarioSpec

        with pytest.raises(ValueError, match="unknown delivery model"):
            ScenarioSpec(name="x", n=8, seed=1, rounds=4, latency={"kind": "warp"})
        with pytest.raises(ValueError, match="unknown daemon"):
            ScenarioSpec(name="x", n=8, seed=1, rounds=4, daemon={"kind": "warp"})

    def test_latency_scenarios_report_wire_delay(self):
        from repro.scenarios import make_scenario, run_scenario

        report = run_scenario(make_scenario("latency-partition", n=12, seed=5))
        assert report.slo["wire_delay_mean"] > 0
        assert report.stable and report.ideal

    def test_cli_latency_and_daemon_flags(self, capsys):
        from repro.cli import main

        assert (
            main(
                [
                    "scenario",
                    "seam-crash",
                    "--n",
                    "8",
                    "--seed",
                    "3",
                    "--latency-model",
                    "constant:delay=2",
                    "--daemon",
                    "full",
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "Scenario: seam-crash" in out

    def test_cli_list_mentions_time_model_flags(self, capsys):
        from repro.cli import main

        assert main(["scenario", "--list"]) == 0
        out = capsys.readouterr().out
        assert "--latency-model" in out and "--daemon" in out
        assert "reorder" in out and "round_robin" in out

    def test_cli_model_arg_parser(self):
        from repro.cli import _parse_model_arg

        assert _parse_model_arg("unit") == {"kind": "unit"}
        assert _parse_model_arg("constant:delay=3") == {"kind": "constant", "delay": 3}
        assert _parse_model_arg("partial:p=0.5,seed=7") == {
            "kind": "partial",
            "p": 0.5,
            "seed": 7,
        }
        assert _parse_model_arg('{"kind": "reorder", "bound": 4}') == {
            "kind": "reorder",
            "bound": 4,
        }


class TestSeededDelayPinning:
    """Regression pins for the seeded delay draws (ISSUE-6 audit).

    Every seed path in :mod:`repro.netsim.timemodel` must flow through
    :func:`stable_u64` (BLAKE2 of canonical reprs) — never through the
    process-randomized builtin ``hash`` and never through an
    iteration-order-dependent structure.  These pins were computed once
    and hold on every machine, Python build, and ``PYTHONHASHSEED``; a
    failure here means a seed path regressed to something process-local.
    """

    #: one pinned cross-peer delay per non-trivial delivery model:
    #: (spec, sender, target, expected delay)
    PINS = [
        ({"kind": "constant", "delay": 3}, 3, 11, 3),
        ({"kind": "slow_links", "fraction": 0.5, "delay": 4, "seed": 7}, 3, 11, 4),
        ({"kind": "slow_links", "fraction": 0.5, "delay": 4, "seed": 7}, 11, 3, 1),
        ({"kind": "lognormal", "mu": 0.0, "sigma": 0.8, "cap": 8, "seed": 7}, 3, 11, 2),
        ({"kind": "regions", "regions": 3, "delay": 4, "seed": 7}, 0, 11, 4),
        ({"kind": "regions", "regions": 3, "delay": 4, "seed": 7}, 1, 11, 1),
        ({"kind": "reorder", "bound": 5, "seed": 7}, 3, 11, 3),
        ({"kind": "cross_cut", "side_a": [3], "delay": 5}, 3, 11, 5),
    ]

    @pytest.mark.parametrize("spec,sender,target,expected", PINS)
    def test_pinned_delay(self, spec, sender, target, expected):
        model = make_delivery_model(dict(spec))
        env = Envelope(sender, target, "probe")
        assert model.delay(env) == expected
        # memoized draws must be stable across repeated queries
        assert model.delay(env) == expected

    def test_stable_u64_pinned(self):
        # the primitive itself: BLAKE2b-8 of 0x1f-joined reprs
        assert stable_u64("lognormal", 7, 3, 11) == 0xB811756A136FE1C3

    def test_fresh_model_instances_agree(self):
        """Per-link memos are caches, not state: a fresh instance draws
        the same delays (nothing depends on query order)."""
        for spec in LATENCY_MODELS:
            a = make_delivery_model(dict(spec))
            b = make_delivery_model(dict(spec))
            pairs = [(1, 2), (2, 1), (5, 9), (17, 4), (4, 17)]
            # query b in reverse order: memo fill order must not matter
            fwd = [a.delay(Envelope(s, t, "x")) for s, t in pairs]
            rev = [b.delay(Envelope(s, t, "x")) for s, t in reversed(pairs)]
            assert fwd == list(reversed(rev)), spec
