"""Shared fixtures and helpers for the test suite."""

from __future__ import annotations

from typing import Any, Dict, List, Tuple

import pytest
from hypothesis import settings

from repro.core.network import ReChordNetwork
from repro.core.protocol import REF_OK
from repro.core.rules import RuleConfig
from repro.core.state import PeerState
from repro.idspace.ring import IdSpace

# Keep property-based tests fast and deterministic in CI.
settings.register_profile("suite", max_examples=30, deadline=None, derandomize=True)
settings.load_profile("suite")


@pytest.fixture
def space16() -> IdSpace:
    """A tiny 16-bit id space for hand-computed cases."""
    return IdSpace(16)


@pytest.fixture
def space8() -> IdSpace:
    """An 8-bit id space (256 positions) for exhaustive checks."""
    return IdSpace(8)


class SendRecorder:
    """Stand-in for :class:`RoundContext` that records sends.

    Used by the per-rule unit tests to execute a single peer's rules in
    isolation and inspect the delayed assignments it would emit.
    """

    def __init__(self, round_no: int = 0, alive: Any = None) -> None:
        self.round_no = round_no
        self.sent: List[Tuple[int, Any]] = []
        self._alive = alive if alive is not None else (lambda key: True)

    def send(self, target: int, payload: Any) -> None:
        self.sent.append((target, payload))

    def actor_exists(self, key: int) -> bool:
        return self._alive(key)

    def payloads_to(self, target: int) -> List[Any]:
        """All payloads addressed to one peer."""
        return [p for t, p in self.sent if t == target]


@pytest.fixture
def recorder() -> SendRecorder:
    """A fresh send recorder."""
    return SendRecorder()


def make_peer(space: IdSpace, peer_id: int, config: RuleConfig | None = None):
    """A standalone ReChordPeer whose liveness oracle says everything is OK."""
    from repro.core.protocol import ReChordPeer

    state = PeerState(peer_id, space)
    return ReChordPeer(state, config or RuleConfig(), lambda ref: REF_OK)


def stabilized(n: int, seed: int, **kw) -> ReChordNetwork:
    """A stabilized random network (asserts it reaches the ideal state)."""
    from repro.workloads.initial import build_random_network

    net = build_random_network(n=n, seed=seed, **kw)
    net.run_until_stable(max_rounds=5000)
    assert net.matches_ideal(), net.ideal_mismatches(limit=5)
    return net
