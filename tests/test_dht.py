"""DHT layer: routing over the stable overlay, replicated storage."""

from __future__ import annotations

import math
import random

import pytest

from repro.chord.routing import RouteResult, RoutingError, route_greedy
from repro.core.ideal import chord_successor
from repro.dht.lookup import ReChordRouter, StaleViewError
from repro.dht.storage import KeyNotFound, KeyValueStore
from repro.idspace.keys import key_id
from repro.workloads.initial import random_peer_ids
from tests.conftest import stabilized


@pytest.fixture(scope="module")
def net20():
    return stabilized(20, seed=100)


@pytest.fixture()
def router(net20):
    return ReChordRouter(net20)


class TestRouter:
    def test_routes_reach_responsible_peer(self, router, net20):
        rng = random.Random(0)
        for _ in range(25):
            start = rng.choice(net20.peer_ids)
            key = rng.randrange(net20.space.size)
            res = router.route_id(start, key)
            assert res.owner == chord_successor(net20.space, net20.peer_ids, key)
            assert res.path[0] == start and res.path[-1] == res.owner

    def test_hops_logarithmic(self, router, net20):
        rng = random.Random(1)
        hops = [
            router.route_id(rng.choice(net20.peer_ids), rng.randrange(net20.space.size)).hops
            for _ in range(40)
        ]
        bound = 3 * math.log2(len(net20.peer_ids)) + 3
        assert max(hops) <= bound

    def test_path_makes_clockwise_progress(self, router, net20):
        rng = random.Random(2)
        space = net20.space
        for _ in range(10):
            start = rng.choice(net20.peer_ids)
            key = rng.randrange(space.size)
            res = router.route_id(start, key)
            distances = [space.distance_cw(p, key) for p in res.path]
            # every hop strictly decreases the clockwise distance, except
            # the terminal hop onto the owner (the successor *of* the key,
            # which sits just past it)
            for a, b in zip(distances[:-1], distances[1:-1]):
                assert b < a

    def test_route_key_by_name(self, router, net20):
        res = router.route_key(net20.peer_ids[0], "hello-world")
        kid = key_id("hello-world", net20.space)
        assert res.owner == chord_successor(net20.space, net20.peer_ids, kid)

    def test_owner_of(self, router, net20):
        owner = router.owner_of("abc")
        assert owner in net20.peer_ids

    def test_neighbors_are_chord_view(self, router, net20):
        """Each peer's view must contain its ring successor."""
        ids = sorted(net20.peer_ids)
        for i, u in enumerate(ids):
            succ = ids[(i + 1) % len(ids)]
            assert succ in router.neighbors(u)


class TestRouteGreedyEdgeCases:
    def test_zero_hops_when_start_owns(self, net20):
        space = net20.space
        start = net20.peer_ids[0]
        res = route_greedy(space, net20.peer_ids, lambda u: set(), start, start)
        assert res.owner == start and res.hops == 0

    def test_dead_end_raises(self, net20):
        space = net20.space
        start = net20.peer_ids[0]
        other = net20.peer_ids[1]
        key = (other + 1) % space.size
        owner = chord_successor(space, net20.peer_ids, key)
        if owner == start:
            key = (start + 1) % space.size
        with pytest.raises(RoutingError):
            route_greedy(space, net20.peer_ids, lambda u: set(), start, key)


class TestKeyValueStore:
    def test_put_get_round_trip(self, router, net20):
        store = KeyValueStore(router)
        rng = random.Random(3)
        for i in range(40):
            store.put(f"k{i}", i, via=rng.choice(net20.peer_ids))
        for i in range(40):
            assert store.get(f"k{i}", via=rng.choice(net20.peer_ids)) == i

    def test_get_missing_raises(self, router):
        store = KeyValueStore(router)
        with pytest.raises(KeyNotFound):
            store.get("never-stored")

    def test_delete(self, router):
        store = KeyValueStore(router)
        store.put("x", 1)
        assert store.delete("x")
        assert not store.delete("x")
        with pytest.raises(KeyNotFound):
            store.get("x")

    def test_replication_factor_bounds(self, router):
        with pytest.raises(ValueError):
            KeyValueStore(router, replication=0)

    def test_replicas_on_distinct_ring_successors(self, router, net20):
        store = KeyValueStore(router, replication=3)
        store.put("replicated", 42)
        kid = key_id("replicated", net20.space)
        replicas = store.replica_peers(kid)
        assert len(set(replicas)) == 3
        for pid in replicas:
            assert kid in store.keys_at(pid)

    def test_placements_count(self, router):
        store = KeyValueStore(router, replication=2)
        for i in range(10):
            store.put(f"p{i}", i)
        assert store.total_placements() == 20

    def test_stats_recorded(self, router, net20):
        store = KeyValueStore(router)
        store.put("a", 1, via=net20.peer_ids[0])
        store.get("a", via=net20.peer_ids[-1])
        assert store.stats.puts == 1 and store.stats.gets == 1
        assert len(store.stats.hop_samples) == 2

    def test_load_per_peer_sums_to_placements(self, router):
        store = KeyValueStore(router, replication=2)
        for i in range(15):
            store.put(f"q{i}", i)
        assert sum(store.load_per_peer().values()) == store.total_placements()


class TestRouteGreedyHardening:
    """Loop detection and machine-readable failure kinds."""

    @staticmethod
    def _ring_with_back_edge(net):
        """A corrupt view: everyone points only *backwards* except one
        forward edge, forming a cycle that never reaches most keys."""
        ids = sorted(net.peer_ids)
        views = {}
        for i, u in enumerate(ids):
            views[u] = {ids[(i + 1) % len(ids)], ids[(i - 1) % len(ids)]}
        return views

    def test_loop_detected_before_hop_limit(self, net20):
        """Two peers pointing only at each other loop; the seen-set must
        catch it in O(cycle) hops, not after max_hops."""
        space = net20.space
        ids = sorted(net20.peer_ids)
        a, b = ids[0], ids[1]
        views = {a: {b}, b: {a}}
        key = (ids[2] + 1) % space.size
        owner = chord_successor(space, net20.peer_ids, key)
        if owner in (a, b):
            key = (ids[3] + 1) % space.size
        res = route_greedy(
            space, net20.peer_ids, lambda u: views[u], a, key, max_hops=500, strict=False
        )
        assert res.status == "loop"
        assert not res.ok
        assert res.hops < 10

    def test_loop_raises_in_strict_mode_with_kind(self, net20):
        space = net20.space
        ids = sorted(net20.peer_ids)
        a, b = ids[0], ids[1]
        views = {a: {b}, b: {a}}
        key = (ids[2] + 1) % space.size
        if chord_successor(space, net20.peer_ids, key) in (a, b):
            key = (ids[3] + 1) % space.size
        with pytest.raises(RoutingError) as exc:
            route_greedy(space, net20.peer_ids, lambda u: views[u], a, key)
        assert exc.value.kind == "loop"
        assert exc.value.result is not None
        assert exc.value.result.status == "loop"

    def test_dead_end_surfaced_nonstrict(self, net20):
        space = net20.space
        start = net20.peer_ids[0]
        key = (net20.peer_ids[1] + 1) % space.size
        if chord_successor(space, net20.peer_ids, key) == start:
            key = (start + 1) % space.size
        res = route_greedy(space, net20.peer_ids, lambda u: set(), start, key, strict=False)
        assert res.status == "dead_end"
        assert res.owner == start  # last peer reached
        assert res.path == (start,)

    def test_exact_max_hops_arrival_is_success(self):
        """Reaching the owner on the max_hops-th hop is a success, not a
        hop_limit failure (boundary regression)."""
        from repro.idspace.ring import IdSpace

        space = IdSpace(8)
        ids = [10, 20, 30, 40, 50]
        views = {10: {20}, 20: {30}, 30: {40}, 40: {50}, 50: {10}}
        res = route_greedy(space, ids, lambda u: views[u], 10, 45, max_hops=4, strict=False)
        assert res.ok and res.owner == 50 and res.hops == 4
        with pytest.raises(RoutingError) as exc:
            route_greedy(space, ids, lambda u: views[u], 10, 45, max_hops=3)
        assert exc.value.kind == "hop_limit"

    def test_ok_status_on_success(self, router, net20):
        res = router.route_id(net20.peer_ids[0], net20.peer_ids[-1])
        assert res.status == "ok" and res.ok

    def test_default_route_result_is_ok(self):
        assert RouteResult(1, 0, (1,)).ok


class TestRouterStaleness:
    """The version-keyed view cache (staleness footgun fix)."""

    def test_auto_mode_survives_churn(self):
        net = stabilized(12, seed=103)
        router = ReChordRouter(net)
        victim = net.peer_ids[4]
        net.crash(victim)
        net.run_until_stable(max_rounds=5000)
        assert router.is_stale()
        rng = random.Random(7)
        for _ in range(20):
            res = router.route_id(rng.choice(net.peer_ids), rng.randrange(net.space.size))
            assert res.ok
            assert victim not in res.path  # never routed through the dead peer
        assert not router.is_stale()

    def test_strict_mode_raises_on_stale_view(self):
        net = stabilized(8, seed=104)
        router = ReChordRouter(net, mode="strict")
        router.route_id(net.peer_ids[0], net.peer_ids[1])  # fresh: fine
        net.crash(net.peer_ids[3])
        with pytest.raises(StaleViewError):
            router.route_id(net.peer_ids[0], net.peer_ids[1])
        router.refresh()
        net.run_until_stable(max_rounds=5000)
        with pytest.raises(StaleViewError):  # rounds also invalidate
            router.route_id(net.peer_ids[0], net.peer_ids[1])

    def test_pin_mode_keeps_the_snapshot(self):
        net = stabilized(8, seed=105)
        router = ReChordRouter(net, mode="pin")
        before = {pid: set(router.neighbors(pid)) for pid in net.peer_ids}
        net.crash(net.peer_ids[2])
        net.run_until_stable(max_rounds=5000)
        for pid, view in before.items():
            assert router._views[pid] == view  # untouched by design

    def test_pin_mode_routes_on_frozen_membership(self):
        """A pinned router measures the frozen topology: post-snapshot
        joins neither break routing (KeyError/loop) nor shift key
        ownership — the owner comes from the snapshot's peer set."""
        net = stabilized(10, seed=108)
        router = ReChordRouter(net, mode="pin")
        frozen_ids = sorted(net.peer_ids)
        rng = random.Random(11)
        new_id = random_peer_ids(1, rng, net.space)[0]
        while new_id in net.peers:
            new_id = random_peer_ids(1, rng, net.space)[0]
        net.join(new_id, net.peer_ids[0])
        net.run_until_stable(max_rounds=5000)
        for _ in range(15):
            key = rng.randrange(net.space.size)
            res = router.route_id(rng.choice(frozen_ids), key)
            assert res.ok
            assert res.owner == chord_successor(net.space, frozen_ids, key)
        # a peer outside the snapshot cannot be a start point
        with pytest.raises(KeyError, match="not in the routing snapshot"):
            router.route_id(new_id, frozen_ids[0])

    def test_rounds_bump_view_version(self):
        net = stabilized(6, seed=106)
        v0 = net.view_version()
        net.run_round()
        assert net.view_version() != v0

    def test_unknown_mode_rejected(self):
        net = stabilized(5, seed=107)
        with pytest.raises(ValueError):
            ReChordRouter(net, mode="yolo")


class TestChurnSurvival:
    def test_data_survives_crash_with_replication(self):
        net = stabilized(12, seed=101)
        router = ReChordRouter(net)
        store = KeyValueStore(router, replication=3)
        keys = [f"key-{i}" for i in range(30)]
        for i, k in enumerate(keys):
            store.put(k, i)
        # crash one replica holder of some key
        victim_kid = key_id(keys[0], net.space)
        victim = store.replica_peers(victim_kid)[0]
        net.crash(victim)
        net.run_until_stable(max_rounds=5000)
        store.drop_peer(victim)
        store.rebalance()
        for i, k in enumerate(keys):
            assert store.get(k, via=net.peer_ids[0]) == i

    def test_rebalance_after_join_moves_keys(self):
        net = stabilized(8, seed=102)
        router = ReChordRouter(net)
        store = KeyValueStore(router, replication=1)
        for i in range(50):
            store.put(f"k{i}", i)
        rng = random.Random(5)
        from repro.workloads.initial import random_peer_ids

        new_id = random_peer_ids(1, rng, net.space)[0]
        while new_id in net.peers:
            new_id = random_peer_ids(1, rng, net.space)[0]
        net.join(new_id, net.peer_ids[0])
        net.run_until_stable(max_rounds=5000)
        store.rebalance()
        # every key readable and placed at its current responsible peer
        for i in range(50):
            assert store.get(f"k{i}") == i
        for kid in list(store.keys_at(new_id)):
            assert chord_successor(net.space, net.peer_ids, kid) == new_id


class TestRebalanceUnderCrashChurn:
    """KeyValueStore.rebalance against replica loss (satellite of the
    traffic-plane PR): data survives as long as one replica survives,
    KeyNotFound fires only when *all* replicas crashed, and the
    responsibility map is fully re-established afterwards."""

    @staticmethod
    def _build(n: int, seed: int, replication: int):
        net = stabilized(n, seed=seed)
        store = KeyValueStore(ReChordRouter(net), replication=replication)
        keys = [f"key-{i}" for i in range(40)]
        for i, k in enumerate(keys):
            store.put(k, i)
        return net, store, keys

    @staticmethod
    def _crash(net, store, victims):
        for v in victims:
            net.crash(v)
            store.drop_peer(v)
        net.run_until_stable(max_rounds=5000)

    def test_single_replica_survivor_is_enough(self):
        net, store, keys = self._build(14, seed=201, replication=3)
        kid = key_id(keys[0], net.space)
        victims = store.replica_peers(kid)[:2]  # kill 2 of 3 replicas
        self._crash(net, store, victims)
        store.rebalance()
        for i, k in enumerate(keys):
            assert store.get(k, via=net.peer_ids[0]) == i

    def test_key_not_found_only_when_all_replicas_crashed(self):
        net, store, keys = self._build(14, seed=202, replication=2)
        kid = key_id(keys[0], net.space)
        doomed = store.replica_peers(kid)
        # keys that shared no replica peer with the doomed set must survive
        survivors = [
            k for k in keys
            if not set(store.replica_peers(key_id(k, net.space))) & set(doomed)
        ]
        assert survivors, "seed produced no disjoint keys; pick another"
        self._crash(net, store, doomed)
        store.rebalance()
        with pytest.raises(KeyNotFound):
            store.get(keys[0])
        for k in survivors:
            assert store.get(k) is not None

    def test_rebalance_restores_full_replication(self):
        net, store, keys = self._build(16, seed=203, replication=3)
        kid = key_id(keys[3], net.space)
        self._crash(net, store, store.replica_peers(kid)[:1])
        store.rebalance()
        live = set(net.peer_ids)
        for k in keys:
            k_id = key_id(k, net.space)
            want = store.replica_peers(k_id)
            assert len(want) == min(3, len(live))
            for pid in want:
                assert k_id in store.keys_at(pid), f"{k} missing at replica {pid}"

    def test_responsibility_map_shifts_to_new_successors(self):
        net, store, keys = self._build(12, seed=204, replication=2)
        kid = key_id(keys[0], net.space)
        old_owner = store.replica_peers(kid)[0]
        self._crash(net, store, [old_owner])
        store.rebalance()
        new_owner = chord_successor(net.space, net.peer_ids, kid)
        assert new_owner != old_owner
        assert kid in store.keys_at(new_owner)
        # no placements remain on peers outside current membership
        live = set(net.peer_ids)
        for pid in store.load_per_peer():
            assert pid in live

    def test_repeated_crash_rebalance_cycles(self):
        """Sequential crash bursts: the store stays consistent as long
        as churn never outpaces replication."""
        net, store, keys = self._build(18, seed=205, replication=3)
        rng = random.Random(99)
        for _ in range(3):
            victim = rng.choice(net.peer_ids)
            self._crash(net, store, [victim])
            moved = store.rebalance()
            assert moved >= 0
            for i, k in enumerate(keys):
                assert store.get(k, via=net.peer_ids[0]) == i
