"""DHT layer: routing over the stable overlay, replicated storage."""

from __future__ import annotations

import math
import random

import pytest

from repro.chord.routing import RoutingError, route_greedy
from repro.core.ideal import chord_successor
from repro.dht.lookup import ReChordRouter
from repro.dht.storage import KeyNotFound, KeyValueStore
from repro.idspace.keys import key_id
from tests.conftest import stabilized


@pytest.fixture(scope="module")
def net20():
    return stabilized(20, seed=100)


@pytest.fixture()
def router(net20):
    return ReChordRouter(net20)


class TestRouter:
    def test_routes_reach_responsible_peer(self, router, net20):
        rng = random.Random(0)
        for _ in range(25):
            start = rng.choice(net20.peer_ids)
            key = rng.randrange(net20.space.size)
            res = router.route_id(start, key)
            assert res.owner == chord_successor(net20.space, net20.peer_ids, key)
            assert res.path[0] == start and res.path[-1] == res.owner

    def test_hops_logarithmic(self, router, net20):
        rng = random.Random(1)
        hops = [
            router.route_id(rng.choice(net20.peer_ids), rng.randrange(net20.space.size)).hops
            for _ in range(40)
        ]
        bound = 3 * math.log2(len(net20.peer_ids)) + 3
        assert max(hops) <= bound

    def test_path_makes_clockwise_progress(self, router, net20):
        rng = random.Random(2)
        space = net20.space
        for _ in range(10):
            start = rng.choice(net20.peer_ids)
            key = rng.randrange(space.size)
            res = router.route_id(start, key)
            distances = [space.distance_cw(p, key) for p in res.path]
            # every hop strictly decreases the clockwise distance, except
            # the terminal hop onto the owner (the successor *of* the key,
            # which sits just past it)
            for a, b in zip(distances[:-1], distances[1:-1]):
                assert b < a

    def test_route_key_by_name(self, router, net20):
        res = router.route_key(net20.peer_ids[0], "hello-world")
        kid = key_id("hello-world", net20.space)
        assert res.owner == chord_successor(net20.space, net20.peer_ids, kid)

    def test_owner_of(self, router, net20):
        owner = router.owner_of("abc")
        assert owner in net20.peer_ids

    def test_neighbors_are_chord_view(self, router, net20):
        """Each peer's view must contain its ring successor."""
        ids = sorted(net20.peer_ids)
        for i, u in enumerate(ids):
            succ = ids[(i + 1) % len(ids)]
            assert succ in router.neighbors(u)


class TestRouteGreedyEdgeCases:
    def test_zero_hops_when_start_owns(self, net20):
        space = net20.space
        start = net20.peer_ids[0]
        res = route_greedy(space, net20.peer_ids, lambda u: set(), start, start)
        assert res.owner == start and res.hops == 0

    def test_dead_end_raises(self, net20):
        space = net20.space
        start = net20.peer_ids[0]
        other = net20.peer_ids[1]
        key = (other + 1) % space.size
        owner = chord_successor(space, net20.peer_ids, key)
        if owner == start:
            key = (start + 1) % space.size
        with pytest.raises(RoutingError):
            route_greedy(space, net20.peer_ids, lambda u: set(), start, key)


class TestKeyValueStore:
    def test_put_get_round_trip(self, router, net20):
        store = KeyValueStore(router)
        rng = random.Random(3)
        for i in range(40):
            store.put(f"k{i}", i, via=rng.choice(net20.peer_ids))
        for i in range(40):
            assert store.get(f"k{i}", via=rng.choice(net20.peer_ids)) == i

    def test_get_missing_raises(self, router):
        store = KeyValueStore(router)
        with pytest.raises(KeyNotFound):
            store.get("never-stored")

    def test_delete(self, router):
        store = KeyValueStore(router)
        store.put("x", 1)
        assert store.delete("x")
        assert not store.delete("x")
        with pytest.raises(KeyNotFound):
            store.get("x")

    def test_replication_factor_bounds(self, router):
        with pytest.raises(ValueError):
            KeyValueStore(router, replication=0)

    def test_replicas_on_distinct_ring_successors(self, router, net20):
        store = KeyValueStore(router, replication=3)
        store.put("replicated", 42)
        kid = key_id("replicated", net20.space)
        replicas = store.replica_peers(kid)
        assert len(set(replicas)) == 3
        for pid in replicas:
            assert kid in store.keys_at(pid)

    def test_placements_count(self, router):
        store = KeyValueStore(router, replication=2)
        for i in range(10):
            store.put(f"p{i}", i)
        assert store.total_placements() == 20

    def test_stats_recorded(self, router, net20):
        store = KeyValueStore(router)
        store.put("a", 1, via=net20.peer_ids[0])
        store.get("a", via=net20.peer_ids[-1])
        assert store.stats.puts == 1 and store.stats.gets == 1
        assert len(store.stats.hop_samples) == 2

    def test_load_per_peer_sums_to_placements(self, router):
        store = KeyValueStore(router, replication=2)
        for i in range(15):
            store.put(f"q{i}", i)
        assert sum(store.load_per_peer().values()) == store.total_placements()


class TestChurnSurvival:
    def test_data_survives_crash_with_replication(self):
        net = stabilized(12, seed=101)
        router = ReChordRouter(net)
        store = KeyValueStore(router, replication=3)
        keys = [f"key-{i}" for i in range(30)]
        for i, k in enumerate(keys):
            store.put(k, i)
        # crash one replica holder of some key
        victim_kid = key_id(keys[0], net.space)
        victim = store.replica_peers(victim_kid)[0]
        net.crash(victim)
        net.run_until_stable(max_rounds=5000)
        store.drop_peer(victim)
        store.rebalance()
        for i, k in enumerate(keys):
            assert store.get(k, via=net.peer_ids[0]) == i

    def test_rebalance_after_join_moves_keys(self):
        net = stabilized(8, seed=102)
        router = ReChordRouter(net)
        store = KeyValueStore(router, replication=1)
        for i in range(50):
            store.put(f"k{i}", i)
        rng = random.Random(5)
        from repro.workloads.initial import random_peer_ids

        new_id = random_peer_ids(1, rng, net.space)[0]
        while new_id in net.peers:
            new_id = random_peer_ids(1, rng, net.space)[0]
        net.join(new_id, net.peer_ids[0])
        net.run_until_stable(max_rounds=5000)
        store.rebalance()
        # every key readable and placed at its current responsible peer
        for i in range(50):
            assert store.get(f"k{i}") == i
        for kid in list(store.keys_at(new_id)):
            assert chord_successor(net.space, net.peer_ids, kid) == new_id
