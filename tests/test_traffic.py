"""The in-band traffic plane: live lookups/KV ops through the scheduler.

The critical property is **kernel equivalence with traffic enabled**:
the activity-tracked engine must stay round-for-round identical to the
full-scan engine while application messages ride the rounds — the same
exactness spec as ``tests/test_engine_equivalence.py``, extended to the
traffic plane (one-shot emissions must never enter the steady-emission
replay cache).
"""

from __future__ import annotations

import random

import pytest

from repro.dht.lookup import ReChordRouter
from repro.dht.storage import KeyValueStore
from repro.idspace.keys import key_id
from repro.traffic import TrafficPlane, WorkloadGenerator
from repro.traffic.messages import (
    OP_GET,
    OP_LOOKUP,
    OP_PUT,
    OUT_TIMEOUT,
    ST_OK,
    LookupReply,
)
from repro.traffic.slo import IssuedOp, SLOCollector, latency_histogram
from repro.workloads.initial import build_random_network, random_peer_ids
from tests.conftest import stabilized


def make_traffic_net(n: int, seed: int, incremental: bool = True, store: bool = False):
    """A stabilized network with an attached plane (and optional store)."""
    net = build_random_network(n=n, seed=seed, incremental=incremental)
    net.run_until_stable(max_rounds=5000)
    kv = KeyValueStore(ReChordRouter(net)) if store else None
    return net, TrafficPlane(net, store=kv)


class TestLookupOnStableNetwork:
    def test_all_lookups_reach_true_owner(self):
        net, plane = make_traffic_net(16, seed=7)
        rng = random.Random(0)
        expected = {}
        for i in range(30):
            origin = rng.choice(net.peer_ids)
            op_id = plane.lookup(f"k{i}", origin)
            expected[op_id] = plane.true_owner(key_id(f"k{i}", net.space))
        plane.drain()
        assert plane.collector.outcomes == {"ok": 30}
        assert plane.collector.violations == []
        by_id = {c.op_id: c for c in plane.collector.completed}
        for op_id, owner in expected.items():
            assert by_id[op_id].outcome == "ok"

    def test_hops_logarithmic_in_band(self):
        net, plane = make_traffic_net(20, seed=100)
        rng = random.Random(1)
        for i in range(40):
            plane.lookup(f"hop{i}", rng.choice(net.peer_ids))
        plane.drain()
        hops = [c.hops for c in plane.collector.completed]
        import math

        assert max(hops) <= 3 * math.log2(len(net.peer_ids)) + 3

    def test_latency_counts_rounds_not_hops_alone(self):
        """A remote op takes hops rounds forward plus one reply round."""
        net, plane = make_traffic_net(12, seed=9)
        for i in range(20):
            plane.lookup(f"lat{i}", net.peer_ids[i % len(net.peer_ids)])
        plane.drain()
        for c in plane.collector.completed:
            if c.hops and c.hops > 0:
                assert c.latency == c.hops + 1
            else:  # resolved locally at the origin, same round
                assert c.latency == 0

    def test_network_returns_to_quiescence_after_drain(self):
        net, plane = make_traffic_net(16, seed=7)
        for pid in net.peer_ids:
            plane.lookup("shared-key", pid)
        plane.drain()
        for _ in range(4):
            net.run_round()
        executed, replayed = net.activity_stats()
        assert executed == 0
        assert replayed == len(net.peers)
        assert not net.scheduler.changed_last_round


class TestInBandKeyValue:
    def test_put_then_get_round_trip(self):
        net, plane = make_traffic_net(14, seed=23, store=True)
        rng = random.Random(2)
        for i in range(25):
            plane.put(f"kv{i}", f"value-{i}", rng.choice(net.peer_ids))
        plane.drain()
        for i in range(25):
            plane.get(f"kv{i}", rng.choice(net.peer_ids))
        plane.drain()
        gets = [c for c in plane.collector.completed if c.op == OP_GET]
        assert len(gets) == 25
        assert all(c.outcome == "ok" for c in gets)
        values = {c.value for c in gets}
        assert values == {f"value-{i}" for i in range(25)}

    def test_get_of_missing_key_is_notfound(self):
        net, plane = make_traffic_net(10, seed=31, store=True)
        plane.get("never-stored", net.peer_ids[0])
        plane.drain()
        assert plane.collector.outcomes == {"notfound": 1}

    def test_kv_requires_store(self):
        net, plane = make_traffic_net(6, seed=5)
        with pytest.raises(RuntimeError):
            plane.put("x", 1, net.peer_ids[0])

    def test_true_owner_matches_chord_successor(self):
        """The bisect fast path must agree with chord_successor exactly,
        including across membership changes (cache invalidation)."""
        from repro.core.ideal import chord_successor

        net, plane = make_traffic_net(12, seed=61)
        rng = random.Random(6)
        for _ in range(50):
            kid = rng.randrange(net.space.size)
            assert plane.true_owner(kid) == chord_successor(net.space, net.peer_ids, kid)
        net.crash(net.peer_ids[3])
        for _ in range(50):
            kid = rng.randrange(net.space.size)
            assert plane.true_owner(kid) == chord_successor(net.space, net.peer_ids, kid)

    def test_put_lands_in_owner_bucket(self):
        net, plane = make_traffic_net(12, seed=37, store=True)
        plane.put("landing", 7, net.peer_ids[0])
        plane.drain()
        kid = key_id("landing", net.space)
        owner = plane.true_owner(kid)
        assert kid in plane.store.keys_at(owner)


class TestTrafficUnderChurn:
    def test_origin_dead_at_injection(self):
        net, plane = make_traffic_net(10, seed=41)
        victim = net.peer_ids[3]
        net.crash(victim)
        plane.lookup("after-crash", victim)
        assert plane.collector.outcomes == {"origin_dead": 1}
        assert plane.collector.outstanding_count() == 0

    def test_crash_midflight_times_out_or_fails(self):
        """Crashing the request's next hops strands the op; the deadline
        sweep must complete it — no stuck ledger entries."""
        net, plane = make_traffic_net(12, seed=43)
        kid = key_id("doomed", net.space)
        owner = plane.true_owner(kid)
        origin = next(p for p in net.peer_ids if p != owner)
        plane.lookup("doomed", origin, deadline=20)
        net.crash(owner)
        rounds = plane.drain(max_rounds=64)
        assert rounds <= 24
        assert plane.collector.outstanding_count() == 0
        (completed,) = plane.collector.completed
        # after the crash the key has a *new* true owner: the op either
        # reroutes successfully or fails — never hangs
        assert completed.outcome in ("ok", "misroute", "timeout", "loop", "dead_end", "ttl")

    def test_detach_with_inflight_traffic_times_out_quietly(self):
        """detach() must not crash the simulation: in-flight requests
        are dropped and the outstanding ops expire at their deadline."""
        net, plane = make_traffic_net(10, seed=59)
        gen = WorkloadGenerator(plane, rate=5, seed=1)
        kid = key_id("mid-flight", net.space)
        origin = next(p for p in net.peer_ids if p != plane.true_owner(kid))
        plane.lookup("mid-flight", origin, deadline=8)
        plane.detach()
        assert gen.active is False  # no phantom injections after detach
        for _ in range(10):
            net.run_round()  # must not raise
        plane.collector.expire(net.round_no)
        assert plane.collector.outstanding_count() == 0
        assert plane.collector.outcomes == {OUT_TIMEOUT: 1}

    def test_lookups_concurrent_with_recovery_eventually_succeed(self):
        net, plane = make_traffic_net(16, seed=47)
        victim = net.peer_ids[5]
        net.crash(victim)
        # issue traffic every round while the overlay repairs itself
        results = []
        for r in range(12):
            plane.lookup(f"c{r}", net.peer_ids[0], deadline=32)
            plane.run_round()
        plane.drain()
        net.run_until_stable(max_rounds=5000)
        # post-recovery traffic must be perfect again
        for i in range(10):
            plane.lookup(f"post{i}", net.peer_ids[-1])
        plane.drain()
        post = [c for c in plane.collector.completed if c.op_id >= 12]
        assert all(c.outcome == "ok" for c in post)


class TestEngineEquivalenceWithTraffic:
    """tests/test_engine_equivalence.py extended to the traffic plane."""

    @pytest.mark.parametrize("seed", [3, 7])
    def test_lockstep_fingerprints_with_traffic_and_churn(self, seed):
        def make(incremental):
            net = build_random_network(n=12, seed=seed, incremental=incremental)
            net.run_until_stable(max_rounds=5000)
            kv = KeyValueStore(ReChordRouter(net))
            plane = TrafficPlane(net, store=kv)
            WorkloadGenerator(
                plane,
                rate=1.5,
                op_mix=((OP_LOOKUP, 0.5), (OP_PUT, 0.3), (OP_GET, 0.2)),
                seed=seed,
                deadline=32,
            )
            return net, plane

        a_net, a_plane = make(True)
        b_net, b_plane = make(False)
        assert a_net.fingerprint() == b_net.fingerprint()
        join_rng = random.Random(seed + 1000)
        for r in range(40):
            if r == 12:
                victim = a_net.peer_ids[4]
                a_net.crash(victim)
                b_net.crash(victim)
            if r == 20:
                new_id = random_peer_ids(1, join_rng, a_net.space)[0]
                while new_id in a_net.peers:
                    new_id = random_peer_ids(1, join_rng, a_net.space)[0]
                a_net.join(new_id, a_net.peer_ids[0])
                b_net.join(new_id, b_net.peer_ids[0])
            a_plane.run_round()
            b_plane.run_round()
            assert a_net.fingerprint() == b_net.fingerprint(), f"diverged at round {r}"
            assert a_net.counters().fires == b_net.counters().fires, f"counters at {r}"
        assert a_plane.collector.summary() == b_plane.collector.summary()

    def test_change_flag_matches_fingerprint_with_traffic(self):
        """The O(active) change flag stays exact while traffic flows."""
        net, plane = make_traffic_net(10, seed=4)
        gen = WorkloadGenerator(plane, rate=0.7, seed=4, deadline=24)
        prev = net.fingerprint()
        for _ in range(40):
            plane.run_round()
            cur = net.fingerprint()
            assert net.scheduler.changed_last_round == (cur != prev)
            prev = cur

    def test_traffic_emissions_never_replayed(self):
        """Replay caching must stay exact: total messages sent with
        traffic must match the full-scan engine (no duplicated one-shot
        emissions from the steady-emission cache)."""
        nets = []
        for incremental in (True, False):
            net = build_random_network(n=10, seed=13, incremental=incremental, record_trace=True)
            net.run_until_stable(max_rounds=5000)
            plane = TrafficPlane(net)
            for i in range(6):
                plane.lookup(f"t{i}", net.peer_ids[i % len(net.peer_ids)])
            plane.run(12)
            nets.append(net)
        a, b = nets
        sent_a = [r.sent for r in a.trace.rounds()[-12:]]
        sent_b = [r.sent for r in b.trace.rounds()[-12:]]
        assert sent_a == sent_b


class TestWorkloadGenerator:
    def test_closed_loop_respects_max_outstanding(self):
        net, plane = make_traffic_net(10, seed=17)
        gen = WorkloadGenerator(plane, rate=10, max_outstanding=3, seed=1, deadline=16)
        for _ in range(10):
            plane.run_round()
            assert plane.collector.outstanding_count() <= 3

    def test_fractional_rate_accumulates(self):
        net, plane = make_traffic_net(8, seed=19)
        gen = WorkloadGenerator(plane, rate=0.5, seed=2)
        injected = [gen.inject() for _ in range(8)]
        assert sum(injected) == 4  # one op every other round

    def test_zipf_popularity_skews_draws(self):
        net, plane = make_traffic_net(6, seed=29)
        gen = WorkloadGenerator(plane, popularity="zipf", zipf_s=1.3, key_universe=32, seed=3)
        draws = [gen.draw_key() for _ in range(600)]
        top = draws.count("key-0")
        tail = draws.count("key-31")
        assert top > 5 * max(1, tail)

    def test_same_seed_same_schedule(self):
        net, plane = make_traffic_net(8, seed=53)
        g1 = WorkloadGenerator(plane, rate=3, seed=9)
        seq1 = [(g1.draw_op(), g1.draw_key()) for _ in range(50)]
        g2 = WorkloadGenerator(plane, rate=3, seed=9)
        seq2 = [(g2.draw_op(), g2.draw_key()) for _ in range(50)]
        assert seq1 == seq2

    def test_bad_parameters_rejected(self):
        net, plane = make_traffic_net(6, seed=5)
        with pytest.raises(ValueError):
            WorkloadGenerator(plane, rate=-1)
        with pytest.raises(ValueError):
            WorkloadGenerator(plane, key_universe=0)
        with pytest.raises(ValueError):
            WorkloadGenerator(plane, op_mix=(("frobnicate", 1.0),))
        with pytest.raises(ValueError):
            WorkloadGenerator(plane, popularity="pareto")


class TestSLOCollector:
    @staticmethod
    def _collector(truth: int = 42) -> SLOCollector:
        return SLOCollector(lambda kid: truth)

    @staticmethod
    def _issued(op_id: int, origin: int = 1, kid: int = 5) -> IssuedOp:
        return IssuedOp(op_id=op_id, op=OP_LOOKUP, origin=origin, kid=kid, issue_round=0, deadline=10)

    @staticmethod
    def _reply(op_id: int, owner: int, status: str = ST_OK, origin: int = 1, kid: int = 5) -> LookupReply:
        return LookupReply(op=OP_LOOKUP, op_id=op_id, origin=origin, kid=kid, status=status, owner=owner, hops=3)

    def test_misroute_classified_against_true_owner(self):
        col = self._collector(truth=42)
        col.register(self._issued(0))
        col.on_reply(self._reply(0, owner=99), round_no=4)
        assert col.outcomes == {"misroute": 1}

    def test_answer_time_truth_beats_completion_time_truth(self):
        """Churn during the reply's transit round must not reclassify a
        correct answer as a misroute: the truth sampled when the
        terminal peer answered wins over the completion-time truth."""
        col = SLOCollector(lambda kid: 99)  # completion-time truth moved on
        col.register(self._issued(0))
        col.note_answer_truth(0, 42)  # owner 42 was correct when it answered
        col.on_reply(self._reply(0, owner=42), round_no=4)
        assert col.outcomes == {ST_OK: 1}
        assert col._answer_truth == {}  # side table cleaned up

    def test_monotonic_violation_counted(self):
        col = self._collector()
        col.register(self._issued(0))
        col.on_reply(self._reply(0, owner=42), round_no=4)
        col.register(self._issued(1))
        assert col.expire(round_no=11) == 1
        assert col.outcomes == {ST_OK: 1, OUT_TIMEOUT: 1}
        assert len(col.violations) == 1
        assert col.violations[0].outcome == OUT_TIMEOUT

    def test_failure_before_any_success_is_not_a_violation(self):
        col = self._collector()
        col.register(self._issued(0))
        col.expire(round_no=11)
        assert col.violations == []

    def test_different_origin_is_a_different_search(self):
        col = self._collector()
        col.register(self._issued(0, origin=1))
        col.on_reply(self._reply(0, owner=42, origin=1), round_no=3)
        col.register(self._issued(1, origin=2))
        col.expire(round_no=11)
        assert col.violations == []  # origin 2 never succeeded before

    def test_late_reply_after_timeout_ignored(self):
        col = self._collector()
        col.register(self._issued(0))
        col.expire(round_no=11)
        col.on_reply(self._reply(0, owner=42), round_no=12)
        assert col.late_replies == 1
        assert col.outcomes == {OUT_TIMEOUT: 1}

    def test_duplicate_op_id_rejected(self):
        col = self._collector()
        col.register(self._issued(0))
        with pytest.raises(ValueError):
            col.register(self._issued(0))

    def test_latency_histogram_buckets(self):
        hist = latency_histogram([1, 2, 2, 5, 300], bounds=(1, 2, 4, 8))
        assert hist == [("<=1", 1), ("<=2", 2), ("<=4", 0), ("<=8", 1), (">8", 1)]

    def test_latency_histogram_empty_inputs_defined(self):
        """Regression (ISSUE-6): empty samples and empty bounds must
        return defined values, not IndexError on the overflow label."""
        assert latency_histogram([]) == [
            (f"<={e}", 0) for e in (1, 2, 4, 8, 16, 32, 64, 128, 256)
        ] + [(">256", 0)]
        assert latency_histogram([3, 9], bounds=()) == [("all", 2)]
        assert latency_histogram([], bounds=()) == [("all", 0)]


class TestPercentile:
    """Nearest-rank percentile edges (ISSUE-6 regression)."""

    def test_exact_rank_boundaries(self):
        from repro.traffic.slo import percentile

        values = list(range(1, 21))  # 1..20
        # 95% of 20 = rank 19 exactly; the historical q/100*n form
        # computed 19.000000000000004 and over-selected rank 20
        assert percentile(values, 95) == 19.0
        assert percentile(values, 100) == 20.0
        assert percentile(values, 5) == 1.0
        assert percentile(values, 0) == 1.0  # q=0 is the minimum
        assert percentile(values, 50) == 10.0

    def test_single_sample_every_q(self):
        from repro.traffic.slo import percentile

        for q in (0, 1, 50, 95, 100):
            assert percentile([7.5], q) == 7.5

    def test_empty_sample(self):
        from repro.traffic.slo import percentile

        with pytest.raises(ValueError):
            percentile([], 95)
        assert percentile([], 95, default=0.0) == 0.0

    def test_q_out_of_range_rejected(self):
        from repro.traffic.slo import percentile

        for q in (-1, 100.5):
            with pytest.raises(ValueError):
                percentile([1, 2, 3], q)


class TestPayloadSurface:
    def test_requests_are_fingerprintable_and_ref_free(self):
        from repro.netsim.messages import envelope_fingerprint, Envelope

        from repro.traffic.messages import LookupRequest

        req = LookupRequest(op=OP_LOOKUP, op_id=1, origin=2, kid=3, ttl=8, path=(2,))
        assert req.refs() == ()
        assert isinstance(hash(req.canonical()), int)
        assert isinstance(envelope_fingerprint(Envelope(2, 2, req)), int)
        fwd = req.forwarded(9)
        assert fwd.hops == 1 and fwd.path == (2, 9)
        assert fwd.canonical() != req.canonical()

    def test_traffic_without_plane_fails_loudly(self):
        from repro.netsim.messages import Envelope
        from repro.traffic.messages import LookupRequest

        net = stabilized(6, seed=3)
        req = LookupRequest(op=OP_LOOKUP, op_id=0, origin=net.peer_ids[0], kid=1, ttl=8)
        net.scheduler.post(Envelope(net.peer_ids[0], net.peer_ids[0], req))
        with pytest.raises(TypeError, match="no traffic plane"):
            net.run_round()
