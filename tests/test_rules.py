"""Unit tests for the six self-stabilization rules (Section 2.3).

Each test builds a small hand-crafted peer state, runs exactly one rule
(or one delivery), and checks the paper-specified effect.  The
integration behavior (convergence) is covered by test_convergence.py;
here we pin the local semantics the proofs rely on.
"""

from __future__ import annotations

import pytest

from repro.core.events import (
    EdgeAdd,
    KIND_CONNECTION,
    KIND_RING,
    KIND_UNMARKED,
    RealCandidate,
    SIDE_LEFT,
    SIDE_RIGHT,
)
from repro.core.noderef import NodeRef, make_ref
from repro.core.protocol import REF_DEAD, REF_OK, REF_PHANTOM, ReChordPeer
from repro.core.rules import RuleConfig
from repro.core.state import PeerState
from repro.idspace.ring import IdSpace
from repro.netsim.messages import Envelope

from tests.conftest import SendRecorder

SPACE = IdSpace(16)  # 65536 positions


def build_peer(pid: int, oracle=None, config: RuleConfig | None = None) -> ReChordPeer:
    state = PeerState(pid, SPACE)
    return ReChordPeer(state, config or RuleConfig(), oracle or (lambda ref: REF_OK))


def deliver(peer: ReChordPeer, *payloads) -> None:
    peer._apply_inbox([Envelope(0, peer.state.peer_id, p) for p in payloads])


class TestRule1VirtualNodes:
    def test_lone_peer_creates_one_level(self):
        peer = build_peer(1000)
        peer._rule1_virtual_nodes()
        assert peer.state.levels() == [0, 1]

    def test_level_count_follows_gap(self):
        peer = build_peer(0)
        peer.state.nodes[0].nu.add(NodeRef.real(8192))  # gap 8192 = 2**13
        peer._rule1_virtual_nodes()
        # minimal m with 2**(16-m) < 8192 -> m = 4
        assert peer.state.levels() == [0, 1, 2, 3, 4]

    def test_m_grows_when_closer_real_learned(self):
        peer = build_peer(0)
        peer.state.nodes[0].nu.add(NodeRef.real(8192))
        peer._rule1_virtual_nodes()
        peer.state.nodes[0].nu.add(NodeRef.real(1024))  # much closer
        peer._rule1_virtual_nodes()
        assert peer.state.max_level() == SPACE.level_count(1024)

    def test_excess_levels_deleted_with_transfer(self):
        """Deleted nodes' full neighborhoods land in Nu(u_m) — rule 1's
        'u_m is informed about u_i's neighborhood'."""
        peer = build_peer(0)
        peer.state.nodes[0].nu.add(NodeRef.real(8192))  # m = 4
        stale = peer.state.ensure_level(9)
        # the stale node's neighbors are all *farther* than 8192, so
        # they do not change the gap computation
        a, b, c = NodeRef.real(40000), NodeRef.real(50000), NodeRef.real(60000)
        stale.nu.add(a)
        stale.nr.add(b)
        stale.nc.add(c)
        stale.wrap_rl = NodeRef.real(30000)
        peer._rule1_virtual_nodes()
        assert 9 not in peer.state.nodes
        um = peer.state.nodes[4]
        assert {a, b, c, NodeRef.real(30000)} <= um.nu

    def test_transfer_skips_self_reference(self):
        peer = build_peer(0)
        peer.state.nodes[0].nu.add(NodeRef.real(8192))
        stale = peer.state.ensure_level(9)
        stale.nu.add(make_ref(SPACE, 0, 4))  # points at the future u_m
        peer._rule1_virtual_nodes()
        assert make_ref(SPACE, 0, 4) not in peer.state.nodes[4].nu

    def test_existing_levels_untouched(self):
        peer = build_peer(0)
        peer.state.nodes[0].nu.add(NodeRef.real(8192))
        peer._rule1_virtual_nodes()
        marker = NodeRef.real(5)
        peer.state.nodes[2].nu.add(marker)
        peer._rule1_virtual_nodes()
        assert marker in peer.state.nodes[2].nu


class TestRule2Overlap:
    def test_left_edge_moves_to_sibling_closest_to_w(self):
        # peer 0: u0=0, u1=32768, u2=16384; node u1 knows w=100:
        # siblings strictly between w and u1: u2(16384); moved there
        peer = build_peer(0)
        peer.state.ensure_level(1)
        peer.state.ensure_level(2)
        w = NodeRef.real(100)
        peer.state.nodes[1].nu.add(w)
        peer._rule2_overlap()
        assert w not in peer.state.nodes[1].nu
        assert w in peer.state.nodes[2].nu

    def test_right_edge_moves_to_largest_between(self):
        # u0=0 knows w=40000; siblings between: u2=16384, u1=32768 -> u1
        peer = build_peer(0)
        peer.state.ensure_level(1)
        peer.state.ensure_level(2)
        w = NodeRef.real(40000)
        peer.state.nodes[0].nu.add(w)
        peer._rule2_overlap()
        assert w in peer.state.nodes[1].nu
        assert w not in peer.state.nodes[0].nu

    def test_no_sibling_between_keeps_edge(self):
        peer = build_peer(0)
        peer.state.ensure_level(1)  # u1 = 32768
        w = NodeRef.real(40000)
        peer.state.nodes[1].nu.add(w)  # w > u1, nothing between
        peer._rule2_overlap()
        assert w in peer.state.nodes[1].nu

    def test_single_node_noop(self):
        peer = build_peer(0)
        w = NodeRef.real(5)
        peer.state.nodes[0].nu.add(w)
        peer._rule2_overlap()
        assert w in peer.state.nodes[0].nu


class TestRule3ClosestReal:
    def test_rl_rr_from_knowledge_and_added_to_nu(self):
        peer = build_peer(1000)
        node = peer.state.nodes[0]
        node.nu.update({NodeRef.real(200), NodeRef.real(700), NodeRef.real(3000)})
        rec = SendRecorder()
        peer._rule3_closest_real(rec)
        assert node.rl == NodeRef.real(700)
        assert node.rr == NodeRef.real(3000)
        assert NodeRef.real(700) in node.nu and NodeRef.real(3000) in node.nu

    def test_virtual_refs_ignored_for_pointers(self):
        peer = build_peer(1000)
        node = peer.state.nodes[0]
        node.nu.add(make_ref(SPACE, 500, 1))  # virtual ref near 33268
        rec = SendRecorder()
        peer._rule3_closest_real(rec)
        assert node.rr is None

    def test_candidate_sent_to_right_side_neighbors(self):
        """left-realneighbor: y > ui or v < y < ui receive v."""
        peer = build_peer(1000)
        node = peer.state.nodes[0]
        rl = NodeRef.real(700)
        right_neighbor = NodeRef.real(2000)
        # virtual neighbors (so they do not shift rl/rr themselves):
        between = make_ref(SPACE, (800 - 32768) % SPACE.size, 1)   # id 800
        outside = make_ref(SPACE, (100 - 32768) % SPACE.size, 1)   # id 100
        assert between.id == 800 and outside.id == 100
        node.nu.update({rl, right_neighbor, between, outside})
        rec = SendRecorder()
        peer._rule3_closest_real(rec)
        left_cands = [
            p for _, p in rec.sent
            if isinstance(p, RealCandidate) and p.side == SIDE_LEFT and not p.wrap
        ]
        targets = {p.target for p in left_cands}
        assert right_neighbor in targets and between in targets
        assert outside not in targets and rl not in targets

    def test_candidate_delivery_improving_accepted(self):
        peer = build_peer(1000)
        node = peer.state.nodes[0]
        node.rl = NodeRef.real(100)
        better = NodeRef.real(500)
        deliver(peer, RealCandidate(node.ref, better, SIDE_LEFT))
        assert better in node.nu

    def test_candidate_delivery_non_improving_discarded(self):
        """The paper's guard v > rl(y), evaluated receiver-side [D9]."""
        peer = build_peer(1000)
        node = peer.state.nodes[0]
        node.rl = NodeRef.real(500)
        worse = NodeRef.real(100)
        deliver(peer, RealCandidate(node.ref, worse, SIDE_LEFT))
        assert worse not in node.nu

    def test_candidate_wrong_side_discarded(self):
        peer = build_peer(1000)
        node = peer.state.nodes[0]
        bogus = NodeRef.real(2000)  # right of us, claimed as left
        deliver(peer, RealCandidate(node.ref, bogus, SIDE_LEFT))
        assert bogus not in node.nu

    def test_right_candidate_guard(self):
        peer = build_peer(1000)
        node = peer.state.nodes[0]
        node.rr = NodeRef.real(2000)
        deliver(peer, RealCandidate(node.ref, NodeRef.real(1500), SIDE_RIGHT))
        assert NodeRef.real(1500) in node.nu
        deliver(peer, RealCandidate(node.ref, NodeRef.real(3000), SIDE_RIGHT))
        assert NodeRef.real(3000) not in node.nu

    def test_virtual_candidate_discarded(self):
        peer = build_peer(1000)
        node = peer.state.nodes[0]
        deliver(peer, RealCandidate(node.ref, make_ref(SPACE, 2, 1), SIDE_LEFT))
        assert len(node.nu) == 0


class TestWrapPointers:
    def test_wrap_adopt_requires_missing_linear_pointer(self):
        peer = build_peer(60000)
        node = peer.state.nodes[0]
        node.rr = NodeRef.real(61000)
        deliver(peer, RealCandidate(node.ref, NodeRef.real(5), SIDE_RIGHT, wrap=True))
        assert node.wrap_rr is None

    def test_wrap_adopt_and_improvement(self):
        peer = build_peer(60000)
        node = peer.state.nodes[0]
        deliver(peer, RealCandidate(node.ref, NodeRef.real(50), SIDE_RIGHT, wrap=True))
        assert node.wrap_rr == NodeRef.real(50)
        deliver(peer, RealCandidate(node.ref, NodeRef.real(5), SIDE_RIGHT, wrap=True))
        assert node.wrap_rr == NodeRef.real(5)
        # the replaced pointer is demoted into nu, never dropped
        assert NodeRef.real(50) in node.nu

    def test_wrap_non_improving_ignored(self):
        peer = build_peer(60000)
        node = peer.state.nodes[0]
        node.wrap_rr = NodeRef.real(5)
        deliver(peer, RealCandidate(node.ref, NodeRef.real(700), SIDE_RIGHT, wrap=True))
        assert node.wrap_rr == NodeRef.real(5)

    def test_wrap_cleared_when_linear_appears(self):
        peer = build_peer(60000)
        node = peer.state.nodes[0]
        node.wrap_rr = NodeRef.real(5)
        node.nu.add(NodeRef.real(61000))  # linear successor-side real
        rec = SendRecorder()
        peer._rule3_closest_real(rec)
        assert node.wrap_rr is None
        assert NodeRef.real(5) in node.nu  # demoted, not lost

    def test_wrap_disabled_by_config(self):
        peer = build_peer(60000, config=RuleConfig().ablated(wrap_pointers=False))
        node = peer.state.nodes[0]
        deliver(peer, RealCandidate(node.ref, NodeRef.real(5), SIDE_RIGHT, wrap=True))
        assert node.wrap_rr is None

    def test_wrap_relay_targets_gap_side(self):
        peer = build_peer(60000)
        node = peer.state.nodes[0]
        node.wrap_rr = NodeRef.real(5)
        left = NodeRef.real(59000)
        node.nu.add(left)
        rec = SendRecorder()
        peer._rule3_closest_real(rec)
        wraps = [p for _, p in rec.sent if isinstance(p, RealCandidate) and p.wrap]
        assert any(p.target == left and p.candidate == NodeRef.real(5) for p in wraps)


class TestRule4Linearize:
    def test_strips_to_closest_and_forwards(self):
        peer = build_peer(1000)
        node = peer.state.nodes[0]
        w1, w2, w3 = NodeRef.real(900), NodeRef.real(800), NodeRef.real(700)
        node.nu.update({w1, w2, w3})
        rec = SendRecorder()
        peer._rule4_linearize(rec)
        # only the closest left neighbor stays
        assert node.nu == {w1}
        sent = {(t, p.target, p.endpoint) for t, p in rec.sent if isinstance(p, EdgeAdd) and p.kind == KIND_UNMARKED}
        # consecutive-pair forwards: (w1 -> w2), (w2 -> w3)
        assert (900, w1, w2) in sent
        assert (800, w2, w3) in sent

    def test_right_side_symmetric(self):
        peer = build_peer(1000)
        node = peer.state.nodes[0]
        r1, r2 = NodeRef.real(1100), NodeRef.real(1200)
        node.nu.update({r1, r2})
        rec = SendRecorder()
        peer._rule4_linearize(rec)
        assert node.nu == {r1}
        assert any(
            isinstance(p, EdgeAdd) and p.target == r1 and p.endpoint == r2
            for _, p in rec.sent
        )

    def test_mirroring_to_remaining_neighbors(self):
        peer = build_peer(1000)
        node = peer.state.nodes[0]
        w1, r1 = NodeRef.real(900), NodeRef.real(1100)
        node.nu.update({w1, r1})
        rec = SendRecorder()
        peer._rule4_linearize(rec)
        mirrored = {
            p.target
            for _, p in rec.sent
            if isinstance(p, EdgeAdd) and p.endpoint == node.ref
        }
        assert mirrored == {w1, r1}

    def test_rl_rr_readded_after_strip(self):
        """The paper's Nu(ui) := Nu(ui) ∪ {rl(ui)} ∪ {rr(ui)} at the end
        of the round — the intra-round add/remove dance that keeps the
        stable state's 4-neighbor structure."""
        peer = build_peer(1000)
        node = peer.state.nodes[0]
        rl, w1 = NodeRef.real(700), NodeRef.real(900)
        node.rl = rl
        node.nu.update({rl, w1})
        rec = SendRecorder()
        peer._rule4_linearize(rec)
        assert node.nu == {w1, rl}

    def test_empty_nu_noop(self):
        peer = build_peer(1000)
        rec = SendRecorder()
        peer._rule4_linearize(rec)
        assert rec.sent == []


class TestRule5Ring:
    def test_missing_left_requests_edge_from_max_known(self):
        peer = build_peer(100)
        node = peer.state.nodes[0]
        big = NodeRef.real(50000)
        node.nu.add(big)  # right neighbor exists; no left
        rec = SendRecorder()
        peer._rule5_ring(rec)
        ring_adds = [p for _, p in rec.sent if isinstance(p, EdgeAdd) and p.kind == KIND_RING]
        assert any(p.target == big and p.endpoint == node.ref for p in ring_adds)

    def test_missing_right_requests_edge_from_min_known(self):
        peer = build_peer(50000)
        node = peer.state.nodes[0]
        small = NodeRef.real(10)
        node.nu.add(small)
        rec = SendRecorder()
        peer._rule5_ring(rec)
        ring_adds = [p for _, p in rec.sent if isinstance(p, EdgeAdd) and p.kind == KIND_RING]
        assert any(p.target == small and p.endpoint == node.ref for p in ring_adds)

    def test_converts_dominated_ring_edge_to_unmarked(self):
        """If something larger than the ring target is known, the target
        is not the maximum: demote to an unmarked introduction."""
        peer = build_peer(100)
        node = peer.state.nodes[0]
        w = NodeRef.real(30000)
        bigger = NodeRef.real(60000)
        node.nr.add(w)
        node.nu.update({bigger, NodeRef.real(50)})
        rec = SendRecorder()
        peer._rule5_ring(rec)
        assert w not in node.nr
        assert any(
            isinstance(p, EdgeAdd) and p.kind == KIND_UNMARKED and p.target == bigger and p.endpoint == w
            for _, p in rec.sent
        )

    def test_forwards_toward_minimum(self):
        peer = build_peer(100)
        node = peer.state.nodes[0]
        w = NodeRef.real(60000)
        smaller = NodeRef.real(10)
        node.nr.add(w)  # w > us: must travel toward the global min
        node.nu.update({smaller, NodeRef.real(200)})
        rec = SendRecorder()
        peer._rule5_ring(rec)
        assert w not in node.nr
        assert any(
            isinstance(p, EdgeAdd) and p.kind == KIND_RING and p.target == smaller and p.endpoint == w
            for _, p in rec.sent
        )

    def test_holds_at_extreme_and_runs_seam_exchange(self):
        """The minimum holder keeps the edge and sends the wrap
        candidate across the seam ([D6])."""
        peer = build_peer(100)
        node = peer.state.nodes[0]
        w = NodeRef.real(60000)
        node.nr.add(w)
        node.nu.add(w)  # knowledge: nothing smaller than us
        rec = SendRecorder()
        peer._rule5_ring(rec)
        assert w in node.nr  # held
        wraps = [p for _, p in rec.sent if isinstance(p, RealCandidate) and p.wrap]
        assert any(p.target == w and p.side == SIDE_RIGHT for p in wraps)

    def test_self_ring_edge_dropped(self):
        peer = build_peer(100)
        node = peer.state.nodes[0]
        node.nr.add(node.ref)
        rec = SendRecorder()
        peer._rule5_ring(rec)
        assert node.ref not in node.nr


class TestRule6Connection:
    def test_sibling_chain_created(self):
        peer = build_peer(0)
        peer.state.ensure_level(1)  # 32768
        peer.state.ensure_level(2)  # 16384
        rec = SendRecorder()
        peer._rule6_connection(rec)
        # chain in linear order: u0(0) -> u2(16384) -> u1(32768); the
        # creations are immediately forwarded/dissolved in the same rule,
        # so inspect the messages
        conn = [
            (p.target, p.endpoint)
            for _, p in rec.sent
            if isinstance(p, EdgeAdd) and p.kind in (KIND_CONNECTION, KIND_UNMARKED)
        ]
        assert conn  # chain activity happened

    def test_forward_to_largest_below_target(self):
        peer = build_peer(0)
        node = peer.state.nodes[0]
        v = NodeRef.real(1000)
        w = NodeRef.real(800)
        node.nc.add(v)
        node.nu.add(w)
        rec = SendRecorder()
        peer._rule6_connection(rec)
        assert v not in node.nc
        assert any(
            isinstance(p, EdgeAdd) and p.kind == KIND_CONNECTION and p.target == w and p.endpoint == v
            for _, p in rec.sent
        )

    def test_backward_edge_when_holder_is_largest(self):
        peer = build_peer(500)
        node = peer.state.nodes[0]
        v = NodeRef.real(1000)
        node.nc.add(v)  # we are the largest known node below v
        # suppress the sibling chain by pre-creating no extra levels
        rec = SendRecorder()
        peer._rule6_connection(rec)
        assert v not in node.nc
        assert any(
            isinstance(p, EdgeAdd) and p.kind == KIND_UNMARKED and p.target == v and p.endpoint == node.ref
            for _, p in rec.sent
        )

    def test_stuck_edge_degenerates_to_backward(self):
        """[D10]: a connection edge with no forwarding candidate resolves
        instead of freezing."""
        peer = build_peer(50000)
        node = peer.state.nodes[0]
        v = NodeRef.real(10)  # below everything we know
        node.nc.add(v)
        rec = SendRecorder()
        peer._rule6_connection(rec)
        assert v not in node.nc

    def test_self_connection_edge_dropped(self):
        peer = build_peer(100)
        node = peer.state.nodes[0]
        node.nc.add(node.ref)
        rec = SendRecorder()
        peer._rule6_connection(rec)
        assert node.ref not in node.nc


class TestPurge:
    def test_dead_refs_dropped_everywhere(self):
        dead = NodeRef.real(7)

        def oracle(ref):
            return REF_DEAD if ref.owner == 7 else REF_OK

        peer = build_peer(100, oracle=oracle)
        node = peer.state.nodes[0]
        node.nu.add(dead)
        node.nr.add(dead)
        node.nc.add(dead)
        node.rl = dead
        node.wrap_rl = dead
        peer._purge()
        assert dead not in node.nu | node.nr | node.nc
        assert node.rl is None and node.wrap_rl is None

    def test_phantom_repointed_to_owner_real(self):
        """[D11]: a ref to a non-simulated virtual node becomes a ref to
        the owner's real node — connectivity is never lost."""
        phantom = make_ref(SPACE, 7, 5)

        def oracle(ref):
            return REF_PHANTOM if ref.level == 5 else REF_OK

        peer = build_peer(100, oracle=oracle)
        node = peer.state.nodes[0]
        node.nu.add(phantom)
        peer._purge()
        assert phantom not in node.nu
        assert NodeRef.real(7) in node.nu

    def test_wrong_side_caches_cleared(self):
        peer = build_peer(100)
        node = peer.state.nodes[0]
        node.rl = NodeRef.real(200)  # claims to be left but is right
        peer._purge()
        assert node.rl is None

    def test_virtual_ref_in_real_slot_cleared(self):
        peer = build_peer(100)
        node = peer.state.nodes[0]
        node.rr = make_ref(SPACE, 300, 1)
        peer._purge()
        assert node.rr is None

    def test_self_reference_removed(self):
        peer = build_peer(100)
        node = peer.state.nodes[0]
        node.nu.add(node.ref)
        peer._purge()
        assert node.ref not in node.nu


class TestDelivery:
    def test_edge_add_kinds(self):
        peer = build_peer(100)
        node = peer.state.nodes[0]
        a, b, c = NodeRef.real(1), NodeRef.real(2), NodeRef.real(3)
        deliver(
            peer,
            EdgeAdd(node.ref, a, KIND_UNMARKED),
            EdgeAdd(node.ref, b, KIND_RING),
            EdgeAdd(node.ref, c, KIND_CONNECTION),
        )
        assert a in node.nu and b in node.nr and c in node.nc

    def test_self_edge_ignored(self):
        peer = build_peer(100)
        node = peer.state.nodes[0]
        deliver(peer, EdgeAdd(node.ref, node.ref, KIND_UNMARKED))
        assert len(node.nu) == 0

    def test_message_to_phantom_level_redirects_to_um(self):
        peer = build_peer(100)
        peer.state.ensure_level(2)
        target = make_ref(SPACE, 100, 7)  # not simulated
        a = NodeRef.real(1)
        deliver(peer, EdgeAdd(target, a, KIND_UNMARKED))
        assert a in peer.state.nodes[2].nu

    def test_misrouted_message_raises(self):
        peer = build_peer(100)
        with pytest.raises(LookupError):
            deliver(peer, EdgeAdd(NodeRef.real(999), NodeRef.real(1), KIND_UNMARKED))

    def test_unknown_kind_raises(self):
        peer = build_peer(100)
        with pytest.raises(ValueError):
            deliver(peer, EdgeAdd(peer.state.real_ref, NodeRef.real(1), "z"))


class TestLeaveIntroductions:
    def test_chains_foreign_neighbors(self):
        peer = build_peer(100)
        node = peer.state.nodes[0]
        a, b, c = NodeRef.real(10), NodeRef.real(20), NodeRef.real(30)
        node.nu.update({a, b, c})
        intros = peer.leave_introductions()
        pairs = {(i.target, i.endpoint) for i in intros}
        assert (a, b) in pairs and (b, a) in pairs
        assert (b, c) in pairs and (c, b) in pairs

    def test_own_refs_excluded(self):
        peer = build_peer(100)
        peer.state.ensure_level(1)
        node = peer.state.nodes[0]
        node.nu.add(make_ref(SPACE, 100, 1))
        node.nu.add(NodeRef.real(10))
        intros = peer.leave_introductions()
        for i in intros:
            assert i.target.owner != 100 and i.endpoint.owner != 100
