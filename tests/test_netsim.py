"""Synchronous kernel: delivery semantics, tracing, seed streams."""

from __future__ import annotations

import pytest

from repro.netsim.messages import Envelope
from repro.netsim.rng import SeedSequence
from repro.netsim.scheduler import SynchronousScheduler
from repro.netsim.trace import TraceRecorder


class Echo:
    """Test actor: records inboxes; forwards payloads per a plan."""

    def __init__(self, plan=None):
        self.plan = plan or (lambda inbox, ctx: None)
        self.inboxes = []

    def step(self, inbox, ctx):
        self.inboxes.append([e.payload for e in inbox])
        self.plan(inbox, ctx)


class TestScheduler:
    def test_message_delivered_next_round(self):
        sched = SynchronousScheduler()
        a = Echo(lambda inbox, ctx: ctx.send("b", "hi") if ctx.round_no == 0 else None)
        b = Echo()
        sched.add_actor("a", a)
        sched.add_actor("b", b)
        sched.run_round()
        assert b.inboxes == [[]]  # not visible in the sending round
        sched.run_round()
        assert b.inboxes[1] == ["hi"]

    def test_same_round_send_not_visible(self):
        """Even if the sender steps before the receiver, delivery waits."""
        sched = SynchronousScheduler()
        a = Echo(lambda inbox, ctx: ctx.send("z", "x"))
        z = Echo()
        sched.add_actor("a", a)  # "a" sorts before "z"
        sched.add_actor("z", z)
        sched.run_round()
        assert z.inboxes == [[]]

    def test_messages_to_unknown_actor_dropped(self):
        sched = SynchronousScheduler()
        sched.add_actor("a", Echo(lambda i, c: c.send("ghost", 1)))
        sched.run_round()
        assert sched.dropped_last_round == 1

    def test_removed_actor_loses_pending(self):
        sched = SynchronousScheduler()
        b = Echo()
        sched.add_actor("a", Echo(lambda i, c: c.send("b", 1)))
        sched.add_actor("b", b)
        sched.run_round()
        sched.remove_actor("b")
        sched.add_actor("b", b)
        sched.run_round()
        assert b.inboxes[-1] == []

    def test_duplicate_actor_rejected(self):
        sched = SynchronousScheduler()
        sched.add_actor("a", Echo())
        with pytest.raises(KeyError):
            sched.add_actor("a", Echo())

    def test_actor_exists_oracle(self):
        sched = SynchronousScheduler()
        seen = []
        sched.add_actor("a", Echo(lambda i, c: seen.append((c.actor_exists("a"), c.actor_exists("x")))))
        sched.run_round()
        assert seen == [(True, False)]

    def test_run_until_counts_rounds(self):
        sched = SynchronousScheduler()
        counter = {"n": 0}

        def plan(inbox, ctx):
            counter["n"] += 1

        sched.add_actor("a", Echo(plan))
        rounds = sched.run_until(lambda: counter["n"] >= 3, max_rounds=10)
        assert rounds == 3

    def test_run_until_raises_on_budget(self):
        sched = SynchronousScheduler()
        sched.add_actor("a", Echo())
        with pytest.raises(RuntimeError):
            sched.run_until(lambda: False, max_rounds=2)

    def test_run_until_zero_if_already_true(self):
        sched = SynchronousScheduler()
        assert sched.run_until(lambda: True, max_rounds=1) == 0

    def test_negative_rounds_rejected(self):
        with pytest.raises(ValueError):
            SynchronousScheduler().run(-1)

    def test_post_injects_for_next_round(self):
        sched = SynchronousScheduler()
        b = Echo()
        sched.add_actor("b", b)
        assert sched.post(Envelope("ext", "b", "ping"))
        sched.run_round()
        assert b.inboxes == [["ping"]]

    def test_post_to_missing_actor(self):
        sched = SynchronousScheduler()
        assert not sched.post(Envelope("ext", "nope", 1))

    def test_all_pending_snapshot(self):
        sched = SynchronousScheduler()
        sched.add_actor("a", Echo(lambda i, c: c.send("b", 1)))
        sched.add_actor("b", Echo())
        sched.run_round()
        pending = sched.all_pending()
        assert len(pending) == 1 and pending[0].payload == 1

    def test_round_counter(self):
        sched = SynchronousScheduler()
        sched.add_actor("a", Echo())
        sched.run(5)
        assert sched.round_no == 5

    def test_actor_keys_sorted(self):
        sched = SynchronousScheduler()
        for k in (3, 1, 2):
            sched.add_actor(k, Echo())
        assert sched.actor_keys() == [1, 2, 3]


class TestSchedulerSemanticsRegressions:
    """Kernel contracts that must hold under BOTH engines.

    The activity-tracked kernel replays quiescent actors instead of
    stepping them; these regressions pin the delivery semantics the
    protocols rely on, in both modes.
    """

    @pytest.mark.parametrize("tracking", [True, False])
    def test_post_to_unregistered_returns_false_without_raising(self, tracking):
        sched = SynchronousScheduler(activity_tracking=tracking)
        sched.add_actor("a", Echo())
        assert sched.post(Envelope("ext", "ghost", 1)) is False
        # and the failed post left no residue: the round runs normally
        sched.run_round()
        assert sched.dropped_last_round == 0

    @pytest.mark.parametrize("tracking", [True, False])
    def test_mid_round_remove_drops_mail_and_counts(self, tracking):
        """An actor removing a peer mid-round: messages already sent to
        the removed actor this round are dropped and counted."""
        sched = SynchronousScheduler(activity_tracking=tracking)

        def killer_plan(inbox, ctx):
            if sched.has_actor("victim"):
                sched.remove_actor("victim")

        victim = Echo()
        sched.add_actor("a_sender", Echo(lambda i, c: c.send("victim", "mail")))
        sched.add_actor("killer", Echo(killer_plan))
        sched.add_actor("victim", victim)
        sched.run_round()
        assert not sched.has_actor("victim")
        assert sched.dropped_last_round == 1
        assert victim.inboxes in ([], [[]])  # never saw the dropped mail

    @pytest.mark.parametrize("tracking", [True, False])
    def test_partial_activation_preserves_sleeping_inboxes_exactly(self, tracking):
        sched = SynchronousScheduler(activity_tracking=tracking)
        sleeper = Echo()
        sched.add_actor("talker", Echo(lambda i, c: c.send("sleeper", c.round_no)))
        sched.add_actor("sleeper", sleeper)
        sched.run_round()  # both step; talker's message lands for round 1
        for _ in range(3):
            sched.run_round(active={"talker"})
        # the sleeper stepped once (empty inbox) and then slept; all four
        # messages are waiting, in send order, nothing lost or reordered
        assert sleeper.inboxes == [[]]
        box = [env.payload for env in sched.all_pending() if env.target == "sleeper"]
        assert box == [0, 1, 2, 3]
        sched.run_round()
        assert sleeper.inboxes[-1] == [0, 1, 2, 3]

    def test_replayed_round_preserves_delivery_order(self):
        """Quiescent replays must deliver the same envelopes in the same
        order as executed rounds (sorted-sender concatenation)."""
        from repro.workloads.initial import build_random_network

        net = build_random_network(n=8, seed=5, incremental=True)
        net.run_until_stable(max_rounds=4000)
        before = net.scheduler.all_pending()
        net.run_round()  # fully replayed
        assert net.activity_stats()[0] == 0
        assert net.scheduler.all_pending() == before

    def test_mark_dirty_forces_execution(self):
        from repro.workloads.initial import build_random_network

        net = build_random_network(n=6, seed=9, incremental=True)
        net.run_until_stable(max_rounds=4000)
        victim = net.peer_ids[0]
        net.scheduler.mark_dirty(victim)
        net.run_round()
        executed, replayed = net.activity_stats()
        assert executed == 1 and replayed == len(net.peers) - 1

    def test_mid_round_post_to_quiescent_actor_is_delivered(self):
        """Regression: a post() issued DURING a round must not be eaten
        by a later-sorted quiescent actor's replay inbox-clear — the
        legacy kernel delivers it the same round."""

        class Quiet:
            """Probe-implementing actor that records payloads."""

            def __init__(self):
                self.got = []
                self._v = 0

            def step(self, inbox, ctx):
                self.got.extend(e.payload for e in inbox)

            def state_version(self):
                return self._v

            def state_token(self):
                return ("quiet", self._v)

        results = {}
        for tracking in (True, False):
            sched = SynchronousScheduler(activity_tracking=tracking)
            quiet = Quiet()

            def poster_plan(inbox, ctx, s=sched):
                if ctx.round_no == 2:
                    s.post(Envelope("ext", "z_quiet", "HELLO"))

            sched.add_actor("a_poster", Echo(poster_plan))
            sched.add_actor("z_quiet", quiet)
            for _ in range(5):
                sched.run_round()
            results[tracking] = list(quiet.got)
        assert "HELLO" in results[True]
        assert results[True] == results[False]

    def test_dirty_count_reports_registered_only(self):
        sched = SynchronousScheduler(activity_tracking=True)
        sched.add_actor("a", Echo())
        sched.mark_dirty("ghost")
        assert sched.dirty_count() == 1  # "a" only; ghost not registered


class TestTrace:
    def test_records_per_round(self):
        trace = TraceRecorder()
        sched = SynchronousScheduler(trace)
        sched.add_actor("a", Echo(lambda i, c: c.send("a", "x")))
        sched.run(3)
        assert len(trace) == 3
        assert trace.messages_series() == [1, 1, 1]
        assert trace.total_messages() == 3
        assert trace.peak_round_messages() == 1

    def test_clear(self):
        trace = TraceRecorder()
        trace.record_round(0, 1, 2, 0)
        trace.clear()
        assert len(trace) == 0 and trace.peak_round_messages() == 0

    def test_rounds_copy(self):
        trace = TraceRecorder()
        trace.record_round(0, 1, 2, 3)
        rounds = trace.rounds()
        assert rounds[0].sent == 2 and rounds[0].dropped == 3


class TestSeedSequence:
    def test_deterministic(self):
        assert SeedSequence(1).child("x", n=2).seed() == SeedSequence(1).child("x", n=2).seed()

    def test_children_differ(self):
        root = SeedSequence(1)
        assert root.child("a").seed() != root.child("b").seed()

    def test_kwargs_order_irrelevant(self):
        root = SeedSequence(9)
        assert root.child(a=1, b=2).seed() == root.child(b=2, a=1).seed()

    def test_root_matters(self):
        assert SeedSequence(1).child("x").seed() != SeedSequence(2).child("x").seed()

    def test_spawn_count(self):
        kids = list(SeedSequence(5).spawn(4))
        assert len({k.seed() for k in kids}) == 4

    def test_rng_streams_independent(self):
        r1 = SeedSequence(3).child("a").rng()
        r2 = SeedSequence(3).child("b").rng()
        assert [r1.random() for _ in range(3)] != [r2.random() for _ in range(3)]
