"""The documentation plane must stay honest.

Two enforcement layers, both also run by the CI docs job:

* every ``>>>`` snippet in README.md and docs/*.md is executed as a
  doctest (so quickstarts cannot rot);
* every relative Markdown link and anchor resolves
  (``tools/check_docs.py``).
"""

from __future__ import annotations

import doctest
import importlib.util
import pathlib

import pytest

ROOT = pathlib.Path(__file__).resolve().parent.parent

DOC_FILES = sorted(
    [ROOT / "README.md", *(ROOT / "docs").glob("*.md")],
)


def _load_checker():
    spec = importlib.util.spec_from_file_location(
        "check_docs", ROOT / "tools" / "check_docs.py"
    )
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


class TestDocs:
    def test_documentation_files_exist(self):
        for required in ("README.md", "docs/ARCHITECTURE.md", "docs/SCENARIOS.md"):
            assert (ROOT / required).exists(), f"{required} is missing"

    def test_readme_points_at_docs(self):
        readme = (ROOT / "README.md").read_text()
        assert "docs/ARCHITECTURE.md" in readme
        assert "docs/SCENARIOS.md" in readme

    @pytest.mark.parametrize("path", DOC_FILES, ids=lambda p: p.name)
    def test_doc_snippets_execute(self, path):
        failures, tests = doctest.testfile(
            str(path), module_relative=False, verbose=False
        )
        assert failures == 0, f"{tests - failures}/{tests} doctests passed in {path.name}"

    @pytest.mark.parametrize("path", DOC_FILES, ids=lambda p: p.name)
    def test_no_broken_links_or_anchors(self, path):
        checker = _load_checker()
        broken, _external = checker.check_file(path)
        assert not broken, "\n".join(broken)

    #: public-API modules whose docstring examples must keep executing
    DOCTEST_MODULES = (
        "repro.core.network",
        "repro.traffic.plane",
        "repro.traffic.generator",
        "repro.traffic.slo",
        "repro.chord.routing",
        "repro.dht.lookup",
        "repro.scenarios.spec",
        "repro.scenarios.library",
    )

    @pytest.mark.parametrize("module_name", DOCTEST_MODULES)
    def test_public_api_docstring_examples_execute(self, module_name):
        import importlib

        module = importlib.import_module(module_name)
        failures, tests = doctest.testmod(module, verbose=False)
        assert tests > 0, f"{module_name} lost its doctest examples"
        assert failures == 0, f"{failures}/{tests} doctests failed in {module_name}"

    def test_scenarios_doc_covers_whole_library(self):
        """Every named scenario must be documented, and vice versa."""
        from repro.scenarios import scenario_names

        text = (ROOT / "docs" / "SCENARIOS.md").read_text()
        for name in scenario_names():
            assert f"### `{name}`" in text, f"scenario {name!r} undocumented"

    def test_architecture_doc_names_every_package(self):
        text = (ROOT / "docs" / "ARCHITECTURE.md").read_text()
        src = ROOT / "src" / "repro"
        packages = sorted(
            p.name for p in src.iterdir() if p.is_dir() and (p / "__init__.py").exists()
        )
        for package in packages:
            assert f"{package}/" in text, f"package {package!r} missing from the module map"
