"""The resilient request plane: seeded retries, hedged probes,
r-redundant routing, and their determinism contracts.

Four contract families, mirroring the architecture notes:

* **off-equivalence** — a plane constructed with every resilience knob
  at its default is bit-for-bit the pre-resilience plane: lockstep
  fingerprints and identical summaries against a knob-free twin;
* **retry-edge races** — late replies from superseded attempts, replies
  racing a backoff re-registration on the deadline wheel, budgets
  exhausting, and retries scheduled beyond a drain's round budget must
  all resolve without double-counting an op;
* **determinism** — identical seeds produce identical attempt
  schedules, hedge decisions, and collector censuses on every
  simulation kernel (full / incremental / columnar), under a crash wave
  (Hypothesis-driven);
* **streaming differential** — the resilience counters of a streaming
  collector agree exactly with list mode on the same seeded campaign.
"""

from __future__ import annotations

import random
from dataclasses import replace

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.idspace.keys import key_id
from repro.traffic import TrafficPlane, WorkloadGenerator
from repro.traffic.messages import (
    OP_LOOKUP,
    OUT_TIMEOUT,
    ST_DEAD_END,
    ST_LOOP,
    ST_OK,
    LookupReply,
)
from repro.traffic.slo import IssuedOp, SLOCollector
from repro.workloads.initial import build_random_network

TRUTH = 42


def collector(**kw) -> SLOCollector:
    return SLOCollector(lambda kid: TRUTH, **kw)


def issued(op_id, deadline, attempt=1, origin=1, kid=9, issue_round=0, span=0):
    return IssuedOp(
        op_id=op_id, op=OP_LOOKUP, origin=origin, kid=kid,
        issue_round=issue_round, deadline=deadline,
        attempt=attempt, deadline_span=span,
    )


def reply(op_id, status=ST_OK, attempt=1, hedge=False, owner=TRUTH, kid=9, hops=3):
    return LookupReply(
        op=OP_LOOKUP, op_id=op_id, origin=1, kid=kid,
        status=status, owner=owner, hops=hops, attempt=attempt, hedge=hedge,
    )


def stable_plane(n=12, seed=7, **plane_kw):
    """A stabilized random network with an attached (resilient) plane."""
    net = build_random_network(n=n, seed=seed, incremental=True)
    net.run_until_stable(max_rounds=5000)
    return net, TrafficPlane(net, **plane_kw)


# ----------------------------------------------------------------------
# off-equivalence: knobs at defaults == the pre-resilience plane
# ----------------------------------------------------------------------
class TestOffEquivalence:
    def _campaign(self, plane_kw):
        """One seeded churny campaign; returns (fingerprints, summary)."""
        net = build_random_network(n=12, seed=31, incremental=True)
        net.run_until_stable(max_rounds=5000)
        plane = TrafficPlane(net, **plane_kw)
        WorkloadGenerator(
            plane, rate=4.0, op_mix=((OP_LOOKUP, 1.0),), seed=5, deadline=16
        )
        prints = []
        for r in range(20):
            if r == 6:
                net.crash(net.peer_ids[3])
            plane.run_round()
            prints.append(net.fingerprint())
        plane.generator.active = False
        plane.drain()
        prints.append(net.fingerprint())
        return prints, plane.collector.summary()

    def test_max_attempts_1_is_bitforbit_todays_plane(self):
        """Every knob passed at its default (plus a non-zero retry seed)
        must reproduce the knob-free plane exactly: same per-round
        configuration fingerprints, same summary — the contract that
        keeps every historical baseline valid unregenerated."""
        base_prints, base_summary = self._campaign({})
        knob_prints, knob_summary = self._campaign(
            dict(
                max_attempts=1,
                retry_backoff=9,
                hedge_after=None,
                route_redundancy=1,
                retry_seed=12345,
            )
        )
        assert base_prints == knob_prints
        assert base_summary == knob_summary

    def test_disabled_plane_has_no_resilience_keys(self):
        _, summary = self._campaign({})
        for key in ("retries", "hedges_issued", "attempts"):
            assert key not in summary

    def test_enabled_plane_reports_resilience_keys(self):
        _, summary = self._campaign(dict(max_attempts=2))
        for key in (
            "retries", "stale_replies", "hedges_issued", "hedge_wins",
            "first_attempt_success", "eventual_success", "attempts",
        ):
            assert key in summary


# ----------------------------------------------------------------------
# retry-edge races (collector-level, adversarial ledgers)
# ----------------------------------------------------------------------
class TestRetryEdgeRaces:
    def _retrying(self, max_attempts=3, backoff=5):
        """A collector wired to a minimal deterministic retry handler."""
        coll = collector()
        coll.resilience_enabled = True

        def retry(op, round_no):
            if op.attempt >= max_attempts:
                return None
            coll.retries += 1
            return replace(
                op, attempt=op.attempt + 1, deadline=round_no + backoff
            )

        coll.retry_handler = retry
        return coll

    def test_stale_failure_reply_after_retry_is_suppressed(self):
        """The late original's loop reply must not complete (or retry)
        the op while attempt 2 is still racing."""
        coll = self._retrying()
        coll.register(issued(1, deadline=10))
        coll.expire(10)  # attempt 1 times out -> attempt 2 outstanding
        assert coll.outstanding[1].attempt == 2
        coll.on_reply(reply(1, status=ST_LOOP, attempt=1), 12)
        assert coll.stale_replies == 1
        assert 1 in coll.outstanding  # attempt 2 still racing
        assert coll.completed_count == 0
        coll.on_reply(reply(1, status=ST_OK, attempt=2), 14)
        assert coll.completed_count == 1
        assert coll.completed[0].outcome == "ok"
        assert coll.completed[0].attempt == 2

    def test_stale_success_reply_always_wins(self):
        """A successful answer is a successful answer, even from the
        superseded original: the op completes once, with attempt 1."""
        coll = self._retrying()
        coll.register(issued(1, deadline=10))
        coll.expire(10)
        coll.on_reply(reply(1, status=ST_OK, attempt=1), 11)
        assert coll.completed_count == 1
        assert coll.completed[0].attempt == 1
        assert 1 not in coll.outstanding
        # the retried probe's own reply is now late, not a completion
        coll.on_reply(reply(1, status=ST_OK, attempt=2), 13)
        assert coll.completed_count == 1
        assert coll.late_replies == 1

    def test_reply_racing_rebucket_leaves_wheel_consistent(self):
        """An op retried at round 10 leaves a stale entry in the round-10
        bucket; after its attempt-2 reply completes it, draining the
        stale bucket must not resurrect or re-time-out the op."""
        coll = self._retrying(backoff=7)
        coll.register(issued(1, deadline=10))
        coll.register(issued(2, deadline=10))
        coll.expire(10)  # both rebucketed to deadline 17
        coll.on_reply(reply(1, status=ST_OK, attempt=2), 12)
        assert coll.completed_count == 1
        # draining the round-17 bucket skips completed op 1 entirely;
        # op 2 still has budget, so it retries (attempt 3) — no timeout
        assert coll.expire(17) == 0
        assert coll.outstanding[2].attempt == 3
        # the final deadline passes with no reply: exactly one timeout,
        # carrying the attempt the ledger holds
        assert coll.expire(24) == 1
        assert coll.completed_count == 2
        by_id = {c.op_id: c for c in coll.completed}
        assert by_id[2].outcome == OUT_TIMEOUT
        assert by_id[2].attempt == 3

    def test_rebucketed_op_skipped_by_stale_bucket_sweep(self):
        """The expiry sweep must skip ops whose *current* deadline lies
        beyond the due bucket (the lazily-unlinked retry entry)."""
        coll = self._retrying(max_attempts=2, backoff=20)
        coll.register(issued(1, deadline=5))
        coll.expire(5)  # retried: deadline now 25
        assert coll.outstanding[1].deadline == 25
        # sweeping rounds 6..24 touches nothing
        assert coll.expire(24) == 0
        assert coll.completed_count == 0

    def test_budget_exhaustion_times_out_with_final_attempt(self):
        coll = self._retrying(max_attempts=3, backoff=4)
        coll.register(issued(1, deadline=4))
        coll.expire(4)   # -> attempt 2, deadline 8
        coll.expire(8)   # -> attempt 3, deadline 12
        assert coll.expire(12) == 1  # budget spent: terminal timeout
        assert coll.completed[0].outcome == OUT_TIMEOUT
        assert coll.completed[0].attempt == 3
        assert coll.attempts_histogram == {3: 1}
        assert coll.retries == 2

    def test_inband_failure_reply_triggers_retry(self):
        """A dead_end reply from the current attempt consults the retry
        handler exactly like a deadline expiry."""
        coll = self._retrying()
        coll.register(issued(1, deadline=30))
        coll.on_reply(reply(1, status=ST_DEAD_END, attempt=1), 3)
        assert 1 in coll.outstanding
        assert coll.outstanding[1].attempt == 2
        assert coll.completed_count == 0
        assert coll.retries == 1


# ----------------------------------------------------------------------
# plane-level: drain diagnostics and retries beyond the budget
# ----------------------------------------------------------------------
class TestDrainDiagnostic:
    def test_retry_scheduled_past_drain_budget_raises_diagnostic(self):
        """A retry in a backoff longer than the drain budget is a stuck
        ledger: drain must raise the diagnostic naming the op, its
        attempt, and the relaunch round — not a bare count."""
        net, plane = stable_plane(
            n=12, seed=7, default_deadline=4, max_attempts=3, retry_backoff=400
        )
        # black-hole every inter-peer wire (self-deliveries exempt, so
        # the origin-to-origin injection still lands): the first attempt
        # can never be answered and must time out into its backoff
        net.scheduler.set_drop_filter(lambda env: env.sender != env.target)
        kid = key_id("stuck-key", net.space)
        owner = plane.true_owner(kid)
        origin = next(p for p in net.peer_ids if p != owner)
        op_id = plane.lookup("stuck-key", origin)
        with pytest.raises(RuntimeError) as err:
            plane.drain(max_rounds=12)
        message = str(err.value)
        assert f"op {op_id}" in message
        assert "in backoff" in message
        assert "relaunch at r" in message

    def test_drain_completes_when_backoff_fits_budget(self):
        net, plane = stable_plane(
            n=12, seed=7, default_deadline=6, max_attempts=2, retry_backoff=3
        )
        rng = random.Random(0)
        for i in range(10):
            plane.lookup(f"k{i}", rng.choice(net.peer_ids))
        plane.drain()
        assert not plane.collector.outstanding
        assert plane.collector.completed_count == 10


class TestHedges:
    def test_hedges_never_double_count(self):
        """With aggressive hedging every op still completes exactly once,
        and the hedge counters stay mutually consistent."""
        net, plane = stable_plane(n=16, seed=3, hedge_after=1, default_deadline=24)
        rng = random.Random(1)
        for i in range(40):
            plane.lookup(f"h{i}", rng.choice(net.peer_ids))
        plane.drain()
        coll = plane.collector
        assert coll.completed_count == 40
        assert not coll.outstanding
        assert coll.hedges_issued > 0  # multi-hop ops outlive a 1-round delay
        assert 0 <= coll.hedge_wins <= coll.hedges_issued
        summary = coll.summary()
        assert summary["hedges_issued"] == coll.hedges_issued
        assert summary["hedge_wins"] == coll.hedge_wins


# ----------------------------------------------------------------------
# determinism across kernels (Hypothesis)
# ----------------------------------------------------------------------
def _resilient_campaign(seed: int, engine: str, mode: str = "list"):
    """A crash-wave campaign under the fully armed plane; returns the
    (attempt_log, summary, final fingerprint) triple that must be a
    pure function of the seed."""
    net = build_random_network(n=10, seed=seed % 1000 + 1, engine=engine)
    net.run_until_stable(max_rounds=5000)
    plane = TrafficPlane(
        net,
        default_deadline=8,
        collector_mode=mode,
        max_attempts=3,
        retry_backoff=3,
        hedge_after=4,
        route_redundancy=2,
        retry_seed=seed,
    )
    plane.attempt_log = []
    WorkloadGenerator(
        plane, rate=3.0, op_mix=((OP_LOOKUP, 1.0),), seed=seed, deadline=8
    )
    crash_rng = random.Random(seed + 77)
    for r in range(18):
        if r == 5:
            for victim in crash_rng.sample(net.peer_ids, 3):
                if len(net.peers) > 2:
                    net.crash(victim)
        plane.run_round()
    plane.generator.active = False
    plane.drain(max_rounds=2048)
    return plane.attempt_log, plane.collector.summary(), net.fingerprint()


class TestKernelDeterminism:
    @settings(max_examples=4, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=2**16))
    def test_identical_seeds_identical_schedules_across_engines(self, seed):
        """One seed ⇒ one attempt schedule, one hedge decision stream,
        one census — on every kernel, under a crash wave."""
        log_full, sum_full, fp_full = _resilient_campaign(seed, "full")
        log_inc, sum_inc, fp_inc = _resilient_campaign(seed, "incremental")
        log_col, sum_col, fp_col = _resilient_campaign(seed, "columnar")
        assert log_full == log_inc == log_col
        assert sum_full == sum_inc == sum_col
        assert fp_full == fp_inc == fp_col

    def test_same_seed_reruns_identical(self):
        a = _resilient_campaign(99, "incremental")
        b = _resilient_campaign(99, "incremental")
        assert a == b


# ----------------------------------------------------------------------
# streaming == list on the resilience counters
# ----------------------------------------------------------------------
class TestStreamingResilienceDifferential:
    RESILIENCE_KEYS = (
        "retries", "stale_replies", "hedges_issued", "hedge_wins",
        "first_attempt_success", "eventual_success", "attempts",
    )

    @pytest.mark.parametrize("seed", [3, 11])
    def test_resilience_counters_match_exactly(self, seed):
        _, list_summary, _ = _resilient_campaign(seed, "incremental", mode="list")
        _, stream_summary, _ = _resilient_campaign(
            seed, "incremental", mode="streaming"
        )
        assert set(list_summary) == set(stream_summary)
        for key in self.RESILIENCE_KEYS:
            assert list_summary[key] == stream_summary[key], key
        for key in ("issued", "completed", "outcomes", "violations"):
            assert list_summary[key] == stream_summary[key], key
