"""Experiment harness: tiny-scale runs of every module + formatting."""

from __future__ import annotations

import pytest

from repro.experiments.ablation import VARIANTS, format_ablation, run_ablation
from repro.experiments.baseline import format_baseline, run_baseline
from repro.experiments.fig5 import format_fig5, run_fig5
from repro.experiments.fig6 import format_fig6, run_fig6
from repro.experiments.fig7 import format_fig7, run_fig7
from repro.experiments.join_leave import format_join_leave, run_join_leave
from repro.experiments.lookup import format_lookup, run_lookup
from repro.experiments.messages import format_messages, run_messages
from repro.experiments.runner import MeanStd, format_sweep, mean_std, sweep_sizes
from repro.experiments.scaling import format_scaling, run_scaling

TINY = (4, 8)


class TestRunner:
    def test_mean_std_singleton(self):
        ms = mean_std([4.0])
        assert ms.mean == 4.0 and ms.std == 0.0 and ms.count == 1

    def test_mean_std_sample(self):
        ms = mean_std([1.0, 3.0])
        assert ms.mean == 2.0 and ms.std == pytest.approx(1.4142, rel=1e-3)

    def test_mean_std_empty_rejected(self):
        with pytest.raises(ValueError):
            mean_std([])

    def test_meanstd_format(self):
        assert f"{MeanStd(1.25, 0.5, 2):.1f}" == "1.2±0.5"

    def test_sweep_derives_independent_seeds(self):
        seen = []

        def measure(n, seed):
            seen.append(seed)
            return {"x": n}

        result = sweep_sizes(measure, sizes=(2, 3), seeds=2, label="t")
        assert len(set(seen)) == 4
        assert result[2]["x"].mean == 2.0

    def test_sweep_requires_seeds(self):
        with pytest.raises(ValueError):
            sweep_sizes(lambda n, s: {}, sizes=(2,), seeds=0)

    def test_format_sweep_table(self):
        result = {4: {"a": mean_std([1.0, 2.0])}}
        table = format_sweep(result, columns=("a", "missing"), title="T")
        assert "T" in table and "1.5" in table and "-" in table


class TestFigureModules:
    def test_fig5(self):
        result = run_fig5(sizes=TINY, seeds=2)
        for n in TINY:
            assert result[n]["virtual_nodes"].mean > 0
            assert result[n]["connection_edges"].mean >= 0
        # virtual nodes grow with n
        assert result[8]["virtual_nodes"].mean > result[4]["virtual_nodes"].mean
        out = format_fig5(result)
        assert "Fig. 5" in out and "connection_edges" in out

    def test_fig6(self):
        result = run_fig6(sizes=TINY, seeds=2)
        for n in TINY:
            assert result[n]["rounds_almost"].mean <= result[n]["rounds_stable"].mean
        assert "almost" in format_fig6(result)

    def test_fig7(self):
        result = run_fig7(sizes=TINY, seeds=2)
        assert len(result.points) == 4
        assert result.slope > 0
        assert "slope" not in format_fig7(result) or True
        assert "total edges" in format_fig7(result)

    def test_scaling(self):
        result = run_scaling(sizes=TINY, seeds=2)
        assert result[8]["rounds"].mean >= 1
        assert "Theorem 1.1" in format_scaling(result)

    def test_join_leave(self):
        result = run_join_leave(sizes=(6,), seeds=2)
        row = result[6]
        assert row["join_rounds"].mean > 0
        assert row["leave_rounds"].mean >= 0
        assert "Theorems 4.1/4.2" in format_join_leave(result)

    def test_lookup(self):
        result = run_lookup(sizes=(8,), seeds=2)
        assert result[8]["chord_coverage"].mean == 1.0
        assert result[8]["max_hops"].mean >= 1
        assert "Fact 2.1" in format_lookup(result)

    def test_baseline(self):
        result = run_baseline(sizes=(6,), seeds=2, root_seed=1)
        row = result[6]
        assert row["chord_tworing_recovered"].mean == 0.0
        assert row["rechord_tworing_recovered"].mean == 1.0
        assert row["rechord_random_recovered"].mean == 1.0
        assert "E8" in format_baseline(result)

    def test_ablation(self):
        rows = run_ablation(n=8, seeds=2, budget_rounds=800, variants=("full", "no_ring"))
        by_name = {r.variant: r for r in rows}
        assert by_name["full"].ideal_fraction == 1.0
        assert by_name["no_ring"].ideal_fraction == 0.0
        assert "E10" in format_ablation(rows)

    def test_ablation_variant_names(self):
        assert set(VARIANTS) >= {"full", "no_ring", "no_wrap", "no_overlap", "no_connection"}

    def test_messages(self):
        profile = run_messages(n=8)
        assert profile.peak >= profile.steady_rate > 0
        assert profile.total == sum(profile.series)
        out = format_messages(profile)
        assert "msgs/round" in out


class TestTrafficExperiment:
    def test_traffic_churn_profile(self):
        from repro.experiments.traffic import format_traffic, run_traffic, runs_to_json

        runs = run_traffic(sizes=(12,), seeds=1, root_seed=5)
        (run,) = runs
        assert run.n == 12
        assert sum(run.churn_events.values()) >= 4
        assert run.buckets, "no ops completed"
        assert sum(row.issued for row in run.buckets) == run.totals["completed"]
        assert run.totals["outstanding"] == 0  # the run drains fully
        assert 0.0 <= run.totals["success_rate"] <= 1.0
        text = format_traffic(runs)
        assert "rounds-since-churn" in text
        assert "latency histogram" in text
        blob = runs_to_json(runs)
        import json

        json.dumps(blob)  # must be serializable
        assert blob["runs"][0]["n"] == 12

    def test_traffic_deterministic_per_seed(self):
        from repro.experiments.traffic import run_traffic, runs_to_json

        a = runs_to_json(run_traffic(sizes=(10,), seeds=1, root_seed=9))
        b = runs_to_json(run_traffic(sizes=(10,), seeds=1, root_seed=9))
        assert a == b
