"""CLI wiring (python -m repro / rechord console script)."""

from __future__ import annotations

import pytest

from repro.cli import main


class TestCli:
    def test_fig6_tiny(self, capsys):
        code = main(["fig6", "--sizes", "4", "--seeds", "1"])
        captured = capsys.readouterr()
        assert code == 0
        assert "Fig. 6" in captured.out

    def test_lookup_tiny(self, capsys):
        code = main(["lookup", "--sizes", "6", "--seeds", "1"])
        assert code == 0
        assert "Fact 2.1" in capsys.readouterr().out

    def test_messages(self, capsys):
        code = main(["messages", "--n", "6"])
        assert code == 0
        assert "message complexity" in capsys.readouterr().out

    def test_root_seed_changes_nothing_structural(self, capsys):
        assert main(["--root-seed", "77", "fig6", "--sizes", "4", "--seeds", "1"]) == 0

    def test_economy_tiny(self, capsys):
        code = main(["economy", "--sizes", "6", "--seeds", "1"])
        assert code == 0
        assert "economical" in capsys.readouterr().out

    def test_asynchrony_tiny(self, capsys):
        code = main(["asynchrony", "--sizes", "5", "--seeds", "1"])
        assert code == 0
        assert "activation" in capsys.readouterr().out

    def test_usability_tiny(self, capsys):
        code = main(["usability", "--n", "8"])
        assert code == 0
        assert "Routability" in capsys.readouterr().out

    def test_phases_tiny(self, capsys):
        code = main(["phases", "--sizes", "5", "--seeds", "1"])
        assert code == 0
        assert "Lemmas" in capsys.readouterr().out

    def test_traffic_tiny(self, capsys):
        code = main(["traffic", "--sizes", "10", "--seeds", "1"])
        assert code == 0
        out = capsys.readouterr().out
        assert "rounds-since-churn" in out
        assert "violations" in out

    def test_scenario_list(self, capsys):
        code = main(["scenario", "--list"])
        assert code == 0
        out = capsys.readouterr().out
        # the acceptance bar: at least eight named scenarios are listed
        from repro.scenarios import scenario_names

        names = scenario_names()
        assert len(names) >= 8
        for name in names:
            assert name in out
        assert "docs/SCENARIOS.md" in out

    def test_scenario_run_tiny(self, capsys):
        code = main(["scenario", "seam-crash", "--n", "10", "--seed", "3"])
        assert code == 0
        out = capsys.readouterr().out
        assert "Scenario: seam-crash" in out
        assert "recovery in" in out
        assert "traffic:" in out

    def test_scenario_json_output(self, capsys):
        import json

        code = main(["scenario", "flash-crowd", "--n", "10", "--seed", "3", "--json"])
        assert code == 0
        report = json.loads(capsys.readouterr().out[: -len("\n\n")])
        assert report["name"] == "flash-crowd"
        assert report["stable"] is True

    def test_scenario_from_spec_file(self, capsys, tmp_path):
        from repro.scenarios import make_scenario

        path = tmp_path / "spec.json"
        path.write_text(make_scenario("crash-wave", n=10, seed=4).to_json())
        code = main(["scenario", "--spec", str(path)])
        assert code == 0
        assert "Scenario: crash-wave" in capsys.readouterr().out

    def test_scenario_requires_name_or_flag(self):
        with pytest.raises(SystemExit):
            main(["scenario"])

    def test_unknown_command_rejected(self):
        with pytest.raises(SystemExit):
            main(["frobnicate"])

    def test_requires_command(self):
        with pytest.raises(SystemExit):
            main([])
