"""CLI wiring (python -m repro / rechord console script)."""

from __future__ import annotations

import pytest

from repro.cli import main


class TestCli:
    def test_fig6_tiny(self, capsys):
        code = main(["fig6", "--sizes", "4", "--seeds", "1"])
        captured = capsys.readouterr()
        assert code == 0
        assert "Fig. 6" in captured.out

    def test_lookup_tiny(self, capsys):
        code = main(["lookup", "--sizes", "6", "--seeds", "1"])
        assert code == 0
        assert "Fact 2.1" in capsys.readouterr().out

    def test_messages(self, capsys):
        code = main(["messages", "--n", "6"])
        assert code == 0
        assert "message complexity" in capsys.readouterr().out

    def test_root_seed_changes_nothing_structural(self, capsys):
        assert main(["--root-seed", "77", "fig6", "--sizes", "4", "--seeds", "1"]) == 0

    def test_economy_tiny(self, capsys):
        code = main(["economy", "--sizes", "6", "--seeds", "1"])
        assert code == 0
        assert "economical" in capsys.readouterr().out

    def test_asynchrony_tiny(self, capsys):
        code = main(["asynchrony", "--sizes", "5", "--seeds", "1"])
        assert code == 0
        assert "activation" in capsys.readouterr().out

    def test_usability_tiny(self, capsys):
        code = main(["usability", "--n", "8"])
        assert code == 0
        assert "Routability" in capsys.readouterr().out

    def test_phases_tiny(self, capsys):
        code = main(["phases", "--sizes", "5", "--seeds", "1"])
        assert code == 0
        assert "Lemmas" in capsys.readouterr().out

    def test_traffic_tiny(self, capsys):
        code = main(["traffic", "--sizes", "10", "--seeds", "1"])
        assert code == 0
        out = capsys.readouterr().out
        assert "rounds-since-churn" in out
        assert "violations" in out

    def test_unknown_command_rejected(self):
        with pytest.raises(SystemExit):
            main(["frobnicate"])

    def test_requires_command(self):
        with pytest.raises(SystemExit):
            main([])
