"""Section 4 — joins, graceful leaves and crashes on a stable network."""

from __future__ import annotations

import random

import pytest

from repro.workloads.churn import ChurnEvent, ChurnSchedule, apply_event
from repro.workloads.initial import random_peer_ids
from tests.conftest import stabilized

MAX_ROUNDS = 5000


def fresh_id(net, rng) -> int:
    new = random_peer_ids(1, rng, net.space)[0]
    while new in net.peers:
        new = random_peer_ids(1, rng, net.space)[0]
    return new


class TestJoin:
    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_join_restabilizes_to_ideal(self, seed):
        net = stabilized(12, seed=seed)
        rng = random.Random(seed)
        new_id = fresh_id(net, rng)
        net.join(new_id, rng.choice(net.peer_ids))
        net.run_until_stable(max_rounds=MAX_ROUNDS)
        assert new_id in net.peers
        assert net.matches_ideal(), net.ideal_mismatches(limit=5)

    def test_join_into_singleton(self):
        net = stabilized(1, seed=0)
        rng = random.Random(0)
        new_id = fresh_id(net, rng)
        net.join(new_id, net.peer_ids[0])
        net.run_until_stable(max_rounds=MAX_ROUNDS)
        assert net.matches_ideal()

    def test_join_requires_live_gateway(self):
        net = stabilized(3, seed=0)
        with pytest.raises(KeyError):
            net.join(12345, gateway_id=999999)

    def test_join_duplicate_id_rejected(self):
        net = stabilized(3, seed=0)
        with pytest.raises(ValueError):
            net.join(net.peer_ids[0], net.peer_ids[1])

    def test_join_cost_polylog(self):
        """Theorem 4.1: far fewer rounds than fresh stabilization."""
        net = stabilized(40, seed=3)
        rng = random.Random(3)
        new_id = fresh_id(net, rng)
        net.join(new_id, rng.choice(net.peer_ids))
        report = net.run_until_stable(max_rounds=MAX_ROUNDS)
        # log2(41)^2 ≈ 29; generous factor over it, but well below n
        assert report.rounds_to_stable <= 80

    def test_sequential_joins(self):
        net = stabilized(6, seed=4)
        rng = random.Random(4)
        for _ in range(3):
            new_id = fresh_id(net, rng)
            net.join(new_id, rng.choice(net.peer_ids))
            net.run_until_stable(max_rounds=MAX_ROUNDS)
        assert len(net.peers) == 9
        assert net.matches_ideal()


class TestLeaveAndCrash:
    @pytest.mark.parametrize("seed", [0, 1])
    def test_graceful_leave_restabilizes(self, seed):
        net = stabilized(12, seed=seed)
        victim = net.peer_ids[5]
        net.leave(victim)
        net.run_until_stable(max_rounds=MAX_ROUNDS)
        assert victim not in net.peers
        assert net.matches_ideal()

    @pytest.mark.parametrize("seed", [0, 1])
    def test_crash_restabilizes(self, seed):
        net = stabilized(12, seed=seed)
        victim = net.peer_ids[7]
        net.crash(victim)
        net.run_until_stable(max_rounds=MAX_ROUNDS)
        assert net.matches_ideal()

    def test_crash_of_extreme_peer(self):
        """Crashing the ring-edge holder exercises seam repair."""
        net = stabilized(10, seed=2)
        net.crash(net.peer_ids[-1])
        net.run_until_stable(max_rounds=MAX_ROUNDS)
        assert net.matches_ideal()
        net2 = stabilized(10, seed=3)
        net2.crash(net2.peer_ids[0])
        net2.run_until_stable(max_rounds=MAX_ROUNDS)
        assert net2.matches_ideal()

    def test_multiple_simultaneous_crashes(self):
        net = stabilized(14, seed=5)
        for victim in net.peer_ids[3:6]:
            net.crash(victim)
        net.run_until_stable(max_rounds=MAX_ROUNDS)
        assert len(net.peers) == 11
        assert net.matches_ideal()

    def test_leave_unknown_peer_raises(self):
        net = stabilized(3, seed=0)
        with pytest.raises(KeyError):
            net.leave(424242)
        with pytest.raises(KeyError):
            net.crash(424242)

    def test_leave_cheaper_than_fresh_stabilization(self):
        """Theorem 4.2: leaves repair in O(log n) rounds."""
        net = stabilized(40, seed=6)
        fresh = stabilized(40, seed=7)  # reference cost exists
        victim = net.peer_ids[20]
        net.leave(victim)
        report = net.run_until_stable(max_rounds=MAX_ROUNDS)
        assert report.rounds_to_stable <= 40


class TestChurnSchedules:
    def test_random_schedule_applies_cleanly(self):
        net = stabilized(10, seed=8)
        schedule = ChurnSchedule.random(net, events=6, seed=8)
        assert len(schedule) == 6
        for event in schedule:
            apply_event(net, event)
            net.run_until_stable(max_rounds=MAX_ROUNDS)
        assert net.matches_ideal()

    def test_schedule_never_empties_network(self):
        net = stabilized(3, seed=9)
        schedule = ChurnSchedule.random(net, events=20, seed=9, join_prob=0.1)
        alive = set(net.peer_ids)
        for ev in schedule:
            if ev.kind == "join":
                alive.add(ev.peer_id)
            else:
                alive.discard(ev.peer_id)
            assert len(alive) >= 1

    def test_join_event_requires_gateway(self):
        net = stabilized(3, seed=0)
        with pytest.raises(ValueError):
            apply_event(net, ChurnEvent("join", 123, gateway_id=None))

    def test_burst_churn_then_recovery(self):
        """A burst of mixed events applied without intermediate
        stabilization still recovers (the overlay stays weakly
        connected through graceful leaves and purging)."""
        net = stabilized(12, seed=10)
        rng = random.Random(10)
        net.crash(net.peer_ids[2])
        net.leave(net.peer_ids[5])
        new_id = fresh_id(net, rng)
        net.join(new_id, net.peer_ids[0])
        net.run_until_stable(max_rounds=MAX_ROUNDS)
        assert net.matches_ideal()
