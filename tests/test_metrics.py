"""Metrics collection consistency (feeds Figs. 5 and 7)."""

from __future__ import annotations

from repro.core import metrics as metrics_mod
from repro.core.ideal import compute_ideal
from repro.graphs.digraph import EdgeKind
from tests.conftest import stabilized


class TestCollect:
    def test_virtual_nodes_match_ideal(self):
        net = stabilized(12, seed=0)
        ideal = compute_ideal(net.space, net.peer_ids)
        m = metrics_mod.collect(net)
        assert m.real_nodes == 12
        assert m.virtual_nodes == ideal.virtual_nodes
        assert m.total_nodes == ideal.total_nodes

    def test_edge_totals_add_up(self):
        net = stabilized(10, seed=1)
        m = metrics_mod.collect(net)
        assert m.normal_edges == m.unmarked_edges + m.ring_edges + m.real_pointer_edges
        assert m.total_edges == m.normal_edges + m.connection_edges

    def test_stable_state_has_two_ring_edges(self):
        net = stabilized(10, seed=2)
        m = metrics_mod.collect(net, include_pending=False)
        assert m.ring_edges == 2

    def test_unmarked_edges_match_ideal_nu(self):
        net = stabilized(10, seed=3)
        ideal = compute_ideal(net.space, net.peer_ids)
        m = metrics_mod.collect(net, include_pending=False)
        want = sum(len(t) for t in ideal.nu.values())
        assert m.unmarked_edges == want

    def test_pending_included_vs_excluded(self):
        net = stabilized(10, seed=4)
        with_pending = metrics_mod.collect(net, include_pending=True)
        without = metrics_mod.collect(net, include_pending=False)
        assert with_pending.total_edges >= without.total_edges

    def test_wrap_pointers_counted_as_real_pointer_edges(self):
        net = stabilized(10, seed=5)
        m = metrics_mod.collect(net, include_pending=False)
        want = sum(
            len(node.wrap_refs())
            for peer in net.peers.values()
            for node in peer.state.nodes.values()
        )
        assert m.real_pointer_edges == want
        assert want >= 1  # the seam always needs at least one wrap pointer

    def test_snapshot_kinds_consistent(self):
        net = stabilized(8, seed=6)
        g = net.snapshot(include_pending=False)
        m = metrics_mod.collect(net, include_pending=False)
        assert g.edge_count(EdgeKind.UNMARKED) == m.unmarked_edges
        assert g.edge_count(EdgeKind.RING) == m.ring_edges
        assert g.edge_count(EdgeKind.CONNECTION) == m.connection_edges
