"""Phase instrumentation and visualization."""

from __future__ import annotations

import pytest

from repro.analysis.phases import (
    PHASES,
    PhaseTracker,
    phase_predicates,
)
from repro.analysis.viz import ascii_ring, to_dot
from repro.core.ideal import compute_ideal
from repro.workloads.initial import build_random_network
from tests.conftest import stabilized


class TestPhasePredicates:
    def test_all_hold_in_stable_state(self):
        net = stabilized(10, seed=0)
        ideal = compute_ideal(net.space, net.peer_ids)
        for name, predicate in phase_predicates().items():
            assert predicate(net, ideal), f"phase {name} must hold when stable"

    def test_initial_state_fails_later_phases(self):
        net = build_random_network(n=10, seed=0)
        ideal = compute_ideal(net.space, net.peer_ids)
        preds = phase_predicates()
        assert not preds["linearize"](net, ideal)
        assert not preds["ring"](net, ideal)
        assert not preds["cleanup"](net, ideal)

    def test_singleton_trivially_ringless_phases(self):
        net = build_random_network(n=1, seed=0)
        net.run_until_stable(max_rounds=100)
        ideal = compute_ideal(net.space, net.peer_ids)
        for name, predicate in phase_predicates().items():
            assert predicate(net, ideal)


class TestPhaseTracker:
    def test_completion_order_matches_proof(self):
        """Later phases cannot complete before the cleanup phase begins
        to hold; cleanup coincides with full stabilization."""
        net = build_random_network(n=14, seed=1)
        tracker = PhaseTracker(net)
        report = tracker.run_until_stable(max_rounds=5000)
        for name in PHASES:
            assert report.completion[name] is not None
        # cleanup is the last phase to complete
        cleanup = report.completion["cleanup"]
        for name in PHASES:
            assert report.completion[name] <= cleanup

    def test_connection_before_cleanup(self):
        net = build_random_network(n=14, seed=2)
        tracker = PhaseTracker(net)
        report = tracker.run_until_stable(max_rounds=5000)
        assert report.completion["connection"] <= report.completion["cleanup"]

    def test_series_lengths_match_rounds(self):
        net = build_random_network(n=8, seed=3)
        tracker = PhaseTracker(net)
        report = tracker.run_until_stable(max_rounds=5000)
        for name in PHASES:
            assert len(tracker.series(name)) == report.rounds_executed + 1

    def test_as_row_is_numeric(self):
        net = build_random_network(n=8, seed=4)
        tracker = PhaseTracker(net)
        report = tracker.run_until_stable(max_rounds=5000)
        row = report.as_row()
        assert set(row) == set(PHASES)
        assert all(isinstance(v, float) for v in row.values())

    def test_budget_exceeded_raises(self):
        net = build_random_network(n=10, seed=5)
        tracker = PhaseTracker(net)
        with pytest.raises(RuntimeError):
            tracker.run_until_stable(max_rounds=1)


class TestViz:
    def test_ascii_ring_contains_all_nodes(self):
        net = stabilized(6, seed=6)
        art = ascii_ring(net)
        total = sum(len(p.state.nodes) for p in net.peers.values())
        assert f"{total} nodes" in art
        assert "●" in art and "○" in art

    def test_ascii_ring_truncates(self):
        net = stabilized(12, seed=7)
        art = ascii_ring(net, max_nodes=10)
        assert "omitted" in art

    def test_dot_structure(self):
        net = stabilized(5, seed=8)
        dot = to_dot(net)
        assert dot.startswith("digraph rechord {") and dot.endswith("}")
        assert "doublecircle" in dot  # real nodes
        assert 'color="red"' in dot  # ring edges exist in stable state

    def test_dot_without_connection_edges(self):
        net = stabilized(5, seed=8)
        full = to_dot(net, include_connection=True)
        slim = to_dot(net, include_connection=False)
        assert len(slim) <= len(full)


class TestPhasesExperiment:
    def test_run_phases_tiny(self):
        from repro.experiments.phases import format_phases, run_phases

        result = run_phases(sizes=(6,), seeds=2)
        row = result[6]
        for name in PHASES:
            assert row[name].mean >= 0
        assert "Lemmas" in format_phases(result)
